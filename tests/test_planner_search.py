"""Tests for Algorithm 1 (the chain dynamic program) on synthetic chains."""

from dataclasses import dataclass
from typing import Dict, Sequence

import pytest

from repro.core.planner import solve_chain
from repro.core.planner.plan import LayerAssignment


@dataclass
class FakeNode:
    """Synthetic chain node with explicit cost tables."""

    name: str
    costs: Dict[int, float]          # num_gpus -> node cost
    base_cost: float                 # comp at 1 GPU (amp denominator)
    transition: float = 0.0          # cost paid whenever the width changes
    exit_layer_id: int = 0

    def candidate_gpus(self) -> Sequence[int]:
        return sorted(self.costs)

    def node_cost(self, num_gpus: int) -> float:
        return self.costs[num_gpus]

    def single_gpu_cost(self) -> float:
        return self.base_cost

    def transition_cost(self, prev_exit_layer, prev_gpus: int, num_gpus: int) -> float:
        if prev_exit_layer is None or prev_gpus == num_gpus:
            return 0.0
        return self.transition

    def assignments(self, prev_gpus, num_gpus, stage_time, transition_time):
        return [
            LayerAssignment(
                layer_id=self.exit_layer_id,
                layer_name=self.name,
                op="synthetic",
                num_gpus=num_gpus,
                compute_time=self.costs[num_gpus],
                comm_time=transition_time,
            )
        ]


def scalable_node(name, base=8.0, amp_free=True):
    """A node that halves its time with every doubling of GPUs."""
    costs = {g: base / g for g in (1, 2, 4, 8)}
    return FakeNode(name=name, costs=costs, base_cost=base)


def flat_node(name, base=8.0):
    """A node whose time does not improve with more GPUs."""
    costs = {g: base for g in (1, 2, 4, 8)}
    return FakeNode(name=name, costs=costs, base_cost=base)


class TestSolveChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            solve_chain([], amp_limit=2.0)

    def test_amp_limit_below_one_rejected(self):
        with pytest.raises(ValueError):
            solve_chain([scalable_node("a")], amp_limit=0.5)

    def test_scalable_layer_bursts_to_max_width(self):
        solution = solve_chain([scalable_node("a")], amp_limit=8.0)
        assert solution.gpus_per_node() == [8]
        assert solution.total_time == pytest.approx(1.0)

    def test_flat_layer_stays_narrow_under_amp_limit(self):
        """A layer that does not scale would amplify GPU-sec if burst wide."""
        solution = solve_chain([flat_node("a")], amp_limit=1.5)
        assert solution.gpus_per_node() == [1]

    def test_flat_layer_can_burst_when_limit_is_loose(self):
        solution = solve_chain([flat_node("a")], amp_limit=100.0)
        # All widths take the same time; the cheapest feasible is chosen and
        # the amplification never exceeds the (loose) limit.
        assert solution.max_amplification() <= 100.0

    def test_mixed_chain_bursts_only_scalable_layers(self):
        nodes = [scalable_node("conv"), flat_node("fc")]
        solution = solve_chain(nodes, amp_limit=1.5)
        widths = solution.gpus_per_node()
        assert widths[0] == 8  # scalable layer bursts
        assert widths[1] == 1  # flat layer stays narrow

    def test_relaxation_count_matches_search_space(self):
        """relaxations = sum over nodes of |candidates| x |prev candidates|."""
        nodes = [scalable_node("a"), scalable_node("b")]
        solution = solve_chain(nodes, amp_limit=8.0)
        # Node 0: 4 candidates x 1 entry width; node 1: 4 x 4 predecessors.
        assert solution.relaxations == 4 * 1 + 4 * 4

    def test_transition_cost_discourages_frequent_width_changes(self):
        # Alternating scalable/flat layers with a huge transition cost: the
        # planner should keep a single width rather than ping-pong.
        nodes = []
        for i in range(4):
            node = scalable_node(f"conv{i}") if i % 2 == 0 else flat_node(f"fc{i}", base=1.0)
            node.transition = 100.0
            nodes.append(node)
        solution = solve_chain(nodes, amp_limit=8.0)
        widths = set(solution.gpus_per_node())
        assert len(widths) == 1

    def test_cheap_transitions_allow_bursting(self):
        nodes = []
        for i in range(4):
            node = scalable_node(f"conv{i}") if i % 2 == 0 else flat_node(f"fc{i}", base=1.0)
            node.transition = 1e-6
            nodes.append(node)
        solution = solve_chain(nodes, amp_limit=1.5)
        assert len(set(solution.gpus_per_node())) > 1

    def test_total_time_matches_decision_sum(self):
        nodes = [scalable_node("a"), flat_node("b", base=2.0), scalable_node("c")]
        solution = solve_chain(nodes, amp_limit=4.0)
        reconstructed = sum(d.stage_time for d in solution.decisions)
        assert solution.total_time == pytest.approx(reconstructed)

    def test_tables_have_entries_for_all_widths(self):
        nodes = [scalable_node("a"), flat_node("b")]
        solution = solve_chain(nodes, amp_limit=2.0)
        for table in (solution.s_table, solution.t_table):
            assert len(table) == 2
            assert set(table[0]) == {1, 2, 4, 8}

    def test_entry_gpus_constrains_first_transition(self):
        node = scalable_node("a")
        node.transition = 10.0
        # Entering from 8 GPUs: staying at 8 avoids the transition penalty.
        solution = solve_chain([node], amp_limit=8.0, entry_gpus=[8], entry_exit_layer=0)
        assert solution.gpus_per_node() == [8]

    def test_amplification_reported_per_decision(self):
        solution = solve_chain([scalable_node("a")], amp_limit=8.0)
        decision = solution.decisions[0]
        # Perfectly scalable layer: amp == stage_time * g / base == 1.
        assert decision.amplification == pytest.approx(1.0)

    def test_lower_amp_limit_never_gives_faster_plan(self):
        nodes = [scalable_node("a"), flat_node("b"), scalable_node("c")]
        tight = solve_chain(nodes, amp_limit=1.2)
        loose = solve_chain(nodes, amp_limit=8.0)
        assert loose.total_time <= tight.total_time + 1e-12
