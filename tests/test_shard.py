"""Sharded epoch-parallel replay: partitioning, parity, anchors, fold.

The contract this file pins down is the one the CI ``shard`` job gates on:
:func:`~repro.sched.shard.replay_sharded` produces a
``result_fingerprint`` *byte-identical* to the single-process run at every
epoch count and worker count — homogeneous or heterogeneous fleet, with or
without injected failures, anchors cold or warm, boundaries balanced,
duplicated (empty epochs) or dropped mid-failure-window.  Alongside it:
the epoch partitioner's edge cases, the anchor store's hit/miss/write
accounting, the cross-process counter fold-back, and the columnar
:class:`~repro.sched.metrics.MetricsFold` matching ``FleetMetrics.compute``
bit for bit on both its ingestion paths.
"""

import json
from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import ArtifactCache
from repro.cluster.job import JobKind
from repro.obs.metrics import global_registry
from repro.profiler.gpu_spec import A100_40GB, V100_32GB
from repro.sched import (
    ClusterFleet,
    ClusterScheduler,
    GpuPoolSpec,
    JobRecord,
    TraceJob,
    inject_failures,
    partition_epochs,
    replay_sharded,
    synthetic_trace,
)
from repro.sched.metrics import FleetMetrics, MetricsFold
from repro.sched.snapshot import _dump_record
from repro.serve.replay import result_fingerprint

# ---------------------------------------------------------------------------
# Workload fixtures (the snapshot suite's shapes: one homogeneous config,
# one heterogeneous fleet with an injected failure schedule).
# ---------------------------------------------------------------------------


def _mixed_fleet():
    return ClusterFleet(
        (
            GpuPoolSpec("a100", A100_40GB, 16, 4),
            GpuPoolSpec("v100", V100_32GB, 16, 4),
        )
    )


_CONFIGS = {
    "homogeneous": {
        "fleet": lambda: 32,
        "policy": "collocation",
        "num_jobs": 18,
        "seed": 11,
        "failures": 0,
    },
    "hetero-failures": {
        "fleet": _mixed_fleet,
        "policy": "collocation",
        "num_jobs": 14,
        "seed": 7,
        "failures": 3,
    },
}


def _workload(name):
    config = _CONFIGS[name]
    scheduler = ClusterScheduler(config["fleet"]())
    trace = sorted(
        synthetic_trace(config["num_jobs"], seed=config["seed"]),
        key=lambda job: job.arrival_time,
    )
    failures = (
        inject_failures(scheduler.fleet, config["failures"], seed=config["seed"])
        if config["failures"]
        else []
    )
    return scheduler, trace, config["policy"], failures


@lru_cache(maxsize=None)
def _serial(name):
    """The uninterrupted single-process run's (fingerprint, result)."""
    scheduler, trace, policy, failures = _workload(name)
    result = scheduler.run(trace, policy, failures=failures)
    return result_fingerprint(result), result


def _sharded(name, **kwargs):
    scheduler, trace, policy, failures = _workload(name)
    return replay_sharded(scheduler, trace, policy, failures=failures, **kwargs)


# ---------------------------------------------------------------------------
# Epoch partitioner
# ---------------------------------------------------------------------------


class TestPartitionEpochs:
    def _trace(self, arrivals):
        return [
            TraceJob(
                name=f"job-{index}",
                model="mlp-small",
                global_batch=32,
                arrival_time=time,
                iterations=10,
            )
            for index, time in enumerate(arrivals)
        ]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="at least 1"):
            partition_epochs(self._trace([1.0]), 0)
        with pytest.raises(ValueError, match="empty trace"):
            partition_epochs([], 4)

    def test_single_epoch_has_no_boundaries(self):
        assert partition_epochs(self._trace([1.0, 2.0, 3.0]), 1) == []

    def test_boundaries_are_nondecreasing_arrival_quantiles(self):
        trace = self._trace([5.0, 1.0, 3.0, 2.0, 4.0, 6.0, 7.0, 8.0])
        cuts = partition_epochs(trace, 4)
        assert len(cuts) == 3
        assert cuts == sorted(cuts)
        arrivals = {job.arrival_time for job in trace}
        assert all(cut in arrivals for cut in cuts)

    def test_more_epochs_than_jobs_duplicates_boundaries(self):
        # A 2-job trace cut into 5 epochs must repeat boundaries — meaning
        # empty epochs, which replay as zero-step no-ops (parity test below).
        cuts = partition_epochs(self._trace([1.0, 9.0]), 5)
        assert len(cuts) == 4
        assert cuts == sorted(cuts)
        assert len(set(cuts)) < len(cuts)

    def test_bursty_trace_yields_empty_epochs(self):
        # Every job arrives at once: all boundaries collapse onto one time.
        cuts = partition_epochs(self._trace([2.0] * 6), 3)
        assert cuts == [2.0, 2.0]


# ---------------------------------------------------------------------------
# Bit-identity against the single-process run
# ---------------------------------------------------------------------------


class TestShardParity:
    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    @pytest.mark.parametrize("epochs", [1, 2, 3, 5])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_matches_serial_at_every_epoch_and_worker_count(
        self, name, epochs, workers
    ):
        baseline, serial = _serial(name)
        report = _sharded(name, epochs=epochs, workers=workers)
        assert report.result_fingerprint() == baseline
        # Not just the fingerprint: the stitched records and metrics are the
        # serial objects, value for value.
        assert report.result.records == serial.records
        assert report.result.metrics == serial.metrics
        assert report.result.events_processed == serial.events_processed

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    @given(epochs=st.integers(min_value=1, max_value=9))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_epoch_count_property(self, name, epochs):
        baseline, _ = _serial(name)
        report = _sharded(name, epochs=epochs)
        assert report.result_fingerprint() == baseline
        assert len(report.epochs) == epochs
        assert sum(epoch.steps for epoch in report.epochs) == (
            report.result.events_processed
        )

    def test_single_epoch_degenerates_to_plain_replay(self):
        baseline, serial = _serial("homogeneous")
        report = _sharded("homogeneous", epochs=1)
        assert report.boundaries == ()
        assert len(report.epochs) == 1
        assert report.result == serial
        assert report.result_fingerprint() == baseline

    def test_explicit_duplicate_boundaries_replay_empty_epochs(self):
        baseline, _ = _serial("homogeneous")
        _, trace, _, _ = _workload("homogeneous")
        mid = trace[len(trace) // 2].arrival_time
        report = _sharded("homogeneous", boundaries=[mid, mid, mid])
        assert report.result_fingerprint() == baseline
        empty = [epoch for epoch in report.epochs if epoch.steps == 0]
        assert len(empty) == 2  # the two duplicated spans dispatch nothing

    def test_boundary_straddling_a_failure_downtime_window(self):
        # Cut inside a NODE_FAILURE/NODE_RECOVERY pair: the failure fires in
        # one epoch, the recovery in a later one, and the down-host state
        # must cross the anchor intact.
        name = "hetero-failures"
        baseline, _ = _serial(name)
        _, _, _, failures = _workload(name)
        failure = failures[0]
        cut = (failure.time + failure.recovery_time) / 2.0
        assert failure.time < cut < failure.recovery_time
        report = _sharded(name, boundaries=[cut])
        assert report.result_fingerprint() == baseline

    def test_rejects_decreasing_boundaries_and_bad_traces(self):
        scheduler, trace, policy, _ = _workload("homogeneous")
        with pytest.raises(ValueError, match="non-decreasing"):
            replay_sharded(scheduler, trace, policy, boundaries=[5.0, 1.0])
        with pytest.raises(ValueError, match="empty trace"):
            replay_sharded(scheduler, [], policy)
        with pytest.raises(ValueError, match="duplicate job names"):
            replay_sharded(scheduler, [trace[0], trace[0]], policy)


# ---------------------------------------------------------------------------
# Anchor store: content addressing, warm reuse, report accounting
# ---------------------------------------------------------------------------


class TestAnchorStore:
    def test_warm_store_skips_the_anchor_pass(self, tmp_path):
        baseline, _ = _serial("homogeneous")
        cache = ArtifactCache(tmp_path)
        cold = _sharded("homogeneous", epochs=3, anchor_cache=cache)
        assert cold.anchor_misses == 3
        assert cold.anchor_writes == 3
        assert cold.anchor_hits == 0
        assert cold.anchor_pass_s > 0.0
        warm = _sharded("homogeneous", epochs=3, anchor_cache=cache)
        assert warm.anchor_hits == 3
        assert warm.anchor_misses == 0
        assert warm.anchor_writes == 0
        assert warm.anchor_pass_s == 0.0
        assert cold.workload == warm.workload
        assert cold.result_fingerprint() == baseline
        assert warm.result_fingerprint() == baseline

    def test_warm_anchors_feed_pooled_workers(self, tmp_path):
        baseline, _ = _serial("hetero-failures")
        cache = ArtifactCache(tmp_path)
        _sharded("hetero-failures", epochs=4, anchor_cache=cache)
        warm = _sharded(
            "hetero-failures", epochs=4, workers=2, anchor_cache=cache
        )
        assert warm.anchor_hits == 4
        assert warm.workers == 2
        assert warm.result_fingerprint() == baseline

    def test_workload_identity_separates_anchor_sets(self, tmp_path):
        # A different partition of the same run must never reuse anchors.
        cache = ArtifactCache(tmp_path)
        _sharded("homogeneous", epochs=2, anchor_cache=cache)
        other = _sharded("homogeneous", epochs=3, anchor_cache=cache)
        assert other.anchor_hits == 0
        assert other.anchor_misses == 3

    def test_report_payload_is_json_safe(self, tmp_path):
        report = _sharded("homogeneous", epochs=2, anchor_cache=ArtifactCache(tmp_path))
        payload = json.loads(json.dumps(report.to_payload()))
        assert payload["workers"] == 1
        assert len(payload["epochs"]) == 2
        assert payload["result_fingerprint"] == report.result_fingerprint()
        assert 0.0 <= payload["worker_utilization"] <= 1.0


# ---------------------------------------------------------------------------
# Cross-process counter fold-back
# ---------------------------------------------------------------------------


class TestCounterFoldBack:
    def _arrival_delta(self, **kwargs):
        registry = global_registry()
        before = registry.snapshot()
        report = _sharded("homogeneous", **kwargs)
        return report, registry.delta_since(before)

    def test_pooled_worker_counters_merge_into_the_driver_registry(self):
        num_jobs = _CONFIGS["homogeneous"]["num_jobs"]
        inline_report, inline = self._arrival_delta(epochs=4, workers=1)
        pooled_report, pooled = self._arrival_delta(epochs=4, workers=2)
        assert pooled_report.result == inline_report.result
        # Arrivals dispatched in worker processes must land in this
        # registry exactly once — the same total the inline run accrues
        # directly, which by construction cannot double-count.  (The total
        # exceeds num_jobs: the cold anchor pass dispatches arrivals too.)
        assert inline["sched.events.arrival"] >= num_jobs
        assert pooled["sched.events.arrival"] == inline["sched.events.arrival"]
        assert pooled["sched.shard.epochs_replayed"] == 4
        assert pooled["sched.shard.runs"] == 1


# ---------------------------------------------------------------------------
# Columnar metrics fold == FleetMetrics.compute, bit for bit
# ---------------------------------------------------------------------------


def _record_strategy():
    time_like = st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    counts = st.integers(min_value=0, max_value=50)

    @st.composite
    def record(draw):
        index = draw(st.integers(min_value=0, max_value=10_000))
        arrival = draw(time_like)
        queue_delay = draw(time_like)
        run = draw(time_like)
        return JobRecord(
            name=f"job-{index}",
            model="mlp-small",
            kind=draw(st.sampled_from(list(JobKind))),
            arrival_time=arrival,
            start_time=arrival + queue_delay,
            finish_time=arrival + queue_delay + run,
            iterations=draw(st.integers(min_value=1, max_value=10_000)),
            global_batch=draw(st.integers(min_value=1, max_value=4096)),
            width=draw(st.integers(min_value=1, max_value=64)),
            busy_gpu_seconds=draw(time_like),
            allocated_gpu_seconds=draw(time_like),
            preemptions=draw(counts),
            replans=draw(counts),
            restarts=draw(counts),
            lost_gpu_seconds=draw(time_like),
        )

    return record()


class TestMetricsFold:
    @given(
        records=st.lists(_record_strategy(), max_size=40),
        num_gpus=st.integers(min_value=1, max_value=4096),
        makespan=st.floats(
            min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_fold_matches_compute_on_both_ingestion_paths(
        self, records, num_gpus, makespan
    ):
        expected = FleetMetrics.compute(records, num_gpus, makespan)

        by_record = MetricsFold()
        by_record.extend(records)
        assert by_record.finalize(num_gpus, makespan) == expected

        # The serialized-row path the shard workers ship records through.
        by_row = MetricsFold()
        for record in records:
            by_row.add_row(_dump_record(record))
        assert by_row.finalize(num_gpus, makespan) == expected

    def test_batched_fold_equals_one_shot_fold(self):
        _, serial = _serial("homogeneous")
        records = list(serial.records)
        one_shot = MetricsFold()
        one_shot.extend(records)
        batched = MetricsFold()
        for start in range(0, len(records), 3):
            batched.extend(records[start : start + 3])
        makespan = serial.metrics.makespan
        assert batched.finalize(serial.num_gpus, makespan) == one_shot.finalize(
            serial.num_gpus, makespan
        )
        assert one_shot.finalize(serial.num_gpus, makespan) == serial.metrics

    def test_finalize_rejects_bad_gpu_count_and_handles_empty(self):
        fold = MetricsFold()
        with pytest.raises(ValueError, match="num_gpus"):
            fold.finalize(0, 1.0)
        empty = fold.finalize(8, 5.0)
        assert empty.num_jobs == 0
        assert empty.makespan == 5.0
        assert empty.utilization == 0.0
