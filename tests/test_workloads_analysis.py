"""Tests for the workload definitions, analysis entry points, and reporting."""

import pytest

from repro.analysis import (
    figure2_batch_optimal_per_gpu_batch,
    figure5_layer_scalability,
    figure9_cluster_throughput,
    figure11_mechanism_ablation,
    format_bars,
    format_matrix,
    format_table,
    table1_workload_characteristics,
    table3_planner_search_time,
)
from repro.workloads import (
    SyntheticKernelSpec,
    default_kernel_grid,
    table1_characteristics,
)


class TestSyntheticWorkloads:
    def test_default_grid_covers_durations_and_intensities(self):
        grid = default_kernel_grid()
        assert len(grid) == 12
        labels = {spec.label for spec in grid}
        assert "10us/low" in labels and "10ms/high" in labels

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticKernelSpec("bad", duration=0.0, occupancy=0.5)
        with pytest.raises(ValueError):
            SyntheticKernelSpec("bad", duration=1e-3, occupancy=1.5)

    def test_as_tuple(self):
        spec = SyntheticKernelSpec("x", 1e-3, 0.5)
        assert spec.as_tuple() == ("x", 1e-3, 0.5)


class TestTable1:
    def test_characteristics_match_registry(self):
        rows = table1_characteristics()
        assert [r.model for r in rows] == ["vgg16", "wide_resnet101_2", "inception_v3"]
        by_model = {r.model: r for r in rows}
        assert by_model["vgg16"].params_millions > 100
        assert by_model["inception_v3"].params_millions < 30
        assert by_model["wide_resnet101_2"].input_size == "3 x 400 x 400"

    def test_analysis_wrapper_is_equivalent(self):
        assert [r.model for r in table1_workload_characteristics()] == [
            r.model for r in table1_characteristics()
        ]


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4.25)], precision=1, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "30" in text and "4.2" in text

    def test_format_matrix(self):
        text = format_matrix(["r1"], ["c1", "c2"], {("r1", "c1"): 0.5, ("r1", "c2"): 1.0})
        assert "r1" in text and "c1" in text and "0.50" in text

    def test_format_bars(self):
        text = format_bars(["x", "yy"], [10.0, 20.0], width=10)
        assert "#" in text
        assert text.count("\n") == 1
        with pytest.raises(ValueError):
            format_bars(["x"], [1.0, 2.0])


class TestExperimentEntryPoints:
    """Smoke tests with reduced parameters (full runs live in benchmarks/)."""

    def test_figure2_smoke(self):
        result = figure2_batch_optimal_per_gpu_batch(gpu_counts=(1, 8, 64))
        assert set(result) == {1, 8, 64}

    def test_figure5_smoke(self):
        rows = figure5_layer_scalability()
        assert len(rows) == 21  # 13 conv + 5 pool + 3 fc
        assert all(speedup > 0 for _, speedup in rows)

    def test_figure9_uncalibrated_smoke(self):
        results = figure9_cluster_throughput(
            models=["vgg16"], calibrate=False, amplification_limit=2.0
        )
        assert len(results) == 1
        labels = [s.label for s in results[0].scenarios]
        assert labels == ["DP", "BP", "BP + Col", "BG Only"]
        assert results[0].throughput_gain > 1.0

    def test_figure11_smoke(self):
        results = figure11_mechanism_ablation(sim_time=0.03)
        assert len(results) == 7
        assert results[0].bg_throughput == 0.0

    def test_table3_smoke(self):
        times = table3_planner_search_time(models=["vgg16"], gpu_counts=(8,))
        assert times["vgg16"][8] < 5.0
