"""Cluster-scale scheduler fast path: incremental orderings, prewarming,
plan-cache identity, and the sched_sim_xl determinism regression tests."""

from types import SimpleNamespace

import pytest

from repro.bench import run_scenario
from repro.cluster.job import JobKind
from repro.core.planner import PlannerConfig, PlannerPool
from repro.core.planner.planner import BurstParallelPlanner
from repro.network.fabric import get_fabric
from repro.profiler.gpu_spec import V100_32GB
from repro.profiler.layer_profiler import LayerProfiler
from repro.sched import (
    ClusterScheduler,
    PendingQueue,
    ShortestRemainingGPUSecondsPolicy,
    SortedJobList,
    TraceJob,
    get_policy,
    mixed_trace,
    synthetic_trace,
)


def _job(name, key_attrs=()):
    job = SimpleNamespace(name=name, is_foreground=True)
    for attr, value in key_attrs:
        setattr(job, attr, value)
    return job


class TestSortedJobList:
    def test_orders_by_key_with_stable_ties(self):
        jobs = SortedJobList()
        a, b, c = _job("a"), _job("b"), _job("c")
        jobs.add(a, (2.0,))
        jobs.add(b, (1.0,))
        jobs.add(c, (2.0,))  # same key as a: insertion order breaks the tie
        assert [j.name for j in jobs] == ["b", "a", "c"]

    def test_remove_and_membership(self):
        jobs = SortedJobList()
        a, b = _job("a"), _job("b")
        jobs.add(a, (1.0,))
        jobs.add(b, (2.0,))
        assert a in jobs and len(jobs) == 2
        jobs.remove(a)
        assert a not in jobs
        assert [j.name for j in jobs] == ["b"]
        with pytest.raises(KeyError):
            jobs.remove(a)

    def test_duplicate_add_rejected(self):
        jobs = SortedJobList()
        a = _job("a")
        jobs.add(a, (1.0,))
        with pytest.raises(ValueError):
            jobs.add(a, (2.0,))

    def test_rekey_moves_item(self):
        jobs = SortedJobList()
        a, b = _job("a"), _job("b")
        jobs.add(a, (1.0,))
        jobs.add(b, (2.0,))
        jobs.rekey(a, (3.0,))
        assert [j.name for j in jobs] == ["b", "a"]


class TestPendingQueue:
    def test_policy_order_and_foreground_count(self):
        policy = get_policy("fifo")
        queue = PendingQueue(policy)
        early = SimpleNamespace(
            name="early", is_foreground=True, arrival_time=1.0, order=0
        )
        late = SimpleNamespace(
            name="late", is_foreground=False, arrival_time=2.0, order=1
        )
        queue.add(late, now=2.0)
        queue.add(early, now=2.0)
        assert [j.name for j in queue] == ["early", "late"]
        assert queue.foreground_waiting == 1
        queue.remove(early)
        assert queue.foreground_waiting == 0
        assert len(queue) == 1

    def test_resort_recomputes_time_varying_keys(self):
        class AgingPolicy:
            dynamic_priority = True

            def sort_key(self, job, now):
                return (job.base - now * job.aging_rate,)

        a = SimpleNamespace(name="a", is_foreground=True, base=10.0, aging_rate=0.0)
        b = SimpleNamespace(name="b", is_foreground=True, base=12.0, aging_rate=1.0)
        queue = PendingQueue(AgingPolicy())
        queue.add(a, now=0.0)
        queue.add(b, now=0.0)
        assert [j.name for j in queue] == ["a", "b"]
        queue.resort(now=5.0)  # b aged past a
        assert [j.name for j in queue] == ["b", "a"]


class TestMixedTrace:
    def test_deterministic_unique_and_sorted(self):
        first = mixed_trace(60, seed=5)
        second = mixed_trace(60, seed=5)
        assert first == second
        names = [j.name for j in first]
        assert len(set(names)) == len(names) == 60
        arrivals = [j.arrival_time for j in first]
        assert arrivals == sorted(arrivals)
        prefixes = {n.split("-", 1)[0] for n in names}
        assert prefixes == {"syn", "ali"}

    def test_validation(self):
        with pytest.raises(ValueError):
            mixed_trace(1)
        with pytest.raises(ValueError):
            mixed_trace(10, synthetic_fraction=1.0)


class TestPrewarm:
    def test_prewarm_matches_cold_metrics(self):
        trace = synthetic_trace(30, seed=9)
        cold = ClusterScheduler(16).run(trace, "collocation")

        warmed = ClusterScheduler(16)
        seeded = warmed.prewarm_plans(trace)
        assert seeded > 0
        assert len(warmed._plan_cache) == seeded
        result = warmed.run(trace, "collocation")
        assert result.metrics == cold.metrics
        assert result.events_processed == cold.events_processed
        # Replay never planned anything beyond the prewarmed set.
        assert len(warmed._plan_cache) == seeded

    @pytest.mark.parametrize("processes", [1, 4])
    def test_pool_prewarm_matches_inline(self, processes, tmp_path):
        trace = synthetic_trace(30, seed=9)
        cold = ClusterScheduler(16).run(trace, "collocation")
        sched = ClusterScheduler(16)
        pool = PlannerPool(processes=processes, cache_dir=str(tmp_path))
        sched.prewarm_plans(trace, pool=pool)
        result = sched.run(trace, "collocation")
        assert result.metrics == cold.metrics

    def test_mismatched_pool_rejected(self):
        """A pool planning for a different fabric must not seed this
        scheduler's plan cache under its fingerprint."""
        sched = ClusterScheduler(8)  # nvswitch default
        with pytest.raises(ValueError, match="does not match"):
            sched.prewarm_plans(
                synthetic_trace(6, seed=1), pool=PlannerPool(fabric="10gbps")
            )

    def test_prewarm_is_idempotent(self):
        trace = synthetic_trace(20, seed=3)
        sched = ClusterScheduler(8)
        first = sched.prewarm_plans(trace)
        assert first > 0
        assert sched.prewarm_plans(trace) == 0  # everything already seeded


class TestSamePassPreemption:
    """A background job placed and then preempted within one scheduling pass
    must re-enter the pending queue cleanly (regression: the incremental
    queue raised 'already tracked' where the old list-based queue coped)."""

    class _PreemptingSRGS(ShortestRemainingGPUSecondsPolicy):
        name = "srgs+preempt"
        preempt_background = True

    def test_background_placed_then_preempted_in_one_pass(self):
        trace = [
            # Holds both GPUs until the interesting pass.
            TraceJob("blocker", "vgg16", 32, 0.0, iterations=500),
            # Sorts first (tiny remaining work), grabs the free GPU...
            TraceJob(
                "bg", "vgg16", 2, 0.01, iterations=1, kind=JobKind.BACKGROUND
            ),
            # ...then this one preempts it for a width-2 placement.
            TraceJob("fg2", "vgg16", 32, 0.02, iterations=500),
        ]
        result = ClusterScheduler(2).run(trace, self._PreemptingSRGS())
        assert result.record("bg").preemptions >= 1
        assert result.record("fg2").width == 2
        assert result.metrics.num_jobs == 3  # everyone completed


class TestPlanCacheIdentity:
    """Satellite bugfix: plan-cache keys carry the planner fingerprint."""

    def test_key_changes_with_planner_config(self):
        sched = ClusterScheduler(8)
        key_default = sched._plan_cache_key("vgg16", 32, 4, 2.0)
        sched.planner = BurstParallelPlanner(
            get_fabric("nvswitch"),
            sched.profiler,
            PlannerConfig(powers_of_two_only=False),
        )
        key_full_grid = sched._plan_cache_key("vgg16", 32, 4, 2.0)
        assert key_default != key_full_grid
        assert key_default[:4] == key_full_grid[:4]  # only the identity moved

    def test_swapped_planner_cannot_alias_plans(self):
        trace = synthetic_trace(12, seed=4)
        sched = ClusterScheduler(8)
        nvswitch = sched.run(trace, "collocation")
        plans_before = len(sched._plan_cache)
        # Same scheduler, radically slower fabric: cached nvswitch plans must
        # not be served for it.
        sched.planner = BurstParallelPlanner(
            get_fabric("10gbps"), sched.profiler
        )
        slow = sched.run(trace, "collocation")
        assert len(sched._plan_cache) > plans_before
        assert slow.metrics != nvswitch.metrics

    def test_profiler_identity_separates_plans(self):
        sched_a100 = ClusterScheduler(8)
        profiler = LayerProfiler(gpu=V100_32GB)
        sched_v100 = ClusterScheduler(
            8,
            profiler=profiler,
            planner=BurstParallelPlanner(get_fabric("nvswitch"), profiler),
        )
        key_a = sched_a100._plan_cache_key("vgg16", 32, 4, 2.0)
        key_v = sched_v100._plan_cache_key("vgg16", 32, 4, 2.0)
        assert key_a != key_v


XL_SMALL = {"num_gpus": 64, "num_jobs": 160, "seed": 13}


class TestSchedSimXlDeterminism:
    """Satellite: identical fingerprints cold / warm / parallel-prewarmed."""

    def test_cold_warm_and_pool_sizes_fingerprint_identically(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runs = {
            "no_cache": run_scenario("sched_sim_xl", overrides=XL_SMALL),
            "cold": run_scenario(
                "sched_sim_xl", overrides=dict(XL_SMALL, cache_dir=cache_dir)
            ),
            "warm": run_scenario(
                "sched_sim_xl", overrides=dict(XL_SMALL, cache_dir=cache_dir)
            ),
            "pool4": run_scenario(
                "sched_sim_xl",
                overrides=dict(XL_SMALL, cache_dir=cache_dir, planner_processes=4),
            ),
            "no_prewarm": run_scenario(
                "sched_sim_xl", overrides=dict(XL_SMALL, prewarm=False)
            ),
        }
        reference = runs["no_cache"]
        assert reference.ops > 0
        for label, artifact in runs.items():
            assert artifact.ops == reference.ops, label
            assert artifact.metrics == reference.metrics, label
        # The warm run really ran against a populated cache.
        assert runs["warm"].info["cache_hits"] > 0
        assert runs["warm"].info["cache_misses"] == 0

    def test_xl_exercises_cluster_dynamics(self):
        artifact = run_scenario("sched_sim_xl", overrides=XL_SMALL)
        assert artifact.metrics["jobs"] == float(XL_SMALL["num_jobs"])
        assert artifact.metrics["replans"] > 0
        assert artifact.info["prewarmed_plans"] > 0
