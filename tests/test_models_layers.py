"""Tests for the shape-tracking graph builder and layer math."""

import pytest

from repro.models import GraphBuilder, Shape, conv_output_hw, pool_output_hw


class TestShapeMath:
    def test_conv_same_padding(self):
        assert conv_output_hw(224, 224, kernel=3, stride=1, padding=1) == (224, 224)

    def test_conv_stride_two(self):
        assert conv_output_hw(224, 224, kernel=7, stride=2, padding=3) == (112, 112)

    def test_conv_rectangular_kernel(self):
        assert conv_output_hw(17, 17, kernel=(1, 7), stride=1, padding=(0, 3)) == (17, 17)

    def test_conv_too_small_raises(self):
        with pytest.raises(ValueError):
            conv_output_hw(2, 2, kernel=5)

    def test_pool_default_stride_equals_kernel(self):
        assert pool_output_hw(224, 224, kernel=2) == (112, 112)

    def test_pool_ceil_mode(self):
        assert pool_output_hw(5, 5, kernel=2, stride=2, ceil_mode=True) == (3, 3)
        assert pool_output_hw(5, 5, kernel=2, stride=2, ceil_mode=False) == (2, 2)

    def test_shape_elems(self):
        assert Shape(64, 10, 10).elems == 6400
        assert Shape(100, flat=True).as_tuple() == (100,)


class TestGraphBuilder:
    def test_input_layer_created(self):
        b = GraphBuilder("m", (3, 32, 32))
        assert b.current_shape.as_tuple() == (3, 32, 32)
        graph = b.graph
        assert graph.spec(b.cursor).op == "input"

    def test_conv_flops_and_params(self):
        b = GraphBuilder("m", (3, 32, 32))
        lid = b.add_conv2d("conv", out_channels=16, kernel=3, padding=1, bias=True)
        spec = b.graph.spec(lid)
        # params: 3*16*3*3 + 16 bias
        assert spec.params == 3 * 16 * 9 + 16
        # flops: 2 * Cout*H*W*Cin*K*K
        assert spec.flops_per_sample == pytest.approx(2 * 16 * 32 * 32 * 3 * 9)
        assert b.current_shape.as_tuple() == (16, 32, 32)

    def test_conv_without_bias(self):
        b = GraphBuilder("m", (3, 8, 8))
        lid = b.add_conv2d("conv", 4, kernel=1, bias=False)
        assert b.graph.spec(lid).params == 3 * 4

    def test_dense_flattens_input(self):
        b = GraphBuilder("m", (8, 4, 4))
        lid = b.add_dense("fc", 10)
        spec = b.graph.spec(lid)
        assert spec.params == 8 * 4 * 4 * 10 + 10
        assert spec.flops_per_sample == pytest.approx(2 * 128 * 10)
        assert b.current_shape.flat

    def test_batchnorm_params(self):
        b = GraphBuilder("m", (32, 8, 8))
        lid = b.add_batchnorm("bn")
        assert b.graph.spec(lid).params == 64

    def test_relu_preserves_shape_and_has_no_params(self):
        b = GraphBuilder("m", (32, 8, 8))
        lid = b.add_relu("relu")
        spec = b.graph.spec(lid)
        assert spec.params == 0
        assert spec.output_elems_per_sample == 32 * 8 * 8

    def test_maxpool_halves_spatial_size(self):
        b = GraphBuilder("m", (32, 8, 8))
        b.add_maxpool("pool", kernel=2, stride=2)
        assert b.current_shape.as_tuple() == (32, 4, 4)

    def test_global_avgpool(self):
        b = GraphBuilder("m", (32, 7, 7))
        b.add_global_avgpool("gap")
        assert b.current_shape.as_tuple() == (32, 1, 1)

    def test_flatten(self):
        b = GraphBuilder("m", (32, 2, 2))
        b.add_flatten("flat")
        assert b.current_shape.as_tuple() == (128,)

    def test_add_join_requires_matching_shapes(self):
        b = GraphBuilder("m", (8, 4, 4))
        split = b.cursor
        left = b.add_conv2d("left", 8, kernel=3, padding=1, input_id=split)
        right = b.add_conv2d("right", 16, kernel=3, padding=1, input_id=split)
        with pytest.raises(ValueError):
            b.add_add("bad_join", [left, right])

    def test_add_join_shape(self):
        b = GraphBuilder("m", (8, 4, 4))
        split = b.cursor
        left = b.add_conv2d("left", 8, kernel=3, padding=1, input_id=split)
        right = b.add_conv2d("right", 8, kernel=3, padding=1, input_id=split)
        join = b.add_add("join", [left, right])
        assert b.graph.spec(join).output_elems_per_sample == 8 * 4 * 4
        assert b.graph.in_degree(join) == 2

    def test_concat_sums_channels(self):
        b = GraphBuilder("m", (8, 4, 4))
        split = b.cursor
        left = b.add_conv2d("left", 8, kernel=1, input_id=split)
        right = b.add_conv2d("right", 24, kernel=1, input_id=split)
        b.add_concat("cat", [left, right])
        assert b.current_shape.as_tuple() == (32, 4, 4)

    def test_concat_requires_matching_spatial_dims(self):
        b = GraphBuilder("m", (8, 4, 4))
        split = b.cursor
        left = b.add_conv2d("left", 8, kernel=1, input_id=split)
        right = b.add_conv2d("right", 8, kernel=3, input_id=split)  # shrinks to 2x2
        with pytest.raises(ValueError):
            b.add_concat("cat", [left, right])

    def test_conv_bn_relu_compound(self):
        b = GraphBuilder("m", (3, 16, 16))
        b.add_conv_bn_relu("block", 8, kernel=3, padding=1)
        graph = b.finish()
        names = [s.name for s in graph.specs()]
        assert "block.conv" in names and "block.bn" in names and "block.relu" in names
        # Conv inside the compound has no bias (BN provides the shift).
        conv = next(s for s in graph.specs() if s.name == "block.conv")
        assert conv.params == 3 * 8 * 9

    def test_set_cursor_for_branching(self):
        b = GraphBuilder("m", (4, 4, 4))
        split = b.cursor
        b.add_conv2d("a", 4, kernel=1)
        b.set_cursor(split)
        b.add_conv2d("b", 4, kernel=1)
        assert b.graph.out_degree(split) == 2

    def test_set_cursor_unknown_layer_raises(self):
        b = GraphBuilder("m", (4, 4, 4))
        with pytest.raises(KeyError):
            b.set_cursor(1234)
