"""Unit and property tests for the model-graph representation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import GraphValidationError, LayerSpec, ModelGraph


def make_spec(name="layer", op="conv2d", flops=100.0, params=10, in_elems=8, out_elems=8):
    return LayerSpec(
        name=name,
        op=op,
        flops_per_sample=flops,
        params=params,
        input_elems_per_sample=in_elems,
        output_elems_per_sample=out_elems,
    )


class TestLayerSpec:
    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            make_spec(flops=-1.0)

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            make_spec(params=-1)

    def test_rejects_negative_activation_sizes(self):
        with pytest.raises(ValueError):
            make_spec(in_elems=-1)

    def test_has_weights(self):
        assert make_spec(params=5).has_weights
        assert not make_spec(params=0).has_weights

    def test_total_flops_includes_backward(self):
        spec = make_spec(flops=100.0)
        assert spec.total_flops_per_sample() == pytest.approx(300.0)

    def test_with_name_preserves_other_fields(self):
        spec = make_spec(name="a")
        renamed = spec.with_name("b")
        assert renamed.name == "b"
        assert renamed.flops_per_sample == spec.flops_per_sample


class TestModelGraphChain:
    def build_chain(self, n=4):
        g = ModelGraph("chain")
        prev = g.add_layer(make_spec(name="input", op="input", flops=0, params=0))
        for i in range(n):
            prev = g.add_layer(make_spec(name=f"l{i}"), inputs=[prev])
        return g

    def test_chain_is_valid(self):
        g = self.build_chain()
        g.validate()
        assert g.is_chain()
        assert len(g) == 5

    def test_source_and_sink(self):
        g = self.build_chain()
        assert g.source() == 0
        assert g.sink() == 4

    def test_topological_order_is_monotone_for_chain(self):
        g = self.build_chain()
        assert g.topological_order() == [0, 1, 2, 3, 4]

    def test_as_chain_returns_all_layers(self):
        g = self.build_chain()
        assert g.as_chain() == g.topological_order()

    def test_predecessors_successors(self):
        g = self.build_chain()
        assert g.predecessors(2) == [1]
        assert g.successors(2) == [3]
        assert g.in_degree(0) == 0
        assert g.out_degree(4) == 0

    def test_aggregates(self):
        g = self.build_chain(3)
        assert g.total_params() == 30
        assert g.total_flops_per_sample() == pytest.approx(300.0)
        assert g.num_operator_layers() == 3
        assert g.num_weight_layers() == 3

    def test_unknown_input_rejected(self):
        g = ModelGraph("bad")
        g.add_layer(make_spec(name="input", op="input"))
        with pytest.raises(GraphValidationError):
            g.add_layer(make_spec(name="l0"), inputs=[99])


class TestModelGraphBranching:
    def build_diamond(self):
        g = ModelGraph("diamond")
        a = g.add_layer(make_spec(name="input", op="input", params=0, flops=0))
        b = g.add_layer(make_spec(name="split"), inputs=[a])
        c = g.add_layer(make_spec(name="left"), inputs=[b])
        d = g.add_layer(make_spec(name="right"), inputs=[b])
        e = g.add_layer(make_spec(name="join", op="concat", params=0), inputs=[c, d])
        return g, (a, b, c, d, e)

    def test_branch_and_join_detection(self):
        g, (a, b, c, d, e) = self.build_diamond()
        g.validate()
        assert not g.is_chain()
        assert g.branch_layers() == [b]
        assert g.join_layers() == [e]

    def test_as_chain_raises_for_branching_graph(self):
        g, _ = self.build_diamond()
        with pytest.raises(GraphValidationError):
            g.as_chain()

    def test_subgraph_between_covers_both_branches(self):
        g, (a, b, c, d, e) = self.build_diamond()
        assert set(g.subgraph_between(b, e)) == {b, c, d, e}
        assert g.subgraph_between(c, c) == [c]

    def test_duplicate_names_rejected(self):
        g = ModelGraph("dupe")
        a = g.add_layer(make_spec(name="input", op="input"))
        g.add_layer(make_spec(name="x"), inputs=[a])
        g.add_layer(make_spec(name="x"), inputs=[a + 1])
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            ModelGraph("empty").validate()

    def test_disconnected_graph_rejected(self):
        g = ModelGraph("disc")
        g.add_layer(make_spec(name="a", op="input"))
        g.add_layer(make_spec(name="b", op="input"))
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_multi_sink_rejected(self):
        g = ModelGraph("multisink")
        a = g.add_layer(make_spec(name="input", op="input"))
        g.add_layer(make_spec(name="s1"), inputs=[a])
        g.add_layer(make_spec(name="s2"), inputs=[a])
        with pytest.raises(GraphValidationError):
            g.validate()


class TestGraphProperties:
    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_random_chain_topological_order_is_complete(self, length):
        g = ModelGraph("prop")
        prev = g.add_layer(make_spec(name="input", op="input"))
        for i in range(length):
            prev = g.add_layer(make_spec(name=f"l{i}"), inputs=[prev])
        order = g.topological_order()
        assert len(order) == length + 1
        assert set(order) == set(range(length + 1))
        # Every edge points forward in the order.
        position = {lid: i for i, lid in enumerate(order)}
        for a, b in g.edges():
            assert position[a] < position[b]

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=20
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_total_params_is_sum_of_layer_params(self, params_list):
        g = ModelGraph("prop2")
        prev = g.add_layer(make_spec(name="input", op="input", params=0))
        for i, p in enumerate(params_list):
            prev = g.add_layer(make_spec(name=f"l{i}", params=p), inputs=[prev])
        assert g.total_params() == sum(params_list)
