"""Engine snapshot/restore and the event total-order audit.

Crash safety rests on two properties this file pins down:

* the event heap's ``(time, seq)`` ordering is a *strict total order*, so
  serializing the heap in sorted order and rebuilding it elsewhere replays
  the exact same pop sequence (ties included); and
* :class:`~repro.sched.snapshot.EngineSnapshot` taken at *any* event
  boundary restores into a fresh engine — same process or a brand new
  one — whose continued run is ``result_fingerprint``-identical to the
  uninterrupted run.
"""

import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.profiler.gpu_spec import A100_40GB, V100_32GB
from repro.sched import (
    ClusterFleet,
    ClusterScheduler,
    EngineSnapshot,
    EventKind,
    EventQueue,
    GpuPoolSpec,
    SchedulerEngine,
    inject_failures,
    synthetic_trace,
)
from repro.sched.events import Event
from repro.serve.replay import result_fingerprint

# ---------------------------------------------------------------------------
# Workload fixtures: one homogeneous sched_sim-class config and one
# heterogeneous fleet with injected failures.  Small enough that the
# hypothesis property test can re-run the suffix per example.
# ---------------------------------------------------------------------------


def _mixed_fleet():
    return ClusterFleet(
        (
            GpuPoolSpec("a100", A100_40GB, 16, 4),
            GpuPoolSpec("v100", V100_32GB, 16, 4),
        )
    )


_CONFIGS = {
    "homogeneous": {
        "fleet": lambda: 32,
        "policy": "collocation",
        "num_jobs": 18,
        "seed": 11,
        "failures": 0,
    },
    "hetero-failures": {
        "fleet": _mixed_fleet,
        "policy": "collocation",
        "num_jobs": 14,
        "seed": 7,
        "failures": 3,
    },
}


def _build_engine(config):
    scheduler = ClusterScheduler(config["fleet"]())
    return SchedulerEngine(scheduler, config["policy"])


def _load_engine(config):
    """Engine with the config's jobs and failure schedule queued, clock at 0."""
    engine = _build_engine(config)
    trace = sorted(
        synthetic_trace(config["num_jobs"], seed=config["seed"]),
        key=lambda job: job.arrival_time,
    )
    for job in trace:
        engine.add_job(job)
    if config["failures"]:
        engine.add_failures(
            inject_failures(
                engine.scheduler.fleet, config["failures"], seed=config["seed"]
            )
        )
    return engine


@lru_cache(maxsize=None)
def _baseline(name):
    """(fingerprint, total_steps) of the uninterrupted run for one config."""
    engine = _load_engine(_CONFIGS[name])
    steps = engine.drain()
    return result_fingerprint(engine.result()), steps


def _fingerprint_after_cut(name, cut):
    """Run ``cut`` steps, snapshot, restore into a fresh engine, finish there."""
    config = _CONFIGS[name]
    source = _load_engine(config)
    for _ in range(cut):
        source.step()
    # Round-trip through canonical JSON: the persisted form must carry
    # everything the in-memory object does.
    snapshot = EngineSnapshot.from_json(source.snapshot().to_json())
    target = _build_engine(config)
    target.restore(snapshot)
    target.drain()
    return result_fingerprint(target.result())


# ---------------------------------------------------------------------------
# Event total-order audit
# ---------------------------------------------------------------------------


class TestEventTotalOrder:
    def test_lt_orders_by_time_then_seq(self):
        early = Event(1.0, 5, EventKind.JOB_ARRIVAL, "a")
        late = Event(2.0, 1, EventKind.JOB_ARRIVAL, "b")
        assert early < late and not late < early
        tied_first = Event(2.0, 1, EventKind.JOB_FINISH, "c")
        tied_second = Event(2.0, 2, EventKind.JOB_ARRIVAL, "d")
        assert tied_first < tied_second and not tied_second < tied_first

    def test_lt_is_a_strict_total_order(self):
        # Within one queue seq is unique, so for any two distinct events
        # exactly one of a<b, b<a holds — no ties left to break arbitrarily.
        times = [3.0, 1.0, 2.0, 1.0, 3.0, 1.0, 2.0]
        events = [
            Event(time, seq, EventKind.JOB_ARRIVAL, f"job-{seq}")
            for seq, time in enumerate(times)
        ]
        for a in events:
            assert not a < a
            for b in events:
                if a is b:
                    continue
                assert (a < b) != (b < a)
                for c in events:
                    if a < b and b < c:
                        assert a < c

    def test_heap_pop_order_matches_sorted_order(self):
        queue = EventQueue()
        arrivals = [2.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.5, 3.0]
        for index, time in enumerate(arrivals):
            queue.push(time, EventKind.JOB_ARRIVAL, f"job-{index}")
        mirror = sorted(
            Event(time, seq, EventKind.JOB_ARRIVAL, f"job-{seq}")
            for seq, time in enumerate(arrivals)
        )
        popped = [queue.pop() for _ in range(len(arrivals))]
        assert [(e.time, e.seq) for e in popped] == [
            (e.time, e.seq) for e in mirror
        ]
        # Strictly increasing (time, seq): the pop sequence is reproducible.
        keys = [(e.time, e.seq) for e in popped]
        assert all(a < b for a, b in zip(keys, keys[1:]))

    def test_exact_time_ties_resolve_in_push_order(self):
        queue = EventQueue()
        for name in ("first", "second", "third"):
            queue.push(7.0, EventKind.JOB_ARRIVAL, name)
        assert [queue.pop().job_name for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    @given(times=st.lists(st.sampled_from([0.0, 1.0, 1.5, 2.0]), min_size=1, max_size=24))
    @settings(max_examples=50, deadline=None)
    def test_heap_order_equals_sorted_order_property(self, times):
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.push(time, EventKind.JOB_ARRIVAL, f"job-{index}")
        popped = [queue.pop() for _ in range(len(times))]
        assert popped == sorted(popped)


# ---------------------------------------------------------------------------
# Snapshot/restore parity
# ---------------------------------------------------------------------------


class TestEngineSnapshotParity:
    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    def test_restore_at_fixed_cuts_matches_uninterrupted_run(self, name):
        baseline, total = _baseline(name)
        for cut in (0, 1, total // 3, total // 2, total - 1, total):
            assert _fingerprint_after_cut(name, cut) == baseline, (
                f"divergence after restoring at event {cut}/{total}"
            )

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    def test_capture_is_read_only(self, name):
        baseline, total = _baseline(name)
        engine = _load_engine(_CONFIGS[name])
        for step in range(total):
            if step % 5 == 0:
                engine.snapshot()
            engine.step()
        assert result_fingerprint(engine.result()) == baseline

    def test_snapshot_fingerprint_is_stable_and_content_addressed(self):
        config = _CONFIGS["homogeneous"]
        engine = _load_engine(config)
        for _ in range(9):
            engine.step()
        first = engine.snapshot()
        second = engine.snapshot()
        assert first.fingerprint() == second.fingerprint()
        assert first.to_json() == second.to_json()
        engine.step()
        assert engine.snapshot().fingerprint() != first.fingerprint()

    def test_inspection_accessors(self):
        config = _CONFIGS["homogeneous"]
        engine = _load_engine(config)
        for _ in range(6):
            engine.step()
        snapshot = engine.snapshot()
        assert snapshot.clock == engine.clock
        assert snapshot.events_processed == 6
        assert snapshot.events_pending == len(engine.queue)
        assert snapshot.job_names() == sorted(engine.states)
        some_job = snapshot.job_names()[0]
        assert snapshot.job_status(some_job) == engine.states[some_job].status
        assert snapshot.job_status("no-such-job") is None

    @pytest.mark.parametrize("name", sorted(_CONFIGS))
    @given(cut=st.integers(min_value=0, max_value=10_000))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_restore_at_random_cut_matches_uninterrupted_run(self, name, cut):
        baseline, total = _baseline(name)
        assert _fingerprint_after_cut(name, cut % (total + 1)) == baseline


_SUBPROCESS_RESTORE_SCRIPT = """
import sys

from repro.sched import ClusterScheduler, EngineSnapshot, SchedulerEngine
from repro.serve.replay import result_fingerprint

snapshot = EngineSnapshot.from_json(open(sys.argv[1]).read())
engine = SchedulerEngine(ClusterScheduler(int(sys.argv[2])), sys.argv[3])
engine.restore(snapshot)
engine.drain()
print(result_fingerprint(engine.result()))
"""


class TestCrossProcessRestore:
    def test_fresh_process_restore_matches_uninterrupted_run(
        self, tmp_path, monkeypatch
    ):
        # Persist a mid-run snapshot, then finish the run in a brand new
        # interpreter: canonical JSON must carry the complete run state.
        name = "homogeneous"
        config = _CONFIGS[name]
        baseline, total = _baseline(name)
        engine = _load_engine(config)
        for _ in range(total // 2):
            engine.step()
        snapshot_path = tmp_path / "engine.json"
        snapshot_path.write_text(engine.snapshot().to_json())

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        monkeypatch.setenv("PYTHONPATH", src_dir)
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _SUBPROCESS_RESTORE_SCRIPT,
                str(snapshot_path),
                str(config["fleet"]()),
                config["policy"],
            ],
            capture_output=True,
            text=True,
            timeout=120,
            check=True,
        )
        assert proc.stdout.strip() == baseline


# ---------------------------------------------------------------------------
# Guard rails: mismatched targets and corrupt payloads are rejected loudly
# ---------------------------------------------------------------------------


class TestSnapshotGuards:
    def _snapshot(self, name="homogeneous", steps=8):
        engine = _load_engine(_CONFIGS[name])
        for _ in range(steps):
            engine.step()
        return engine.snapshot()

    def test_restore_requires_a_fresh_engine(self):
        snapshot = self._snapshot()
        used = _load_engine(_CONFIGS["homogeneous"])
        used.step()
        with pytest.raises(ValueError, match="fresh engine"):
            used.restore(snapshot)

    def test_restore_rejects_policy_mismatch(self):
        snapshot = self._snapshot()
        engine = SchedulerEngine(ClusterScheduler(32), "fifo")
        with pytest.raises(ValueError, match="policy"):
            engine.restore(snapshot)

    def test_restore_rejects_fleet_mismatch(self):
        snapshot = self._snapshot()
        engine = SchedulerEngine(ClusterScheduler(16), "collocation")
        with pytest.raises(ValueError, match="fleet"):
            engine.restore(snapshot)

    def test_restore_rejects_profiler_drift(self):
        # A tampered iso_iter_time stands in for "captured under a different
        # planner/profiler configuration" — the restore recomputes and diffs.
        snapshot = self._snapshot()
        snapshot.payload["jobs"][0]["iso_iter_time"] *= 2.0
        engine = _build_engine(_CONFIGS["homogeneous"])
        with pytest.raises(ValueError, match="iso_iter_time"):
            engine.restore(snapshot)

    def test_apply_rejects_schema_mismatch_with_both_versions_named(self):
        # A foreign-schema payload must fail up front with both versions in
        # the message — not as a KeyError deep inside state application.
        snapshot = self._snapshot()
        snapshot.payload["schema"] = 99
        engine = _build_engine(_CONFIGS["homogeneous"])
        with pytest.raises(ValueError, match=r"schema 99.*applies schema 1"):
            engine.restore(snapshot)

    def test_from_json_rejects_wrong_schema_and_shape(self):
        snapshot = self._snapshot()
        doc = snapshot.to_json()
        with pytest.raises(ValueError, match="schema"):
            EngineSnapshot.from_json(doc.replace('"schema":1', '"schema":99', 1))
        with pytest.raises(ValueError, match="JSON object"):
            EngineSnapshot.from_json("[1, 2, 3]")
