"""Tests for the scaling-strategy analysis (Section 2 substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import vgg11
from repro.network import get_fabric
from repro.profiler import LayerProfiler
from repro.scaling import (
    BatchOptimalScaling,
    IterationTimeModel,
    SampleEfficiencyModel,
    ScalingAnalysis,
    StrongScaling,
    TimeToAccuracyModel,
    VGG11_ERROR_035,
    WeakScaling,
    default_batch_candidates,
)


class TestSampleEfficiency:
    def setup_method(self):
        self.model = SampleEfficiencyModel(steps_min=1000, critical_batch=512)

    def test_steps_decrease_with_batch_size(self):
        assert self.model.steps_to_accuracy(64) > self.model.steps_to_accuracy(128)

    def test_steps_never_below_minimum(self):
        assert self.model.steps_to_accuracy(1e9) >= self.model.steps_min

    def test_near_perfect_scaling_below_critical_batch(self):
        s1 = self.model.steps_to_accuracy(8)
        s2 = self.model.steps_to_accuracy(16)
        assert s1 / s2 == pytest.approx(2.0, rel=0.05)

    def test_diminishing_returns_above_critical_batch(self):
        s1 = self.model.steps_to_accuracy(8 * self.model.critical_batch)
        s2 = self.model.steps_to_accuracy(16 * self.model.critical_batch)
        assert s1 / s2 < 1.1

    def test_total_samples_grow_beyond_critical_batch(self):
        small = self.model.samples_to_accuracy(self.model.critical_batch)
        large = self.model.samples_to_accuracy(8 * self.model.critical_batch)
        assert large > 2 * small

    def test_relative_sample_efficiency_below_one_for_larger_batches(self):
        eff = self.model.relative_sample_efficiency(4096, 256)
        assert eff < 1.0

    def test_useful_speedup_limit(self):
        limit = self.model.useful_speedup_limit(256)
        assert limit == pytest.approx(self.model.steps_to_accuracy(256) / 1000)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SampleEfficiencyModel(steps_min=0, critical_batch=512)
        with pytest.raises(ValueError):
            self.model.steps_to_accuracy(0)

    @given(batch=st.floats(min_value=1, max_value=1e7))
    @settings(max_examples=50, deadline=None)
    def test_steps_monotone_nonincreasing(self, batch):
        assert self.model.steps_to_accuracy(batch) >= self.model.steps_to_accuracy(
            batch * 2
        )


class TestIterationTimeModel:
    def setup_method(self):
        self.model = IterationTimeModel(vgg11(), get_fabric("nvswitch"), LayerProfiler())

    def test_iteration_has_compute_and_sync(self):
        it = self.model.iteration(256, 8)
        assert it.compute_time > 0
        assert it.sync_time > 0
        assert it.total_time == pytest.approx(it.compute_time + it.sync_time)
        assert it.per_gpu_batch == 32

    def test_single_gpu_has_no_sync(self):
        assert self.model.iteration(256, 1).sync_time == 0.0

    def test_more_gpus_reduce_compute_time(self):
        assert (
            self.model.iteration(256, 32).compute_time
            < self.model.iteration(256, 2).compute_time
        )

    def test_gpus_capped_at_global_batch(self):
        it = self.model.iteration(16, 64)
        assert it.num_gpus == 16
        assert it.per_gpu_batch == 1


class TestTimeToAccuracy:
    def setup_method(self):
        self.tta = TimeToAccuracyModel(
            vgg11(), get_fabric("nvswitch"), VGG11_ERROR_035, LayerProfiler()
        )

    def test_more_gpus_reduce_tta_at_fixed_batch(self):
        assert self.tta.time_to_accuracy(256, 16) < self.tta.time_to_accuracy(256, 1)

    def test_speedup_of_reference_config_is_one(self):
        assert self.tta.speedup(256, 1, reference_batch=256) == pytest.approx(1.0)

    def test_throughput_positive(self):
        assert self.tta.training_throughput(256, 8) > 0


class TestStrategies:
    def setup_method(self):
        self.analysis = ScalingAnalysis(
            vgg11(),
            get_fabric("1tbps"),
            VGG11_ERROR_035,
            gpu_counts=(1, 4, 16, 64, 256),
            reference_batch=256,
        )

    def test_weak_scaling_batch_grows_with_cluster(self):
        strategy = WeakScaling(per_gpu_batch_size=256)
        assert strategy.global_batch(64, self.analysis) == 256 * 64

    def test_strong_scaling_batch_is_constant(self):
        strategy = StrongScaling(global_batch_size=256)
        assert strategy.global_batch(64, self.analysis) == 256

    def test_default_batch_candidates_are_powers_of_two_multiples(self):
        candidates = default_batch_candidates(256, 256)
        assert candidates[0] == 256
        assert all(b % 256 == 0 for b in candidates)
        assert all(b2 == 2 * b1 for b1, b2 in zip(candidates, candidates[1:]))

    def test_speedup_at_one_gpu_is_one(self):
        curves = self.analysis.speedup_curves([WeakScaling(256), StrongScaling(256)])
        assert curves["weak"][0].speedup == pytest.approx(1.0)
        assert curves["strong"][0].speedup == pytest.approx(1.0)

    def test_batch_optimal_dominates_fixed_strategies(self):
        curves = self.analysis.speedup_curves(
            [WeakScaling(256), StrongScaling(256), BatchOptimalScaling()]
        )
        for weak, strong, opt in zip(
            curves["weak"], curves["strong"], curves["batch-optimal"]
        ):
            assert opt.speedup >= max(weak.speedup, strong.speedup) - 1e-9

    def test_weak_scaling_saturates(self):
        curves = self.analysis.speedup_curves([WeakScaling(256)])
        speedups = [p.speedup for p in curves["weak"]]
        assert speedups[-1] < 0.15 * 256  # nowhere near linear at 256 GPUs

    def test_batch_optimal_per_gpu_batch_decreases_with_scale(self):
        batches = self.analysis.batch_optimal_per_gpu_batches()
        ordered = [batches[g] for g in sorted(batches)]
        assert all(b2 <= b1 for b1, b2 in zip(ordered, ordered[1:]))
        assert ordered[-1] < ordered[0]

    def test_evaluate_point_structure(self):
        point = self.analysis.evaluate_point(8, 256)
        assert point.per_gpu_batch == 32
        assert point.time_to_accuracy > 0
        assert point.steps_to_accuracy == pytest.approx(
            VGG11_ERROR_035.steps_to_accuracy(256)
        )
