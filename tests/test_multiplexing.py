"""Tests for the GPU multiplexing layer (config, slowdown loop, collocation)."""

import pytest

from repro.core.multiplexing import (
    GPUCollocationRunner,
    MultiplexConfig,
    SlowdownMonitor,
    figure11_stages,
    pairwise_collocation_matrix,
)
from repro.models import vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler


class TestMultiplexConfig:
    def test_defaults_enable_all_protections(self):
        config = MultiplexConfig()
        assert config.use_cuda_graphs
        assert config.use_stream_priorities
        assert config.slowdown_feedback
        assert config.bg_outstanding_ops is not None

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MultiplexConfig(bg_batch_size=0)
        with pytest.raises(ValueError):
            MultiplexConfig(slowdown_threshold=0.5)

    def test_with_overrides(self):
        config = MultiplexConfig().with_overrides(bg_batch_size=8)
        assert config.bg_batch_size == 8
        assert config.use_cuda_graphs  # unchanged

    def test_figure11_stages_are_cumulative(self):
        stages = figure11_stages()
        labels = [label for label, _ in stages]
        assert labels[0] == "VGG BP"
        assert labels[-1] == "+ Reducing BE Batch Size"
        assert len(stages) == 7
        configs = dict(stages)
        assert not configs["VGG BP"].use_cuda_graphs
        assert configs["+ Graph"].use_cuda_graphs
        assert not configs["+ Graph"].collocate_background
        assert configs["+ Naive Collocation"].collocate_background
        assert not configs["+ Naive Collocation"].use_stream_priorities
        assert configs["+ Stream Priorities"].use_stream_priorities
        assert configs["+ Stream Priorities"].bg_outstanding_ops is None
        assert configs["+ Launch Pacing"].bg_outstanding_ops is not None
        assert configs["+ Slowdown Feedback Loop"].slowdown_feedback
        assert (
            configs["+ Reducing BE Batch Size"].bg_batch_size
            < configs["+ Slowdown Feedback Loop"].bg_batch_size
        )


class TestSlowdownMonitor:
    def test_flags_operators_above_threshold(self):
        monitor = SlowdownMonitor(threshold=1.5)
        monitor.observe_durations(
            isolated={"allreduce": 1.0, "conv": 2.0},
            collocated={"allreduce": 2.4, "conv": 2.1},
        )
        assert monitor.sensitive_operators() == ["allreduce"]
        assert monitor.slowdown_of("allreduce") == pytest.approx(2.4)
        assert monitor.slowdown_of("conv") == pytest.approx(1.05)
        assert monitor.slowdown_of("unknown") == 1.0
        assert monitor.worst().name == "allreduce"

    def test_empty_monitor(self):
        monitor = SlowdownMonitor()
        assert monitor.sensitive_operators() == []
        assert monitor.worst() is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SlowdownMonitor(threshold=0.9)


@pytest.fixture(scope="module")
def runner():
    return GPUCollocationRunner(LayerProfiler(), get_fabric("nvswitch"), sim_time=0.05)


@pytest.fixture(scope="module")
def vgg():
    return vgg16()


class TestCollocationRunner:
    def test_invalid_sim_time(self):
        with pytest.raises(ValueError):
            GPUCollocationRunner(sim_time=0.0)

    def test_isolated_scenario_has_no_background(self, runner, vgg):
        config = MultiplexConfig(collocate_background=False)
        result = runner.run_scenario(vgg, 4, vgg, config, sync_gpus=8)
        assert result.bg_throughput == 0.0
        assert result.fg_qos == pytest.approx(1.0)
        assert result.fg_slowdown == pytest.approx(1.0)

    def test_collocation_adds_background_at_bounded_fg_cost(self, runner, vgg):
        config = MultiplexConfig(bg_batch_size=4)
        result = runner.run_scenario(vgg, 4, vgg, config, sync_gpus=8)
        assert result.bg_throughput > 0.0
        assert 0.5 < result.fg_qos <= 1.0
        assert result.total_throughput > result.fg_throughput

    def test_background_only_throughput_positive(self, runner, vgg):
        assert runner.background_only_throughput(vgg, MultiplexConfig()) > 0

    def test_mechanism_ablation_shape(self, runner, vgg):
        results = runner.mechanism_ablation(vgg, 4, vgg, sync_gpus=8)
        assert [r.label for r in results] == [l for l, _ in figure11_stages()]
        naive = results[2]
        final = results[-1]
        assert naive.fg_qos < final.fg_qos
        assert final.bg_throughput > 0

    def test_measure_slowdowns_flags_allreduce(self, runner, vgg):
        monitor = runner.measure_slowdowns(
            vgg, 4, vgg, MultiplexConfig(bg_batch_size=16), sync_gpus=8
        )
        worst = monitor.worst()
        assert worst is not None
        assert worst.slowdown > 1.0
        # The communication operators should be among the most sensitive.
        sensitive = monitor.sensitive_operators()
        assert any("allreduce" in name for name in sensitive) or worst.slowdown < 1.5


class TestPairwiseCollocation:
    def test_matrix_covers_all_pairs_and_is_bounded(self):
        specs = [("short", 1e-5, 1.0), ("long", 2e-3, 1.0)]
        cells = pairwise_collocation_matrix(specs, sim_time=0.05)
        assert len(cells) == 4
        for cell in cells:
            assert 0.0 <= cell.relative_throughput <= 1.0

    def test_short_hp_suffers_from_long_lp(self):
        specs = [("short", 1e-5, 1.0), ("long", 2e-3, 1.0)]
        cells = {
            (c.high_priority_label, c.low_priority_label): c.relative_throughput
            for c in pairwise_collocation_matrix(specs, sim_time=0.05)
        }
        assert cells[("short", "long")] < cells[("long", "short")]
