"""Tests for the GPU device simulator (kernels, queues, scheduling)."""

import pytest

from repro.gpu import (
    DeviceConfig,
    GPUSimulator,
    Kernel,
    LaunchOp,
    TaskWorkload,
    TrainingTaskBuilder,
    split_into_graphs,
    synthetic_workload,
)
from repro.models import vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler


class TestKernelTypes:
    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            Kernel("bad", duration=-1.0, occupancy=0.5)
        with pytest.raises(ValueError):
            Kernel("bad", duration=1.0, occupancy=0.0)
        with pytest.raises(ValueError):
            Kernel("bad", duration=1.0, occupancy=0.5, sensitive_slowdown=0.5)

    def test_launch_op_requires_kernels(self):
        with pytest.raises(ValueError):
            LaunchOp(kernels=())

    def test_launch_op_duration(self):
        k = Kernel("k", 1e-3, 0.5)
        op = LaunchOp(kernels=(k, k, k))
        assert op.duration == pytest.approx(3e-3)
        assert op.num_kernels == 3

    def test_split_into_graphs(self):
        kernels = [Kernel(f"k{i}", 1e-4, 0.5) for i in range(10)]
        ops = split_into_graphs(kernels, 4)
        assert [op.num_kernels for op in ops] == [4, 4, 2]
        assert all(op.is_graph for op in ops)
        single = split_into_graphs(kernels, None)
        assert len(single) == 1 and single[0].num_kernels == 10
        assert split_into_graphs([], 4) == []
        with pytest.raises(ValueError):
            split_into_graphs(kernels, 0)

    def test_task_workload_validation(self):
        op = LaunchOp(kernels=(Kernel("k", 1e-3, 0.5),))
        with pytest.raises(ValueError):
            TaskWorkload("t", [], samples_per_iteration=1)
        with pytest.raises(ValueError):
            TaskWorkload("t", [op], samples_per_iteration=0)
        with pytest.raises(ValueError):
            TaskWorkload("t", [op], samples_per_iteration=1, max_outstanding_ops=0)
        wl = TaskWorkload("t", [op, op], samples_per_iteration=4)
        assert wl.iteration_device_time == pytest.approx(2e-3)
        assert wl.num_kernels_per_iteration == 2


class TestGPUSimulator:
    def test_requires_at_least_one_task(self):
        with pytest.raises(ValueError):
            GPUSimulator([])

    def test_duplicate_task_ids_rejected(self):
        wl = synthetic_workload("t", 1e-4, 0.5)
        with pytest.raises(ValueError):
            GPUSimulator([wl, wl])

    def test_invalid_sim_time_rejected(self):
        wl = synthetic_workload("t", 1e-4, 0.5)
        with pytest.raises(ValueError):
            GPUSimulator([wl]).run(0.0)

    def test_single_task_throughput_matches_kernel_rate(self):
        """One task of back-to-back 1 ms kernels completes ~1000 kernels/s."""
        wl = synthetic_workload("t", 1e-3, 1.0, kernels_per_iteration=10)
        result = GPUSimulator([wl]).run(0.5)
        stats = result.task("t")
        assert stats.kernels_completed == pytest.approx(500, rel=0.1)
        # Samples == kernels for the synthetic workload.
        assert stats.throughput_samples_per_s == pytest.approx(1000, rel=0.1)

    def test_device_utilization_bounds(self):
        wl = synthetic_workload("t", 1e-3, 0.5, kernels_per_iteration=10)
        result = GPUSimulator([wl]).run(0.2)
        assert 0.0 < result.device_utilization <= 1.0

    def test_low_occupancy_tasks_share_the_device(self):
        """Two half-occupancy tasks together exceed one task's throughput."""
        a = synthetic_workload("a", 1e-3, 0.4, priority=1, max_outstanding_ops=4)
        b = synthetic_workload("b", 1e-3, 0.4, priority=0, max_outstanding_ops=4)
        alone = GPUSimulator([synthetic_workload("a", 1e-3, 0.4, max_outstanding_ops=4)]).run(0.2)
        both = GPUSimulator([a, b]).run(0.2)
        total_both = sum(t.throughput_samples_per_s for t in both.tasks.values())
        assert total_both > 1.3 * alone.throughput("a")

    def test_full_occupancy_tasks_serialize(self):
        a = synthetic_workload("a", 1e-3, 1.0, priority=1, max_outstanding_ops=4)
        b = synthetic_workload("b", 1e-3, 1.0, priority=0, max_outstanding_ops=4)
        result = GPUSimulator([a, b]).run(0.2)
        total = sum(t.throughput_samples_per_s for t in result.tasks.values())
        # The device can't do more than ~1000 kernel-ms per second in total.
        assert total < 1100

    def test_priorities_protect_high_priority_task(self):
        hp = synthetic_workload("hp", 1e-4, 1.0, priority=1, max_outstanding_ops=4)
        lp = synthetic_workload("lp", 5e-3, 1.0, priority=0, max_outstanding_ops=4)
        with_prio = GPUSimulator(
            [hp, lp], DeviceConfig(use_stream_priorities=True)
        ).run(0.2)
        without_prio = GPUSimulator(
            [synthetic_workload("hp", 1e-4, 1.0, priority=1, max_outstanding_ops=4),
             synthetic_workload("lp", 5e-3, 1.0, priority=0, max_outstanding_ops=4)],
            DeviceConfig(use_stream_priorities=False),
        ).run(0.2)
        assert with_prio.throughput("hp") > without_prio.throughput("hp")

    def test_non_preemption_hurts_short_high_priority_kernels(self):
        """The Figure 12 effect: short HP kernels wait for long LP kernels."""
        hp_alone = GPUSimulator(
            [synthetic_workload("hp", 1e-5, 1.0, priority=1)]
        ).run(0.1)
        hp = synthetic_workload("hp", 1e-5, 1.0, priority=1)
        lp = synthetic_workload("lp", 5e-3, 1.0, priority=0)
        together = GPUSimulator([hp, lp]).run(0.1)
        assert together.throughput("hp") < 0.6 * hp_alone.throughput("hp")

    def test_sensitive_kernel_slowdown_recorded(self):
        sensitive = TaskWorkload(
            "fg",
            [LaunchOp(kernels=(Kernel("allreduce", 1e-3, 0.15,
                                      interference_sensitive=True),))],
            samples_per_iteration=1,
            priority=1,
        )
        bg = synthetic_workload("bg", 1e-3, 0.5, priority=0, max_outstanding_ops=4)
        result = GPUSimulator([sensitive, bg]).run(0.1)
        observed = result.task("fg").mean_kernel_time("allreduce")
        assert observed > 1.5e-3  # inflated well beyond its isolated 1 ms

    def test_exclusive_sensitive_ops_protects_allreduce(self):
        def build():
            fg = TaskWorkload(
                "fg",
                [LaunchOp(kernels=(Kernel("k", 2e-4, 0.5),)),
                 LaunchOp(kernels=(Kernel("allreduce", 1e-3, 0.15,
                                          interference_sensitive=True),))],
                samples_per_iteration=4,
                priority=1,
            )
            bg = synthetic_workload("bg", 5e-4, 0.5, priority=0, max_outstanding_ops=2)
            return fg, bg

        fg, bg = build()
        unprotected = GPUSimulator(
            [fg, bg], DeviceConfig(exclusive_sensitive_ops=False)
        ).run(0.2)
        fg2, bg2 = build()
        protected = GPUSimulator(
            [fg2, bg2], DeviceConfig(exclusive_sensitive_ops=True)
        ).run(0.2)
        assert (
            protected.task("fg").mean_kernel_time("allreduce")
            <= unprotected.task("fg").mean_kernel_time("allreduce") + 1e-9
        )

    def test_stats_record_iterations_and_busy_time(self):
        wl = synthetic_workload("t", 1e-4, 0.5, kernels_per_iteration=8)
        stats = GPUSimulator([wl]).run(0.05).task("t")
        assert stats.iterations_completed > 0
        assert stats.busy_time > 0
        assert stats.last_iteration_end >= stats.first_iteration_end > 0


class TestTrainingTaskBuilder:
    def setup_method(self):
        self.builder = TrainingTaskBuilder(LayerProfiler(), get_fabric("nvswitch"))
        self.graph = vgg16()

    def test_kernel_counts_match_profiler(self):
        kernels = self.builder.kernels_for_iteration(self.graph, 4, sync_gpus=1)
        profiler = LayerProfiler()
        expected = sum(
            profiler.layer_timing(spec, 4).num_kernels for spec in self.graph.specs()
        )
        assert len(kernels) == expected

    def test_sync_kernels_added_for_distributed_jobs(self):
        local = self.builder.kernels_for_iteration(self.graph, 4, sync_gpus=1)
        distributed = self.builder.kernels_for_iteration(self.graph, 4, sync_gpus=8)
        extra = len(distributed) - len(local)
        assert extra >= 1
        assert all(k.interference_sensitive for k in distributed[-extra:])

    def test_backward_kernels_in_reverse_layer_order(self):
        kernels = self.builder.kernels_for_iteration(self.graph, 4, sync_gpus=1)
        bwd_names = [k.name for k in kernels if ".bwd" in k.name]
        first_layer_bwd = max(
            i for i, name in enumerate(bwd_names) if name.startswith("features.conv1.")
        )
        assert first_layer_bwd == len(bwd_names) - 1

    def test_graphs_reduce_launch_count_and_host_latency(self):
        eager = self.builder.build_task(self.graph, 4, "t", use_cuda_graphs=False)
        graphs = self.builder.build_task(self.graph, 4, "t", use_cuda_graphs=True,
                                         graph_split_size=24)
        assert len(graphs.iteration_ops) < len(eager.iteration_ops)
        assert graphs.iteration_device_time == pytest.approx(
            eager.iteration_device_time, rel=1e-6
        )

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            self.builder.kernels_for_iteration(self.graph, 0)

    def test_synthetic_workload_shape(self):
        wl = synthetic_workload("s", 1e-3, 0.5, kernels_per_iteration=7)
        assert wl.num_kernels_per_iteration == 7
        assert wl.samples_per_iteration == 7
