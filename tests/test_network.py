"""Tests for the communication substrate (fabric, collectives, redistribution)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    NETWORK_PRESETS,
    CollectiveCostModel,
    NetworkFabric,
    RedistributionCostModel,
    get_fabric,
)


class TestFabric:
    def test_transfer_time_is_size_over_bandwidth_plus_delay(self):
        fabric = NetworkFabric("test", bandwidth_bytes_per_s=1e9, propagation_delay=1e-5)
        assert fabric.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_payload_is_free(self):
        fabric = get_fabric("nvswitch")
        assert fabric.transfer_time(0) == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            get_fabric("nvswitch").transfer_time(-1)

    def test_from_bits_per_s(self):
        fabric = NetworkFabric.from_bits_per_s("100G", 100e9)
        assert fabric.bandwidth_bytes_per_s == pytest.approx(12.5e9)
        assert fabric.bandwidth_bits_per_s == pytest.approx(100e9)

    def test_presets_ordering(self):
        assert (
            NETWORK_PRESETS["nvswitch"].bandwidth_bytes_per_s
            > NETWORK_PRESETS["1tbps"].bandwidth_bytes_per_s
            > NETWORK_PRESETS["100gbps"].bandwidth_bytes_per_s
            > NETWORK_PRESETS["10gbps"].bandwidth_bytes_per_s
        )

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            get_fabric("infiniband9000")

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkFabric("bad", bandwidth_bytes_per_s=0)


class TestCollectives:
    def setup_method(self):
        self.model = CollectiveCostModel(get_fabric("nvswitch"))

    def test_single_gpu_allreduce_is_free(self):
        assert self.model.all_reduce_time(1e9, 1) == 0.0
        assert self.model.gradient_sync_time(10_000_000, 1) == 0.0

    def test_allreduce_grows_with_payload(self):
        small = self.model.all_reduce_time(1e6, 8)
        large = self.model.all_reduce_time(1e9, 8)
        assert large > small > 0

    def test_allreduce_bandwidth_term_saturates_with_gpus(self):
        """2(g-1)/g payload: going 8 -> 64 GPUs changes the wire bytes little."""
        t8 = self.model.all_reduce_time(1e9, 8)
        t64 = self.model.all_reduce_time(1e9, 64)
        assert t64 > t8
        assert t64 < 1.5 * t8

    def test_reduce_scatter_is_half_of_allreduce_bandwidth(self):
        rs = self.model.reduce_scatter_time(1e9, 8)
        ar = self.model.all_reduce_time(1e9, 8)
        assert rs < ar
        assert ar == pytest.approx(2 * rs, rel=0.05)

    def test_allgather_equals_reduce_scatter(self):
        assert self.model.all_gather_time(1e8, 8) == self.model.reduce_scatter_time(1e8, 8)

    def test_broadcast_uses_log_hops(self):
        t2 = self.model.broadcast_time(1e8, 2)
        t16 = self.model.broadcast_time(1e8, 16)
        assert t16 == pytest.approx(4 * t2, rel=0.05)

    def test_gradient_sync_bucketing_amortizes_latency(self):
        """Many small layers pay much less latency than many standalone all-reduces."""
        tiny_layer_params = 1000
        n_layers = 200
        bucketed = sum(
            self.model.gradient_sync_time(tiny_layer_params, 8) for _ in range(n_layers)
        )
        unbucketed = n_layers * self.model.all_reduce_time(tiny_layer_params * 2, 8)
        assert bucketed < unbucketed / 10

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            self.model.all_reduce_time(-1, 8)
        with pytest.raises(ValueError):
            self.model.all_reduce_time(1e6, 0)

    @given(
        payload=st.floats(min_value=1.0, max_value=1e10),
        gpus=st.integers(min_value=2, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_allreduce_positive_and_bounded_below_by_wire_time(self, payload, gpus):
        t = self.model.all_reduce_time(payload, gpus)
        wire = 2 * (gpus - 1) / gpus * payload / self.model.fabric.bandwidth_bytes_per_s
        assert t >= wire


class TestRedistribution:
    def setup_method(self):
        self.model = RedistributionCostModel(get_fabric("nvswitch"))

    def test_same_width_is_free(self):
        assert self.model.transition_time(1e9, 8, 8) == 0.0

    def test_zero_bytes_is_free(self):
        assert self.model.transition_time(0, 2, 8) == 0.0

    def test_symmetric_in_direction(self):
        grow = self.model.one_way_time(1e8, 2, 8)
        shrink = self.model.one_way_time(1e8, 8, 2)
        assert grow == pytest.approx(shrink)

    def test_transition_includes_forward_and_backward(self):
        one_way = self.model.one_way_time(1e8, 2, 8)
        assert self.model.transition_time(1e8, 2, 8) == pytest.approx(2 * one_way)

    def test_forward_only_option(self):
        fwd_only = RedistributionCostModel(get_fabric("nvswitch"), include_backward=False)
        assert fwd_only.transition_time(1e8, 2, 8) == pytest.approx(
            fwd_only.one_way_time(1e8, 2, 8)
        )

    def test_bigger_width_change_costs_more(self):
        small_change = self.model.one_way_time(1e9, 8, 4)
        big_change = self.model.one_way_time(1e9, 8, 1)
        assert big_change > small_change

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            self.model.one_way_time(-1, 2, 4)
        with pytest.raises(ValueError):
            self.model.one_way_time(1e6, 0, 4)

    @given(
        payload=st.floats(min_value=1.0, max_value=1e10),
        src=st.integers(min_value=1, max_value=256),
        dst=st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=50, deadline=None)
    def test_one_way_time_nonnegative_and_bounded(self, payload, src, dst):
        t = self.model.one_way_time(payload, src, dst)
        assert t >= 0.0
        # Never worse than pushing the whole payload through one GPU's link.
        fabric = self.model.fabric
        assert t <= payload / fabric.bandwidth_bytes_per_s + fabric.propagation_delay
