"""Tests for the GPU cost-model substrate (specs, kernel model, layer profiler)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import vgg16
from repro.models.graph import LayerSpec
from repro.profiler import (
    A100_40GB,
    A100_80GB,
    V100_32GB,
    GPUSpec,
    KernelCostModel,
    KernelWorkload,
    LayerProfiler,
    get_gpu_spec,
    per_gpu_batch,
)


def conv_spec(flops=1e9, params=1_000_000, elems=100_000):
    return LayerSpec(
        name="conv",
        op="conv2d",
        flops_per_sample=flops,
        params=params,
        input_elems_per_sample=elems,
        output_elems_per_sample=elems,
    )


class TestGPUSpec:
    def test_presets_are_valid(self):
        for spec in (A100_40GB, A100_80GB, V100_32GB):
            assert spec.peak_flops > 0
            assert spec.wave_size == spec.num_sms * spec.blocks_per_sm
            assert spec.ridge_intensity > 10  # modern GPUs are compute-rich

    def test_lookup_by_name(self):
        assert get_gpu_spec("a100") is A100_40GB
        assert get_gpu_spec("V100") is V100_32GB
        with pytest.raises(KeyError):
            get_gpu_spec("b200")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", -1, 1e12, 108, 4, 1e-6, 1e-7, 1e-6, 40e9)

    def test_scaled_override(self):
        doubled = A100_40GB.scaled(memory_bandwidth=A100_40GB.memory_bandwidth * 2)
        assert doubled.memory_bandwidth == 2 * A100_40GB.memory_bandwidth
        assert doubled.peak_flops == A100_40GB.peak_flops


class TestKernelCostModel:
    def setup_method(self):
        self.model = KernelCostModel(A100_40GB)

    def test_more_flops_takes_longer(self):
        small = KernelWorkload(flops=1e9, bytes_moved=1e6, parallel_elems=1e7)
        large = KernelWorkload(flops=4e9, bytes_moved=1e6, parallel_elems=1e7)
        assert self.model.kernel_time(large) > self.model.kernel_time(small)

    def test_fixed_overhead_floors_tiny_kernels(self):
        tiny = KernelWorkload(flops=1.0, bytes_moved=8.0, parallel_elems=1.0)
        assert self.model.kernel_time(tiny) >= A100_40GB.kernel_fixed_overhead

    def test_occupancy_bounds(self):
        tiny = KernelWorkload(flops=1e3, bytes_moved=1e3, parallel_elems=10)
        huge = KernelWorkload(flops=1e12, bytes_moved=1e9, parallel_elems=1e9)
        assert 0 < self.model.compute_occupancy(tiny) < 0.01
        assert 0.5 < self.model.compute_occupancy(huge) <= 1.0

    def test_memory_efficiency_saturates(self):
        streaming = KernelWorkload(flops=0, bytes_moved=100e6, parallel_elems=10)
        assert self.model.memory_efficiency(streaming) == 1.0

    def test_low_occupancy_slows_compute_bound_kernel(self):
        # Same work, but one kernel exposes far less parallelism.
        wide = KernelWorkload(flops=1e10, bytes_moved=1e6, parallel_elems=1e8)
        narrow = KernelWorkload(flops=1e10, bytes_moved=1e6, parallel_elems=1e4)
        assert self.model.kernel_time(narrow) > 2 * self.model.kernel_time(wide)

    def test_multi_kernel_adds_fixed_overheads(self):
        wl = KernelWorkload(flops=1e10, bytes_moved=1e8, parallel_elems=1e8)
        one = self.model.kernel_time(wl, num_kernels=1)
        three = self.model.kernel_time(wl, num_kernels=3)
        assert three >= one + 2 * A100_40GB.kernel_fixed_overhead * 0.99

    def test_achieved_utilization_in_unit_interval(self):
        wl = KernelWorkload(flops=1e9, bytes_moved=1e7, parallel_elems=1e6)
        assert 0.0 < self.model.achieved_utilization(wl) <= 1.0

    def test_launch_overhead_graphs_cheaper(self):
        assert self.model.launch_overhead(True) < self.model.launch_overhead(False)

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            KernelWorkload(flops=-1, bytes_moved=0, parallel_elems=0)

    @given(
        flops=st.floats(min_value=0, max_value=1e13),
        bytes_moved=st.floats(min_value=0, max_value=1e10),
        elems=st.floats(min_value=1, max_value=1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_kernel_time_positive_and_above_ideal(self, flops, bytes_moved, elems):
        wl = KernelWorkload(flops=flops, bytes_moved=bytes_moved, parallel_elems=elems)
        t = self.model.kernel_time(wl)
        assert t > 0
        assert t >= self.model.ideal_time(wl)


class TestPerGPUBatch:
    def test_even_split(self):
        assert per_gpu_batch(32, 8) == 4

    def test_uneven_split_rounds_up(self):
        assert per_gpu_batch(30, 8) == 4

    def test_single_gpu(self):
        assert per_gpu_batch(32, 1) == 32

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            per_gpu_batch(0, 8)
        with pytest.raises(ValueError):
            per_gpu_batch(8, 0)


class TestLayerProfiler:
    def setup_method(self):
        self.profiler = LayerProfiler()

    def test_layer_time_increases_with_batch(self):
        spec = conv_spec()
        t_small = self.profiler.layer_timing(spec, 1).total_time
        t_large = self.profiler.layer_timing(spec, 256).total_time
        assert t_large > t_small

    def test_sublinear_scaling_at_small_batches(self):
        """Halving an already-small batch does not halve the time (Figure 5)."""
        spec = conv_spec(flops=1e8, elems=1e4)
        t4 = self.profiler.layer_timing(spec, 4).total_time
        t2 = self.profiler.layer_timing(spec, 2).total_time
        assert t2 > t4 / 2

    def test_zero_kernel_layers_are_free(self):
        spec = LayerSpec(
            name="flatten", op="flatten", flops_per_sample=0, params=0,
            input_elems_per_sample=10, output_elems_per_sample=10,
            bwd_flops_multiplier=0.0,
        )
        timing = self.profiler.layer_timing(spec, 32)
        assert timing.total_time == 0.0
        assert timing.num_kernels == 0

    def test_comp_uses_ceiling_per_gpu_batch(self):
        spec = conv_spec()
        assert self.profiler.comp(spec, 32, 8) == pytest.approx(
            self.profiler.layer_timing(spec, 4).total_time
        )

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            self.profiler.layer_timing(conv_spec(), 0)

    def test_forward_occupancy_bounds(self):
        occ = self.profiler.forward_occupancy(conv_spec(elems=10), 1)
        assert 0 < occ <= 1.0
        occ_big = self.profiler.forward_occupancy(conv_spec(elems=10_000_000), 64)
        assert occ_big > 0.9

    def test_profile_model_contains_all_layers_and_batches(self):
        graph = vgg16()
        profile = self.profiler.profile_model(graph, [2, 8])
        assert profile.batches == [2, 8]
        for lid in graph.layer_ids():
            assert profile.layer_time(lid, 2) >= 0
        assert profile.iteration_time(8) > profile.iteration_time(2) > 0

    def test_profile_unknown_batch_raises(self):
        graph = vgg16()
        profile = self.profiler.profile_model(graph, [2])
        with pytest.raises(KeyError):
            profile.layer_time(graph.layer_ids()[0], 16)

    def test_iteration_compute_time_monotone_in_batch(self):
        graph = vgg16()
        t8 = self.profiler.iteration_compute_time(graph, 8)
        t64 = self.profiler.iteration_compute_time(graph, 64)
        assert t64 > t8

    def test_memory_footprint_grows_with_batch(self):
        graph = vgg16()
        m1 = self.profiler.memory_footprint(graph, 1)
        m64 = self.profiler.memory_footprint(graph, 64)
        assert m64 > m1
        # Parameters + optimizer state alone exceed 1 GB for VGG-16.
        assert m1 > 1e9

    def test_cuda_graphs_reduce_host_launch_time(self):
        eager = LayerProfiler(use_cuda_graphs=False)
        graphs = LayerProfiler(use_cuda_graphs=True)
        spec = conv_spec()
        assert (
            graphs.layer_timing(spec, 4).host_launch_time
            < eager.layer_timing(spec, 4).host_launch_time
        )
