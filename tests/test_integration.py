"""Integration tests: planner -> JSON plan -> coordinator -> executor -> report.

These exercise the full DeepPool pipeline the way the examples do, checking
the paper's qualitative end-to-end claims on the simulated substrates.
"""

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterExecutor,
    ClusterPartitionBaseline,
    CollocationProfile,
    TrainingJob,
    pareto_frontier,
)
from repro.cluster.throughput import TradeoffPoint
from repro.core.multiplexing import GPUCollocationRunner, MultiplexConfig
from repro.core.planner import BurstParallelPlanner, PlannerConfig, TrainingPlan
from repro.models import build_model, model_entry
from repro.network import get_fabric
from repro.profiler import LayerProfiler, per_gpu_batch

NUM_GPUS = 8


@pytest.fixture(scope="module")
def fabric():
    return get_fabric("nvswitch")


@pytest.fixture(scope="module")
def profiler():
    return LayerProfiler()


@pytest.fixture(scope="module")
def planner(fabric, profiler):
    return BurstParallelPlanner(fabric, profiler, PlannerConfig(amplification_limit=2.0))


class TestEndToEndPipeline:
    def test_plan_submission_roundtrip_and_placement(self, planner):
        """User submits a model; the plan travels as JSON to the coordinator."""
        graph = build_model("vgg16")
        plan = planner.plan(graph, 32, NUM_GPUS)
        submitted = plan.to_json()

        coordinator = ClusterCoordinator(num_gpus=NUM_GPUS)
        runtimes = coordinator.place_plan(submitted)

        restored = TrainingPlan.from_json(submitted)
        assert sum(rt.foreground_busy_time for rt in runtimes) == pytest.approx(
            restored.total_gpu_seconds(), rel=1e-6
        )
        # Burst parallelism leaves reclaimable idle GPU time on the cluster.
        assert coordinator.idle_gpu_seconds(restored.iteration_time) > 0

    def test_calibrated_collocation_improves_cluster_throughput(self, fabric, profiler, planner):
        """The headline Figure 9 claim on one workload, fully wired together."""
        name = "vgg16"
        entry = model_entry(name)
        graph = build_model(name)
        job = TrainingJob(name=name, graph=graph, global_batch=entry.default_global_batch)

        runner = GPUCollocationRunner(profiler, fabric, sim_time=0.05)
        profile = CollocationProfile.calibrate(
            runner,
            graph,
            per_gpu_batch(entry.default_global_batch, NUM_GPUS),
            graph,
            MultiplexConfig(bg_batch_size=4),
            sync_gpus=NUM_GPUS,
        )
        assert profile.fg_slowdown < 2.0
        assert 0.0 < profile.bg_busy_efficiency <= 1.0

        executor = ClusterExecutor(fabric, profiler, planner)
        scenarios = executor.figure9_scenarios(
            job, NUM_GPUS, bg_batch=4, collocation=profile
        )
        dp, bp, col, bg_only = scenarios
        # Cluster throughput improves over single-task data parallelism
        # (the paper reports 1.2 - 2.3x across workloads).
        assert col.total_throughput > 1.2 * dp.total_throughput
        # The foreground keeps most of its burst-parallel throughput.
        assert col.fg_throughput > 0.75 * bp.fg_throughput
        # Reclaimed background throughput cannot exceed the BG-only ceiling.
        assert col.bg_throughput < bg_only.bg_throughput

    def test_bp_col_operating_points_compete_with_partitioning(self, fabric, profiler, planner):
        """Figure 10's qualitative claim for one workload at a few settings."""
        graph = build_model("vgg16")
        job = TrainingJob(name="vgg16", graph=graph, global_batch=32)
        executor = ClusterExecutor(fabric, profiler, planner)
        single = planner.single_gpu_plan(graph, 32)

        bp_points = []
        for amp in (1.5, 4.0):
            plan = planner.plan(graph, 32, NUM_GPUS, amp)
            scenario = executor.execute_plan(
                plan, background=job.background(batch=4),
                collocation=CollocationProfile(),
            )
            bp_points.append(
                TradeoffPoint(
                    label=f"amp={amp}",
                    fg_speedup=single.iteration_time / scenario.fg_iteration_time,
                    cluster_throughput=scenario.total_throughput,
                )
            )

        baseline = ClusterPartitionBaseline(fabric, profiler, planner)
        partition_points = baseline.tradeoff_points(job, job.background(batch=4), NUM_GPUS)

        # The 4-GPU partition is an interior point; some BP+Col operating
        # point should give at least its throughput with a better speedup.
        four = next(p for p in partition_points if p.label == "Partition 4+4")
        frontier = pareto_frontier(bp_points)
        competitive = [
            p for p in frontier if p.cluster_throughput >= four.cluster_throughput
        ]
        assert competitive, "no BP+Col point reaches the 4+4 partition's throughput"
        assert max(p.fg_speedup for p in competitive) > four.fg_speedup

    def test_amplification_limit_trades_speed_for_efficiency(self, planner):
        """The planner's central knob behaves as the paper describes."""
        graph = build_model("vgg16")
        single = planner.single_gpu_plan(graph, 32)
        plans = {
            amp: planner.plan(graph, 32, NUM_GPUS, amp) for amp in (1.25, 2.0, 8.0)
        }
        iteration_times = [plans[a].iteration_time for a in (1.25, 2.0, 8.0)]
        amplifications = [
            plans[a].amplification(single.iteration_time) for a in (1.25, 2.0, 8.0)
        ]
        # Looser limits can only speed up the iteration...
        assert iteration_times[0] >= iteration_times[1] >= iteration_times[2]
        # ...at the price of more aggregate GPU-seconds (lower efficiency).
        assert amplifications[0] <= amplifications[-1] + 1e-9
