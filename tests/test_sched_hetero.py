"""Heterogeneous fleets + failure injection in repro.sched.

Covers the fleet/host modeling, per-pool planner identity (no plan aliasing
across GPU types), type-aware placement (fast pools for foregrounds, slow
pools for backgrounds, cross-pool migration), the failure/checkpoint model,
and the property-style invariants the CI matrix pins: metrics are invariant
to pool enumeration order, and a failure at any time never leaks or
double-frees the GPU pool.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import fleet_fingerprint
from repro.cluster.job import JobKind
from repro.profiler.gpu_spec import A100_40GB, H100_80GB, V100_32GB, get_gpu_spec
from repro.sched import (
    CheckpointModel,
    ClusterFleet,
    ClusterScheduler,
    FleetPool,
    GpuPool,
    GpuPoolSpec,
    NodeFailure,
    TraceJob,
    get_policy,
    inject_failures,
    synthetic_trace,
    validate_failures,
)


def mixed_fleet(a100=8, v100=8, gpus_per_host=4):
    return ClusterFleet(
        (
            GpuPoolSpec("a100", A100_40GB, a100, gpus_per_host),
            GpuPoolSpec("v100", V100_32GB, v100, gpus_per_host),
        )
    )


# ---------------------------------------------------------------------------
# Fleet modeling
# ---------------------------------------------------------------------------

class TestClusterFleet:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterFleet(())
        with pytest.raises(ValueError):
            ClusterFleet(
                (
                    GpuPoolSpec("x", A100_40GB, 4),
                    GpuPoolSpec("x", V100_32GB, 4),
                )
            )
        with pytest.raises(ValueError):
            GpuPoolSpec("x", A100_40GB, 0)
        with pytest.raises(ValueError):
            GpuPoolSpec("x", A100_40GB, 4, gpus_per_host=0)

    def test_gpu_and_host_numbering(self):
        fleet = mixed_fleet(a100=6, v100=4, gpus_per_host=4)
        assert fleet.num_gpus == 10
        # 6 GPUs at 4/host -> 2 hosts (one partial); 4 GPUs -> 1 host.
        assert fleet.num_hosts == 3
        assert list(fleet.gpu_ids_of_pool("a100")) == [0, 1, 2, 3, 4, 5]
        assert list(fleet.gpu_ids_of_pool("v100")) == [6, 7, 8, 9]
        assert fleet.pool_of_gpu(5) == "a100"
        assert fleet.pool_of_gpu(6) == "v100"
        assert fleet.gpus_of_host(0) == (0, 1, 2, 3)
        assert fleet.gpus_of_host(1) == (4, 5)  # partial host
        assert fleet.gpus_of_host(2) == (6, 7, 8, 9)
        assert fleet.host_of_gpu(4) == 1
        assert fleet.pool_of_host(2) == "v100"
        with pytest.raises(ValueError):
            fleet.pool_of_gpu(10)
        with pytest.raises(ValueError):
            fleet.pool_of_host(3)
        with pytest.raises(KeyError):
            fleet.pool("h100")

    def test_speed_order_ignores_declaration_order(self):
        forward = mixed_fleet()
        backward = ClusterFleet(tuple(reversed(forward.pools)))
        assert forward.speed_order == backward.speed_order == ("a100", "v100")
        three = ClusterFleet(
            (
                GpuPoolSpec("v100", V100_32GB, 4),
                GpuPoolSpec("h100", H100_80GB, 4),
                GpuPoolSpec("a100", A100_40GB, 4),
            )
        )
        assert three.speed_order == ("h100", "a100", "v100")

    def test_homogeneous_helper(self):
        fleet = ClusterFleet.homogeneous(8)
        assert fleet.is_homogeneous
        assert fleet.num_gpus == 8
        assert fleet.pools[0].gpu == A100_40GB

    def test_fleet_fingerprint_is_order_invariant(self):
        forward = mixed_fleet()
        backward = ClusterFleet(tuple(reversed(forward.pools)))
        assert fleet_fingerprint(forward) == fleet_fingerprint(backward)
        bigger = mixed_fleet(a100=16)
        assert fleet_fingerprint(forward) != fleet_fingerprint(bigger)


class TestFleetPool:
    def test_take_release_per_pool(self):
        pool = FleetPool(mixed_fleet(a100=4, v100=4))
        assert len(pool) == 8
        taken = pool.take("v100", 2)
        assert taken == [4, 5]  # v100 ids start after the a100 block
        assert pool.free_of("v100") == 2
        assert pool.free_of("a100") == 4
        pool.release(taken)
        assert pool.free_ids() == list(range(8))

    def test_fail_and_recover_host(self):
        fleet = mixed_fleet(a100=4, v100=4, gpus_per_host=4)
        pool = FleetPool(fleet)
        busy = pool.take("a100", 2)  # ids 0, 1 leave the pool
        down = pool.fail_host(0)  # a100 host: ids 0..3
        assert down == (0, 1, 2, 3)
        assert pool.free_of("a100") == 0
        assert pool.down_ids() == [0, 1, 2, 3]
        # The evicted job's GPUs are absorbed, not double-freed.
        pool.release(busy)
        assert pool.free_of("a100") == 0
        with pytest.raises(ValueError):
            pool.fail_host(0)
        pool.recover_host(0)
        assert pool.free_ids() == list(range(8))
        with pytest.raises(ValueError):
            pool.recover_host(0)

    def test_gpu_pool_remove_and_ids(self):
        pool = GpuPool(range(6))
        assert pool.remove([1, 3, 99]) == [1, 3]  # absent ids ignored
        assert pool.ids() == [0, 2, 4, 5]
        assert pool.take(2) == [0, 2]


# ---------------------------------------------------------------------------
# Failure schedules
# ---------------------------------------------------------------------------

class TestFailureSchedules:
    def test_node_failure_validation(self):
        with pytest.raises(ValueError):
            NodeFailure(time=-1.0, host=0, duration=5.0)
        with pytest.raises(ValueError):
            NodeFailure(time=0.0, host=0, duration=0.0)
        with pytest.raises(ValueError):
            NodeFailure(time=0.0, host=-1, duration=5.0)

    def test_validate_rejects_unknown_host_and_overlap(self):
        fleet = mixed_fleet(a100=4, v100=4, gpus_per_host=4)
        with pytest.raises(ValueError, match="host 9"):
            validate_failures(fleet, [NodeFailure(1.0, 9, 5.0)])
        with pytest.raises(ValueError, match="still down"):
            validate_failures(
                fleet, [NodeFailure(1.0, 0, 10.0), NodeFailure(5.0, 0, 1.0)]
            )
        # Non-overlapping windows on one host are fine, and come back sorted.
        ordered = validate_failures(
            fleet, [NodeFailure(20.0, 0, 1.0), NodeFailure(1.0, 0, 5.0)]
        )
        assert [f.time for f in ordered] == [1.0, 20.0]

    def test_inject_failures_deterministic_and_valid(self):
        fleet = mixed_fleet(a100=16, v100=16, gpus_per_host=4)
        first = inject_failures(fleet, 12, seed=3)
        assert first == inject_failures(fleet, 12, seed=3)
        assert first != inject_failures(fleet, 12, seed=4)
        assert len(first) == 12
        validate_failures(fleet, first)  # non-overlapping by construction
        assert inject_failures(fleet, 0) == []

    def test_checkpoint_model_validation(self):
        with pytest.raises(ValueError):
            CheckpointModel(interval_s=0.0)
        with pytest.raises(ValueError):
            CheckpointModel(restart_overhead_s=-1.0)


# ---------------------------------------------------------------------------
# Scheduler on heterogeneous fleets
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def het_sched():
    return ClusterScheduler(mixed_fleet(a100=8, v100=8, gpus_per_host=4))


class TestHeterogeneousScheduling:
    def test_homogeneous_fleet_matches_legacy_constructor(self):
        trace = synthetic_trace(10, seed=3, models=("vgg16",))
        legacy = ClusterScheduler(8).run(trace, "collocation")
        fleet = ClusterScheduler(ClusterFleet.homogeneous(8)).run(trace, "collocation")
        assert fleet.metrics == legacy.metrics
        assert fleet.records == legacy.records
        assert fleet.events_processed == legacy.events_processed

    def test_foreground_prefers_fast_pool_background_takes_slow(self, het_sched):
        trace = [
            TraceJob("fg", "vgg16", 32, 0.0, 50),
            TraceJob("bg", "vgg16", 4, 0.0, 50, JobKind.BACKGROUND),
        ]
        result = het_sched.run(trace, "collocation")
        assert result.record("fg").gpu_pool == "a100"
        assert result.record("bg").gpu_pool == "v100"

    def test_foreground_falls_back_to_slow_pool_on_contention(self, het_sched):
        # Two width-8 foregrounds: the first saturates the 8-GPU a100 pool,
        # so the second must run (and finish) on the v100 pool.
        trace = [
            TraceJob("fg-fast", "vgg16", 32, 0.0, 2000, max_gpus=8),
            TraceJob("fg-slow", "vgg16", 32, 0.1, 50, max_gpus=8),
        ]
        result = het_sched.run(trace, "fifo")
        assert result.record("fg-fast").gpu_pool == "a100"
        assert result.record("fg-slow").gpu_pool == "v100"
        # Same width on a slower GPU: strictly later finish per iteration.
        assert result.record("fg-slow").start_time == pytest.approx(0.1)

    def test_contended_job_migrates_to_fast_pool_when_it_frees(self, het_sched):
        # The short job holds the whole a100 pool; the long job starts on
        # the v100s and migrates to the a100 pool once it drains.
        trace = [
            TraceJob("fg-short", "vgg16", 32, 0.0, 50, max_gpus=8),
            TraceJob("fg-long", "vgg16", 32, 0.1, 4000, max_gpus=8),
        ]
        result = het_sched.run(trace, "collocation")
        long_record = result.record("fg-long")
        assert long_record.gpu_pool == "a100"  # finished on the fast pool
        assert long_record.replans >= 1

    def test_per_pool_plans_never_alias(self, het_sched):
        trace = [TraceJob("fg", "vgg16", 32, 0.0, 50)]
        het_sched.run(trace, "collocation")
        key_a = het_sched._plan_cache_key("vgg16", 32, 4, 2.0, "a100")
        key_v = het_sched._plan_cache_key("vgg16", 32, 4, 2.0, "v100")
        assert key_a != key_v
        assert key_a[:4] == key_v[:4]  # only the planner identity differs

    def test_pool_planners_model_their_gpu(self, het_sched):
        assert het_sched._profiler_for("a100").gpu == A100_40GB
        assert het_sched._profiler_for("v100").gpu == V100_32GB
        # Same model+batch is strictly slower on the slower generation.
        fast = het_sched._iso_time_on("vgg16", 8, "a100")
        slow = het_sched._iso_time_on("vgg16", 8, "v100")
        assert slow > fast

    def test_prewarm_covers_every_pool(self):
        sched = ClusterScheduler(mixed_fleet(a100=8, v100=8, gpus_per_host=4))
        trace = synthetic_trace(12, seed=5, models=("vgg16",))
        seeded = sched.prewarm_plans(trace)
        assert seeded > 0
        pools = {key[4] for key in sched._plan_cache}
        assert len(pools) == 2  # one planner fingerprint per pool
        cold = ClusterScheduler(mixed_fleet(a100=8, v100=8, gpus_per_host=4)).run(
            trace, "collocation"
        )
        assert sched.run(trace, "collocation").metrics == cold.metrics

    def test_pool_prewarm_rejected_on_hetero_fleet(self, het_sched):
        from repro.core.planner import PlannerPool

        with pytest.raises(ValueError, match="heterogeneous"):
            het_sched.prewarm_plans(
                synthetic_trace(4, seed=1), pool=PlannerPool()
            )

    def test_pool_prewarm_validates_against_fleet_pool_planner(self):
        # A homogeneous fleet whose GPU differs from the scheduler's default
        # profiler: the PlannerPool must match the *fleet pool's* planner
        # identity (here V100), not the scheduler's default A100 planner —
        # otherwise prewarmed A100 plans would be served to V100 jobs.
        from repro.core.planner import PlannerPool

        fleet = ClusterFleet((GpuPoolSpec("v100", V100_32GB, 4, gpus_per_host=2),))
        trace = synthetic_trace(4, seed=1, models=("vgg16",))
        sched = ClusterScheduler(fleet)
        with pytest.raises(ValueError, match="alias"):
            sched.prewarm_plans(trace, pool=PlannerPool())  # A100 identity
        seeded = sched.prewarm_plans(trace, pool=PlannerPool(gpu=V100_32GB))
        assert seeded > 0
        v100_fp = sched._fingerprint_of(sched._planner_for("v100"))
        assert {key[4] for key in sched._plan_cache} == {v100_fp}


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------

class TestFailureHandling:
    def _fleet(self):
        # One pool, two 2-GPU hosts: failures have a tight blast radius.
        return ClusterFleet((GpuPoolSpec("a100", A100_40GB, 4, gpus_per_host=2),))

    def test_failure_restarts_job_and_accounts_lost_work(self):
        trace = [TraceJob("fg", "vgg16", 32, 0.0, 2000, max_gpus=4)]
        sched = ClusterScheduler(
            self._fleet(), checkpoint=CheckpointModel(interval_s=4.0)
        )
        clean = sched.run(trace, "collocation")
        # t=10 is between checkpoints (8 and 12): two seconds of progress
        # roll back.
        failed = sched.run(
            trace, "collocation", failures=[NodeFailure(10.0, 0, 8.0)]
        )
        record = failed.record("fg")
        assert record.restarts == 1
        assert record.lost_gpu_seconds > 0
        assert failed.metrics.restarts == 1
        assert failed.metrics.lost_gpu_seconds == record.lost_gpu_seconds
        assert record.finish_time > clean.record("fg").finish_time
        assert failed.failures_injected == 1
        assert failed.events_processed > clean.events_processed  # node events

    def test_checkpoint_interval_bounds_lost_work(self):
        trace = [TraceJob("fg", "vgg16", 32, 0.0, 2000, max_gpus=4)]
        failures = [NodeFailure(11.0, 0, 5.0)]
        lost = {}
        for interval in (1.0, 1000.0):
            sched = ClusterScheduler(
                self._fleet(),
                checkpoint=CheckpointModel(interval_s=interval, restart_overhead_s=0.0),
            )
            lost[interval] = sched.run(
                trace, "collocation", failures=failures
            ).record("fg").lost_gpu_seconds
        # Tight checkpoints lose (almost) nothing; with none before the
        # failure, everything since the start is rolled back.
        assert lost[1.0] < lost[1000.0]
        assert lost[1000.0] > 0

    def test_guests_evicted_when_host_job_dies(self):
        fleet = self._fleet()
        trace = [
            TraceJob("fg", "vgg16", 32, 0.0, 2000, max_gpus=4),
            TraceJob("bg", "vgg16", 4, 1.0, 50, JobKind.BACKGROUND),
        ]
        sched = ClusterScheduler(fleet)
        result = sched.run(
            trace, "collocation", failures=[NodeFailure(5.0, 0, 10.0)]
        )
        assert result.metrics.num_jobs == 2  # both still complete
        assert result.record("fg").restarts == 1
        # The pool ends the run whole: every GPU free exactly once.
        assert sched._free.free_ids() == list(range(fleet.num_gpus))
        assert sched._free.down_ids() == []

    def test_rollback_after_replan_prices_lost_work_at_current_plan(self):
        # A re-plan serializes the job's state, so it re-checkpoints: a later
        # rollback loses only post-replan work, priced at the *current*
        # plan's per-iteration cost (never old iterations at the new, wider
        # plan's cost, which could drive busy_gpu_seconds negative).
        trace = [
            TraceJob("fg-a", "vgg16", 32, 0.0, 1000, max_gpus=2),
            TraceJob("fg-b", "vgg16", 32, 0.1, 4000, max_gpus=4),
        ]
        ckpt = CheckpointModel(interval_s=10_000.0, restart_overhead_s=0.0)
        clean = ClusterScheduler(self._fleet(), checkpoint=ckpt).run(
            trace, "collocation"
        )
        t_replan = clean.record("fg-a").finish_time  # fg-b widens 2 -> 4 here
        fail_time = t_replan + 2.0
        failed = ClusterScheduler(self._fleet(), checkpoint=ckpt).run(
            trace, "collocation", failures=[NodeFailure(fail_time, 0, 5.0)]
        )
        record = failed.record("fg-b")
        assert record.replans >= 1
        assert record.restarts == 1
        assert record.busy_gpu_seconds >= 0.0
        # Only the 2 seconds since the re-plan can roll back; the fleet
        # accrues at most `width` busy GPU-seconds per wall second.
        assert 0.0 < record.lost_gpu_seconds <= (fail_time - t_replan) * 4

    def test_preemption_banks_unpaid_restart_overhead(self):
        # A restarted job evicted mid-restart-window owes the unpaid
        # remainder at its next placement instead of forgiving it: with a
        # 40 s overhead the background job finishes >= ~35 s later than with
        # none, under an identical failure/preemption timeline.
        def run(overhead):
            trace = [
                TraceJob("bg", "vgg16", 4, 0.0, 3000, JobKind.BACKGROUND),
                TraceJob("fg", "vgg16", 32, 5.0, 3000, max_gpus=2),
            ]
            sched = ClusterScheduler(
                self._fleet(),
                checkpoint=CheckpointModel(
                    interval_s=10_000.0, restart_overhead_s=overhead
                ),
            )
            # Host 0 dies at t=2 (long outage): bg restarts on host 1, then
            # the arriving foreground preempts it at t=5, mid-penalty.
            return sched.run(
                trace, "collocation", failures=[NodeFailure(2.0, 0, 100.0)]
            )

        free_restart = run(0.0)
        paid_restart = run(40.0)
        assert free_restart.record("bg").preemptions >= 1
        assert paid_restart.record("bg").preemptions >= 1
        assert paid_restart.record("bg").restarts == 1
        delay = (
            paid_restart.record("bg").finish_time
            - free_restart.record("bg").finish_time
        )
        assert delay >= 35.0

    def test_failure_of_idle_host_is_harmless(self):
        trace = [TraceJob("fg", "vgg16", 32, 0.0, 100, max_gpus=2)]
        sched = ClusterScheduler(self._fleet())
        # Host 1 (GPUs 2-3) is idle: nothing to kill, capacity dips only.
        result = sched.run(
            trace, "collocation", failures=[NodeFailure(1.0, 1, 5.0)]
        )
        assert result.record("fg").restarts == 0
        assert sched._free.free_ids() == [0, 1, 2, 3]

    def test_overlapping_failures_rejected_by_run(self):
        sched = ClusterScheduler(self._fleet())
        trace = [TraceJob("fg", "vgg16", 32, 0.0, 100)]
        with pytest.raises(ValueError, match="still down"):
            sched.run(
                trace,
                "collocation",
                failures=[NodeFailure(1.0, 0, 10.0), NodeFailure(2.0, 0, 1.0)],
            )


# ---------------------------------------------------------------------------
# Property-style invariants (the CI matrix pins these)
# ---------------------------------------------------------------------------

_PERM_POOLS = (
    GpuPoolSpec("a100", A100_40GB, 4, gpus_per_host=2),
    GpuPoolSpec("v100", V100_32GB, 4, gpus_per_host=2),
    GpuPoolSpec("h100", H100_80GB, 2, gpus_per_host=2),
)


class TestPropertyInvariants:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2),
        perm=st.permutations(range(len(_PERM_POOLS))),
    )
    def test_metrics_invariant_to_pool_enumeration_order(self, seed, perm):
        """Permuting pool declarations renumbers GPUs but cannot change
        a single scheduling outcome: records and metrics are identical."""
        trace = synthetic_trace(8, seed=seed, models=("vgg16",))
        reference = ClusterScheduler(ClusterFleet(_PERM_POOLS)).run(
            trace, "collocation"
        )
        permuted_fleet = ClusterFleet(tuple(_PERM_POOLS[i] for i in perm))
        permuted = ClusterScheduler(permuted_fleet).run(trace, "collocation")
        assert permuted.metrics == reference.metrics
        assert permuted.records == reference.records
        assert permuted.events_processed == reference.events_processed

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        fail_time=st.floats(min_value=0.5, max_value=60.0),
        duration=st.floats(min_value=1.0, max_value=30.0),
        host=st.integers(min_value=0, max_value=2),
        policy=st.sampled_from(["fifo", "srgs", "collocation"]),
    )
    def test_failure_never_leaks_or_double_frees_gpus(
        self, fail_time, duration, host, policy
    ):
        """A failure at any time, on any host, under any policy, ends with
        every job complete and every GPU free exactly once."""
        fleet = ClusterFleet(_PERM_POOLS)
        trace = synthetic_trace(6, seed=1, models=("vgg16",))
        sched = ClusterScheduler(fleet, checkpoint=CheckpointModel(interval_s=10.0))
        result = sched.run(
            trace, policy, failures=[NodeFailure(fail_time, host, duration)]
        )
        assert result.metrics.num_jobs == len(trace)
        assert sched._free.free_ids() == list(range(fleet.num_gpus))
        assert sched._free.down_ids() == []


class TestPolicyPoolPreference:
    def test_orders(self):
        fleet = mixed_fleet()
        policy = get_policy("collocation")
        fg = TraceJob("fg", "vgg16", 32, 0.0, 10)
        bg = TraceJob("bg", "vgg16", 4, 0.0, 10, JobKind.BACKGROUND)
        assert policy.pool_preference(fg, fleet) == ("a100", "v100")
        assert policy.pool_preference(bg, fleet) == ("v100", "a100")

    def test_h100_registered(self):
        assert get_gpu_spec("h100") == H100_80GB
