"""Tests for the training-plan data structures (JSON round-trip, aggregates)."""

import json

import pytest

from repro.core.planner import LayerAssignment, TrainingPlan


def make_plan():
    assignments = [
        LayerAssignment(0, "input", "input", 1, 0.0),
        LayerAssignment(1, "conv1", "conv2d", 8, 1e-3, sync_time=1e-4, comm_time=5e-5),
        LayerAssignment(2, "branch", "conv2d", 2, 2e-3, parallel_branch=True),
        LayerAssignment(3, "fc", "dense", 2, 5e-4, sync_time=2e-4),
    ]
    critical = sum(a.stage_time for a in assignments if not a.parallel_branch)
    return TrainingPlan(
        model_name="toy",
        global_batch=32,
        total_gpus=8,
        amplification_limit=2.0,
        assignments=assignments,
        iteration_time=critical,
        search_time=0.01,
    )


class TestLayerAssignment:
    def test_stage_time_and_gpu_seconds(self):
        a = LayerAssignment(1, "conv", "conv2d", 4, 1e-3, sync_time=1e-4, comm_time=1e-4)
        assert a.stage_time == pytest.approx(1.2e-3)
        assert a.gpu_seconds == pytest.approx(4.8e-3)


class TestTrainingPlan:
    def test_assignment_lookup(self):
        plan = make_plan()
        assert plan.assignment_for(1).layer_name == "conv1"
        with pytest.raises(KeyError):
            plan.assignment_for(99)

    def test_gpu_assignment_map_and_max(self):
        plan = make_plan()
        assert plan.gpu_assignment_map() == {0: 1, 1: 8, 2: 2, 3: 2}
        assert plan.max_gpus_used() == 8

    def test_gpu_seconds_and_average_busy(self):
        plan = make_plan()
        expected = sum(a.gpu_seconds for a in plan.assignments)
        assert plan.total_gpu_seconds() == pytest.approx(expected)
        assert plan.average_gpus_busy() == pytest.approx(expected / plan.iteration_time)

    def test_idle_fraction_between_zero_and_one(self):
        plan = make_plan()
        assert 0.0 <= plan.idle_gpu_fraction() < 1.0

    def test_critical_path_excludes_parallel_branches(self):
        plan = make_plan()
        assert plan.critical_path_time() < sum(a.stage_time for a in plan.assignments)
        assert plan.critical_path_time() == pytest.approx(plan.iteration_time)

    def test_amplification_relative_to_single_gpu(self):
        plan = make_plan()
        single_gpu_time = 10e-3
        assert plan.amplification(single_gpu_time) == pytest.approx(
            plan.total_gpu_seconds() / single_gpu_time
        )
        with pytest.raises(ValueError):
            plan.amplification(0.0)

    def test_is_pure_data_parallel(self):
        plan = make_plan()
        assert not plan.is_pure_data_parallel()
        dp = TrainingPlan(
            "toy", 32, 8, float("inf"),
            [LayerAssignment(0, "a", "conv2d", 8, 1e-3),
             LayerAssignment(1, "b", "conv2d", 8, 1e-3)],
            iteration_time=2e-3,
        )
        assert dp.is_pure_data_parallel()

    def test_json_round_trip(self):
        plan = make_plan()
        payload = plan.to_json()
        parsed = json.loads(payload)
        assert parsed["model_name"] == "toy"
        restored = TrainingPlan.from_json(payload)
        assert restored.model_name == plan.model_name
        assert restored.global_batch == plan.global_batch
        assert restored.iteration_time == pytest.approx(plan.iteration_time)
        assert len(restored.assignments) == len(plan.assignments)
        assert restored.assignment_for(2).parallel_branch is True
        assert restored.gpu_assignment_map() == plan.gpu_assignment_map()

    def test_summary_mentions_model_and_widths(self):
        plan = make_plan()
        text = plan.summary()
        assert "toy" in text
        assert "8 GPU" in text
        assert "ms" in text
