"""Tests for the persistent content-addressed artifact cache (repro.cache)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    ArtifactCache,
    canonical_json,
    default_cache_dir,
    fingerprint,
    graph_fingerprint,
    profiler_fingerprint,
)
from repro.core.planner.planner import BurstParallelPlanner, PlannerConfig
from repro.models.graph import LayerSpec, ModelGraph
from repro.models.registry import build_model
from repro.network.fabric import get_fabric
from repro.profiler.gpu_spec import A100_40GB, V100_32GB
from repro.profiler.layer_profiler import LayerProfiler


def _tiny_graph(name="tiny", dense_flops=1000.0):
    g = ModelGraph(name)
    inp = g.add_layer(
        LayerSpec("input", "input", 0.0, 0, 0, 32, bwd_flops_multiplier=0.0)
    )
    g.add_layer(
        LayerSpec("fc", "dense", dense_flops, 32 * 8, 32, 8), inputs=[inp]
    )
    return g


class TestFingerprints:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json(float("inf"))

    def test_fingerprint_is_stable_and_input_sensitive(self):
        assert fingerprint("x", 1) == fingerprint("x", 1)
        assert fingerprint("x", 1) != fingerprint("x", 2)

    def test_graph_edit_changes_fingerprint(self):
        base = graph_fingerprint(_tiny_graph())
        assert graph_fingerprint(_tiny_graph()) == base  # rebuild: same digest
        assert graph_fingerprint(_tiny_graph(dense_flops=2000.0)) != base

    def test_grown_graph_refingerprints(self):
        g = _tiny_graph()
        before = graph_fingerprint(g)
        g.add_layer(
            LayerSpec("relu", "relu", 8.0, 0, 8, 8, bwd_flops_multiplier=1.0),
            inputs=[1],
        )
        assert graph_fingerprint(g) != before

    def test_gpu_spec_change_changes_profiler_fingerprint(self):
        a100 = LayerProfiler(gpu=A100_40GB)
        v100 = LayerProfiler(gpu=V100_32GB)
        assert profiler_fingerprint(a100) != profiler_fingerprint(v100)
        assert a100.fingerprint() == LayerProfiler(gpu=A100_40GB).fingerprint()


class TestArtifactCacheStore:
    def test_round_trip_and_stats(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = fingerprint("k")
        assert cache.get("ns", key) is None
        cache.put("ns", key, {"value": 1.5})
        assert cache.get("ns", key) == {"value": 1.5}
        assert (cache.stats.hits, cache.stats.misses, cache.stats.writes) == (1, 1, 1)

    def test_get_or_compute_computes_once(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = fingerprint("k")
        calls = []

        def compute():
            calls.append(1)
            return {"v": 7}

        assert cache.get_or_compute("ns", key, compute) == {"v": 7}
        assert cache.get_or_compute("ns", key, compute) == {"v": 7}
        assert len(calls) == 1

    def test_rejects_non_hex_keys(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path).entry_path("ns", "../escape")

    def test_corrupted_entry_recovers_by_recompute(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = fingerprint("k")
        path = cache.put("ns", key, {"v": 1})
        path.write_text("{ not json at all")
        assert cache.get("ns", key) is None
        assert cache.stats.errors == 1
        assert not path.exists()  # bad file dropped, not re-parsed forever
        # Recompute path: the cache is usable again immediately.
        assert cache.get_or_compute("ns", key, lambda: {"v": 2}) == {"v": 2}
        assert cache.get("ns", key) == {"v": 2}

    def test_wrong_key_envelope_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key_a, key_b = fingerprint("a"), fingerprint("b")
        path_b = cache.entry_path("ns", key_b)
        path_b.parent.mkdir(parents=True)
        # A payload copied under the wrong name must not be served.
        envelope = {
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "namespace": "ns",
            "key": key_a,
            "payload": {"v": 1},
        }
        path_b.write_text(json.dumps(envelope))
        assert cache.get("ns", key_b) is None
        assert cache.stats.errors == 1

    def test_schema_bump_forces_miss(self, tmp_path):
        old = ArtifactCache(tmp_path, schema_version=CACHE_SCHEMA_VERSION)
        key = fingerprint("k")
        old.put("ns", key, {"v": 1})
        bumped = ArtifactCache(tmp_path, schema_version=CACHE_SCHEMA_VERSION + 1)
        assert bumped.get("ns", key) is None
        # The old version still sees its own entries.
        assert old.get("ns", key) == {"v": 1}

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        cache = ArtifactCache()
        assert str(cache.root).startswith(str(tmp_path / "elsewhere"))

    def test_tilde_roots_expand_to_home(self, monkeypatch):
        """'~/.cache/repro' must mean the home dir, not a literal './~'."""
        cache = ArtifactCache("~/.cache/repro-test")
        assert "~" not in str(cache.root)
        assert str(cache.base_dir).startswith(str(Path.home()))
        monkeypatch.setenv(CACHE_DIR_ENV, "~/elsewhere")
        assert default_cache_dir() == Path.home() / "elsewhere"


class TestProfilerPersistentCache:
    def test_disk_hit_matches_computed_timing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        spec = _tiny_graph().spec(1)
        first = LayerProfiler(persistent_cache=cache).layer_timing(spec, 4)
        reader = LayerProfiler(persistent_cache=ArtifactCache(tmp_path))
        second = reader.layer_timing(spec, 4)
        assert first == second
        assert reader.persistent_cache.stats.hits == 1

    def test_gpu_spec_change_is_a_disk_miss(self, tmp_path):
        spec = _tiny_graph().spec(1)
        a_cache = ArtifactCache(tmp_path)
        LayerProfiler(gpu=A100_40GB, persistent_cache=a_cache).layer_timing(spec, 4)
        v_cache = ArtifactCache(tmp_path)
        LayerProfiler(gpu=V100_32GB, persistent_cache=v_cache).layer_timing(spec, 4)
        assert v_cache.stats.hits == 0
        assert v_cache.stats.misses == 1


class TestPlanPersistentCache:
    def _planner(self, tmp_path, **kwargs):
        cache = ArtifactCache(tmp_path)
        return BurstParallelPlanner(
            get_fabric(kwargs.pop("fabric", "nvswitch")),
            LayerProfiler(
                gpu=kwargs.pop("gpu", A100_40GB), persistent_cache=cache
            ),
            kwargs.pop("config", None),
            cache=cache,
        )

    def test_warm_plan_is_identical_and_skips_search(self, tmp_path):
        graph = build_model("vgg11")
        cold = self._planner(tmp_path).plan(graph, 32, 4)
        warm_planner = self._planner(tmp_path)
        warm = warm_planner.plan(build_model("vgg11"), 32, 4)
        assert warm.to_json() == cold.to_json()
        assert warm_planner.cache.stats.hits >= 1
        assert warm_planner.profiler.cache_stats.queries == 0  # no search ran

    def test_graph_edit_invalidates_plan(self, tmp_path):
        planner = self._planner(tmp_path)
        planner.plan(_tiny_graph(), 8, 2)
        writes_before = planner.cache.stats.writes
        planner.plan(_tiny_graph(dense_flops=2000.0), 8, 2)
        assert planner.cache.stats.writes > writes_before  # recomputed, re-stored

    def test_gpu_spec_change_invalidates_plan(self, tmp_path):
        graph = _tiny_graph()
        self._planner(tmp_path, gpu=A100_40GB).plan(graph, 8, 2)
        v100 = self._planner(tmp_path, gpu=V100_32GB)
        v100.plan(graph, 8, 2)
        assert v100.cache.stats.hits == 0

    def test_planner_config_changes_fingerprint(self):
        fabric = get_fabric("nvswitch")
        profiler = LayerProfiler()
        default = BurstParallelPlanner(fabric, profiler)
        loose = BurstParallelPlanner(
            fabric, profiler, PlannerConfig(amplification_limit=4.0)
        )
        full_grid = BurstParallelPlanner(
            fabric, profiler, PlannerConfig(powers_of_two_only=False)
        )
        prints = {p.fingerprint() for p in (default, loose, full_grid)}
        assert len(prints) == 3

    def test_unbounded_amplification_limit_fingerprints(self):
        """float('inf') is a legal config value and must not break hashing."""
        fabric = get_fabric("nvswitch")
        unbounded = BurstParallelPlanner(
            fabric, LayerProfiler(), PlannerConfig(float("inf"))
        )
        assert unbounded.fingerprint() != BurstParallelPlanner(
            fabric, LayerProfiler()
        ).fingerprint()

    def test_corrupted_plan_entry_recomputes(self, tmp_path):
        graph = _tiny_graph()
        planner = self._planner(tmp_path)
        reference = planner.plan(graph, 8, 2)
        # Corrupt every plan entry on disk.
        plan_dir = planner.cache.root / "plan"
        corrupted = 0
        for entry in plan_dir.rglob("*.json"):
            entry.write_text("garbage")
            corrupted += 1
        assert corrupted >= 1
        again = self._planner(tmp_path)
        plan = again.plan(graph, 8, 2)
        assert plan.iteration_time == reference.iteration_time
        assert again.cache.stats.errors >= 1


_CROSS_PROCESS_SCRIPT = """
import sys
from repro.cache import ArtifactCache
from repro.core.planner.planner import BurstParallelPlanner
from repro.models.registry import build_model
from repro.network.fabric import get_fabric
from repro.profiler.layer_profiler import LayerProfiler

cache = ArtifactCache(sys.argv[1])
planner = BurstParallelPlanner(
    get_fabric("nvswitch"),
    LayerProfiler(persistent_cache=cache),
    cache=cache,
)
plan = planner.plan(build_model("vgg11"), 32, 4)
sys.stdout.write(plan.to_json())
"""


class TestCrossProcessDeterminism:
    def test_two_processes_sharing_a_cache_yield_identical_plans(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: byte-identical plans across interpreter processes."""
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        monkeypatch.setenv("PYTHONPATH", src_dir)
        outputs = []
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-c", _CROSS_PROCESS_SCRIPT, str(tmp_path)],
                capture_output=True,
                text=True,
                timeout=120,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert '"model_name": "vgg11"' in outputs[0]


_CRASH_DURING_PUT_SCRIPT = """
import json
import os
import signal
import sys

from repro.cache import ArtifactCache

cache = ArtifactCache(sys.argv[1])
mode = sys.argv[2]
key = sys.argv[3]
payload = {"rows": list(range(20000))}

if mode == "before-publish":
    # Crash between the temp-file write and the atomic rename.
    def kill(src, dst):
        os.kill(os.getpid(), signal.SIGKILL)

    os.replace = kill
elif mode == "mid-write":
    # Crash halfway through serializing the entry: fsync what is there so
    # the partial temp file genuinely hits the disk, then die.
    def partial_dump(obj, fh, **kwargs):
        text = json.dumps(obj, **kwargs)
        fh.write(text[: len(text) // 2])
        fh.flush()
        os.fsync(fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    json.dump = partial_dump

cache.put("chaos", key, payload)
raise SystemExit("unreachable: the put above must crash")
"""


class TestCrashDuringPut:
    """A writer killed mid-``put`` must never leave a servable corrupt entry.

    ``put`` publishes via write-temp-then-rename, so whichever instant the
    SIGKILL lands at — mid-serialization or just before the rename — readers
    see a clean miss, recompute, and the cache heals in place.
    """

    @pytest.mark.parametrize("mode", ["mid-write", "before-publish"])
    def test_killed_writer_leaves_a_clean_miss(self, tmp_path, monkeypatch, mode):
        import signal

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        monkeypatch.setenv("PYTHONPATH", src_dir)
        key = fingerprint(f"chaos-{mode}")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _CRASH_DURING_PUT_SCRIPT,
                str(tmp_path),
                mode,
                key,
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stdout + proc.stderr

        cache = ArtifactCache(tmp_path)
        # The entry was never published: no file at the final path, and the
        # lookup is a miss — never a partial payload.
        assert not cache.entry_path("chaos", key).exists()
        assert cache.get("chaos", key) is None
        assert cache.stats.errors == 0
        # Recovery is plain recomputation; afterwards the entry serves.
        value = cache.get_or_compute("chaos", key, lambda: {"v": 42})
        assert value == {"v": 42}
        assert cache.get("chaos", key) == {"v": 42}
