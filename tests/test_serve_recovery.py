"""Crash safety for repro.serve: journal, recovery ladder, chaos harness.

Covers the write-ahead :class:`~repro.serve.journal.IntentJournal` (framing,
CRCs, torn tails, rotation, compaction, sequence gaps), the service's
durable-state capture/restore, the recovery ladder in
:mod:`repro.serve.recovery` (snapshot + suffix replay, corrupt-snapshot
fallback, quantified loss + journal reset), and the seeded crash-fault
harness in :mod:`repro.serve.chaos` — including one real SIGKILL cycle
through the ``python -m repro.serve smoke --crash`` entry point.
"""

import asyncio
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.obs import EV_RECOVERY, EV_SNAPSHOT, TraceRecorder
from repro.sched import ClusterScheduler, TraceJob
from repro.serve import (
    CrashPlan,
    CrashPoint,
    IntentJournal,
    QuotaAdmission,
    SchedulerService,
    TenantQuota,
    list_snapshots,
    recover_service,
    result_fingerprint,
    scan_journal,
)
from repro.serve.chaos import default_spec, run_chaos_worker

# ---------------------------------------------------------------------------
# Scripted workload: every intent kind (submit / cancel / set_quota), with
# backpressure in play, ending drained.  Deterministic, so two services fed
# the same script are fingerprint-comparable.
# ---------------------------------------------------------------------------


def _job(name, arrival=0.0, iterations=30, batch=32):
    return TraceJob(
        name, "vgg16", batch, arrival_time=arrival, iterations=iterations
    )


def _make_service(journal_dir=None, **kwargs):
    return SchedulerService(
        ClusterScheduler(8),
        policy="collocation",
        admission=QuotaAdmission(default=TenantQuota(max_pending=3)),
        journal_dir=journal_dir,
        **kwargs,
    )


#: Journal records the script produces: 12 submits + 1 cancel + 1 set_quota.
_SCRIPT_RECORDS = 14


def _run_script(service):
    async def run():
        for index in range(12):
            job = _job(f"t{index % 2}-j{index:02d}", arrival=float(index))
            await service.submit(job, arrival_time=float(index))
        await service.cancel("t0-j08")
        await service.set_quota("t1", TenantQuota(max_pending=64))
        await service.drain()

    asyncio.run(run())
    return result_fingerprint(service.result())


def _baseline_fingerprint():
    return _run_script(_make_service())


def _journaled_run(directory, **kwargs):
    service = _make_service(journal_dir=directory, **kwargs)
    fingerprint = _run_script(service)
    asyncio.run(service.close())
    return fingerprint


def _recovered_fingerprint(directory, **kwargs):
    # Recovery lands on the last acknowledged intent; the drain the crashed
    # process was doing is not an intent, so the caller re-drives it — the
    # deterministic engine makes the re-drain converge to the same end state.
    service, report = recover_service(_make_service, directory, **kwargs)
    asyncio.run(service.drain())
    fingerprint = result_fingerprint(service.result())
    asyncio.run(service.close())
    return fingerprint, report


# ---------------------------------------------------------------------------
# Journal unit tests
# ---------------------------------------------------------------------------


class TestIntentJournal:
    def _fill(self, directory, count, segment_records=4096):
        with IntentJournal(directory, segment_records=segment_records) as journal:
            for index in range(count):
                seq = journal.append({"op": "noop", "index": index})
                assert seq == index + 1

    def test_append_scan_roundtrip(self, tmp_path):
        self._fill(tmp_path, 5)
        scan = scan_journal(tmp_path)
        assert not scan.error
        assert scan.torn_tail_bytes == 0
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5]
        assert [r.intent["index"] for r in scan.records] == list(range(5))
        assert scan.last_seq == 5

    def test_reopen_resumes_numbering(self, tmp_path):
        self._fill(tmp_path, 3)
        with IntentJournal(tmp_path) as journal:
            assert journal.next_seq == 4
            assert journal.append({"op": "noop"}) == 4
        assert scan_journal(tmp_path).last_seq == 4

    def test_rotation_splits_segments(self, tmp_path):
        self._fill(tmp_path, 10, segment_records=3)
        scan = scan_journal(tmp_path)
        assert len(scan.segments) == 4
        assert [r.seq for r in scan.records] == list(range(1, 11))
        assert scan.segments[0].name == "wal-000000000001.log"
        assert scan.segments[-1].name == "wal-000000000010.log"

    def test_compaction_drops_covered_segments_only(self, tmp_path):
        self._fill(tmp_path, 10, segment_records=3)
        with IntentJournal(tmp_path, segment_records=3) as journal:
            removed = journal.compact(7)
        # Segments 1-3 and 4-6 are wholly <= 7; segment 7-9 still holds 8, 9.
        assert [p.name for p in removed] == [
            "wal-000000000001.log",
            "wal-000000000004.log",
        ]
        scan = scan_journal(tmp_path)
        assert not scan.error, scan.error
        # The compacted journal legitimately starts mid-sequence.
        assert [r.seq for r in scan.records] == list(range(7, 11))

    def test_compaction_never_removes_the_only_segment(self, tmp_path):
        self._fill(tmp_path, 4)
        with IntentJournal(tmp_path) as journal:
            assert journal.compact(10_000) == []
        assert scan_journal(tmp_path).last_seq == 4

    def test_torn_tail_is_dropped_and_truncated_on_reopen(self, tmp_path):
        self._fill(tmp_path, 3)
        segment = scan_journal(tmp_path).segments[-1]
        clean_size = segment.stat().st_size
        with segment.open("ab") as fh:
            fh.write(b'J1 4 27 00000000 {"op":"half')  # no terminator
        scan = scan_journal(tmp_path)
        assert not scan.error
        assert scan.torn_tail_bytes > 0
        assert scan.lost_records == 0 and scan.lost_bytes == 0
        assert scan.last_seq == 3
        # Reopening truncates the torn bytes in place and resumes at seq 4.
        with IntentJournal(tmp_path) as journal:
            assert segment.stat().st_size == clean_size
            assert journal.append({"op": "noop"}) == 4
        assert [r.seq for r in scan_journal(tmp_path).records] == [1, 2, 3, 4]

    def test_midstream_corruption_quantifies_loss(self, tmp_path):
        self._fill(tmp_path, 6)
        segment = scan_journal(tmp_path).segments[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        # Flip one payload byte of record 3; length stays right, CRC breaks.
        lines[2] = lines[2].replace(b'"noop"', b'"n0op"')
        segment.write_bytes(b"".join(lines))
        scan = scan_journal(tmp_path)
        assert "corrupt record" in scan.error
        assert [r.seq for r in scan.records] == [1, 2]
        # Records 4-6 decode fine but sit past the break: counted, not kept.
        assert scan.lost_records == 3
        assert scan.lost_bytes > 0
        with pytest.raises(ValueError, match="recover it explicitly"):
            IntentJournal(tmp_path)

    def test_missing_segment_is_a_sequence_gap(self, tmp_path):
        self._fill(tmp_path, 9, segment_records=3)
        scan_journal(tmp_path).segments[1].unlink()  # records 4-6
        scan = scan_journal(tmp_path)
        assert "sequence gap" in scan.error
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.lost_records == 3

    def test_first_seq_floors_an_empty_directory(self, tmp_path):
        with IntentJournal(tmp_path, first_seq=41) as journal:
            assert journal.append({"op": "noop"}) == 41
        scan = scan_journal(tmp_path)
        assert not scan.error
        assert [r.seq for r in scan.records] == [41]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="segment_records"):
            IntentJournal(tmp_path, segment_records=0)
        with pytest.raises(ValueError, match="first_seq"):
            IntentJournal(tmp_path, first_seq=0)


# ---------------------------------------------------------------------------
# Service durability: journaled intents, durable state, reopen guard
# ---------------------------------------------------------------------------


class TestServiceDurability:
    def test_journaling_is_fingerprint_neutral(self, tmp_path):
        assert _journaled_run(tmp_path / "wal") == _baseline_fingerprint()

    def test_every_intent_is_journaled_in_order(self, tmp_path):
        _journaled_run(tmp_path / "wal")
        scan = scan_journal(tmp_path / "wal")
        assert not scan.error
        ops = [record.intent["op"] for record in scan.records]
        assert len(ops) == _SCRIPT_RECORDS
        assert ops == ["submit"] * 12 + ["cancel", "set_quota"]
        clocks = [record.intent["clock"] for record in scan.records]
        assert clocks == sorted(clocks)

    def test_durable_state_roundtrip_preserves_the_run(self, tmp_path):
        baseline = _baseline_fingerprint()
        source = _make_service(journal_dir=tmp_path / "wal")

        async def half():
            for index in range(12):
                job = _job(f"t{index % 2}-j{index:02d}", arrival=float(index))
                await source.submit(job, arrival_time=float(index))
            await source.cancel("t0-j08")

        asyncio.run(half())
        payload = source.durable_state()

        target = _make_service()
        target.restore_durable_state(payload)
        assert target.clock == source.clock
        assert target._applied_seq == source._applied_seq
        asyncio.run(source.close())

        async def finish():
            await target.set_quota("t1", TenantQuota(max_pending=64))
            await target.drain()

        asyncio.run(finish())
        assert result_fingerprint(target.result()) == baseline

    def test_reopening_durable_state_requires_recovery(self, tmp_path):
        _journaled_run(tmp_path / "wal")
        with pytest.raises(RuntimeError, match="recover_service"):
            _make_service(journal_dir=tmp_path / "wal")

    def test_snapshot_every_requires_a_journal(self):
        with pytest.raises(ValueError, match="journal_dir"):
            _make_service(snapshot_every=4)
        with pytest.raises(ValueError, match="snapshot_every"):
            _make_service()._attach_journal(None, 0, 2)

    def test_periodic_snapshots_are_written_and_pruned(self, tmp_path):
        _journaled_run(tmp_path / "wal", snapshot_every=5, snapshot_keep=2)
        snaps = list_snapshots(tmp_path / "wal")
        # 14 intents with snapshot_every=5 anchor at 5 and 10; keep=2.
        assert [int(p.name[len("state-") : -len(".json")]) for p in snaps] == [
            5,
            10,
        ]


# ---------------------------------------------------------------------------
# The recovery ladder
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_cold_replay_of_the_full_journal(self, tmp_path):
        baseline = _journaled_run(tmp_path / "wal")
        fingerprint, report = _recovered_fingerprint(tmp_path / "wal")
        assert fingerprint == baseline
        assert report.clean
        assert report.snapshot_seq == 0 and report.snapshot_path is None
        assert report.replayed_records == _SCRIPT_RECORDS
        assert report.final_seq == _SCRIPT_RECORDS
        assert not report.journal_reset

    def test_recovery_anchors_on_the_newest_snapshot(self, tmp_path):
        baseline = _journaled_run(tmp_path / "wal", snapshot_every=5)
        fingerprint, report = _recovered_fingerprint(
            tmp_path / "wal", snapshot_every=5
        )
        assert fingerprint == baseline
        assert report.clean
        assert report.snapshot_seq == 10
        assert report.replayed_records == _SCRIPT_RECORDS - 10
        # Passing snapshot_every re-anchors recovery itself.
        assert list_snapshots(tmp_path / "wal")[-1].name.endswith(
            f"{_SCRIPT_RECORDS:012d}.json"
        )

    def test_corrupt_snapshot_falls_back_to_an_older_one(self, tmp_path):
        baseline = _journaled_run(tmp_path / "wal", snapshot_every=5)
        newest = list_snapshots(tmp_path / "wal")[-1]
        newest.write_text(newest.read_text()[:-40])  # truncate: bad JSON
        fingerprint, report = _recovered_fingerprint(tmp_path / "wal")
        assert fingerprint == baseline
        assert len(report.corrupt_snapshots) == 1
        assert report.snapshot_seq == 5
        assert report.replayed_records == _SCRIPT_RECORDS - 5
        assert report.lost_records == 0 and not report.journal_reset

    def test_torn_tail_recovers_losslessly(self, tmp_path):
        baseline = _journaled_run(tmp_path / "wal")
        segment = scan_journal(tmp_path / "wal").segments[-1]
        with segment.open("ab") as fh:
            fh.write(b'J1 15 39 00000000 {"op":"submit","to')
        fingerprint, report = _recovered_fingerprint(tmp_path / "wal")
        assert fingerprint == baseline
        assert report.torn_tail_bytes > 0
        assert report.clean  # torn != lost: it was never acknowledged
        assert not report.journal_reset

    def test_midstream_corruption_is_quantified_and_resets(self, tmp_path):
        _journaled_run(tmp_path / "wal")
        segment = scan_journal(tmp_path / "wal").segments[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        broken_at = 9  # corrupt record 10 of 14: 5 acknowledged records lost
        lines[broken_at] = lines[broken_at].replace(b'"op":', b'"0p":', 1)
        segment.write_bytes(b"".join(lines))

        service, report = recover_service(_make_service, tmp_path / "wal")
        assert report.final_seq == broken_at
        assert report.replayed_records == broken_at
        # The corrupted record itself is bytes-only loss (it no longer
        # decodes as a record); the 4 intact records past it are countable.
        assert report.lost_records == _SCRIPT_RECORDS - broken_at - 1
        assert report.lost_bytes > 0
        assert report.journal_error
        assert report.journal_reset
        # The damaged history is gone: a fresh anchor snapshot covers the
        # recovered state and the journal resumes numbering after it.
        snaps = list_snapshots(tmp_path / "wal")
        assert [int(p.name[len("state-") : -len(".json")]) for p in snaps] == [
            broken_at
        ]
        assert service.journal.next_seq == broken_at + 1

        async def resume():
            await service.submit(_job("t9-extra", arrival=50.0))
            await service.drain()

        asyncio.run(resume())
        scan = scan_journal(tmp_path / "wal")
        assert not scan.error
        assert scan.last_seq == broken_at + 1
        asyncio.run(service.close())

    def test_recovery_emits_obs_events(self, tmp_path):
        _journaled_run(tmp_path / "wal")
        recorder = TraceRecorder()
        service, _ = recover_service(
            lambda: _make_service(recorder=recorder),
            tmp_path / "wal",
            snapshot_every=8,
        )
        recovery_events = recorder.events_of(EV_RECOVERY)
        assert len(recovery_events) == 1
        assert (
            recovery_events[0].detail
            == f"anchor=0;replayed={_SCRIPT_RECORDS};lost=0"
        )
        assert len(recorder.events_of(EV_SNAPSHOT)) == 1
        asyncio.run(service.close())

    def test_factory_must_not_attach_its_own_journal(self, tmp_path):
        _journaled_run(tmp_path / "wal")
        with pytest.raises(ValueError, match="without journal_dir"):
            recover_service(
                lambda: _make_service(journal_dir=tmp_path / "other"),
                tmp_path / "wal",
            )


# ---------------------------------------------------------------------------
# Crash-fault harness
# ---------------------------------------------------------------------------


class TestChaosHarness:
    def test_crash_point_validation(self):
        with pytest.raises(ValueError, match="kind"):
            CrashPoint("fork", 3)
        with pytest.raises(ValueError, match=">= 0"):
            CrashPoint("step", -1)
        assert CrashPoint("append", 4, torn_bytes=17).torn_bytes == 17

    def test_seeded_plans_are_deterministic(self):
        first = CrashPlan.seeded(99, 6)
        assert first == CrashPlan.seeded(99, 6)
        assert len(first.points) == 6
        assert first != CrashPlan.seeded(100, 6)

    def test_worker_baseline_and_journaled_runs_agree(self, tmp_path):
        spec = default_spec(num_jobs=24, num_gpus=16)
        baseline = run_chaos_worker(spec, None)
        durable = run_chaos_worker(spec, tmp_path / "wal")
        assert baseline["fingerprint"] == durable["fingerprint"]
        assert baseline["tenants"] == durable["tenants"]
        # A second run over the surviving directory recovers, resumes the
        # remaining intents, and converges to the same end state.
        resumed = run_chaos_worker(spec, tmp_path / "wal")
        assert resumed["fingerprint"] == baseline["fingerprint"]
        assert resumed["recovery"] is not None

    def test_smoke_cli_survives_a_real_sigkill(self, tmp_path, monkeypatch):
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        monkeypatch.setenv("PYTHONPATH", src_dir)
        out = tmp_path / "artifacts"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "smoke",
                "--num-jobs",
                "40",
                "--num-gpus",
                "32",
                "--crash",
                "1",
                "--crash-seed",
                "5",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        summary = json.loads((out / "chaos_summary.json").read_text())
        assert summary["ok"] is True
        assert summary["baseline_fingerprint"] == summary["final_fingerprint"]
        assert (out / "chaos_recovery_trace.json").exists()
