"""Tests for the burst-parallel planner on real model graphs."""

import pytest

from repro.core.planner import (
    BurstParallelPlanner,
    PlannerConfig,
    PlannerCostModel,
    candidate_gpu_counts,
    build_chain_nodes,
)
from repro.models import inception_v3, resnet50, vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler


@pytest.fixture(scope="module")
def planner():
    return BurstParallelPlanner(
        get_fabric("nvswitch"), LayerProfiler(), PlannerConfig(amplification_limit=2.0)
    )


@pytest.fixture(scope="module")
def vgg():
    return vgg16()


class TestCandidateGpuCounts:
    def test_powers_of_two(self):
        assert candidate_gpu_counts(8, 1024) == [1, 2, 4, 8]

    def test_limited_by_global_batch(self):
        assert candidate_gpu_counts(64, 8) == [1, 2, 4, 8]

    def test_all_integers_grid(self):
        assert candidate_gpu_counts(5, 100, powers_of_two_only=False) == [1, 2, 3, 4, 5]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            candidate_gpu_counts(0, 8)
        with pytest.raises(ValueError):
            candidate_gpu_counts(8, 0)


class TestPlannerCostModel:
    def setup_method(self):
        self.costs = PlannerCostModel(
            graph=vgg16(), global_batch=32, fabric=get_fabric("nvswitch")
        )

    def test_comp_decreases_with_more_gpus_for_big_layers(self):
        conv_id = next(
            lid for lid in self.costs.graph.layer_ids()
            if self.costs.graph.spec(lid).name == "features.conv2"
        )
        assert self.costs.comp(conv_id, 8) < self.costs.comp(conv_id, 1)

    def test_sync_zero_on_one_gpu(self):
        weighted = next(
            lid for lid in self.costs.graph.layer_ids()
            if self.costs.graph.spec(lid).has_weights
        )
        assert self.costs.sync(weighted, 1) == 0.0
        assert self.costs.sync(weighted, 8) > 0.0

    def test_comm_zero_for_same_width(self):
        ids = self.costs.graph.layer_ids()
        assert self.costs.comm(ids[1], 4, ids[2], 4) == 0.0
        assert self.costs.comm(ids[1], 1, ids[2], 8) > 0.0

    def test_amplification_definition(self):
        lid = self.costs.graph.layer_ids()[1]
        base = self.costs.comp(lid, 1)
        amp = self.costs.amplification(lid, 4, stage_time=base / 2)
        assert amp == pytest.approx(2.0)

    def test_amplification_zero_for_free_layers(self):
        flatten_id = next(
            lid for lid in self.costs.graph.layer_ids()
            if self.costs.graph.spec(lid).op == "flatten"
        )
        assert self.costs.amplification(flatten_id, 8, 1e-3) == 0.0


class TestBurstParallelPlans:
    def test_plan_covers_every_layer_exactly_once(self, planner, vgg):
        plan = planner.plan(vgg, 32, 8)
        planned_ids = [a.layer_id for a in plan.assignments]
        assert sorted(planned_ids) == vgg.layer_ids()

    def test_widths_are_valid_candidates(self, planner, vgg):
        plan = planner.plan(vgg, 32, 8)
        for a in plan.assignments:
            assert a.num_gpus in (1, 2, 4, 8)

    def test_iteration_time_matches_critical_path(self, planner, vgg):
        plan = planner.plan(vgg, 32, 8)
        assert plan.iteration_time == pytest.approx(plan.critical_path_time(), rel=1e-6)

    def test_burst_plan_uses_fewer_gpu_seconds_than_dp(self, planner, vgg):
        bp = planner.plan(vgg, 32, 8)
        dp = planner.data_parallel_plan(vgg, 32, 8)
        assert bp.total_gpu_seconds() < dp.total_gpu_seconds()

    def test_plan_has_heterogeneous_widths_for_vgg(self, planner, vgg):
        plan = planner.plan(vgg, 32, 8)
        assert len({a.num_gpus for a in plan.assignments}) > 1

    def test_looser_amp_limit_never_slows_the_plan(self, planner, vgg):
        tight = planner.plan(vgg, 32, 8, amplification_limit=1.25)
        loose = planner.plan(vgg, 32, 8, amplification_limit=8.0)
        assert loose.iteration_time <= tight.iteration_time * 1.001

    def test_single_gpu_plan(self, planner, vgg):
        plan = planner.single_gpu_plan(vgg, 32)
        assert plan.max_gpus_used() == 1
        assert plan.is_pure_data_parallel()
        assert plan.iteration_time > 0

    def test_data_parallel_plan_width_capped_by_batch(self, planner, vgg):
        plan = planner.data_parallel_plan(vgg, 4, 8)
        assert plan.max_gpus_used() == 4

    def test_invalid_amp_limit_rejected(self, planner, vgg):
        with pytest.raises(ValueError):
            planner.plan(vgg, 32, 8, amplification_limit=0.5)

    def test_search_time_recorded(self, planner, vgg):
        plan = planner.plan(vgg, 32, 8)
        assert plan.search_time > 0
        assert plan.search_time < 10

    def test_plan_json_round_trip_preserves_assignments(self, planner, vgg):
        from repro.core.planner import TrainingPlan

        plan = planner.plan(vgg, 32, 8)
        restored = TrainingPlan.from_json(plan.to_json())
        assert restored.gpu_assignment_map() == plan.gpu_assignment_map()


class TestGraphReductionPlans:
    """Branching models exercise the multi-chain graph reduction."""

    @pytest.mark.parametrize("builder,batch", [(resnet50, 64), (inception_v3, 32)])
    def test_branching_plan_covers_every_layer(self, planner, builder, batch):
        graph = builder()
        plan = planner.plan(graph, batch, 8)
        planned_ids = sorted(a.layer_id for a in plan.assignments)
        assert planned_ids == graph.layer_ids()
        assert plan.iteration_time > 0

    def test_inception_marks_some_branches_parallel(self, planner):
        graph = inception_v3()
        plan = planner.plan(graph, 32, 8, amplification_limit=2.0)
        assert any(a.parallel_branch for a in plan.assignments)

    def test_build_chain_nodes_reduces_branching_graph(self):
        graph = resnet50()
        costs = PlannerCostModel(
            graph=graph, global_batch=64, fabric=get_fabric("nvswitch")
        )
        nodes = build_chain_nodes(graph, costs, [1, 2, 4, 8], 8, 2.0)
        # Reduced chain is much shorter than the raw layer count but still
        # covers the graph through its block nodes.
        assert len(nodes) < len(graph)
        assert len(nodes) > 10

    def test_chain_model_has_one_node_per_layer(self):
        graph = vgg16()
        costs = PlannerCostModel(
            graph=graph, global_batch=32, fabric=get_fabric("nvswitch")
        )
        nodes = build_chain_nodes(graph, costs, [1, 2, 4, 8], 8, 2.0)
        assert len(nodes) == len(graph)
