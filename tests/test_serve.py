"""Tests for repro.serve: the online scheduler service.

Covers the replay-to-live bridge's parity proof (a bridged trace reproduces
the offline ``ClusterScheduler.run`` metrics fingerprint bit for bit, with
and without failures), the async submission API (duplicate-name rejection,
resubmission identity, handles, watch streams), multi-tenant admission
control (quota exhaustion, queue-with-backpressure ordering, cancel
accounting against the offline ``lost_gpu_seconds`` semantics), and the
property-style ledger invariants the issue pins: no quota ledger ever goes
negative under arbitrary submit/cancel interleavings, and a drained service
leaves no hold outstanding and no submission unresolved.
"""

import asyncio
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import (
    EV_CANCEL,
    EV_COMPLETION,
    EV_PLACEMENT,
    EV_SUBMIT,
    TraceRecorder,
)
from repro.profiler.gpu_spec import A100_40GB, V100_32GB
from repro.sched import (
    CheckpointModel,
    ClusterFleet,
    ClusterScheduler,
    GpuPoolSpec,
    TraceJob,
    inject_failures,
    mixed_trace,
    synthetic_trace,
)
from repro.serve import (
    AdmissionDecision,
    QuotaAdmission,
    SchedulerService,
    TenantQuota,
    default_tenant,
    replay_trace_sync,
    result_fingerprint,
)
from repro.serve.__main__ import main as serve_main

BASELINES = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"


def _job(name, arrival=0.0, iterations=50, batch=32, **kwargs):
    return TraceJob(
        name, "vgg16", batch, arrival_time=arrival, iterations=iterations,
        **kwargs,
    )


def _service(num_gpus=4, policy="fifo", **kwargs):
    return SchedulerService(ClusterScheduler(num_gpus), policy=policy, **kwargs)


def _estimate(service, job):
    return service._estimate(job)


# ---------------------------------------------------------------------------
# Replay-to-live parity
# ---------------------------------------------------------------------------

class TestReplayParity:
    def test_bridged_replay_matches_offline(self):
        """The issue's core proof: one engine, two drivers, same fingerprint."""
        trace = synthetic_trace(60, seed=7)
        offline = ClusterScheduler(16).run(trace, "collocation")
        service = SchedulerService(ClusterScheduler(16), policy="collocation")
        report = replay_trace_sync(service, trace)
        assert report.fingerprint() == result_fingerprint(offline)
        assert report.result.events_processed == offline.events_processed
        assert report.completed == len(trace)
        assert report.rejected == 0 and report.cancelled == 0

    def test_bridged_replay_matches_offline_hetero_with_failures(self):
        def fleet():
            return ClusterFleet(
                (
                    GpuPoolSpec("a100", A100_40GB, 8, 4),
                    GpuPoolSpec("v100", V100_32GB, 8, 4),
                )
            )

        trace = mixed_trace(40, seed=5)
        failures = inject_failures(
            fleet(), 2, seed=3, window=(5.0, 60.0), mean_downtime=10.0
        )
        offline = ClusterScheduler(
            fleet(), checkpoint=CheckpointModel(30.0, 5.0)
        ).run(trace, "collocation", failures=failures)
        service = SchedulerService(
            ClusterScheduler(fleet(), checkpoint=CheckpointModel(30.0, 5.0)),
            policy="collocation",
            failures=failures,
        )
        report = replay_trace_sync(service, trace)
        assert report.fingerprint() == result_fingerprint(offline)
        assert report.result.failures_injected == 2

    def test_replay_rejects_unsorted_trace(self):
        trace = [_job("fg-b", arrival=5.0), _job("fg-a", arrival=1.0)]
        with pytest.raises(ValueError, match="sorted by arrival"):
            replay_trace_sync(_service(), trace)

    def test_replay_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            replay_trace_sync(_service(), [])

    def test_prewarm_on_admit_preserves_the_fingerprint(self):
        """Cache prewarming is a latency lever, never a result lever."""
        trace = synthetic_trace(24, seed=4)
        plain = replay_trace_sync(
            SchedulerService(ClusterScheduler(8), policy="collocation"), trace
        )
        scheduler = ClusterScheduler(8)
        warm = replay_trace_sync(
            SchedulerService(
                scheduler, policy="collocation", prewarm_on_admit=True
            ),
            trace,
        )
        assert warm.fingerprint() == plain.fingerprint()
        assert len(scheduler._plan_cache) > 0

    def test_smoke_cli_asserts_parity_and_writes_artifacts(self, tmp_path):
        rc = serve_main(
            [
                "smoke", "--trace", "synthetic", "--num-jobs", "20",
                "--num-gpus", "8", "--seed", "2", "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        summary = json.loads((tmp_path / "serve_summary.json").read_text())
        assert summary["match"] is True
        assert summary["completed"] == 20
        chrome = json.loads((tmp_path / "serve_trace.json").read_text())
        assert chrome["traceEvents"]


# ---------------------------------------------------------------------------
# Submission API
# ---------------------------------------------------------------------------

class TestSubmitAPI:
    def test_duplicate_name_rejected_at_submit(self):
        async def run():
            service = _service()
            await service.submit(_job("fg-a"))
            with pytest.raises(ValueError, match="duplicate job name"):
                await service.submit(_job("fg-a"))
            # Even a resolved (rejected/cancelled) job keeps its name.
            await service.cancel("fg-a")
            with pytest.raises(ValueError, match="resubmitted"):
                await service.submit(_job("fg-a"))

        asyncio.run(run())

    def test_cancel_then_resubmit_round_trips(self):
        async def run():
            service = _service()
            first = await service.submit(_job("fg-a", iterations=800))
            await service.advance_to(0.5)
            assert await service.cancel("fg-a")
            retry = await service.submit(first.job.resubmitted(service.clock))
            await service.drain()
            return first, retry

        first, retry = asyncio.run(run())
        assert first.status() == "cancelled"
        assert retry.status() == "done"
        assert retry.name == "fg-a#1"

    def test_resubmitted_identity(self):
        job = _job("fg-a", arrival=1.0)
        retry = job.resubmitted(7.0)
        assert retry.name == "fg-a#1" and retry.arrival_time == 7.0
        assert retry.model == job.model and retry.iterations == job.iterations
        # Renaming is idempotent over attempts: no `#1#2` pileup.
        assert retry.resubmitted(9.0, attempt=2).name == "fg-a#2"
        with pytest.raises(ValueError):
            job.resubmitted(7.0, attempt=0)

    def test_with_arrival_optionally_renames(self):
        job = _job("fg-a", arrival=1.0)
        assert job.with_arrival(9.0).name == "fg-a"
        moved = job.with_arrival(9.0, name="fg-z")
        assert moved.name == "fg-z" and moved.arrival_time == 9.0

    def test_submissions_cannot_time_travel(self):
        async def run():
            service = _service()
            await service.submit(_job("fg-a", iterations=30))
            await service.drain()
            # A stale trace arrival is clamped to the clock...
            late = await service.submit(_job("fg-b", arrival=0.0))
            assert late.job.arrival_time == 0.0
            assert service.query("fg-b").arrival_time == service.clock
            # ...but an explicit behind-clock arrival is an error.
            with pytest.raises(ValueError, match="behind the virtual clock"):
                await service.submit(_job("fg-c"), arrival_time=0.0)

        asyncio.run(run())

    def test_query_unknown_job_raises(self):
        service = _service()
        with pytest.raises(KeyError):
            service.query("nope")

    def test_closed_service_refuses_submissions(self):
        async def run():
            service = _service()
            await service.submit(_job("fg-a", iterations=30))
            await service.drain()
            await service.close()
            with pytest.raises(RuntimeError, match="closed"):
                await service.submit(_job("fg-b"))
            with pytest.raises(RuntimeError, match="closed"):
                service.watch()

        asyncio.run(run())

    def test_handle_wait_resolves_with_final_info(self):
        async def run():
            service = _service()
            handle = await service.submit(_job("fg-a", iterations=40))
            waiter = asyncio.create_task(handle.wait())
            await service.drain()
            info = await waiter
            return handle, info

        handle, info = asyncio.run(run())
        assert handle.done()
        assert info.status == "done"
        assert info.remaining_iterations == 0
        assert info.busy_gpu_seconds > 0

    def test_default_tenant_is_name_prefix(self):
        assert default_tenant(_job("ali-042")) == "ali"
        assert default_tenant(_job("solo")) == "solo"

    def test_cluster_state_reports_gauges_and_tenants(self):
        async def run():
            service = _service(
                admission=QuotaAdmission(
                    default=TenantQuota(max_pending=1)
                )
            )
            # Unique tenant: its obs counters are process-global, so a
            # reused name would inherit counts from earlier tests.
            await service.submit(_job("cst-a", iterations=40))
            await service.submit(_job("cst-b", iterations=40))  # queued
            state = service.cluster_state()
            await service.drain()
            return state

        state = asyncio.run(run())
        assert state["time"] == 0.0
        assert state["gauges"]["queued_jobs"] == 1
        ledger = state["tenants"]["cst"]
        assert ledger["queued"] == 1
        assert ledger["submitted"] == 2.0 and ledger["admitted"] == 1.0


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(gpu_seconds=0.0)
        with pytest.raises(ValueError):
            TenantQuota(max_pending=0)
        with pytest.raises(ValueError):
            QuotaAdmission(on_saturated=AdmissionDecision.ACCEPT)

    def test_oversized_job_rejected_outright(self):
        async def run():
            service = _service(
                admission=QuotaAdmission(default=TenantQuota(gpu_seconds=0.5))
            )
            handle = await service.submit(_job("fg-a", iterations=500))
            return service, handle

        service, handle = asyncio.run(run())
        assert handle.status() == "rejected"
        assert handle.done()
        account = service.account("fg")
        assert account.committed == 0.0 and account.used == 0.0

    def test_quota_exhaustion_queues_then_starves(self):
        async def run():
            service = _service()
            # Quota fits exactly one copy of the job's estimate.
            estimate = _estimate(service, _job("fg-a", iterations=100))
            service.admission = QuotaAdmission(
                default=TenantQuota(gpu_seconds=estimate * 1.5)
            )
            first = await service.submit(_job("fg-a", iterations=100))
            second = await service.submit(_job("fg-b", iterations=100))
            assert first.status() == "pending"
            assert second.status() == "queued"
            await service.drain()
            return first, second, service

        first, second, service = asyncio.run(run())
        assert first.status() == "done"
        # Settled charges never leave headroom for the second job, so the
        # drain resolves it as rejected rather than leaving it parked.
        assert second.status() == "rejected"
        assert second.done()
        assert service.account("fg").committed == 0.0

    def test_max_pending_saturation_can_hard_reject(self):
        async def run():
            service = _service(
                admission=QuotaAdmission(
                    default=TenantQuota(max_pending=1),
                    on_saturated=AdmissionDecision.REJECT,
                )
            )
            first = await service.submit(_job("fg-a", iterations=40))
            shed = await service.submit(_job("fg-b", iterations=40))
            await service.drain()
            return first, shed

        first, shed = asyncio.run(run())
        assert first.status() == "done"
        assert shed.status() == "rejected"

    def test_backpressure_readmits_fifo_per_tenant(self):
        """Freed quota admits queued submissions strictly in submit order."""

        async def run():
            service = _service()
            estimate = _estimate(service, _job("fg-x", iterations=100))
            service.admission = QuotaAdmission(
                default=TenantQuota(gpu_seconds=estimate * 3.5)
            )
            # Three holds fit, the 4th and 5th queue behind them.
            handles = [
                await service.submit(_job(f"fg-{i}", iterations=100))
                for i in range(5)
            ]
            assert [h.status() for h in handles] == [
                "pending", "pending", "pending", "queued", "queued",
            ]
            # Cancelling a never-ran job refunds its full hold; the pump
            # must admit the queue *head* (fg-3), not the later fg-4.
            await service.cancel("fg-1")
            assert handles[3].status() == "pending"
            assert handles[4].status() == "queued"
            await service.cancel("fg-2")
            assert handles[4].status() == "pending"
            await service.drain()
            return handles

        handles = asyncio.run(run())
        statuses = [h.status() for h in handles]
        assert statuses == ["done", "cancelled", "cancelled", "done", "done"]

    def test_admission_outcomes_are_deterministic(self):
        """Same trace + same quotas -> same per-job dispositions, twice."""

        def one_run():
            service = SchedulerService(
                ClusterScheduler(16),
                policy="collocation",
                admission=QuotaAdmission(
                    default=TenantQuota(gpu_seconds=800.0, max_pending=4)
                ),
            )
            report = replay_trace_sync(service, mixed_trace(60, seed=13))
            return (
                [h.status() for h in report.handles],
                report.fingerprint(),
                report.queued_at_submit,
            )

        first, second = one_run(), one_run()
        assert first == second
        assert first[2] > 0  # the quotas actually bite


# ---------------------------------------------------------------------------
# Cancellation accounting
# ---------------------------------------------------------------------------

class TestCancel:
    def test_cancel_while_pending_refunds_the_full_hold(self):
        async def run():
            service = _service()
            blocker = await service.submit(_job("fg-a", iterations=800))
            await service.advance_to(0.5)  # blocker occupies all four GPUs
            victim = await service.submit(_job("fg-b", iterations=800))
            assert victim.status() == "pending"
            account = service.account("fg")
            held = account.committed
            assert await service.cancel("fg-b")
            # The pending job never ran: charge zero, refund everything.
            assert account.used == 0.0
            assert account.committed == pytest.approx(
                held - victim.estimate_gpu_seconds
            )
            await service.drain()
            return blocker, victim

        blocker, victim = asyncio.run(run())
        assert victim.status() == "cancelled"
        assert victim.info().busy_gpu_seconds == 0.0
        assert blocker.status() == "done"

    def test_cancel_while_running_charges_actual_consumption(self):
        async def run():
            service = _service()
            handle = await service.submit(_job("fg-a", iterations=800))
            await service.advance_to(2.0)
            assert handle.status() == "running"
            assert await service.cancel("fg-a")
            account = service.account("fg")
            info = handle.info()
            # Settled at busy + lost GPU-seconds, the offline accounting.
            assert account.used == pytest.approx(
                info.busy_gpu_seconds + info.lost_gpu_seconds
            )
            assert account.used > 0.0
            assert account.committed == 0.0
            # The freed GPUs are immediately placeable again.
            follow = await service.submit(_job("fg-b", iterations=40))
            await service.drain()
            return handle, follow

        handle, follow = asyncio.run(run())
        assert handle.status() == "cancelled"
        assert follow.status() == "done"

    def test_cancel_queued_job_leaves_no_trace_in_the_engine(self):
        async def run():
            service = _service(
                admission=QuotaAdmission(default=TenantQuota(max_pending=1))
            )
            admitted = await service.submit(_job("fg-a", iterations=40))
            queued = await service.submit(_job("fg-b", iterations=40))
            assert queued.status() == "queued"
            assert await service.cancel("fg-b")
            account = service.account("fg")
            # No hold was ever taken for the queued job: only the admitted
            # job's commit remains outstanding.
            assert account.queued == 0
            assert account.committed == pytest.approx(
                admitted.estimate_gpu_seconds
            )
            await service.drain()
            assert account.committed == 0.0
            return service, queued

        service, queued = asyncio.run(run())
        assert queued.status() == "cancelled"
        assert "fg-b" not in service._engine.states

    def test_cancel_is_idempotent_and_strict(self):
        async def run():
            service = _service()
            await service.submit(_job("fg-a", iterations=30))
            assert await service.cancel("fg-a")
            assert not await service.cancel("fg-a")  # already gone
            survivor = await service.submit(_job("fg-b", iterations=30))
            # Rejected submissions are resolved, not cancellable.
            service.admission = QuotaAdmission(
                default=TenantQuota(gpu_seconds=0.1)
            )
            shed = await service.submit(_job("xx-c", iterations=500))
            assert shed.status() == "rejected"
            assert not await service.cancel(shed.name)
            with pytest.raises(KeyError):
                await service.cancel("never-submitted")
            await service.drain()
            return survivor

        survivor = asyncio.run(run())
        assert survivor.status() == "done"


# ---------------------------------------------------------------------------
# The watch() stream
# ---------------------------------------------------------------------------

class TestWatch:
    def test_watch_sees_lifecycle_in_emission_order(self):
        async def run():
            service = _service()
            events = []

            async def consume(stream):
                async for event in stream:
                    events.append(event)

            task = asyncio.create_task(consume(service.watch()))
            await service.submit(_job("fg-a", iterations=40))
            await service.drain()
            await service.close()
            await task
            return events

        events = asyncio.run(run())
        kinds = [event.kind for event in events]
        assert kinds.index(EV_SUBMIT) < kinds.index(EV_PLACEMENT)
        assert kinds.index(EV_PLACEMENT) < kinds.index(EV_COMPLETION)
        submit = events[kinds.index(EV_SUBMIT)]
        assert submit.job == "fg-a" and submit.detail == "accept:fg"

    def test_watch_kind_filter(self):
        async def run():
            service = _service()
            seen = []

            async def consume(stream):
                async for event in stream:
                    seen.append(event)

            task = asyncio.create_task(
                consume(service.watch(kinds=[EV_COMPLETION]))
            )
            for i in range(3):
                await service.submit(_job(f"fg-{i}", iterations=40))
            await service.drain()
            await service.close()
            await task
            return seen

        seen = asyncio.run(run())
        assert len(seen) == 3
        assert {event.kind for event in seen} == {EV_COMPLETION}

    def test_recorder_and_stream_share_one_emission_seam(self):
        """The obs trace and the watch stream must never disagree."""

        async def run():
            recorder = TraceRecorder()
            service = _service(recorder=recorder)
            streamed = []

            async def consume(stream):
                async for event in stream:
                    streamed.append(event)

            task = asyncio.create_task(consume(service.watch()))
            await service.submit(_job("fg-a", iterations=40))
            handle = await service.submit(_job("fg-b", iterations=800))
            await service.advance_to(1.0)
            await service.cancel(handle.name)
            await service.drain()
            await service.close()
            await task
            return recorder, streamed

        recorder, streamed = asyncio.run(run())
        recorded = recorder.events
        assert [(e.kind, e.job, e.time) for e in recorded] == [
            (e.kind, e.job, e.time) for e in streamed
        ]
        assert any(e.kind == EV_SUBMIT for e in recorded)
        assert any(e.kind == EV_CANCEL for e in recorded)


# ---------------------------------------------------------------------------
# Ledger invariants (property-based)
# ---------------------------------------------------------------------------

def _assert_ledger_sane(service):
    for tenant, account in service._accounts.items():
        assert account.committed >= 0.0, tenant
        assert account.used >= 0.0, tenant
        assert account.engine_pending >= 0, tenant
        assert account.queued == len(
            service._backpressure.get(tenant, ())
        ), tenant


class TestLedgerInvariants:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["submit", "cancel", "advance"]),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=20,
        )
    )
    def test_no_quota_ledger_goes_negative(self, ops):
        """Arbitrary submit/cancel/advance interleavings keep every
        tenant's ledger sane, and a drain settles every hold."""

        async def run():
            service = SchedulerService(
                ClusterScheduler(4),
                policy="fifo",
                admission=QuotaAdmission(
                    default=TenantQuota(gpu_seconds=400.0, max_pending=2)
                ),
            )
            handles = []
            for index, (op, arg) in enumerate(ops):
                if op == "submit":
                    job = _job(
                        f"t{arg}-j{index}",
                        arrival=service.clock,
                        iterations=20 + 10 * arg,
                        batch=8,
                    )
                    handles.append(await service.submit(job))
                elif op == "cancel" and handles:
                    await service.cancel(handles[arg % len(handles)].name)
                elif op == "advance":
                    await service.advance_to(service.clock + float(arg))
                _assert_ledger_sane(service)
            await service.drain()
            _assert_ledger_sane(service)
            return service, handles

        service, handles = asyncio.run(run())
        for account in service._accounts.values():
            assert account.committed == 0.0
        for handle in handles:
            assert handle.done()
            assert handle.status() in {"done", "rejected", "cancelled"}


# ---------------------------------------------------------------------------
# Throughput
# ---------------------------------------------------------------------------

class TestThroughput:
    def test_committed_baseline_sustains_the_target_rate(self):
        """The sched_service baseline must record >= 10k submissions/sec."""
        data = json.loads(
            (BASELINES / "BENCH_sched_service.json").read_text()
        )
        assert data["info"]["submissions_per_sec"] >= 10_000
        # The rate is a wall-clock diagnostic: it must never leak into the
        # gated metric fingerprint.
        assert "submissions_per_sec" not in data["metrics"]

    def test_submit_path_sustains_bulk_load(self):
        """Sanity floor well under the bench target, so CI never flakes."""
        trace = synthetic_trace(300, seed=9)
        service = SchedulerService(ClusterScheduler(32), policy="collocation")
        report = replay_trace_sync(service, trace)
        assert report.completed == 300
        assert report.submissions_per_sec > 1_000
