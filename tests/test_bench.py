"""Tests for the repro.bench performance harness."""

import json
import time

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchArtifact,
    artifact_filename,
    compare_artifacts,
    grid_jobs,
    load_artifacts,
    run_jobs,
    run_scenario,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.harness import available_scenarios, get_scenario
from repro.bench.sweep import SweepJob
from repro.models import vgg16
from repro.profiler import LayerProfiler

#: Small parameterizations so the suite stays fast.
SMALL_GRID = {"models": ["vgg11"], "gpu_counts": [1, 2, 4]}
SMALL_SCHED = {"num_gpus": 8, "num_jobs": 12, "seed": 3}
SMALL_MATRIX = {"sim_time": 0.01}
SMALL_SERVE = {
    "num_gpus": 16,
    "num_jobs": 40,
    "seed": 3,
    "quota_gpu_seconds": 2000.0,
    "max_pending": 4,
}
SMALL_PARAMS = {
    "planner_grid": SMALL_GRID,
    "sched_sim": SMALL_SCHED,
    "collocation_matrix": SMALL_MATRIX,
    "sched_service": SMALL_SERVE,
}


def _artifact(name, **kwargs):
    defaults = dict(
        name=name,
        params={"x": 1},
        ops=100,
        wall_time_s=1.0,
        wall_times_s=(1.0,),
        metrics={"m": 2.0},
        git_sha="abc",
    )
    defaults.update(kwargs)
    return BenchArtifact(**defaults)


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = available_scenarios()
        assert {"planner_grid", "sched_sim", "collocation_matrix"} <= set(names)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            get_scenario("not_a_scenario")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            run_scenario("sched_sim", overrides={"bogus_param": 1})

    def test_scalar_override_of_sequence_param_is_wrapped(self):
        """`--param models=vgg11` must mean [\"vgg11\"], not iterate chars."""
        artifact = run_scenario(
            "planner_grid", overrides={"models": "vgg11", "gpu_counts": 2}
        )
        assert artifact.params["models"] == ["vgg11"]
        assert artifact.params["gpu_counts"] == [2]
        assert artifact.ops > 0


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_same_params_same_ops_and_metrics(self, name):
        first = run_scenario(name, overrides=SMALL_PARAMS[name])
        second = run_scenario(name, overrides=SMALL_PARAMS[name])
        assert first.ops == second.ops
        assert first.ops > 0
        assert first.metrics == second.metrics

    def test_repeats_share_one_ops_count(self):
        artifact = run_scenario("sched_sim", overrides=SMALL_SCHED, repeats=2)
        assert len(artifact.wall_times_s) == 2
        assert artifact.wall_time_s == min(artifact.wall_times_s)


class TestArtifactIO:
    def test_round_trip(self, tmp_path):
        artifact = run_scenario("planner_grid", overrides=SMALL_GRID)
        path = artifact.write(tmp_path)
        assert path.name == artifact_filename("planner_grid")
        loaded = BenchArtifact.read(path)
        assert loaded == artifact

    def test_json_is_sorted_and_versioned(self, tmp_path):
        path = _artifact("x").write(tmp_path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert list(data) == sorted(data)

    def test_load_artifacts_from_directory(self, tmp_path):
        _artifact("a").write(tmp_path)
        _artifact("b").write(tmp_path)
        loaded = load_artifacts(tmp_path)
        assert sorted(loaded) == ["a", "b"]

    def test_load_artifacts_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifacts(tmp_path / "nope")


class TestCompare:
    def test_identical_sets_pass(self):
        base = {"s": _artifact("s")}
        assert compare_artifacts(base, {"s": _artifact("s")}).ok

    def test_time_regression_beyond_threshold_fails(self):
        base = {"s": _artifact("s")}
        slow = {"s": _artifact("s", wall_time_s=1.11, wall_times_s=(1.11,))}
        comparison = compare_artifacts(base, slow, max_time_regress_pct=10.0)
        assert not comparison.ok
        assert "wall time regressed" in comparison.failures[0].reason

    def test_time_regression_within_threshold_passes(self):
        base = {"s": _artifact("s")}
        ok = {"s": _artifact("s", wall_time_s=1.05, wall_times_s=(1.05,))}
        assert compare_artifacts(base, ok, max_time_regress_pct=10.0).ok

    def test_ignore_time_skips_wall_clock(self):
        base = {"s": _artifact("s")}
        slow = {"s": _artifact("s", wall_time_s=9.9, wall_times_s=(9.9,))}
        assert compare_artifacts(base, slow, ignore_time=True).ok

    def test_ops_change_fails_even_when_faster(self):
        base = {"s": _artifact("s")}
        drift = {"s": _artifact("s", ops=99, wall_time_s=0.5, wall_times_s=(0.5,))}
        comparison = compare_artifacts(base, drift, ignore_time=True)
        assert not comparison.ok
        assert "op count changed" in comparison.failures[0].reason

    def test_metric_fingerprint_change_fails(self):
        base = {"s": _artifact("s")}
        drift = {"s": _artifact("s", metrics={"m": 2.5})}
        comparison = compare_artifacts(base, drift, ignore_time=True)
        assert not comparison.ok
        assert "fingerprint" in comparison.failures[0].reason

    def test_metric_check_survives_nonzero_ops_tolerance(self):
        """Relaxing op tolerance must not disable the fingerprint gate."""
        base = {"s": _artifact("s")}
        drift = {"s": _artifact("s", metrics={"m": 20.0})}  # 10x drift
        comparison = compare_artifacts(
            base, drift, ops_tolerance_pct=1.0, ignore_time=True
        )
        assert not comparison.ok
        assert "fingerprint" in comparison.failures[0].reason
        # Drift within the tolerance still passes.
        small = {"s": _artifact("s", metrics={"m": 2.0 * 1.005})}
        assert compare_artifacts(
            base, small, ops_tolerance_pct=1.0, ignore_time=True
        ).ok

    def test_missing_scenario_fails_new_scenario_passes(self):
        base = {"s": _artifact("s")}
        current = {"t": _artifact("t")}
        comparison = compare_artifacts(base, current, ignore_time=True)
        assert not comparison.ok
        reasons = {row.name: row for row in comparison.rows}
        assert not reasons["s"].ok
        assert reasons["t"].ok

    def test_param_mismatch_fails(self):
        base = {"s": _artifact("s")}
        other = {"s": _artifact("s", params={"x": 2})}
        assert not compare_artifacts(base, other, ignore_time=True).ok

    def test_require_counters_gates_counterless_artifacts(self):
        base = {"s": _artifact("s")}
        bare = {"s": _artifact("s")}  # info block has no counters
        # Off by default: a counterless artifact still passes.
        assert compare_artifacts(base, bare, ignore_time=True).ok
        comparison = compare_artifacts(
            base, bare, ignore_time=True, require_counters=True
        )
        assert not comparison.ok
        assert "no counters" in comparison.failures[0].reason
        wired = {
            "s": _artifact("s", info={"counters": {"sched.events.arrival": 3}})
        }
        assert compare_artifacts(
            base, wired, ignore_time=True, require_counters=True
        ).ok
        # Only the *current* side is checked; counterless baselines are fine.
        assert compare_artifacts(
            bare, wired, ignore_time=True, require_counters=True
        ).ok

    def test_throughput_drop_beyond_threshold_fails(self):
        """submissions_per_sec is gated like wall time: a >10% drop fails."""
        base = {"s": _artifact("s", info={"submissions_per_sec": 20_000.0})}
        slow = {"s": _artifact("s", info={"submissions_per_sec": 15_000.0})}
        comparison = compare_artifacts(base, slow, max_time_regress_pct=10.0)
        assert not comparison.ok
        assert "submissions_per_sec regressed" in comparison.failures[0].reason

    def test_throughput_drop_within_threshold_passes(self):
        base = {"s": _artifact("s", info={"submissions_per_sec": 20_000.0})}
        ok = {"s": _artifact("s", info={"submissions_per_sec": 19_000.0})}
        assert compare_artifacts(base, ok, max_time_regress_pct=10.0).ok
        # Gains never fail, however large.
        fast = {"s": _artifact("s", info={"submissions_per_sec": 90_000.0})}
        assert compare_artifacts(base, fast, max_time_regress_pct=10.0).ok

    def test_ignore_time_skips_throughput(self):
        """Rates are wall-clock figures: cross-machine gates must skip them."""
        base = {"s": _artifact("s", info={"submissions_per_sec": 20_000.0})}
        slow = {"s": _artifact("s", info={"submissions_per_sec": 1_000.0})}
        assert compare_artifacts(base, slow, ignore_time=True).ok

    def test_throughput_missing_on_either_side_passes(self):
        """Baselines recorded before a scenario grew the rate are exempt."""
        with_rate = {"s": _artifact("s", info={"submissions_per_sec": 9_000.0})}
        without = {"s": _artifact("s")}
        assert compare_artifacts(without, with_rate).ok
        assert compare_artifacts(with_rate, without).ok


class TestSweep:
    def test_grid_jobs_unique_names(self):
        jobs = grid_jobs("sched_sim", {"num_gpus": [8, 16], "seed": [1, 2]})
        names = [j.artifact_name for j in jobs]
        assert len(jobs) == 4
        assert len(set(names)) == 4
        assert all(n.startswith("sched_sim--") for n in names)

    def test_grid_jobs_rejects_key_both_swept_and_fixed(self):
        with pytest.raises(ValueError):
            grid_jobs(
                "planner_grid",
                {"cache_dir": ["a", "b"]},
                fixed={"cache_dir": "c"},
            )

    def test_grid_jobs_fixed_overrides_stay_out_of_names(self):
        jobs = grid_jobs(
            "planner_grid",
            {"gpu_counts": [[1], [1, 2]]},
            fixed={"cache_dir": "/tmp/shared"},
        )
        assert len(jobs) == 2
        assert all(j.overrides["cache_dir"] == "/tmp/shared" for j in jobs)
        assert all("cache_dir" not in (j.artifact_name or "") for j in jobs)
        assert all("tmp" not in (j.artifact_name or "") for j in jobs)

    def test_sweep_cli_cache_dir_shared_across_workers(self, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = [
            "sweep", "planner_grid",
            "--grid", "gpu_counts=1,2",
            "--grid", "models=vgg11",
            "--out", str(tmp_path / "out"),
            "--processes", "2",
            "--cache-dir", str(cache_dir),
        ]
        assert bench_main(argv) == 0
        assert cache_dir.is_dir()
        artifacts = load_artifacts(tmp_path / "out")
        assert len(artifacts) >= 1
        for artifact in artifacts.values():
            assert artifact.params["cache_dir"] == str(cache_dir)
            assert "cache" not in artifact.name

    def test_run_jobs_serial_matches_multiprocess(self):
        jobs = [
            SweepJob("sched_sim", overrides=dict(SMALL_SCHED, seed=s),
                     artifact_name=f"sched_sim--seed-{s}")
            for s in (1, 2)
        ]
        serial = run_jobs(jobs, processes=1)
        parallel = run_jobs(jobs, processes=2)
        assert [a.ops for a in serial] == [a.ops for a in parallel]
        assert [a.metrics for a in serial] == [a.metrics for a in parallel]


class TestCLI:
    def test_run_and_compare_round_trip(self, tmp_path, capsys):
        out = tmp_path / "run1"
        argv = ["run", "sched_sim", "--out", str(out)]
        for key, value in SMALL_SCHED.items():
            argv += ["--param", f"{key}={value}"]
        assert bench_main(argv) == 0
        assert (out / artifact_filename("sched_sim")).exists()
        assert bench_main(
            ["compare", str(out), str(out), "--ignore-time"]
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_run_records_counters_in_info(self, tmp_path):
        """Every artifact carries the run's registry delta in the info block."""
        out = tmp_path / "run"
        argv = ["run", "sched_sim", "--out", str(out)]
        for key, value in SMALL_SCHED.items():
            argv += ["--param", f"{key}={value}"]
        assert bench_main(argv) == 0
        with open(out / artifact_filename("sched_sim")) as fh:
            artifact = json.load(fh)
        counters = artifact["info"]["counters"]
        assert counters
        # The delta is scoped to this run: one arrival per trace job.
        assert counters["sched.events.arrival"] == SMALL_SCHED["num_jobs"]
        assert counters["planner.plan_requests"] > 0

    def test_run_verbose_prints_progress_lines(self, tmp_path, capsys):
        out = tmp_path / "run"
        argv = ["run", "sched_sim", "--out", str(out), "--verbose"]
        for key, value in SMALL_SCHED.items():
            argv += ["--param", f"{key}={value}"]
        assert bench_main(argv) == 0
        stdout = capsys.readouterr().out
        assert "[done] sched_sim: wall=" in stdout
        assert "ops=" in stdout

    def test_hetero_trace_out_writes_loadable_trace(self, tmp_path):
        from repro.obs.report import report

        out = tmp_path / "run"
        trace = tmp_path / "trace.json"
        argv = [
            "run", "sched_sim_hetero", "--out", str(out),
            "--param", "num_jobs=30", "--param", f"trace_out={trace}",
        ]
        assert bench_main(argv) == 0
        with open(trace) as fh:
            data = json.load(fh)
        assert data["traceEvents"]
        with open(out / artifact_filename("sched_sim_hetero")) as fh:
            artifact = json.load(fh)
        assert artifact["info"]["trace_events"] == data["otherData"]["recorded_events"]
        assert report(str(trace)) == 0

    def test_compare_exits_nonzero_on_injected_regression(self, tmp_path, capsys):
        """Acceptance: an injected >10% wall-time regression gates the PR."""
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        _artifact("s").write(base)
        _artifact(
            "s", wall_time_s=1.2, wall_times_s=(1.2,)
        ).write(cur)  # +20% > the 10% default threshold
        assert bench_main(["compare", str(base), str(cur)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_requires_scenario_or_all(self):
        with pytest.raises(SystemExit):
            bench_main(["run"])

    def test_multi_scenario_run_applies_params_where_they_fit(self, tmp_path):
        """A --param only some scenarios take must not abort the run."""
        argv = [
            "run", "planner_grid", "sched_sim", "--out", str(tmp_path),
            "--param", "models=vgg11", "--param", "gpu_counts=1,2",
            "--param", "num_gpus=8", "--param", "num_jobs=10",
            "--param", "seed=3",
        ]
        assert bench_main(argv) == 0
        assert (tmp_path / artifact_filename("planner_grid")).exists()
        assert (tmp_path / artifact_filename("sched_sim")).exists()

    def test_param_unknown_to_every_scenario_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(
                ["run", "planner_grid", "sched_sim", "--out", str(tmp_path),
                 "--param", "definitely_bogus=1"]
            )

    def test_list_prints_scenarios(self, capsys):
        assert bench_main(["list"]) == 0
        assert "planner_grid" in capsys.readouterr().out

    def test_run_filter_selects_subset(self, tmp_path):
        argv = [
            "run", "--all", "--filter", "sched_sim", "--out", str(tmp_path),
        ]
        for key, value in SMALL_SCHED.items():
            argv += ["--param", f"{key}={value}"]
        assert bench_main(argv) == 0
        assert (tmp_path / artifact_filename("sched_sim")).exists()
        # The glob matched exactly one scenario; nothing else ran.
        assert len(list(tmp_path.glob("BENCH_*.json"))) == 1

    def test_run_filter_without_match_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(
                ["run", "--all", "--filter", "no_such_*", "--out", str(tmp_path)]
            )

    def test_run_cache_dir_applies_to_cache_aware_scenarios(self, tmp_path, capsys):
        out = tmp_path / "out"
        cache_dir = tmp_path / "cache"
        argv = [
            "run", "planner_grid", "--out", str(out),
            "--cache-dir", str(cache_dir),
            "--param", "models=vgg11", "--param", "gpu_counts=1,2",
        ]
        assert bench_main(argv) == 0
        assert cache_dir.is_dir()
        assert "cache[" in capsys.readouterr().out
        artifact = load_artifacts(out)["planner_grid"]
        assert artifact.params["cache_dir"] == str(cache_dir)
        assert artifact.info["cache_writes"] > 0

    def test_run_rejects_conflicting_cache_dir_sources(self, tmp_path):
        with pytest.raises(SystemExit):
            bench_main(
                ["run", "planner_grid", "--out", str(tmp_path),
                 "--param", "cache_dir=/a", "--cache-dir", "/b"]
            )

    def test_compare_write_baselines_copies_current(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        new_baselines = tmp_path / "fresh-baselines"
        _artifact("s").write(base)
        # Current run regressed ops (would normally fail the gate)...
        _artifact("s", ops=120).write(cur)
        # ...but --write-baselines declares it the new baseline and exits 0.
        assert bench_main(
            ["compare", str(base), str(cur), "--ignore-time",
             "--write-baselines", str(new_baselines)]
        ) == 0
        refreshed = load_artifacts(new_baselines)
        assert refreshed["s"].ops == 120
        assert "baseline <- s" in capsys.readouterr().out

    def test_compare_ignores_environment_params(self, tmp_path):
        """A CI run with its own cache dir gates against a cache-less baseline."""
        base = {"s": _artifact("s", params={"x": 1, "cache_dir": None})}
        cur = {"s": _artifact("s", params={"x": 1, "cache_dir": "/tmp/ci"})}
        assert compare_artifacts(base, cur, ignore_time=True).ok
        drift = {"s": _artifact("s", params={"x": 2, "cache_dir": None})}
        assert not compare_artifacts(base, drift, ignore_time=True).ok


class TestCachedProfileSpeedup:
    """The planner-grid speedup the harness was built to prove."""

    def test_uncached_mode_bypasses_persistent_cache(self, tmp_path):
        """cached=False measures the cold path; a warm disk cache must not
        short-circuit it (and it must not populate the cache either)."""
        cache_dir = str(tmp_path)
        warm_setup = run_scenario(
            "planner_grid", overrides=dict(SMALL_GRID, cache_dir=cache_dir)
        )
        assert warm_setup.info["cache_writes"] > 0
        uncached = run_scenario(
            "planner_grid",
            overrides=dict(SMALL_GRID, cached=False, cache_dir=cache_dir),
        )
        assert uncached.info["persistent_cache"] is False
        assert "cache_hits" not in uncached.info
        # Same deterministic results either way.
        assert uncached.ops == warm_setup.ops
        assert uncached.metrics == warm_setup.metrics

    def test_caching_reduces_profile_computations(self):
        """Deterministic core of the speedup: fewer timings are computed."""
        cached = run_scenario(
            "planner_grid", overrides=dict(SMALL_GRID, cached=True)
        )
        uncached = run_scenario(
            "planner_grid", overrides=dict(SMALL_GRID, cached=False)
        )
        # Identical results and op counts, strictly less recomputation.
        assert cached.metrics["plans"] == uncached.metrics["plans"]
        assert cached.ops == uncached.ops
        assert (
            cached.info["profile_computations"]
            < uncached.info["profile_computations"]
        )

    def test_warm_profile_lookups_beat_cold_computation(self):
        """Wall-clock: repeated layer-timing queries hit the memo table."""
        profiler = LayerProfiler()
        graph = vgg16()
        queries = [
            (spec, batch) for spec in graph.specs() for batch in (1, 2, 4, 8, 16, 32)
        ]
        start = time.perf_counter()
        for spec, batch in queries:
            profiler.layer_timing(spec, batch)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        for spec, batch in queries:
            profiler.layer_timing(spec, batch)
        warm = time.perf_counter() - start
        assert profiler.cache_stats.hits >= len(queries)
        # Lookups are ~10x cheaper than kernel-model math; 0.8 margins the
        # assertion against scheduler noise on busy CI runners.
        assert warm < cold * 0.8

    def test_grid_scenario_not_slower_with_caches(self):
        """End-to-end guard: the cached grid never loses to the cold path."""
        overrides = {"models": ["resnet50"], "gpu_counts": [1, 2, 4, 8]}
        cached = run_scenario(
            "planner_grid", overrides=dict(overrides, cached=True), repeats=2
        )
        uncached = run_scenario(
            "planner_grid", overrides=dict(overrides, cached=False), repeats=2
        )
        # Generous margin: the win is ~10% locally, but CI machines are noisy.
        assert cached.wall_time_s <= uncached.wall_time_s * 1.2


#: Scaled-down sched_sim_xxl parameters (the defaults simulate 16k GPUs).
XXL_SMALL = {
    "pools": ["a100:16", "v100:16"],
    "gpus_per_host": 4,
    "num_jobs": 30,
    "seed": 5,
    "failures": 2,
    "failure_seed": 3,
    "failure_window": [30.0, 240.0],
    "mean_downtime": 30.0,
    "shard_epochs": 3,
    "shard_workers": 1,
}


class TestShardedXXLScenario:
    """The sched_sim_xxl scenario, scaled down to suite speed."""

    def test_matches_single_process_run(self):
        """The scenario's stitched result is the serial run, byte for byte."""
        from repro.profiler.gpu_spec import get_gpu_spec
        from repro.sched import (
            CheckpointModel,
            ClusterFleet,
            ClusterScheduler,
            GpuPoolSpec,
            inject_failures,
            mixed_trace,
        )
        from repro.serve.replay import result_fingerprint

        artifact = run_scenario("sched_sim_xxl", overrides=XXL_SMALL)
        fleet = ClusterFleet(
            (
                GpuPoolSpec("a100", get_gpu_spec("a100"), 16, 4),
                GpuPoolSpec("v100", get_gpu_spec("v100"), 16, 4),
            )
        )
        sched = ClusterScheduler(
            fleet, fabric="nvswitch", checkpoint=CheckpointModel(120.0, 15.0)
        )
        jobs = mixed_trace(30, seed=5)
        schedule = inject_failures(
            fleet, 2, seed=3, window=(30.0, 240.0), mean_downtime=30.0
        )
        serial = sched.run(jobs, "collocation", failures=schedule)
        assert artifact.info["result_fingerprint"] == result_fingerprint(serial)
        assert artifact.ops == serial.events_processed
        assert artifact.metrics["failures"] == float(serial.failures_injected)

    def test_shard_knobs_and_cache_do_not_move_the_fingerprint(self, tmp_path):
        """shard_epochs/shard_workers/cache_dir are environment params: any
        combination produces identical gated results, and the compare gate
        treats the artifacts as the same workload."""
        cache_dir = str(tmp_path / "cache")
        base = run_scenario("sched_sim_xxl", overrides=XXL_SMALL)
        warm_setup = dict(
            XXL_SMALL, cache_dir=cache_dir, shard_epochs=2, shard_workers=2
        )
        cold = run_scenario("sched_sim_xxl", overrides=warm_setup)
        warm = run_scenario("sched_sim_xxl", overrides=warm_setup)
        assert base.metrics == cold.metrics == warm.metrics
        assert base.ops == cold.ops == warm.ops
        assert cold.info["anchor_writes"] == 2
        assert warm.info["anchor_hits"] == 2
        assert warm.info["anchor_pass_s"] == 0.0
        comparison = compare_artifacts(
            {"sched_sim_xxl": base}, {"sched_sim_xxl": warm}, ignore_time=True
        )
        assert comparison.ok

    def test_failure_window_must_be_a_pair(self):
        with pytest.raises(ValueError, match="failure_window"):
            run_scenario(
                "sched_sim_xxl",
                overrides=dict(XXL_SMALL, failure_window=[1.0]),
            )
