"""Tests for the model zoo: structure and published parameter counts."""

import pytest

from repro.models import (
    MODEL_REGISTRY,
    TABLE1_MODELS,
    available_models,
    build_model,
    inception_v3,
    model_entry,
    resnet50,
    vgg11,
    vgg16,
    wide_resnet101_2,
)


class TestParameterCounts:
    """Published parameter counts (torchvision) within 2%."""

    @pytest.mark.parametrize(
        "builder,expected_millions",
        [
            (vgg11, 132.9),
            (vgg16, 138.4),
            (resnet50, 25.6),
            (wide_resnet101_2, 126.9),
            (inception_v3, 23.8),
        ],
    )
    def test_param_count(self, builder, expected_millions):
        graph = builder()
        params_m = graph.total_params() / 1e6
        assert params_m == pytest.approx(expected_millions, rel=0.02)


class TestStructure:
    def test_vgg_models_are_chains(self):
        assert vgg11().is_chain()
        assert vgg16().is_chain()

    def test_vgg16_has_13_convs_and_3_fcs(self):
        graph = vgg16()
        ops = [s.op for s in graph.specs()]
        assert ops.count("conv2d") == 13
        assert ops.count("dense") == 3
        assert ops.count("maxpool") == 5

    def test_resnet_models_branch(self):
        assert not resnet50().is_chain()
        assert not wide_resnet101_2().is_chain()

    def test_resnet50_block_count(self):
        graph = resnet50()
        # 16 bottleneck blocks -> 16 residual additions.
        adds = [s for s in graph.specs() if s.op == "add"]
        assert len(adds) == 16

    def test_wide_resnet101_block_count(self):
        graph = wide_resnet101_2()
        adds = [s for s in graph.specs() if s.op == "add"]
        assert len(adds) == 33

    def test_wide_resnet_is_wider_than_resnet101(self):
        from repro.models import resnet101

        wide = wide_resnet101_2(input_shape=(3, 224, 224))
        narrow = resnet101()
        assert wide.total_params() > 1.5 * narrow.total_params()

    def test_inception_branches_and_concats(self):
        graph = inception_v3()
        concats = [s for s in graph.specs() if s.op == "concat"]
        # 11 inception modules plus the nested concatenations inside the two
        # InceptionE modules (2 each).
        assert len(concats) >= 11
        assert len(graph.branch_layers()) >= 11

    def test_all_models_validate(self):
        for name in available_models():
            graph = build_model(name)
            graph.validate()
            assert graph.source() is not None
            assert graph.sink() is not None

    def test_flops_are_plausible(self):
        # Known forward GFLOPs per sample (within 20%).
        assert vgg16().total_flops_per_sample() / 1e9 == pytest.approx(30.9, rel=0.2)
        assert resnet50().total_flops_per_sample() / 1e9 == pytest.approx(8.2, rel=0.2)
        assert inception_v3().total_flops_per_sample() / 1e9 == pytest.approx(11.4, rel=0.2)


class TestRegistry:
    def test_available_models_sorted_and_complete(self):
        names = available_models()
        assert names == sorted(names)
        for expected in ["vgg16", "wide_resnet101_2", "inception_v3", "resnet50", "vgg11"]:
            assert expected in names

    def test_table1_models(self):
        assert TABLE1_MODELS == ["vgg16", "wide_resnet101_2", "inception_v3"]

    def test_model_entry_lookup(self):
        entry = model_entry("vgg16")
        assert entry.input_shape == (3, 224, 224)
        assert entry.default_global_batch == 32

    def test_unknown_model_raises_with_suggestions(self):
        with pytest.raises(KeyError) as err:
            model_entry("vgg99")
        assert "available" in str(err.value)

    def test_build_model_matches_registry_input_shape(self):
        for name, entry in MODEL_REGISTRY.items():
            graph = build_model(name)
            input_spec = graph.spec(graph.source())
            assert input_spec.output_shape == entry.input_shape
