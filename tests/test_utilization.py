"""Tests for the device-utilization analysis (Figure 4 substrate)."""

import numpy as np
import pytest

from repro.models import resnet50, vgg16
from repro.profiler import LayerProfiler, mean_utilization, utilization_cdf


class TestUtilizationCDF:
    def setup_method(self):
        self.graph = resnet50()

    def test_cdf_is_monotone_and_bounded(self):
        cdf = utilization_cdf(self.graph, 16)
        assert np.all(np.diff(cdf.cumulative) >= -1e-12)
        assert cdf.cumulative[-1] == pytest.approx(1.0)
        assert np.all(cdf.utilization >= 0.0)
        assert np.all(cdf.utilization <= 1.0)
        assert np.all(np.diff(cdf.utilization) >= -1e-12)

    def test_mean_within_bounds(self):
        cdf = utilization_cdf(self.graph, 16)
        assert 0.0 < cdf.mean() <= 1.0

    def test_fraction_below_extremes(self):
        cdf = utilization_cdf(self.graph, 16)
        assert cdf.fraction_below(0.0) == 0.0
        assert cdf.fraction_below(1.01) == pytest.approx(1.0)

    def test_fraction_below_is_monotone(self):
        cdf = utilization_cdf(self.graph, 4)
        values = [cdf.fraction_below(x) for x in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_utilization_improves_with_batch_size(self):
        """The core Figure 4 observation."""
        means = mean_utilization(self.graph, [1, 16, 256])
        assert means[1] < means[16] < means[256]
        assert means[1] < 0.2
        assert means[256] > 0.8

    def test_small_batch_spends_most_time_at_low_utilization(self):
        cdf = utilization_cdf(self.graph, 1)
        assert cdf.fraction_below(0.5) > 0.5

    def test_works_for_other_models(self):
        cdf = utilization_cdf(vgg16(), 8)
        assert 0.0 < cdf.mean() <= 1.0

    def test_reuses_provided_profiler(self):
        profiler = LayerProfiler()
        cdf = utilization_cdf(self.graph, 8, profiler=profiler)
        assert cdf.batch == 8
