"""Planner edge cases: tight amplification, tiny budgets, ablation grids."""

import pytest

from repro.core.planner import BurstParallelPlanner, PlannerConfig
from repro.models import build_model, vgg11, vgg16
from repro.models.graph import LayerSpec, ModelGraph
from repro.network import get_fabric


@pytest.fixture(scope="module")
def fabric():
    return get_fabric("nvswitch")


def _assert_valid_plan(plan, graph, total_gpus):
    """A plan is valid when every layer is assigned once at a legal width."""
    assigned = sorted(a.layer_id for a in plan.assignments)
    assert assigned == sorted(graph.layer_ids())
    assert all(1 <= a.num_gpus <= total_gpus for a in plan.assignments)
    assert plan.iteration_time > 0.0
    assert plan.total_gpus == total_gpus


class TestAmplificationLimitOne:
    """amplification_limit=1.0: no GPU-second inefficiency allowed."""

    def test_config_accepts_exactly_one(self):
        assert PlannerConfig(amplification_limit=1.0).amplification_limit == 1.0

    def test_config_rejects_below_one(self):
        with pytest.raises(ValueError):
            PlannerConfig(amplification_limit=0.99)

    @pytest.mark.parametrize("builder", [vgg11, vgg16])
    def test_chain_models_still_plan(self, fabric, builder):
        graph = builder()
        planner = BurstParallelPlanner(
            fabric, config=PlannerConfig(amplification_limit=1.0)
        )
        plan = planner.plan(graph, global_batch=32, total_gpus=8)
        _assert_valid_plan(plan, graph, total_gpus=8)

    def test_branching_model_still_plans(self, fabric):
        graph = build_model("inception_v3")
        planner = BurstParallelPlanner(
            fabric, config=PlannerConfig(amplification_limit=1.0)
        )
        plan = planner.plan(graph, global_batch=32, total_gpus=8)
        _assert_valid_plan(plan, graph, total_gpus=8)

    def test_tight_limit_never_beats_loose_limit(self, fabric):
        graph = vgg16()
        planner = BurstParallelPlanner(fabric)
        tight = planner.plan(graph, 32, 8, amplification_limit=1.0)
        loose = planner.plan(graph, 32, 8, amplification_limit=4.0)
        assert loose.iteration_time <= tight.iteration_time


class TestSingleGpuBudget:
    def test_plan_with_one_gpu_is_all_width_one(self, fabric):
        graph = vgg16()
        planner = BurstParallelPlanner(fabric)
        plan = planner.plan(graph, global_batch=32, total_gpus=1)
        _assert_valid_plan(plan, graph, total_gpus=1)
        assert all(a.num_gpus == 1 for a in plan.assignments)

    def test_single_gpu_matches_reference_plan_time(self, fabric):
        graph = vgg11()
        planner = BurstParallelPlanner(fabric)
        plan = planner.plan(graph, global_batch=16, total_gpus=1)
        reference = planner.single_gpu_plan(graph, global_batch=16)
        # Same per-layer compute; the searched plan may only add sync/comm.
        assert plan.iteration_time >= reference.iteration_time * 0.99

    def test_branching_model_on_one_gpu(self, fabric):
        graph = build_model("inception_v3")
        planner = BurstParallelPlanner(fabric)
        plan = planner.plan(graph, global_batch=32, total_gpus=1)
        _assert_valid_plan(plan, graph, total_gpus=1)
        assert all(a.num_gpus == 1 for a in plan.assignments)


class TestAllIntegersAblation:
    """powers_of_two_only=False: the paper's search-space ablation."""

    def test_plan_valid_on_non_power_of_two_budget(self, fabric):
        graph = vgg11()
        planner = BurstParallelPlanner(
            fabric, config=PlannerConfig(powers_of_two_only=False)
        )
        plan = planner.plan(graph, global_batch=32, total_gpus=6)
        _assert_valid_plan(plan, graph, total_gpus=6)

    def test_wider_search_space_never_loses(self, fabric):
        graph = vgg11()
        pow2 = BurstParallelPlanner(
            fabric, config=PlannerConfig(powers_of_two_only=True)
        ).plan(graph, global_batch=32, total_gpus=8)
        dense = BurstParallelPlanner(
            fabric, config=PlannerConfig(powers_of_two_only=False)
        ).plan(graph, global_batch=32, total_gpus=8)
        # The all-integers grid is a superset of the powers of two.
        assert dense.iteration_time <= pow2.iteration_time * (1.0 + 1e-9)

    def test_ablation_can_pick_non_power_of_two_width(self, fabric):
        graph = vgg16()
        planner = BurstParallelPlanner(
            fabric, config=PlannerConfig(powers_of_two_only=False)
        )
        plan = planner.plan(graph, global_batch=24, total_gpus=6)
        _assert_valid_plan(plan, graph, total_gpus=6)
        assert max(a.num_gpus for a in plan.assignments) <= 6


def _tiny_graph(name):
    graph = ModelGraph(name)
    src = graph.add_layer(
        LayerSpec(name="input", op="input", flops_per_sample=0, params=0,
                  input_elems_per_sample=16, output_elems_per_sample=16)
    )
    graph.add_layer(
        LayerSpec(name="fc", op="dense", flops_per_sample=1024, params=256,
                  input_elems_per_sample=16, output_elems_per_sample=16),
        inputs=[src],
    )
    return graph


class TestCostModelCacheBound:
    def test_planner_cost_model_cache_is_bounded(self, fabric):
        """A planner fed many distinct graphs must not retain them all."""
        planner = BurstParallelPlanner(fabric)
        for i in range(planner._COST_MODEL_CACHE_SIZE + 8):
            planner.plan(_tiny_graph(f"tiny-{i}"), global_batch=4, total_gpus=2)
        assert len(planner._cost_models) <= planner._COST_MODEL_CACHE_SIZE
