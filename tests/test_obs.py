"""Tests for the observability layer (repro.obs): registry, recorder, sampler."""

import json

import pytest

from repro.obs import (
    EV_ARRIVAL,
    EV_COMPLETION,
    EV_GPU_GRANT,
    EV_KILL,
    EV_NODE_FAILURE,
    EV_NODE_RECOVERY,
    EV_PLACEMENT,
    EV_RESTART,
    MetricsRegistry,
    TimeSeriesSampler,
    TraceRecorder,
    global_registry,
)
from repro.obs.report import digest, load_trace, report
from repro.profiler.gpu_spec import get_gpu_spec
from repro.sched import (
    CheckpointModel,
    ClusterFleet,
    ClusterScheduler,
    GpuPoolSpec,
    inject_failures,
    mixed_trace,
    synthetic_trace,
)


# ---------------------------------------------------------------------------
# Counter/timer registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_identity_and_add(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert reg.counter("x") is c
        c.add(3)
        c.add(2)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_scoped_counter_rolls_up(self):
        reg = MetricsRegistry()
        agg = reg.counter("hits")
        a = reg.scoped_counter("hits")
        b = reg.scoped_counter("hits")
        a.add(2)
        b.add(3)
        assert a.value == 2
        assert b.value == 3
        assert agg.value == 5
        a.reset()  # local reset leaves the aggregate alone
        assert a.value == 0
        assert agg.value == 5

    def test_timer_records(self):
        reg = MetricsRegistry()
        t = reg.timer("work")
        with t.time():
            pass
        t.record(0.25)
        assert t.count == 2
        assert t.total_s >= 0.25

    def test_snapshot_and_delta(self):
        reg = MetricsRegistry()
        reg.counter("a").add(1)
        before = reg.snapshot()
        assert before["a"] == 1
        reg.counter("a").add(4)
        reg.counter("b").add(2)
        reg.timer("t").record(0.5)
        delta = reg.delta_since(before)
        assert delta["a"] == 4
        assert delta["b"] == 2
        assert delta["t.count"] == 1
        assert delta["t.total_s"] == pytest.approx(0.5)
        # Untouched counters do not appear in the delta.
        reg.counter("quiet")
        assert "quiet" not in reg.delta_since(before)

    def test_reset_clears_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.add(7)
        reg.reset()
        assert c.value == 0
        assert reg.counter("n") is c

    def test_global_registry_is_process_wide(self):
        assert global_registry() is global_registry()


# ---------------------------------------------------------------------------
# Time-series sampler
# ---------------------------------------------------------------------------

class TestTimeSeriesSampler:
    def test_samples_on_interval_grid(self):
        sampler = TimeSeriesSampler(interval_s=10.0)
        sampler.begin_run()
        assert sampler.advance_to(5.0, lambda: {"g": 1.0}) == 1  # t=0
        assert sampler.advance_to(25.0, lambda: {"g": 2.0}) == 2  # t=10,20
        assert sampler.advance_to(25.5, lambda: {"g": 3.0}) == 0
        assert sampler.times == (0.0, 10.0, 20.0)
        assert sampler.column("g") == (1.0, 2.0, 2.0)

    def test_gauges_called_once_per_advance(self):
        calls = []

        def gauges():
            calls.append(1)
            return {"g": float(len(calls))}

        sampler = TimeSeriesSampler(interval_s=1.0)
        sampler.begin_run()
        sampler.advance_to(3.5, gauges)
        assert len(calls) == 1

    def test_new_gauges_backfill_zero(self):
        sampler = TimeSeriesSampler(interval_s=1.0)
        sampler.begin_run()
        sampler.advance_to(1.5, lambda: {"a": 1.0})
        sampler.advance_to(2.5, lambda: {"a": 2.0, "b": 9.0})
        assert sampler.column("b") == (0.0, 0.0, 9.0)
        # A gauge that vanishes carries its last value forward.
        sampler.advance_to(3.5, lambda: {"a": 3.0})
        assert sampler.column("b")[-1] == 9.0

    def test_summary(self):
        sampler = TimeSeriesSampler(interval_s=1.0)
        sampler.begin_run()
        sampler.advance_to(0.5, lambda: {"g": 4.0})
        sampler.advance_to(2.5, lambda: {"g": 2.0})
        summary = sampler.summary()
        assert summary["num_samples"] == 3
        assert summary["g"]["min"] == 2.0
        assert summary["g"]["max"] == 4.0
        assert summary["g"]["last"] == 2.0

    def test_begin_run_clears(self):
        sampler = TimeSeriesSampler(interval_s=1.0)
        sampler.begin_run()
        sampler.advance_to(5.0, lambda: {"g": 1.0})
        assert sampler.num_samples > 0
        sampler.begin_run()
        assert sampler.num_samples == 0
        assert sampler.gauge_names == []

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(interval_s=0.0)


# ---------------------------------------------------------------------------
# Trace recorder against the real scheduler
# ---------------------------------------------------------------------------

def _hetero_setup(num_jobs=40, failures=3):
    fleet = ClusterFleet(
        (
            GpuPoolSpec("a100", get_gpu_spec("a100"), 32, 8),
            GpuPoolSpec("v100", get_gpu_spec("v100"), 32, 8),
        )
    )
    sched = ClusterScheduler(
        fleet, checkpoint=CheckpointModel(60.0, 10.0)
    )
    jobs = mixed_trace(num_jobs, seed=3)
    schedule = inject_failures(
        fleet, failures, seed=5, window=(30.0, 240.0), mean_downtime=40.0
    )
    return sched, jobs, schedule


class TestTraceRecorder:
    def test_recorder_does_not_perturb_metrics(self):
        jobs = synthetic_trace(16, seed=7)
        plain = ClusterScheduler(num_gpus=16).run(jobs, "collocation")

        sched = ClusterScheduler(num_gpus=16)
        sched.attach_recorder(TraceRecorder())
        sched.attach_sampler(TimeSeriesSampler(interval_s=15.0))
        observed = sched.run(jobs, "collocation")

        assert observed.metrics == plain.metrics
        assert observed.events_processed == plain.events_processed

    def test_records_full_job_lifecycle(self):
        sched, jobs, schedule = _hetero_setup()
        recorder = TraceRecorder()
        sampler = TimeSeriesSampler(interval_s=20.0)
        sched.attach_recorder(recorder)
        sched.attach_sampler(sampler)
        result = sched.run(jobs, "collocation", failures=schedule)

        assert len(recorder.events_of(EV_ARRIVAL)) == len(jobs)
        assert len(recorder.events_of(EV_COMPLETION)) == result.metrics.num_jobs
        assert len(recorder.events_of(EV_NODE_FAILURE)) == len(schedule)
        assert len(recorder.events_of(EV_NODE_RECOVERY)) == len(schedule)
        assert recorder.events_of(EV_PLACEMENT)
        # Failures killed running jobs, which later restarted with overhead.
        if recorder.events_of(EV_KILL):
            assert result.metrics.restarts == len(recorder.events_of(EV_RESTART))
        # Grants always carry the pool's post-take occupancy.
        for event in recorder.events_of(EV_GPU_GRANT):
            assert event.pool
            assert event.free_gpus >= 0
            assert event.gpus
        # Event times never go backwards.
        times = [e.time for e in recorder.events]
        assert times == sorted(times)
        # The sampler covered the whole makespan.
        assert sampler.num_samples >= result.metrics.makespan // 20.0
        assert "free_gpus" in sampler.gauge_names
        assert "pending_jobs" in sampler.gauge_names

    def test_trace_export_is_byte_identical(self, tmp_path):
        texts = []
        for run in range(2):
            sched, jobs, schedule = _hetero_setup()
            recorder = TraceRecorder()
            sched.attach_recorder(recorder)
            sched.run(jobs, "collocation", failures=schedule)
            texts.append(recorder.chrome_trace_json())
        assert texts[0] == texts[1]
        path = tmp_path / "trace.json"
        path.write_text(texts[0])
        assert path.read_text() == texts[0]

    def test_chrome_trace_structure(self):
        sched, jobs, schedule = _hetero_setup()
        recorder = TraceRecorder()
        sched.attach_recorder(recorder)
        sched.run(jobs, "collocation", failures=schedule)
        trace = recorder.to_chrome_trace()
        events = trace["traceEvents"]
        phases = {row["ph"] for row in events}
        assert {"M", "X", "i", "C"} <= phases
        # Every span sits on a named pool process with non-negative duration.
        pids = {
            row["pid"] for row in events
            if row["ph"] == "M" and row["name"] == "process_name"
        }
        for row in events:
            if row["ph"] == "X":
                assert row["pid"] in pids
                assert row["dur"] >= 0.0
        assert trace["otherData"]["policy"] == "collocation"
        assert trace["otherData"]["recorded_events"] == len(recorder)
        # Valid JSON end to end.
        json.loads(recorder.chrome_trace_json())

    def test_export_requires_bound_run(self):
        with pytest.raises(RuntimeError):
            TraceRecorder().to_chrome_trace()

    def test_detach_recorder(self):
        jobs = synthetic_trace(6, seed=1)
        sched = ClusterScheduler(num_gpus=8)
        recorder = TraceRecorder()
        sched.attach_recorder(recorder)
        sched.run(jobs, "fifo")
        recorded = len(recorder)
        assert recorded > 0
        sched.attach_recorder(None)
        sched.run(jobs, "fifo")
        assert len(recorder) == recorded  # detached: log untouched


# ---------------------------------------------------------------------------
# Report CLI
# ---------------------------------------------------------------------------

class TestReport:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        sched, jobs, schedule = _hetero_setup(num_jobs=20, failures=2)
        recorder = TraceRecorder()
        sched.attach_recorder(recorder)
        sched.run(jobs, "collocation", failures=schedule)
        return recorder.write_chrome_trace(tmp_path / "trace.json")

    def test_report_exits_zero(self, trace_path, capsys):
        assert report(str(trace_path)) == 0
        out = capsys.readouterr().out
        assert "trace digest" in out
        assert "pool a100" in out

    def test_cli_main(self, trace_path):
        from repro.obs.__main__ import main

        assert main(["report", str(trace_path)]) == 0

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert report(str(bad)) == 1
        assert report(str(tmp_path / "missing.json")) == 1
        not_a_trace = tmp_path / "empty.json"
        not_a_trace.write_text("{}")
        assert report(str(not_a_trace)) == 1

    def test_digest_counts(self, trace_path):
        info = digest(load_trace(str(trace_path)))
        assert info["num_events"] > 0
        assert info["by_phase"]["X"] > 0
        assert any(p["name"] == "pool a100" for p in info["pools"])
        assert len(info["longest_spans"]) <= 10
