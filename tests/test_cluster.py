"""Tests for the cluster layer (jobs, coordinator, executor, baselines)."""

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterExecutor,
    ClusterPartitionBaseline,
    CollocationProfile,
    GPURuntime,
    JobKind,
    ScenarioThroughput,
    TradeoffPoint,
    TrainingJob,
    pareto_frontier,
)
from repro.core.planner import BurstParallelPlanner, PlannerConfig
from repro.models import vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler


@pytest.fixture(scope="module")
def fabric():
    return get_fabric("nvswitch")


@pytest.fixture(scope="module")
def planner(fabric):
    return BurstParallelPlanner(fabric, LayerProfiler(), PlannerConfig(2.0))


@pytest.fixture(scope="module")
def vgg_job():
    return TrainingJob(name="vgg16", graph=vgg16(), global_batch=32)


@pytest.fixture(scope="module")
def bp_plan(planner, vgg_job):
    return planner.plan(vgg_job.graph, vgg_job.global_batch, 8)


class TestTrainingJob:
    def test_foreground_and_background_conversion(self, vgg_job):
        assert vgg_job.is_foreground
        bg = vgg_job.background(batch=4)
        assert bg.is_background
        assert bg.global_batch == 4
        assert bg.kind is JobKind.BACKGROUND
        assert bg.name.endswith("-bg")

    def test_foreground_round_trip_is_identity(self, vgg_job):
        assert vgg_job.foreground() == vgg_job

    def test_background_to_foreground_round_trip(self, vgg_job):
        round_tripped = vgg_job.background(batch=4).foreground()
        assert round_tripped.is_foreground
        assert round_tripped.kind is JobKind.FOREGROUND
        # The graph and batch survive the round trip; the amplification
        # limit does not (background jobs have none to restore).
        assert round_tripped.graph is vgg_job.graph
        assert round_tripped.global_batch == 4
        assert round_tripped.amplification_limit is None

    def test_background_round_trip_preserves_batch_by_default(self, vgg_job):
        bg = vgg_job.background()
        assert bg.global_batch == vgg_job.global_batch
        assert bg.background(batch=2).global_batch == 2

    def test_invalid_job_rejected(self):
        with pytest.raises(ValueError):
            TrainingJob(name="bad", graph=vgg16(), global_batch=0)
        with pytest.raises(ValueError):
            TrainingJob(name="bad", graph=vgg16(), global_batch=8, amplification_limit=0.5)


class TestGPURuntime:
    def test_busy_and_idle_fractions(self, bp_plan):
        runtime = GPURuntime(gpu_id=0)
        for a in bp_plan.assignments[:5]:
            runtime.assign_stage(a)
        busy = runtime.busy_fraction(bp_plan.iteration_time)
        assert 0.0 <= busy <= 1.0
        assert runtime.idle_fraction(bp_plan.iteration_time) == pytest.approx(1 - busy)

    def test_attach_background_requires_background_job(self, vgg_job):
        runtime = GPURuntime(gpu_id=0)
        with pytest.raises(ValueError):
            runtime.attach_background(vgg_job)
        runtime.attach_background(vgg_job.background(batch=4))
        assert runtime.background_job is not None


class TestClusterCoordinator:
    def test_placement_covers_all_gpus_in_widest_stage(self, bp_plan):
        coordinator = ClusterCoordinator(num_gpus=8)
        runtimes = coordinator.place_plan(bp_plan)
        # GPU 0 participates in every non-parallel stage; the last GPU only
        # in the widest stages, so it is busy for less time.
        assert runtimes[0].foreground_busy_time >= runtimes[-1].foreground_busy_time
        assert all(rt.foreground_busy_time >= 0 for rt in runtimes)

    def test_placement_accepts_json_plans(self, bp_plan):
        coordinator = ClusterCoordinator(num_gpus=8)
        runtimes = coordinator.place_plan(bp_plan.to_json())
        assert sum(rt.foreground_busy_time for rt in runtimes) == pytest.approx(
            bp_plan.total_gpu_seconds(), rel=1e-6
        )

    def test_plan_larger_than_cluster_rejected(self, bp_plan):
        coordinator = ClusterCoordinator(num_gpus=4)
        with pytest.raises(ValueError):
            coordinator.place_plan(bp_plan)

    def test_busy_fractions_and_idle_gpu_seconds(self, bp_plan):
        coordinator = ClusterCoordinator(num_gpus=8)
        coordinator.place_plan(bp_plan)
        fractions = coordinator.busy_fractions(bp_plan.iteration_time)
        assert len(fractions) == 8
        assert all(0.0 <= f <= 1.0 for f in fractions)
        idle = coordinator.idle_gpu_seconds(bp_plan.iteration_time)
        total = 8 * bp_plan.iteration_time
        assert 0.0 <= idle <= total

    def test_background_placement(self, vgg_job):
        coordinator = ClusterCoordinator(num_gpus=4)
        coordinator.place_background(vgg_job.background(batch=2))
        assert all(rt.background_job is not None for rt in coordinator.runtimes)

    def test_background_placement_explicit_subset(self, vgg_job):
        coordinator = ClusterCoordinator(num_gpus=4)
        coordinator.place_background(vgg_job.background(batch=2), gpu_ids=[1, 3])
        hosts = [rt.gpu_id for rt in coordinator.runtimes if rt.background_job]
        assert hosts == [1, 3]

    def test_background_placement_empty_subset_is_noop(self, vgg_job):
        coordinator = ClusterCoordinator(num_gpus=4)
        coordinator.place_background(vgg_job.background(batch=2), gpu_ids=[])
        assert all(rt.background_job is None for rt in coordinator.runtimes)

    def test_full_width_parallel_branch_rejected(self, bp_plan):
        # A concurrent branch spanning every GPU would overlap the critical
        # path's GPU range (which always includes GPU 0).
        from repro.core.planner.plan import LayerAssignment, TrainingPlan

        plan = TrainingPlan(
            model_name="handmade",
            global_batch=8,
            total_gpus=4,
            amplification_limit=2.0,
            assignments=[
                LayerAssignment(
                    layer_id=0, layer_name="trunk", op="conv2d",
                    num_gpus=2, compute_time=1e-3,
                ),
                LayerAssignment(
                    layer_id=1, layer_name="branch", op="conv2d",
                    num_gpus=4, compute_time=1e-3, parallel_branch=True,
                ),
            ],
            iteration_time=2e-3,
        )
        coordinator = ClusterCoordinator(num_gpus=4)
        with pytest.raises(ValueError, match="overlap the critical-path"):
            coordinator.place_plan(plan)

    def test_planner_parallel_branches_still_place(self, fabric):
        # Plans emitted by the planner always leave room for the critical
        # branch, so placement keeps working for branching models.
        from repro.models import inception_v3

        planner = BurstParallelPlanner(fabric, LayerProfiler(), PlannerConfig(2.0))
        plan = planner.plan(inception_v3(), 32, 8)
        assert any(a.parallel_branch for a in plan.assignments)
        coordinator = ClusterCoordinator(num_gpus=8)
        runtimes = coordinator.place_plan(plan)
        assert sum(rt.foreground_busy_time for rt in runtimes) > 0

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            ClusterCoordinator(num_gpus=0)


class TestCollocationProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            CollocationProfile(fg_slowdown=0.5)
        with pytest.raises(ValueError):
            CollocationProfile(bg_busy_efficiency=1.5)

    def test_defaults_are_sane(self):
        profile = CollocationProfile()
        assert profile.fg_slowdown >= 1.0
        assert profile.bg_idle_efficiency > profile.bg_busy_efficiency

    def test_calibrate_accepts_bg_idle_efficiency(self, vgg_job):
        from repro.core.multiplexing.collocation import CollocationResult

        class StubRunner:
            def run_scenario(self, *args, **kwargs):
                return CollocationResult(
                    label="calibration",
                    fg_throughput=80.0,
                    bg_throughput=30.0,
                    fg_isolated_throughput=100.0,
                    device_utilization=0.9,
                )

            def background_only_throughput(self, *args, **kwargs):
                return 60.0

        graph = vgg_job.graph
        profile = CollocationProfile.calibrate(
            StubRunner(), graph, 4, graph, bg_idle_efficiency=0.8
        )
        assert profile.bg_idle_efficiency == 0.8
        assert profile.fg_slowdown == pytest.approx(100.0 / 80.0)
        assert profile.bg_busy_efficiency == pytest.approx(0.5)
        default = CollocationProfile.calibrate(StubRunner(), graph, 4, graph)
        assert default.bg_idle_efficiency == 0.95


class TestClusterExecutor:
    def test_plan_without_background_has_no_bg_throughput(self, fabric, bp_plan):
        executor = ClusterExecutor(fabric)
        scenario = executor.execute_plan(bp_plan, label="BP")
        assert scenario.bg_throughput == 0.0
        assert scenario.fg_throughput == pytest.approx(
            bp_plan.global_batch / bp_plan.iteration_time
        )

    def test_collocation_adds_bg_and_slows_fg(self, fabric, bp_plan, vgg_job):
        executor = ClusterExecutor(fabric)
        profile = CollocationProfile(fg_slowdown=1.2, bg_busy_efficiency=0.3)
        alone = executor.execute_plan(bp_plan)
        collocated = executor.execute_plan(
            bp_plan, background=vgg_job.background(batch=4), collocation=profile
        )
        assert collocated.bg_throughput > 0
        assert collocated.fg_throughput < alone.fg_throughput
        assert collocated.total_throughput > alone.total_throughput

    def test_bg_throughput_bounded_by_bg_only(self, fabric, bp_plan, vgg_job):
        executor = ClusterExecutor(fabric)
        bg = vgg_job.background(batch=4)
        collocated = executor.execute_plan(
            bp_plan, background=bg, collocation=CollocationProfile()
        )
        ceiling = executor.background_only(bg, bp_plan.total_gpus)
        assert collocated.bg_throughput <= ceiling.bg_throughput

    def test_figure9_scenarios_structure(self, fabric, vgg_job):
        executor = ClusterExecutor(fabric)
        scenarios = executor.figure9_scenarios(vgg_job, 8, bg_batch=4)
        labels = [s.label for s in scenarios]
        assert labels == ["DP", "BP", "BP + Col", "BG Only"]
        dp, bp, col, bg_only = scenarios
        assert col.total_throughput > dp.total_throughput
        assert bg_only.fg_throughput == 0.0


class TestPartitionBaseline:
    def test_partition_sweep(self, fabric, vgg_job):
        baseline = ClusterPartitionBaseline(fabric)
        scenarios = baseline.sweep(vgg_job, vgg_job.background(batch=8), 8)
        assert len(scenarios) == 4
        # More foreground GPUs -> faster foreground, less background.
        assert scenarios[-1].fg_throughput > scenarios[0].fg_throughput
        assert scenarios[-1].bg_throughput < scenarios[0].bg_throughput
        assert scenarios[-1].bg_throughput == 0.0  # 8+0 partition

    def test_invalid_partition_rejected(self, fabric, vgg_job):
        baseline = ClusterPartitionBaseline(fabric)
        with pytest.raises(ValueError):
            baseline.evaluate(vgg_job, vgg_job.background(batch=8), 8, 0)

    def test_tradeoff_points_speedup_reference(self, fabric, vgg_job):
        baseline = ClusterPartitionBaseline(fabric)
        points = baseline.tradeoff_points(vgg_job, vgg_job.background(batch=8), 8)
        by_label = {p.label: p for p in points}
        assert by_label["Partition 1+7"].fg_speedup == pytest.approx(1.0, rel=0.05)
        assert by_label["Partition 8+0"].fg_speedup > 1.5


class TestTradeoffHelpers:
    def test_dominance(self):
        a = TradeoffPoint("a", fg_speedup=2.0, cluster_throughput=100.0)
        b = TradeoffPoint("b", fg_speedup=1.0, cluster_throughput=50.0)
        c = TradeoffPoint("c", fg_speedup=3.0, cluster_throughput=40.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c) and not c.dominates(a)

    def test_pareto_frontier(self):
        points = [
            TradeoffPoint("a", 2.0, 100.0),
            TradeoffPoint("b", 1.0, 50.0),
            TradeoffPoint("c", 3.0, 40.0),
        ]
        frontier = pareto_frontier(points)
        labels = [p.label for p in frontier]
        assert labels == ["a", "c"]

    def test_scenario_total(self):
        s = ScenarioThroughput("x", fg_throughput=10.0, bg_throughput=5.0)
        assert s.total_throughput == 15.0
