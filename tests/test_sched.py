"""Tests for the trace-driven multi-tenant cluster scheduler (repro.sched)."""

import pytest

from repro.cluster.job import JobKind
from repro.sched import (
    POLICIES,
    ClusterScheduler,
    CollocationAwarePolicy,
    EventKind,
    EventQueue,
    FIFOPolicy,
    FleetMetrics,
    JobRecord,
    ShortestRemainingGPUSecondsPolicy,
    TraceJob,
    alibaba_trace,
    floor_pow2,
    get_policy,
    percentile,
    synthetic_trace,
)


# ---------------------------------------------------------------------------
# Event queue
# ---------------------------------------------------------------------------

class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.JOB_FINISH, "c")
        queue.push(1.0, EventKind.JOB_ARRIVAL, "a")
        queue.push(2.0, EventKind.JOB_ARRIVAL, "b")
        names = [queue.pop().job_name for _ in range(3)]
        assert names == ["a", "b", "c"]

    def test_simultaneous_events_keep_push_order(self):
        queue = EventQueue()
        for name in ("first", "second", "third"):
            queue.push(5.0, EventKind.JOB_ARRIVAL, name)
        names = [queue.pop().job_name for _ in range(3)]
        assert names == ["first", "second", "third"]

    def test_versions_travel_with_events(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.JOB_FINISH, "a", version=4)
        assert queue.pop().version == 4

    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None
        with pytest.raises(IndexError):
            queue.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.JOB_ARRIVAL, "a")

    def test_push_pop_counters(self):
        """The counters feed the bench harness's scheduler op counts."""
        queue = EventQueue()
        for t in (2.0, 1.0, 3.0):
            queue.push(t, EventKind.JOB_ARRIVAL, "a")
        queue.pop()
        assert queue.pushed == 3
        assert queue.popped == 1


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

class TestTraces:
    def test_synthetic_trace_deterministic(self):
        assert synthetic_trace(12, seed=5) == synthetic_trace(12, seed=5)
        assert synthetic_trace(12, seed=5) != synthetic_trace(12, seed=6)

    def test_synthetic_trace_sorted_and_mixed(self):
        trace = synthetic_trace(30, seed=1)
        arrivals = [j.arrival_time for j in trace]
        assert arrivals == sorted(arrivals)
        kinds = {j.kind for j in trace}
        assert kinds == {JobKind.FOREGROUND, JobKind.BACKGROUND}

    def test_alibaba_trace_deterministic_and_heavy_tailed(self):
        trace = alibaba_trace(60, seed=2)
        assert trace == alibaba_trace(60, seed=2)
        iterations = sorted(j.iterations for j in trace)
        # Log-normal sizes: the largest job dwarfs the median.
        assert iterations[-1] > 4 * iterations[len(iterations) // 2]
        # Most jobs are small best-effort jobs, as in the PAI trace.
        small = sum(1 for j in trace if not j.is_foreground)
        assert small > len(trace) / 2

    def test_trace_job_validation(self):
        with pytest.raises(ValueError):
            TraceJob("x", "vgg16", 32, arrival_time=-1.0, iterations=10)
        with pytest.raises(ValueError):
            TraceJob("x", "vgg16", 32, arrival_time=0.0, iterations=0)
        with pytest.raises(ValueError):
            TraceJob("x", "vgg16", 0, arrival_time=0.0, iterations=10)

    def test_trace_job_conversions(self):
        from repro.models import build_model

        job = TraceJob("x", "vgg16", 32, arrival_time=1.0, iterations=10)
        training = job.to_training_job(build_model("vgg16"))
        assert training.is_foreground
        assert training.amplification_limit == job.amplification_limit
        moved = job.with_arrival(9.0)
        assert moved.arrival_time == 9.0 and moved.name == job.name


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

class TestPolicies:
    def test_floor_pow2(self):
        assert [floor_pow2(v) for v in (0, 1, 2, 3, 4, 7, 8, 31, 32)] == [
            0, 1, 2, 2, 4, 4, 8, 16, 32,
        ]

    def test_registry(self):
        assert set(POLICIES) == {"fifo", "srgs", "collocation"}
        assert isinstance(get_policy("fifo"), FIFOPolicy)
        assert isinstance(get_policy(CollocationAwarePolicy), CollocationAwarePolicy)
        policy = ShortestRemainingGPUSecondsPolicy()
        assert get_policy(policy) is policy
        with pytest.raises(KeyError):
            get_policy("round-robin")

    def test_fifo_demands_full_width(self):
        policy = FIFOPolicy()
        job = TraceJob("x", "vgg16", 32, arrival_time=0.0, iterations=10)
        assert policy.width_for(job, free_gpus=32, num_gpus=32) == 32
        assert policy.width_for(job, free_gpus=31, num_gpus=32) is None

    def test_backfill_shrinks_to_free_pool(self):
        policy = ShortestRemainingGPUSecondsPolicy()
        job = TraceJob("x", "vgg16", 32, arrival_time=0.0, iterations=10)
        assert policy.width_for(job, free_gpus=5, num_gpus=32) == 4
        assert policy.width_for(job, free_gpus=0, num_gpus=32) is None

    def test_collocation_divides_cluster_among_waiting_jobs(self):
        policy = CollocationAwarePolicy()
        job = TraceJob("x", "vgg16", 32, arrival_time=0.0, iterations=10)
        assert policy.width_for(job, 32, 32, pending_foreground=1) == 32
        assert policy.width_for(job, 32, 32, pending_foreground=4) == 8
        # Even a tiny share lets a job start (narrow beats waiting).
        assert policy.width_for(job, 2, 32, pending_foreground=8) == 1

    def test_width_respects_batch_and_cap(self):
        policy = ShortestRemainingGPUSecondsPolicy()
        small_batch = TraceJob("x", "vgg16", 4, arrival_time=0.0, iterations=10)
        assert policy.width_for(small_batch, 32, 32) == 4
        capped = TraceJob(
            "y", "vgg16", 32, arrival_time=0.0, iterations=10, max_gpus=8
        )
        assert policy.width_for(capped, 32, 32) == 8


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 101)
        with pytest.raises(ValueError):
            percentile(values, -1)

    def test_percentile_edges(self):
        # Singletons answer every quantile with the one value.
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 100) == 7.0
        # Two elements: linear interpolation between them.
        assert percentile([1.0, 3.0], 25) == pytest.approx(1.5)
        assert percentile([1.0, 3.0], 75) == pytest.approx(2.5)
        # Input order must not matter.
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == pytest.approx(2.5)
        assert percentile([9.0, 1.0], 100) == 9.0

    def test_fleet_metrics_compute(self):
        records = [
            JobRecord(
                name="a", model="vgg16", kind=JobKind.FOREGROUND,
                arrival_time=0.0, start_time=1.0, finish_time=5.0,
                iterations=100, global_batch=32, width=4,
                busy_gpu_seconds=10.0, allocated_gpu_seconds=16.0,
            ),
            JobRecord(
                name="b", model="vgg16", kind=JobKind.BACKGROUND,
                arrival_time=2.0, start_time=2.0, finish_time=10.0,
                iterations=50, global_batch=4, width=1,
                busy_gpu_seconds=8.0, allocated_gpu_seconds=8.0,
            ),
        ]
        metrics = FleetMetrics.compute(records, num_gpus=4, makespan=10.0)
        assert metrics.num_jobs == 2
        assert metrics.mean_jct == pytest.approx((5.0 + 8.0) / 2)
        assert metrics.max_jct == 8.0
        assert metrics.utilization == pytest.approx(18.0 / 40.0)
        assert metrics.fg_goodput == pytest.approx(3200 / 10.0)
        assert metrics.bg_goodput == pytest.approx(200 / 10.0)
        assert records[0].queue_delay == 1.0

    def test_fleet_metrics_zero_jobs(self):
        """An idle cluster is a valid measurement, not an error."""
        metrics = FleetMetrics.compute([], num_gpus=4, makespan=1.0)
        assert metrics.num_jobs == 0
        assert metrics.mean_jct == 0.0
        assert metrics.median_jct == 0.0
        assert metrics.p95_jct == 0.0
        assert metrics.max_jct == 0.0
        assert metrics.mean_queue_delay == 0.0
        assert metrics.utilization == 0.0
        assert metrics.fg_goodput == 0.0
        assert metrics.bg_goodput == 0.0
        assert metrics.preemptions == 0
        assert metrics.lost_gpu_seconds == 0.0


# ---------------------------------------------------------------------------
# Scheduler end-to-end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_trace():
    return synthetic_trace(8, seed=3, models=("vgg16",))


@pytest.fixture(scope="module")
def scheduler():
    return ClusterScheduler(num_gpus=8)


class TestClusterScheduler:
    def test_all_jobs_complete_under_every_policy(self, scheduler, small_trace):
        for policy in POLICIES:
            result = scheduler.run(small_trace, policy)
            assert result.metrics.num_jobs == len(small_trace)
            for record in result.records:
                assert record.finish_time >= record.start_time >= record.arrival_time
                assert record.busy_gpu_seconds > 0

    def test_deterministic_under_fixed_seed(self, scheduler, small_trace):
        first = scheduler.run(small_trace, "collocation")
        second = scheduler.run(small_trace, "collocation")
        assert first.metrics == second.metrics
        assert first.records == second.records

    def test_event_ordering_simultaneous_arrivals(self, scheduler):
        # Two jobs arriving at the same instant are admitted in trace order:
        # the first takes the whole cluster, the second waits.
        trace = [
            TraceJob("first", "vgg16", 32, arrival_time=0.0, iterations=50),
            TraceJob("second", "vgg16", 32, arrival_time=0.0, iterations=50),
        ]
        result = scheduler.run(trace, "fifo")
        first, second = result.record("first"), result.record("second")
        assert first.start_time == 0.0
        assert second.start_time == pytest.approx(first.finish_time)

    def test_utilization_and_makespan_are_consistent(self, scheduler, small_trace):
        result = scheduler.run(small_trace, "srgs")
        metrics = result.metrics
        assert 0.0 < metrics.utilization <= 1.0
        span = max(r.finish_time for r in result.records) - min(
            r.arrival_time for r in result.records
        )
        assert metrics.makespan == pytest.approx(span)
        assert metrics.mean_queue_delay >= 0.0

    def test_makespan_ignores_idle_prefix_before_first_arrival(self, scheduler):
        # A trace submitted late must not dilute utilization with the idle
        # time before its first arrival.
        late = [TraceJob("solo", "vgg16", 32, 1000.0, 100)]
        early = [TraceJob("solo", "vgg16", 32, 0.0, 100)]
        late_metrics = scheduler.run(late, "srgs").metrics
        early_metrics = scheduler.run(early, "srgs").metrics
        assert late_metrics.makespan == pytest.approx(early_metrics.makespan)
        assert late_metrics.utilization == pytest.approx(early_metrics.utilization)

    def test_preemption_is_minimal(self):
        # A foreground job holds half of the 8-GPU cluster and four
        # background jobs hold the rest.  The arriving fg-b is capped at
        # width 2, so exactly two evictions lift floor_pow2(free) from 0 to
        # 2; evicting the remaining two victims would not change fg-b's
        # placement and must not happen.
        trace = [
            TraceJob("fg-a", "vgg16", 32, 0.0, 2000, max_gpus=4),
            TraceJob("bg-a", "vgg16", 4, 0.1, 4000, JobKind.BACKGROUND),
            TraceJob("bg-b", "vgg16", 4, 0.2, 4000, JobKind.BACKGROUND),
            TraceJob("bg-c", "vgg16", 4, 0.3, 4000, JobKind.BACKGROUND),
            TraceJob("bg-d", "vgg16", 4, 0.4, 4000, JobKind.BACKGROUND),
            TraceJob("fg-b", "vgg16", 32, 1.0, 100, max_gpus=2),
        ]
        result = ClusterScheduler(num_gpus=8).run(trace, "collocation")
        # fg-b wants width 2; two evictions make floor_pow2(free) jump from
        # 0 to 2, and evicting the other two would change nothing.
        assert result.metrics.preemptions == 2

    def test_background_preemption_keeps_progress(self):
        # Background jobs hold both GPUs; a foreground arrival evicts one
        # (collocation policy), and the victims still finish all iterations.
        trace = [
            TraceJob("bg-a", "vgg16", 4, 0.0, 2000, JobKind.BACKGROUND),
            TraceJob("bg-b", "vgg16", 4, 0.0, 2000, JobKind.BACKGROUND),
            TraceJob("fg-a", "vgg16", 32, 1.0, 200, JobKind.FOREGROUND),
        ]
        result = ClusterScheduler(num_gpus=2).run(trace, "collocation")
        assert result.metrics.preemptions >= 1
        assert result.record("fg-a").start_time == pytest.approx(1.0)
        preempted = [r for r in result.records if r.preemptions > 0]
        assert preempted and all(not r.is_foreground for r in preempted)

    def test_replanning_expands_onto_freed_gpus(self):
        # On a 12-GPU cluster the first job takes 8 GPUs and the second
        # starts narrow on the remaining 4; when the short job finishes, the
        # long job is re-planned onto the freed capacity.
        trace = [
            TraceJob("fg-short", "vgg16", 32, 0.0, 100, JobKind.FOREGROUND),
            TraceJob("fg-long", "vgg16", 32, 0.5, 3000, JobKind.FOREGROUND),
        ]
        result = ClusterScheduler(num_gpus=12).run(trace, "collocation")
        long_record = result.record("fg-long")
        assert long_record.replans >= 1
        assert long_record.width == 8

    def test_collocation_soaks_idle_gpu_time(self):
        # With the cluster fully owned by a foreground job, a background
        # arrival can only make progress by collocating.
        trace = [
            TraceJob("fg", "vgg16", 32, 0.0, 2000, JobKind.FOREGROUND),
            TraceJob("bg", "vgg16", 4, 1.0, 50, JobKind.BACKGROUND),
        ]
        sched = ClusterScheduler(num_gpus=4)
        col = sched.run(trace, "collocation")
        srgs = sched.run(trace, "srgs")
        # The backfilling policy must wait for the foreground job to finish;
        # the collocation-aware policy finishes the background job earlier.
        assert col.record("bg").finish_time < srgs.record("bg").finish_time
        assert col.metrics.utilization > srgs.metrics.utilization

    def test_invalid_inputs_rejected(self, scheduler):
        with pytest.raises(ValueError):
            ClusterScheduler(num_gpus=0)
        with pytest.raises(ValueError):
            scheduler.run([], "fifo")
        duplicate = [
            TraceJob("same", "vgg16", 32, 0.0, 10),
            TraceJob("same", "vgg16", 32, 1.0, 10),
        ]
        with pytest.raises(ValueError):
            scheduler.run(duplicate, "fifo")
        trace = [TraceJob("a", "vgg16", 32, 0.0, 10)]
        with pytest.raises(KeyError):
            scheduler.run(trace, "no-such-policy")

    def test_result_record_lookup(self, scheduler, small_trace):
        result = scheduler.run(small_trace, "fifo")
        name = small_trace[0].name
        assert result.record(name).name == name
        with pytest.raises(KeyError):
            result.record("missing")
