"""Tests for the multiprocess planning pool (repro.core.planner.pool)."""

import pytest

from repro.cache import ArtifactCache
from repro.core.planner import PlannerConfig, PlannerPool, PlanRequest
from repro.models.registry import build_model


def _without_search_time(plan):
    data = plan.to_dict()
    data.pop("search_time")
    return data


REQUESTS = [
    PlanRequest("vgg11", 32, 1),
    PlanRequest("vgg11", 32, 4),
    PlanRequest("resnet50", 64, 2, amplification_limit=2.0),
    PlanRequest("vgg11", 32, 4),  # duplicate: planned once, returned twice
]


class TestPlanRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlanRequest("vgg11", 0, 1)
        with pytest.raises(ValueError):
            PlanRequest("vgg11", 32, 0)


class TestPlannerPool:
    def test_results_in_request_order_with_duplicates(self):
        plans = PlannerPool(processes=1).plan_batch(REQUESTS)
        assert [p.total_gpus for p in plans] == [1, 4, 2, 4]
        assert [p.model_name for p in plans] == [
            "vgg11", "vgg11", "resnet50", "vgg11",
        ]
        assert plans[1].to_dict() == plans[3].to_dict()  # deduped, shared

    def test_empty_batch(self):
        assert PlannerPool(processes=2).plan_batch([]) == []

    def test_worker_count_does_not_change_plans(self):
        serial = PlannerPool(processes=1).plan_batch(REQUESTS)
        parallel = PlannerPool(processes=3).plan_batch(REQUESTS)
        assert [_without_search_time(a) for a in serial] == [
            _without_search_time(b) for b in parallel
        ]

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            PlannerPool(processes=0)

    def test_shared_cache_dir_serves_second_pool_from_disk(self, tmp_path):
        first = PlannerPool(processes=1, cache_dir=str(tmp_path))
        cold = first.plan_batch(REQUESTS)
        # A different pool (fresh processes in the multiprocess case) reads
        # the same entries and reconstructs byte-identical plans.
        second = PlannerPool(processes=2, cache_dir=str(tmp_path))
        warm = second.plan_batch(REQUESTS)
        assert [a.to_json() for a in cold] == [b.to_json() for b in warm]

    def test_pool_planner_matches_workers(self, tmp_path):
        pool = PlannerPool(
            processes=1,
            config=PlannerConfig(amplification_limit=3.0),
            cache_dir=str(tmp_path),
        )
        planner = pool.planner()
        assert planner.config.amplification_limit == 3.0
        assert isinstance(planner.cache, ArtifactCache)
        direct = planner.plan(build_model("vgg11"), 32, 4)
        pooled = pool.plan_batch([PlanRequest("vgg11", 32, 4)])[0]
        assert _without_search_time(direct) == _without_search_time(pooled)
