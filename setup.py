"""Setuptools shim so `pip install -e .` works without the `wheel` package.

The actual project metadata lives in pyproject.toml; this file only exists so
that legacy editable installs (`setup.py develop`) are possible in offline
environments whose setuptools cannot build wheels.
"""
from setuptools import setup

setup()
