#!/usr/bin/env python
"""Cluster scenario study: DP vs BP vs BP+Col vs BG-only (Figure 9 style).

Shows how DeepPool's two ideas combine on an 8-GPU cluster training
WideResNet-101-2 with a small global batch (strong scaling):

* the burst-parallel planner frees GPU time by narrowing layers that do not
  scale;
* GPU multiplexing reclaims that time (plus leftover SMs) with a background
  job, raising total cluster throughput with a bounded impact on the
  foreground job.

The per-GPU interference profile is calibrated with the discrete-event GPU
simulator, so the foreground slowdown and background efficiency are measured
rather than assumed.

Run with:  python examples/cluster_collocation.py [model] [global_batch]
"""

import sys

from repro.analysis import figure9_cluster_throughput, render_scenarios
from repro.cluster import ClusterExecutor, CollocationProfile, TrainingJob
from repro.core.multiplexing import GPUCollocationRunner, MultiplexConfig
from repro.models import build_model, model_entry
from repro.network import get_fabric
from repro.profiler import LayerProfiler, per_gpu_batch

NUM_GPUS = 8
BG_BATCH = 4


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "wide_resnet101_2"
    entry = model_entry(model_name)
    global_batch = int(sys.argv[2]) if len(sys.argv) > 2 else entry.default_global_batch

    fabric = get_fabric("nvswitch")
    profiler = LayerProfiler()
    graph = build_model(model_name)

    # Calibrate the per-GPU interference profile with the device simulator.
    runner = GPUCollocationRunner(profiler, fabric, sim_time=0.2)
    profile = CollocationProfile.calibrate(
        runner,
        graph,
        per_gpu_batch(global_batch, NUM_GPUS),
        graph,
        MultiplexConfig(bg_batch_size=BG_BATCH),
        sync_gpus=NUM_GPUS,
    )
    print(
        f"Calibrated collocation profile for {model_name}: "
        f"fg_slowdown={profile.fg_slowdown:.2f}, "
        f"bg_busy_efficiency={profile.bg_busy_efficiency:.2f}"
    )
    print()

    executor = ClusterExecutor(fabric, profiler)
    job = TrainingJob(name=model_name, graph=graph, global_batch=global_batch)
    scenarios = executor.figure9_scenarios(
        job, NUM_GPUS, amplification_limit=4.0, bg_batch=BG_BATCH, collocation=profile
    )

    print(f"{model_name}, global batch {global_batch}, {NUM_GPUS} GPUs")
    print(f"{'scenario':>10}  {'FG samples/s':>12}  {'BG samples/s':>12}  {'total':>10}")
    for s in scenarios:
        print(
            f"{s.label:>10}  {s.fg_throughput:12.1f}  {s.bg_throughput:12.1f}  "
            f"{s.total_throughput:10.1f}"
        )

    dp, bp, col = scenarios[0], scenarios[1], scenarios[2]
    print()
    print(f"Cluster throughput gain of BP+Col over DP : "
          f"{col.total_throughput / dp.total_throughput:.2f}x")
    print(f"Foreground cost of collocation (vs BP)     : "
          f"{(1 - col.fg_throughput / bp.fg_throughput) * 100:.0f}%")

    print()
    print("Full three-workload sweep (Figure 9):")
    print(render_scenarios(figure9_cluster_throughput(calibrate=False)))


if __name__ == "__main__":
    main()
