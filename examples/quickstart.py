#!/usr/bin/env python
"""Quickstart: plan a burst-parallel training job for VGG-16 on 8 GPUs.

This is the smallest end-to-end use of the public API:

1. build a model graph from the zoo;
2. create a planner for an NVSwitch-connected cluster of A100s;
3. ask for a burst-parallel plan with a GPU-sec amplification limit of 2.0;
4. compare it against the conventional data-parallel plan and print the
   JSON that would be submitted to the cluster coordinator.

Run with:  python examples/quickstart.py
"""

from repro import BurstParallelPlanner, PlannerConfig, build_model, get_fabric

GLOBAL_BATCH = 32
NUM_GPUS = 8
AMPLIFICATION_LIMIT = 2.0


def main() -> None:
    model = build_model("vgg16")
    planner = BurstParallelPlanner(
        fabric=get_fabric("nvswitch"),
        config=PlannerConfig(amplification_limit=AMPLIFICATION_LIMIT),
    )

    burst_plan = planner.plan(model, GLOBAL_BATCH, NUM_GPUS)
    data_parallel = planner.data_parallel_plan(model, GLOBAL_BATCH, NUM_GPUS)

    print("=== Burst-parallel plan ===")
    print(burst_plan.summary())
    print()
    print("=== Data-parallel baseline ===")
    print(data_parallel.summary())
    print()

    speedup = data_parallel.iteration_time / burst_plan.iteration_time
    saved = 1.0 - burst_plan.total_gpu_seconds() / data_parallel.total_gpu_seconds()
    print(f"Foreground iteration speedup over DP : {speedup:.2f}x")
    print(f"GPU-seconds saved per iteration      : {saved * 100:.0f}%")
    print(f"Average GPUs busy (of {NUM_GPUS})            : "
          f"{burst_plan.average_gpus_busy():.2f}")
    print()
    print("=== Plan JSON submitted to the cluster coordinator (truncated) ===")
    payload = burst_plan.to_json()
    print(payload[:800] + ("\n  ..." if len(payload) > 800 else ""))


if __name__ == "__main__":
    main()
