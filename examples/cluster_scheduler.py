#!/usr/bin/env python
"""Multi-tenant cluster scheduling demo (the repro.sched subsystem).

Serves a trace of foreground + background training jobs on a simulated GPU
cluster under three scheduling policies:

* ``fifo``        — arrival order, full-width placements, head-of-line
                    blocking (the classic baseline);
* ``srgs``        — shortest remaining GPU-seconds first with backfilling;
* ``collocation`` — the DeepPool-style policy: space-shared burst-parallel
                    placements, background jobs collocated into foreground
                    idle gaps, background preemption, and re-planning of
                    running jobs onto freed GPUs.

Prints the fleet metrics (JCT distribution, makespan, utilization, goodput)
per policy and a per-job timeline for the collocation-aware run.

Run with:  python examples/cluster_scheduler.py [num_gpus] [num_jobs] [seed]
"""

import sys

from repro.analysis import render_policy_comparison
from repro.sched import ClusterScheduler, alibaba_trace, synthetic_trace

POLICIES = ("fifo", "srgs", "collocation")


def main() -> None:
    num_gpus = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    num_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    trace = synthetic_trace(num_jobs, seed=seed)
    print(f"Synthetic trace: {num_jobs} jobs on {num_gpus} GPUs (seed {seed})")
    for job in trace:
        kind = "FG" if job.is_foreground else "BG"
        print(
            f"  t={job.arrival_time:7.2f}s  {kind}  {job.name:<10s} "
            f"{job.model:<16s} batch={job.global_batch:<4d} "
            f"iters={job.iterations}"
        )
    print()

    # One scheduler for all policies: burst-parallel plans are cached, so
    # each (model, batch, width) search is paid once across the comparison.
    scheduler = ClusterScheduler(num_gpus)
    results = {policy: scheduler.run(trace, policy) for policy in POLICIES}
    print(render_policy_comparison(results))
    print()

    col = results["collocation"]
    print("Per-job timeline under the collocation-aware policy:")
    print(
        f"  {'job':<10s} {'width':>5s} {'arrival':>9s} {'start':>9s} "
        f"{'finish':>9s} {'JCT':>9s} {'preempt':>7s} {'replans':>7s}"
    )
    for record in sorted(col.records, key=lambda r: r.start_time):
        print(
            f"  {record.name:<10s} {record.width:>5d} "
            f"{record.arrival_time:>9.2f} {record.start_time:>9.2f} "
            f"{record.finish_time:>9.2f} {record.jct:>9.2f} "
            f"{record.preemptions:>7d} {record.replans:>7d}"
        )
    print()

    fifo, best = results["fifo"].metrics, col.metrics
    print(
        f"Collocation-aware vs FIFO: mean JCT "
        f"{fifo.mean_jct:.1f}s -> {best.mean_jct:.1f}s "
        f"({fifo.mean_jct / best.mean_jct:.1f}x better), utilization "
        f"{fifo.utilization * 100:.1f}% -> {best.utilization * 100:.1f}%"
    )
    print()

    print("Same comparison on an Alibaba-style heavy-tailed trace:")
    heavy = alibaba_trace(num_jobs, seed=seed)
    heavy_results = {policy: scheduler.run(heavy, policy) for policy in POLICIES}
    print(render_policy_comparison(heavy_results))


if __name__ == "__main__":
    main()
