#!/usr/bin/env python
"""Online scheduler service demo (the repro.serve subsystem).

Bridges an Alibaba-style arrival trace through the live submission API of
:class:`repro.serve.SchedulerService` — the same engine the offline
``ClusterScheduler.run`` drives, behind an asyncio interface with
multi-tenant admission control:

* each tenant (the ``small-``/``large-`` populations of the trace) gets a
  GPU-second quota and a max-pending cap; submissions are accepted, queued
  with backpressure, or rejected against the tenant's live ledger;
* a concurrent ``watch()`` consumer tails the service's event stream —
  the same `repro.obs` emission seam the trace recorder uses — and prints
  admissions, placements, preemptions, and completions as they happen;
* at the end the per-tenant ledgers (``cluster_state()``) and the replay
  report (dispositions + submit-path throughput) are printed.

Run with:  python examples/serve_demo.py [num_gpus] [num_jobs] [seed]
"""

import asyncio
import sys

from repro.obs import EV_COMPLETION, EV_PLACEMENT, EV_PREEMPTION, EV_SUBMIT
from repro.sched import ClusterScheduler, alibaba_trace
from repro.serve import (
    QuotaAdmission,
    SchedulerService,
    TenantQuota,
    replay_trace,
)

WATCHED = (EV_SUBMIT, EV_PLACEMENT, EV_PREEMPTION, EV_COMPLETION)


async def run_demo(num_gpus: int, num_jobs: int, seed: int) -> None:
    trace = alibaba_trace(num_jobs, seed=seed)
    print(f"Alibaba-style trace: {num_jobs} jobs on {num_gpus} GPUs (seed {seed})")

    # Quotas sized to bite: the small-job tenant gets a modest budget and a
    # shallow pending cap, so some of its burst queues (and may starve);
    # the large-job tenant is bounded only by its budget.
    admission = QuotaAdmission(
        quotas={
            "small": TenantQuota(gpu_seconds=25.0, max_pending=2),
            "large": TenantQuota(gpu_seconds=150.0),
        },
    )
    service = SchedulerService(
        ClusterScheduler(num_gpus),
        policy="collocation",
        admission=admission,
    )

    async def watcher() -> None:
        async for event in service.watch(kinds=WATCHED):
            print(
                f"  [watch] t={event.time:8.2f}s {event.kind:<11s} "
                f"{event.job:<12s} {event.detail}"
            )

    consumer = asyncio.create_task(watcher())
    report = await replay_trace(service, trace)
    state = service.cluster_state()
    await service.close()
    await consumer

    print()
    print("Per-tenant ledgers at the end of the run:")
    for tenant, ledger in state["tenants"].items():
        print(
            f"  {tenant:<8s} quota={ledger['quota_gpu_seconds']:>8.0f} "
            f"used={ledger['used_gpu_seconds']:>8.1f} "
            f"admitted={ledger['admitted']:>3.0f} "
            f"completed={ledger['completed']:>3.0f} "
            f"rejected={ledger['rejected']:>3.0f}"
        )

    print()
    print(
        f"Replay: {report.jobs} submitted, {report.completed} completed, "
        f"{report.queued_at_submit} backpressured at submit, "
        f"{report.rejected} rejected"
    )
    print(
        f"Submit path: {report.submit_seconds * 1e3:.2f} ms total "
        f"({report.submissions_per_sec:,.0f} submissions/sec)"
    )
    print(f"Result fingerprint: {report.fingerprint()}")


def main() -> None:
    num_gpus = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    num_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 14
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7
    asyncio.run(run_demo(num_gpus, num_jobs, seed))


if __name__ == "__main__":
    main()
