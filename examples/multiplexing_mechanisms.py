#!/usr/bin/env python
"""GPU multiplexing mechanisms: what protects foreground QoS? (Figure 11/12)

Walks through the mechanism ablation of Figure 11 on a single simulated GPU
(VGG-16 foreground, VGG-16 background), runs the slowdown feedback loop's
measurement step to show which operators it would ban from collocation, and
prints the Figure 12 pairwise synthetic-kernel matrix that explains why the
background batch size must be kept small on a non-preemptive device.

Run with:  python examples/multiplexing_mechanisms.py
"""

from repro.analysis import (
    figure11_mechanism_ablation,
    figure12_collocation_matrix,
    format_matrix,
)
from repro.core.multiplexing import GPUCollocationRunner, MultiplexConfig
from repro.models import vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler


def main() -> None:
    print("Figure 11: cumulative mechanism ablation (one simulated A100)")
    results = figure11_mechanism_ablation(sim_time=0.25)
    print(f"{'stage':>28}  {'FG samples/s':>12}  {'BG samples/s':>12}  {'FG QoS':>7}")
    for r in results:
        print(
            f"{r.label:>28}  {r.fg_throughput:12.1f}  {r.bg_throughput:12.1f}  "
            f"{r.fg_qos:7.2f}"
        )
    print()

    print("Slowdown feedback loop: operators most sensitive to collocation")
    runner = GPUCollocationRunner(LayerProfiler(), get_fabric("nvswitch"), sim_time=0.2)
    monitor = runner.measure_slowdowns(
        vgg16(), fg_per_gpu_batch=4, bg_graph=vgg16(),
        config=MultiplexConfig(bg_batch_size=16), sync_gpus=8,
    )
    worst = monitor.worst()
    if worst is not None:
        print(f"  worst operator: {worst.name} ({worst.slowdown:.2f}x slower)")
    banned = monitor.sensitive_operators()
    print(f"  operators banned from collocation ({len(banned)}):")
    for name in banned[:10]:
        print(f"    {name}  ({monitor.slowdown_of(name):.2f}x)")
    print()

    print("Figure 12: pairwise collocation of synthetic kernels")
    matrix = figure12_collocation_matrix(sim_time=0.05)
    row_labels = sorted({hp for hp, _ in matrix})
    col_labels = sorted({lp for _, lp in matrix})
    print(
        format_matrix(
            row_labels,
            col_labels,
            matrix,
            precision=2,
            title="high-priority relative throughput (rows = HP kernel, cols = LP kernel)",
        )
    )
    print()
    print(
        "Short high-priority kernels collapse when collocated with long\n"
        "high-intensity low-priority kernels — the reason DeepPool shrinks the\n"
        "background job's batch size."
    )


if __name__ == "__main__":
    main()
