#!/usr/bin/env python
"""Scaling-strategy analysis: when does strong scaling beat weak scaling?

Reproduces the Section 2 motivation study (Figures 1-3) for VGG-11 trained
to error 0.35: estimates the time-to-accuracy speedup of weak, strong, and
batch-optimal scaling as the cluster grows, the per-GPU batch size the
batch-optimal strategy picks at each scale, and how the answer changes with
network speed.

Run with:  python examples/scaling_strategy_analysis.py
"""

from repro.analysis import (
    figure1_scaling_strategies,
    figure2_batch_optimal_per_gpu_batch,
    figure3_network_speed_comparison,
    format_table,
)


def main() -> None:
    fig1 = figure1_scaling_strategies(fabric_name="1tbps")
    gpu_counts = fig1["gpu_counts"]
    curves = fig1["curves"]
    rows = []
    for i, g in enumerate(gpu_counts):
        rows.append(
            (
                g,
                curves["weak"][i].speedup,
                curves["strong"][i].speedup,
                curves["batch-optimal"][i].speedup,
                curves["batch-optimal"][i].per_gpu_batch,
            )
        )
    print(
        format_table(
            ["GPUs", "weak", "strong", "batch-optimal", "opt per-GPU batch"],
            rows,
            precision=1,
            title="Figure 1: estimated speedup training VGG-11 to error 0.35 (1 Tbps/GPU)",
        )
    )
    print()

    fig2 = figure2_batch_optimal_per_gpu_batch()
    print(
        format_table(
            ["GPUs", "batch-optimal per-GPU batch"],
            sorted(fig2.items()),
            precision=0,
            title="Figure 2: per-GPU batch size chosen by batch-optimal scaling (NVSwitch)",
        )
    )
    print()

    fig3 = figure3_network_speed_comparison()
    rows = [
        (name, vals["weak"], vals["strong"], vals["batch-optimal"])
        for name, vals in fig3.items()
    ]
    print(
        format_table(
            ["network", "weak", "strong", "batch-optimal"],
            rows,
            precision=1,
            title="Figure 3: speedup at 256 GPUs vs per-GPU network speed",
        )
    )
    print()
    print(
        "Takeaway: with slow networks weak scaling wins; with NVSwitch-class\n"
        "networks the best time-to-accuracy needs small per-GPU batches, which\n"
        "is the regime DeepPool's burst parallelism and multiplexing target."
    )


if __name__ == "__main__":
    main()
