#!/usr/bin/env python
"""Observability demo: record, export, and digest a scheduler trace.

Runs a heterogeneous A100+V100 fleet through a mixed trace with injected
host failures, with the full ``repro.obs`` stack attached:

* a :class:`~repro.obs.TraceRecorder` logging every scheduler state change,
* a :class:`~repro.obs.TimeSeriesSampler` recording cluster gauges every
  30 simulated seconds,
* the process-wide counter registry ticking underneath.

Writes the run as Chrome ``trace_event`` JSON — drag the file into
https://ui.perfetto.dev (or ``chrome://tracing``) to see pools as
processes, hosts as threads, jobs as spans, and the per-pool free-GPU
counter tracks — then prints the same timeline as a terminal digest, the
sampled gauge summary, and the run's counter delta.

Run with:  python examples/trace_viewer.py [trace.json] [num_jobs] [seed]
"""

import sys

from repro.obs import TimeSeriesSampler, TraceRecorder, global_registry
from repro.obs.report import report
from repro.profiler.gpu_spec import get_gpu_spec
from repro.sched import (
    CheckpointModel,
    ClusterFleet,
    ClusterScheduler,
    GpuPoolSpec,
    inject_failures,
    mixed_trace,
)


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    num_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 7

    fleet = ClusterFleet(
        (
            GpuPoolSpec("a100", get_gpu_spec("a100"), 64, 8),
            GpuPoolSpec("v100", get_gpu_spec("v100"), 64, 8),
        )
    )
    scheduler = ClusterScheduler(
        fleet, checkpoint=CheckpointModel(90.0, 15.0)
    )
    jobs = mixed_trace(num_jobs, seed=seed)
    failures = inject_failures(
        fleet, 4, seed=seed, window=(60.0, 400.0), mean_downtime=45.0
    )

    recorder = TraceRecorder()
    sampler = TimeSeriesSampler(interval_s=30.0)
    scheduler.attach_recorder(recorder)
    scheduler.attach_sampler(sampler)

    before = global_registry().snapshot()
    result = scheduler.run(jobs, "collocation", failures=failures)
    counters = global_registry().delta_since(before)

    path = recorder.write_chrome_trace(out_path)
    print(
        f"Simulated {result.metrics.num_jobs} jobs on {fleet.num_gpus} GPUs "
        f"({len(failures)} host failures): makespan "
        f"{result.metrics.makespan:.1f}s, utilization "
        f"{result.metrics.utilization * 100:.1f}%"
    )
    print(f"Wrote {len(recorder)} events to {path} — open in ui.perfetto.dev")
    print()

    report(path)
    print()

    print("sampled gauges (every 30 simulated seconds)")
    summary = sampler.summary()
    for name in sorted(summary):
        stats = summary[name]
        if not isinstance(stats, dict):
            continue
        print(
            f"  {name:<28} min={stats['min']:>8.1f} mean={stats['mean']:>8.1f} "
            f"max={stats['max']:>8.1f} last={stats['last']:>8.1f}"
        )
    print()

    print("counter registry delta for this run")
    for name in sorted(counters):
        print(f"  {name:<28} {counters[name]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
