"""Layer constructors and a shape-tracking graph builder.

The model zoo (VGG, ResNet/WideResNet, Inception-V3) is defined with the
:class:`GraphBuilder` below, which tracks the activation shape flowing through
the network and computes per-layer FLOPs, parameter counts, and activation
sizes.  The formulas are the standard analytical ones:

* ``conv2d``:  ``2 * Cout * Hout * Wout * Cin * Kh * Kw`` FLOPs per sample
  (multiply-accumulate counted as two operations), ``Cin*Cout*Kh*Kw + Cout``
  parameters.
* ``dense``:   ``2 * in_features * out_features`` FLOPs,
  ``in*out + out`` parameters.
* element-wise ops (ReLU, add, dropout): one FLOP per output element.
* pooling: ``k*k`` FLOPs per output element.
* batch-norm: four FLOPs per element (normalize, scale, shift), ``2*C``
  parameters.

Backward FLOPs are modelled as a per-op multiplier on forward FLOPs
(2x for weighted layers, 1x for the rest), matching the convention DeepPool's
profiler uses when it sums forward and backward compute time per layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .graph import LayerSpec, ModelGraph

__all__ = [
    "Shape",
    "GraphBuilder",
    "conv_output_hw",
    "pool_output_hw",
]

IntOrPair = int | Tuple[int, int]


def _pair(v: IntOrPair) -> Tuple[int, int]:
    """Normalize an int-or-(h, w) argument to an (h, w) pair."""
    if isinstance(v, tuple):
        return v
    return (v, v)


@dataclass(frozen=True)
class Shape:
    """Activation shape for one sample: channels x height x width, or flat."""

    channels: int
    height: int = 1
    width: int = 1
    flat: bool = False

    @property
    def elems(self) -> int:
        return self.channels * self.height * self.width

    def as_tuple(self) -> Tuple[int, ...]:
        if self.flat:
            return (self.elems,)
        return (self.channels, self.height, self.width)


def conv_output_hw(
    h: int, w: int, kernel: IntOrPair, stride: IntOrPair = 1, padding: IntOrPair = 0
) -> Tuple[int, int]:
    """Output spatial size of a convolution (floor convention)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution reduces {h}x{w} below 1x1 "
            f"(kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out_h, out_w


def pool_output_hw(
    h: int, w: int, kernel: int, stride: Optional[int] = None, padding: int = 0,
    ceil_mode: bool = False,
) -> Tuple[int, int]:
    """Output spatial size of a pooling layer."""
    stride = stride if stride is not None else kernel
    rounder = math.ceil if ceil_mode else math.floor
    out_h = int(rounder((h + 2 * padding - kernel) / stride)) + 1
    out_w = int(rounder((w + 2 * padding - kernel) / stride)) + 1
    return max(out_h, 1), max(out_w, 1)


class GraphBuilder:
    """Builds a :class:`ModelGraph` while tracking activation shapes.

    Every ``add_*`` method appends a layer consuming the current cursor
    (or an explicit list of producer layer ids), updates the cursor to the new
    layer, and returns the new layer id.  Branching models read the cursor
    via :attr:`cursor`, build each branch from that id, and merge branches
    with :meth:`add_concat` / :meth:`add_add`.
    """

    def __init__(self, name: str, input_shape: Tuple[int, int, int]) -> None:
        c, h, w = input_shape
        self.graph = ModelGraph(name)
        self._shapes: dict[int, Shape] = {}
        shape = Shape(c, h, w)
        spec = LayerSpec(
            name="input",
            op="input",
            flops_per_sample=0.0,
            params=0,
            input_elems_per_sample=0,
            output_elems_per_sample=shape.elems,
            bwd_flops_multiplier=0.0,
            output_shape=shape.as_tuple(),
        )
        self._cursor = self.graph.add_layer(spec)
        self._shapes[self._cursor] = shape

    # ----------------------------------------------------------------- state
    @property
    def cursor(self) -> int:
        """The layer id whose output the next added layer will consume."""
        return self._cursor

    def shape_of(self, layer_id: int) -> Shape:
        """Activation shape produced by ``layer_id``."""
        return self._shapes[layer_id]

    @property
    def current_shape(self) -> Shape:
        return self._shapes[self._cursor]

    def set_cursor(self, layer_id: int) -> None:
        """Move the build cursor to an existing layer (for branching)."""
        if layer_id not in self.graph:
            raise KeyError(f"unknown layer id {layer_id}")
        self._cursor = layer_id

    def finish(self) -> ModelGraph:
        """Validate and return the built graph."""
        self.graph.validate()
        return self.graph

    # -------------------------------------------------------------- internals
    def _append(
        self,
        spec: LayerSpec,
        out_shape: Shape,
        inputs: Optional[Sequence[int]] = None,
    ) -> int:
        srcs = list(inputs) if inputs is not None else [self._cursor]
        lid = self.graph.add_layer(spec, inputs=srcs)
        self._shapes[lid] = out_shape
        self._cursor = lid
        return lid

    # ----------------------------------------------------------------- layers
    def add_conv2d(
        self,
        name: str,
        out_channels: int,
        kernel: IntOrPair,
        stride: IntOrPair = 1,
        padding: IntOrPair = 0,
        bias: bool = True,
        input_id: Optional[int] = None,
    ) -> int:
        """Append a 2-D convolution (square or rectangular kernel)."""
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        kh, kw = _pair(kernel)
        out_h, out_w = conv_output_hw(in_shape.height, in_shape.width, kernel, stride, padding)
        out_shape = Shape(out_channels, out_h, out_w)
        macs = out_channels * out_h * out_w * in_shape.channels * kh * kw
        params = in_shape.channels * out_channels * kh * kw
        if bias:
            params += out_channels
        spec = LayerSpec(
            name=name,
            op="conv2d",
            flops_per_sample=2.0 * macs,
            params=params,
            input_elems_per_sample=in_shape.elems,
            output_elems_per_sample=out_shape.elems,
            bwd_flops_multiplier=2.0,
            output_shape=out_shape.as_tuple(),
        )
        return self._append(spec, out_shape, inputs=[src])

    def add_dense(
        self, name: str, out_features: int, bias: bool = True,
        input_id: Optional[int] = None,
    ) -> int:
        """Append a fully connected layer (input is flattened implicitly)."""
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        in_features = in_shape.elems
        out_shape = Shape(out_features, flat=True)
        params = in_features * out_features + (out_features if bias else 0)
        spec = LayerSpec(
            name=name,
            op="dense",
            flops_per_sample=2.0 * in_features * out_features,
            params=params,
            input_elems_per_sample=in_features,
            output_elems_per_sample=out_features,
            bwd_flops_multiplier=2.0,
            output_shape=out_shape.as_tuple(),
        )
        return self._append(spec, out_shape, inputs=[src])

    def add_relu(self, name: str, input_id: Optional[int] = None) -> int:
        return self._elementwise(name, "relu", input_id)

    def add_dropout(self, name: str, input_id: Optional[int] = None) -> int:
        return self._elementwise(name, "dropout", input_id)

    def add_softmax(self, name: str, input_id: Optional[int] = None) -> int:
        return self._elementwise(name, "softmax", input_id, flops_per_elem=5.0)

    def _elementwise(
        self,
        name: str,
        op: str,
        input_id: Optional[int] = None,
        flops_per_elem: float = 1.0,
    ) -> int:
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        spec = LayerSpec(
            name=name,
            op=op,
            flops_per_sample=flops_per_elem * in_shape.elems,
            params=0,
            input_elems_per_sample=in_shape.elems,
            output_elems_per_sample=in_shape.elems,
            bwd_flops_multiplier=1.0,
            output_shape=in_shape.as_tuple(),
        )
        return self._append(spec, in_shape, inputs=[src])

    def add_batchnorm(self, name: str, input_id: Optional[int] = None) -> int:
        """Append a batch normalization layer (2*C parameters)."""
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        spec = LayerSpec(
            name=name,
            op="batchnorm",
            flops_per_sample=4.0 * in_shape.elems,
            params=2 * in_shape.channels,
            input_elems_per_sample=in_shape.elems,
            output_elems_per_sample=in_shape.elems,
            bwd_flops_multiplier=1.0,
            output_shape=in_shape.as_tuple(),
        )
        return self._append(spec, in_shape, inputs=[src])

    def add_maxpool(
        self, name: str, kernel: int, stride: Optional[int] = None,
        padding: int = 0, ceil_mode: bool = False,
        input_id: Optional[int] = None,
    ) -> int:
        return self._pool(name, "maxpool", kernel, stride, padding, ceil_mode, input_id)

    def add_avgpool(
        self, name: str, kernel: int, stride: Optional[int] = None,
        padding: int = 0, ceil_mode: bool = False,
        input_id: Optional[int] = None,
    ) -> int:
        return self._pool(name, "avgpool", kernel, stride, padding, ceil_mode, input_id)

    def _pool(
        self,
        name: str,
        op: str,
        kernel: int,
        stride: Optional[int],
        padding: int,
        ceil_mode: bool,
        input_id: Optional[int],
    ) -> int:
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        out_h, out_w = pool_output_hw(
            in_shape.height, in_shape.width, kernel, stride, padding, ceil_mode
        )
        out_shape = Shape(in_shape.channels, out_h, out_w)
        spec = LayerSpec(
            name=name,
            op=op,
            flops_per_sample=float(kernel * kernel) * out_shape.elems,
            params=0,
            input_elems_per_sample=in_shape.elems,
            output_elems_per_sample=out_shape.elems,
            bwd_flops_multiplier=1.0,
            output_shape=out_shape.as_tuple(),
        )
        return self._append(spec, out_shape, inputs=[src])

    def add_global_avgpool(self, name: str, input_id: Optional[int] = None) -> int:
        """Adaptive average pooling to 1x1 spatial output."""
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        out_shape = Shape(in_shape.channels, 1, 1)
        spec = LayerSpec(
            name=name,
            op="avgpool",
            flops_per_sample=float(in_shape.elems),
            params=0,
            input_elems_per_sample=in_shape.elems,
            output_elems_per_sample=out_shape.elems,
            bwd_flops_multiplier=1.0,
            output_shape=out_shape.as_tuple(),
        )
        return self._append(spec, out_shape, inputs=[src])

    def add_flatten(self, name: str, input_id: Optional[int] = None) -> int:
        src = input_id if input_id is not None else self._cursor
        in_shape = self._shapes[src]
        out_shape = Shape(in_shape.elems, flat=True)
        spec = LayerSpec(
            name=name,
            op="flatten",
            flops_per_sample=0.0,
            params=0,
            input_elems_per_sample=in_shape.elems,
            output_elems_per_sample=in_shape.elems,
            bwd_flops_multiplier=0.0,
            output_shape=out_shape.as_tuple(),
        )
        return self._append(spec, out_shape, inputs=[src])

    # ------------------------------------------------------------ join layers
    def add_add(self, name: str, inputs: Sequence[int]) -> int:
        """Element-wise addition joining multiple branches (residual join)."""
        if len(inputs) < 2:
            raise ValueError("add_add requires at least two inputs")
        shapes = [self._shapes[i] for i in inputs]
        first = shapes[0]
        for s in shapes[1:]:
            if s.as_tuple() != first.as_tuple():
                raise ValueError(
                    f"add join {name!r}: mismatched shapes "
                    f"{[sh.as_tuple() for sh in shapes]}"
                )
        spec = LayerSpec(
            name=name,
            op="add",
            flops_per_sample=float(first.elems * (len(inputs) - 1)),
            params=0,
            input_elems_per_sample=first.elems * len(inputs),
            output_elems_per_sample=first.elems,
            bwd_flops_multiplier=1.0,
            output_shape=first.as_tuple(),
        )
        return self._append(spec, first, inputs=list(inputs))

    def add_concat(self, name: str, inputs: Sequence[int]) -> int:
        """Channel-wise concatenation joining multiple branches."""
        if len(inputs) < 2:
            raise ValueError("add_concat requires at least two inputs")
        shapes = [self._shapes[i] for i in inputs]
        h, w = shapes[0].height, shapes[0].width
        for s in shapes[1:]:
            if (s.height, s.width) != (h, w):
                raise ValueError(
                    f"concat join {name!r}: mismatched spatial dims "
                    f"{[sh.as_tuple() for sh in shapes]}"
                )
        out_c = sum(s.channels for s in shapes)
        out_shape = Shape(out_c, h, w)
        in_elems = sum(s.elems for s in shapes)
        spec = LayerSpec(
            name=name,
            op="concat",
            flops_per_sample=0.0,
            params=0,
            input_elems_per_sample=in_elems,
            output_elems_per_sample=out_shape.elems,
            bwd_flops_multiplier=0.0,
            output_shape=out_shape.as_tuple(),
        )
        return self._append(spec, out_shape, inputs=list(inputs))

    # ---------------------------------------------------------- compound ops
    def add_conv_bn_relu(
        self,
        name: str,
        out_channels: int,
        kernel: IntOrPair,
        stride: IntOrPair = 1,
        padding: IntOrPair = 0,
        input_id: Optional[int] = None,
    ) -> int:
        """Conv2d -> BatchNorm -> ReLU, the basic block of modern CNNs."""
        self.add_conv2d(
            f"{name}.conv", out_channels, kernel, stride, padding,
            bias=False, input_id=input_id,
        )
        self.add_batchnorm(f"{name}.bn")
        return self.add_relu(f"{name}.relu")
