"""Static DNN computation graphs.

DeepPool's burst-parallel planner requires the model's execution graph to be
static (paper, section 3.2).  This module provides the graph representation
used throughout the reproduction: a DAG of :class:`LayerSpec` nodes with
explicit branch/join structure, plus the helpers the planner's graph-reduction
step (paper, Figure 7) needs to decompose a graph into a chain of
branch/join blocks.

The graph intentionally stores *static per-sample* quantities (FLOPs,
parameter counts, activation sizes).  Everything batch- or hardware-dependent
(kernel times, memory traffic in bytes for a given dtype) is computed by
``repro.profiler`` from these quantities, mirroring how DeepPool profiles a
PyTorch module description rather than embedding device costs in the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "LayerSpec",
    "ModelGraph",
    "GraphValidationError",
]


class GraphValidationError(ValueError):
    """Raised when a model graph violates a structural invariant."""


@dataclass(frozen=True)
class LayerSpec:
    """Static description of one layer (operator) in a model.

    All quantities are *per sample* so that the profiler can scale them with
    the per-GPU batch size chosen by the planner.

    Attributes
    ----------
    name:
        Human-readable unique layer name, e.g. ``"features.conv3_2"``.
    op:
        Operator type.  One of the operator names understood by
        ``repro.models.layers`` / ``repro.profiler.kernel_model``
        (``"conv2d"``, ``"dense"``, ``"relu"``, ``"maxpool"``, ``"avgpool"``,
        ``"batchnorm"``, ``"add"``, ``"concat"``, ``"flatten"``,
        ``"dropout"``, ``"softmax"``, ``"input"``).
    flops_per_sample:
        Forward-pass floating point operations for a single sample.
    params:
        Number of learnable parameters owned by this layer.
    input_elems_per_sample:
        Number of scalar elements in this layer's input activation
        (summed over all inputs for join layers).
    output_elems_per_sample:
        Number of scalar elements in this layer's output activation.
    bwd_flops_multiplier:
        Ratio of backward-pass FLOPs to forward-pass FLOPs.  Roughly 2.0 for
        layers with weights (grad w.r.t. input + grad w.r.t. weights) and 1.0
        for element-wise / pooling layers.
    output_shape:
        Optional (C, H, W) or (features,) shape of the output, recorded for
        reporting (Table 1) and debugging.
    """

    name: str
    op: str
    flops_per_sample: float
    params: int
    input_elems_per_sample: int
    output_elems_per_sample: int
    bwd_flops_multiplier: float = 2.0
    output_shape: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.flops_per_sample < 0:
            raise ValueError(f"layer {self.name!r}: negative flops")
        if self.params < 0:
            raise ValueError(f"layer {self.name!r}: negative params")
        if self.input_elems_per_sample < 0 or self.output_elems_per_sample < 0:
            raise ValueError(f"layer {self.name!r}: negative activation size")

    @property
    def has_weights(self) -> bool:
        """Whether this layer owns learnable parameters (needs gradient sync)."""
        return self.params > 0

    def total_flops_per_sample(self) -> float:
        """Forward + backward FLOPs for one sample."""
        return self.flops_per_sample * (1.0 + self.bwd_flops_multiplier)

    def with_name(self, name: str) -> "LayerSpec":
        """Return a copy of this spec under a different name."""
        return replace(self, name=name)


class ModelGraph:
    """A static DNN computation graph.

    Nodes are integer layer ids in insertion order; each id maps to a
    :class:`LayerSpec`.  Edges carry activations from producer to consumer.
    The graph must be a single-source, single-sink DAG — the structure
    DeepPool's planner assumes (an ``input`` pseudo-layer is the source and
    the final classifier/softmax is the sink).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._g = nx.DiGraph()
        self._specs: Dict[int, LayerSpec] = {}
        self._next_id = 0
        # Topology memos.  The planner's graph reduction asks for the
        # topological order and path subgraphs thousands of times per search;
        # the answers only change when a layer is added, so they are cached
        # here and invalidated by add_layer.  Accessors return copies so a
        # caller mutating its result cannot corrupt the memo.
        self._topo_cache: Optional[List[int]] = None
        self._edges_cache: Optional[List[Tuple[int, int]]] = None
        self._between_cache: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------ build
    def add_layer(self, spec: LayerSpec, inputs: Sequence[int] = ()) -> int:
        """Add a layer fed by the given producer layer ids, returning its id."""
        for src in inputs:
            if src not in self._specs:
                raise GraphValidationError(
                    f"layer {spec.name!r} references unknown input id {src}"
                )
        lid = self._next_id
        self._next_id += 1
        self._specs[lid] = spec
        self._g.add_node(lid)
        for src in inputs:
            self._g.add_edge(src, lid)
        self._topo_cache = None
        self._edges_cache = None
        self._between_cache.clear()
        return lid

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, layer_id: int) -> bool:
        return layer_id in self._specs

    def __iter__(self) -> Iterator[int]:
        return iter(self.topological_order())

    def spec(self, layer_id: int) -> LayerSpec:
        """The :class:`LayerSpec` for a layer id."""
        return self._specs[layer_id]

    def specs(self) -> List[LayerSpec]:
        """All layer specs in topological order."""
        return [self._specs[i] for i in self.topological_order()]

    def layer_ids(self) -> List[int]:
        """All layer ids in topological order."""
        return self.topological_order()

    def predecessors(self, layer_id: int) -> List[int]:
        return sorted(self._g.predecessors(layer_id))

    def successors(self, layer_id: int) -> List[int]:
        return sorted(self._g.successors(layer_id))

    def in_degree(self, layer_id: int) -> int:
        return self._g.in_degree(layer_id)

    def out_degree(self, layer_id: int) -> int:
        return self._g.out_degree(layer_id)

    def topological_order(self) -> List[int]:
        """Layer ids in a deterministic topological order (by id)."""
        if self._topo_cache is None:
            self._topo_cache = list(nx.lexicographical_topological_sort(self._g))
        return list(self._topo_cache)

    def source(self) -> int:
        """The unique source layer (usually the ``input`` pseudo-layer)."""
        sources = [n for n in self._g.nodes if self._g.in_degree(n) == 0]
        if len(sources) != 1:
            raise GraphValidationError(
                f"model {self.name!r} has {len(sources)} sources; expected 1"
            )
        return sources[0]

    def sink(self) -> int:
        """The unique sink layer (usually the classifier / softmax)."""
        sinks = [n for n in self._g.nodes if self._g.out_degree(n) == 0]
        if len(sinks) != 1:
            raise GraphValidationError(
                f"model {self.name!r} has {len(sinks)} sinks; expected 1"
            )
        return sinks[0]

    def is_chain(self) -> bool:
        """True if every layer has at most one predecessor and successor."""
        return all(
            self._g.in_degree(n) <= 1 and self._g.out_degree(n) <= 1
            for n in self._g.nodes
        )

    def branch_layers(self) -> List[int]:
        """Layers whose output fans out to more than one consumer."""
        return sorted(n for n in self._g.nodes if self._g.out_degree(n) > 1)

    def join_layers(self) -> List[int]:
        """Layers consuming more than one producer's output."""
        return sorted(n for n in self._g.nodes if self._g.in_degree(n) > 1)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphValidationError`."""
        if len(self._specs) == 0:
            raise GraphValidationError(f"model {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self._g):
            raise GraphValidationError(f"model {self.name!r} contains a cycle")
        if not nx.is_weakly_connected(self._g):
            raise GraphValidationError(f"model {self.name!r} is disconnected")
        self.source()
        self.sink()
        names = [s.name for s in self._specs.values()]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise GraphValidationError(
                f"model {self.name!r} has duplicate layer names: {dupes}"
            )

    # ------------------------------------------------------------- aggregates
    def total_params(self) -> int:
        """Total learnable parameters across all layers."""
        return sum(s.params for s in self._specs.values())

    def total_flops_per_sample(self) -> float:
        """Total forward-pass FLOPs for one sample."""
        return sum(s.flops_per_sample for s in self._specs.values())

    def num_operator_layers(self) -> int:
        """Number of layers excluding the ``input`` pseudo-layer."""
        return sum(1 for s in self._specs.values() if s.op != "input")

    def num_weight_layers(self) -> int:
        """Number of layers owning learnable parameters."""
        return sum(1 for s in self._specs.values() if s.has_weights)

    # ------------------------------------------------------------ chain views
    def as_chain(self) -> List[int]:
        """Return the layer ids as a single chain.

        Raises
        ------
        GraphValidationError
            If the graph branches; callers should then use the planner's
            graph-reduction path instead.
        """
        if not self.is_chain():
            raise GraphValidationError(
                f"model {self.name!r} is not a simple chain; "
                "use graph reduction for branch/join graphs"
            )
        return self.topological_order()

    def subgraph_between(self, start: int, end: int) -> List[int]:
        """Layer ids on any path from ``start`` to ``end`` (inclusive)."""
        if start == end:
            return [start]
        key = (start, end)
        cached = self._between_cache.get(key)
        if cached is None:
            descendants = nx.descendants(self._g, start) | {start}
            ancestors = nx.ancestors(self._g, end) | {end}
            nodes = descendants & ancestors
            cached = [n for n in self.topological_order() if n in nodes]
            self._between_cache[key] = cached
        return list(cached)

    def edges(self) -> List[Tuple[int, int]]:
        if self._edges_cache is None:
            self._edges_cache = sorted(self._g.edges())
        return list(self._edges_cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelGraph(name={self.name!r}, layers={len(self)}, "
            f"params={self.total_params():,})"
        )
