"""Inception-V3 (Szegedy et al., 2015).

A primary evaluation workload (Table 1: ~24 M parameters, 119 layers,
3x299x299 input, many light convolutions).  Inception-V3's parallel branches
are the reason DeepPool's planner needs the multi-chain graph-reduction step
(paper, Figure 7), and its many short kernels are why it benefits most from
CUDA graphs and is hardest to collocate against (paper, section 7.1).

The structure mirrors torchvision's ``inception_v3`` without the auxiliary
classifier: stem convolutions, three InceptionA modules, one InceptionB,
four InceptionC, one InceptionD, two InceptionE, then global pooling and a
fully connected classifier.
"""

from __future__ import annotations

from typing import Tuple

from .graph import ModelGraph
from .layers import GraphBuilder

__all__ = ["inception_v3"]


def _inception_a(b: GraphBuilder, name: str, pool_features: int) -> int:
    """InceptionA: 1x1 / 5x5 / double-3x3 / pooled-1x1 branches, concatenated."""
    block_input = b.cursor

    br1 = b.add_conv_bn_relu(f"{name}.branch1x1", 64, kernel=1, input_id=block_input)

    b.add_conv_bn_relu(f"{name}.branch5x5_1", 48, kernel=1, input_id=block_input)
    br2 = b.add_conv_bn_relu(f"{name}.branch5x5_2", 64, kernel=5, padding=2)

    b.add_conv_bn_relu(f"{name}.branch3x3dbl_1", 64, kernel=1, input_id=block_input)
    b.add_conv_bn_relu(f"{name}.branch3x3dbl_2", 96, kernel=3, padding=1)
    br3 = b.add_conv_bn_relu(f"{name}.branch3x3dbl_3", 96, kernel=3, padding=1)

    b.add_avgpool(f"{name}.branch_pool.avg", kernel=3, stride=1, padding=1,
                  input_id=block_input)
    br4 = b.add_conv_bn_relu(f"{name}.branch_pool.conv", pool_features, kernel=1)

    return b.add_concat(f"{name}.concat", [br1, br2, br3, br4])


def _inception_b(b: GraphBuilder, name: str) -> int:
    """InceptionB (grid reduction): strided 3x3 / double-3x3 / max-pool branches."""
    block_input = b.cursor

    br1 = b.add_conv_bn_relu(f"{name}.branch3x3", 384, kernel=3, stride=2,
                             input_id=block_input)

    b.add_conv_bn_relu(f"{name}.branch3x3dbl_1", 64, kernel=1, input_id=block_input)
    b.add_conv_bn_relu(f"{name}.branch3x3dbl_2", 96, kernel=3, padding=1)
    br2 = b.add_conv_bn_relu(f"{name}.branch3x3dbl_3", 96, kernel=3, stride=2)

    br3 = b.add_maxpool(f"{name}.branch_pool", kernel=3, stride=2, input_id=block_input)

    return b.add_concat(f"{name}.concat", [br1, br2, br3])


def _inception_c(b: GraphBuilder, name: str, channels_7x7: int) -> int:
    """InceptionC: factorized 7x7 convolutions (1x7 and 7x1 pairs)."""
    block_input = b.cursor
    c7 = channels_7x7

    br1 = b.add_conv_bn_relu(f"{name}.branch1x1", 192, kernel=1, input_id=block_input)

    b.add_conv_bn_relu(f"{name}.branch7x7_1", c7, kernel=1, input_id=block_input)
    b.add_conv_bn_relu(f"{name}.branch7x7_2", c7, kernel=(1, 7), padding=(0, 3))
    br2 = b.add_conv_bn_relu(f"{name}.branch7x7_3", 192, kernel=(7, 1), padding=(3, 0))

    b.add_conv_bn_relu(f"{name}.branch7x7dbl_1", c7, kernel=1, input_id=block_input)
    b.add_conv_bn_relu(f"{name}.branch7x7dbl_2", c7, kernel=(7, 1), padding=(3, 0))
    b.add_conv_bn_relu(f"{name}.branch7x7dbl_3", c7, kernel=(1, 7), padding=(0, 3))
    b.add_conv_bn_relu(f"{name}.branch7x7dbl_4", c7, kernel=(7, 1), padding=(3, 0))
    br3 = b.add_conv_bn_relu(f"{name}.branch7x7dbl_5", 192, kernel=(1, 7), padding=(0, 3))

    b.add_avgpool(f"{name}.branch_pool.avg", kernel=3, stride=1, padding=1,
                  input_id=block_input)
    br4 = b.add_conv_bn_relu(f"{name}.branch_pool.conv", 192, kernel=1)

    return b.add_concat(f"{name}.concat", [br1, br2, br3, br4])


def _inception_d(b: GraphBuilder, name: str) -> int:
    """InceptionD (grid reduction before the 8x8 stage)."""
    block_input = b.cursor

    b.add_conv_bn_relu(f"{name}.branch3x3_1", 192, kernel=1, input_id=block_input)
    br1 = b.add_conv_bn_relu(f"{name}.branch3x3_2", 320, kernel=3, stride=2)

    b.add_conv_bn_relu(f"{name}.branch7x7x3_1", 192, kernel=1, input_id=block_input)
    b.add_conv_bn_relu(f"{name}.branch7x7x3_2", 192, kernel=(1, 7), padding=(0, 3))
    b.add_conv_bn_relu(f"{name}.branch7x7x3_3", 192, kernel=(7, 1), padding=(3, 0))
    br2 = b.add_conv_bn_relu(f"{name}.branch7x7x3_4", 192, kernel=3, stride=2)

    br3 = b.add_maxpool(f"{name}.branch_pool", kernel=3, stride=2, input_id=block_input)

    return b.add_concat(f"{name}.concat", [br1, br2, br3])


def _inception_e(b: GraphBuilder, name: str) -> int:
    """InceptionE: branches that themselves fan out into 1x3 / 3x1 pairs."""
    block_input = b.cursor

    br1 = b.add_conv_bn_relu(f"{name}.branch1x1", 320, kernel=1, input_id=block_input)

    split_3x3 = b.add_conv_bn_relu(f"{name}.branch3x3_1", 384, kernel=1,
                                   input_id=block_input)
    br2a = b.add_conv_bn_relu(f"{name}.branch3x3_2a", 384, kernel=(1, 3),
                              padding=(0, 1), input_id=split_3x3)
    br2b = b.add_conv_bn_relu(f"{name}.branch3x3_2b", 384, kernel=(3, 1),
                              padding=(1, 0), input_id=split_3x3)
    br2 = b.add_concat(f"{name}.branch3x3_concat", [br2a, br2b])

    b.add_conv_bn_relu(f"{name}.branch3x3dbl_1", 448, kernel=1, input_id=block_input)
    split_dbl = b.add_conv_bn_relu(f"{name}.branch3x3dbl_2", 384, kernel=3, padding=1)
    br3a = b.add_conv_bn_relu(f"{name}.branch3x3dbl_3a", 384, kernel=(1, 3),
                              padding=(0, 1), input_id=split_dbl)
    br3b = b.add_conv_bn_relu(f"{name}.branch3x3dbl_3b", 384, kernel=(3, 1),
                              padding=(1, 0), input_id=split_dbl)
    br3 = b.add_concat(f"{name}.branch3x3dbl_concat", [br3a, br3b])

    b.add_avgpool(f"{name}.branch_pool.avg", kernel=3, stride=1, padding=1,
                  input_id=block_input)
    br4 = b.add_conv_bn_relu(f"{name}.branch_pool.conv", 192, kernel=1)

    return b.add_concat(f"{name}.concat", [br1, br2, br3, br4])


def inception_v3(
    input_shape: Tuple[int, int, int] = (3, 299, 299),
    num_classes: int = 1000,
) -> ModelGraph:
    """Inception-V3 without the auxiliary classifier (Table 1 workload)."""
    b = GraphBuilder("inception_v3", input_shape)

    # Stem.
    b.add_conv_bn_relu("Conv2d_1a_3x3", 32, kernel=3, stride=2)
    b.add_conv_bn_relu("Conv2d_2a_3x3", 32, kernel=3)
    b.add_conv_bn_relu("Conv2d_2b_3x3", 64, kernel=3, padding=1)
    b.add_maxpool("maxpool1", kernel=3, stride=2)
    b.add_conv_bn_relu("Conv2d_3b_1x1", 80, kernel=1)
    b.add_conv_bn_relu("Conv2d_4a_3x3", 192, kernel=3)
    b.add_maxpool("maxpool2", kernel=3, stride=2)

    # 35x35 stage.
    _inception_a(b, "Mixed_5b", pool_features=32)
    _inception_a(b, "Mixed_5c", pool_features=64)
    _inception_a(b, "Mixed_5d", pool_features=64)

    # Reduce to 17x17.
    _inception_b(b, "Mixed_6a")
    _inception_c(b, "Mixed_6b", channels_7x7=128)
    _inception_c(b, "Mixed_6c", channels_7x7=160)
    _inception_c(b, "Mixed_6d", channels_7x7=160)
    _inception_c(b, "Mixed_6e", channels_7x7=192)

    # Reduce to 8x8.
    _inception_d(b, "Mixed_7a")
    _inception_e(b, "Mixed_7b")
    _inception_e(b, "Mixed_7c")

    # Classifier head.
    b.add_global_avgpool("head.avgpool")
    b.add_dropout("head.dropout")
    b.add_flatten("head.flatten")
    b.add_dense("head.fc", num_classes)
    return b.finish()
