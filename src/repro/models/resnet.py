"""ResNet family: ResNet-50 and WideResNet-101-2.

The paper uses ResNet-50 for the GPU-utilization CDF (Figure 4) and
WideResNet-101-2 (Zagoruyko & Komodakis, 2017 — a ResNet-101 with the
bottleneck inner width doubled) as a primary evaluation workload
(Table 1: ~127 M parameters, 105 weight layers, 3x400x400 input).

Residual blocks are genuine branch/join subgraphs (identity or projection
shortcut joined with the conv path by an ``add`` layer), so these models also
exercise the planner's graph-reduction path.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .graph import ModelGraph
from .layers import GraphBuilder

__all__ = ["build_resnet", "resnet50", "resnet101", "wide_resnet101_2"]

#: Expansion factor of bottleneck blocks (output channels = planes * 4).
BOTTLENECK_EXPANSION = 4


def _bottleneck(
    b: GraphBuilder,
    name: str,
    in_channels: int,
    planes: int,
    stride: int,
    base_width: int,
) -> int:
    """Append one bottleneck residual block and return its output layer id.

    Mirrors torchvision's ``Bottleneck``: 1x1 reduce -> 3x3 (stride) ->
    1x1 expand, with a projection shortcut (1x1 conv + BN) whenever the
    spatial size or channel count changes.
    """
    width = int(planes * (base_width / 64.0))
    out_channels = planes * BOTTLENECK_EXPANSION
    block_input = b.cursor

    # Main path.
    b.add_conv2d(f"{name}.conv1", width, kernel=1, bias=False, input_id=block_input)
    b.add_batchnorm(f"{name}.bn1")
    b.add_relu(f"{name}.relu1")
    b.add_conv2d(f"{name}.conv2", width, kernel=3, stride=stride, padding=1, bias=False)
    b.add_batchnorm(f"{name}.bn2")
    b.add_relu(f"{name}.relu2")
    b.add_conv2d(f"{name}.conv3", out_channels, kernel=1, bias=False)
    main_out = b.add_batchnorm(f"{name}.bn3")

    # Shortcut path.
    if stride != 1 or in_channels != out_channels:
        b.add_conv2d(
            f"{name}.downsample.conv", out_channels, kernel=1, stride=stride,
            bias=False, input_id=block_input,
        )
        shortcut_out = b.add_batchnorm(f"{name}.downsample.bn")
    else:
        shortcut_out = block_input

    b.add_add(f"{name}.add", [main_out, shortcut_out])
    return b.add_relu(f"{name}.relu3")


def build_resnet(
    layers: Sequence[int],
    name: str,
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
    base_width: int = 64,
) -> ModelGraph:
    """Build a bottleneck ResNet.

    Parameters
    ----------
    layers:
        Number of bottleneck blocks in each of the four stages,
        e.g. ``[3, 4, 6, 3]`` for ResNet-50 or ``[3, 4, 23, 3]`` for
        ResNet-101 variants.
    base_width:
        Width of the bottleneck inner convolutions relative to 64; 64 gives
        the standard ResNet, 128 gives the "wide, x2" variants.
    """
    if len(layers) != 4:
        raise ValueError(f"expected 4 stage sizes, got {len(layers)}")
    b = GraphBuilder(name, input_shape)

    # Stem.
    b.add_conv2d("stem.conv1", 64, kernel=7, stride=2, padding=3, bias=False)
    b.add_batchnorm("stem.bn1")
    b.add_relu("stem.relu1")
    b.add_maxpool("stem.maxpool", kernel=3, stride=2, padding=1)

    in_channels = 64
    stage_planes = [64, 128, 256, 512]
    for stage_idx, (planes, num_blocks) in enumerate(zip(stage_planes, layers), start=1):
        for block_idx in range(num_blocks):
            stride = 2 if (stage_idx > 1 and block_idx == 0) else 1
            _bottleneck(
                b,
                name=f"layer{stage_idx}.block{block_idx}",
                in_channels=in_channels,
                planes=planes,
                stride=stride,
                base_width=base_width,
            )
            in_channels = planes * BOTTLENECK_EXPANSION

    b.add_global_avgpool("head.avgpool")
    b.add_flatten("head.flatten")
    b.add_dense("head.fc", num_classes)
    return b.finish()


def resnet50(
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
) -> ModelGraph:
    """ResNet-50, used for the device-utilization study (Figure 4)."""
    return build_resnet([3, 4, 6, 3], "resnet50", input_shape, num_classes, base_width=64)


def resnet101(
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
) -> ModelGraph:
    """Standard ResNet-101 (provided for completeness / ablations)."""
    return build_resnet([3, 4, 23, 3], "resnet101", input_shape, num_classes, base_width=64)


def wide_resnet101_2(
    input_shape: Tuple[int, int, int] = (3, 400, 400),
    num_classes: int = 1000,
) -> ModelGraph:
    """WideResNet-101-2, a primary evaluation workload (Table 1).

    The paper uses 3x400x400 inputs for this model ("intense conv"
    structure), which we keep as the default input shape.
    """
    return build_resnet(
        [3, 4, 23, 3], "wide_resnet101_2", input_shape, num_classes, base_width=128
    )
