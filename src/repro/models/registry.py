"""Model registry: look up evaluation workloads by name.

The registry ties together the model zoo and the workload descriptions the
benchmark harnesses use, and is the single place that records the paper's
default global batch sizes per workload (Figure 9: VGG-16 b=32,
WideResNet-101-2 b=16, Inception-V3 b=32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .graph import ModelGraph
from .inception import inception_v3
from .resnet import resnet50, resnet101, wide_resnet101_2
from .vgg import vgg11, vgg16

__all__ = ["ModelEntry", "MODEL_REGISTRY", "build_model", "available_models", "model_entry"]


@dataclass(frozen=True)
class ModelEntry:
    """Registry entry describing an evaluation workload.

    Attributes
    ----------
    name:
        Registry key.
    builder:
        Zero-argument callable returning the :class:`ModelGraph` with the
        paper's input shape.
    input_shape:
        (C, H, W) of the input samples used in the paper.
    default_global_batch:
        Global batch size the paper uses when strong scaling this model on
        8 GPUs (Figure 9); analysis-only models use the Section 2 value.
    structure:
        Short description matching Table 1's "Structure" column.
    """

    name: str
    builder: Callable[[], ModelGraph]
    input_shape: Tuple[int, int, int]
    default_global_batch: int
    structure: str


MODEL_REGISTRY: Dict[str, ModelEntry] = {
    "vgg11": ModelEntry(
        name="vgg11",
        builder=lambda: vgg11(input_shape=(3, 224, 224)),
        input_shape=(3, 224, 224),
        default_global_batch=256,
        structure="Conv, Dense",
    ),
    "vgg16": ModelEntry(
        name="vgg16",
        builder=lambda: vgg16(input_shape=(3, 224, 224)),
        input_shape=(3, 224, 224),
        default_global_batch=32,
        structure="Conv, Dense",
    ),
    "resnet50": ModelEntry(
        name="resnet50",
        builder=lambda: resnet50(input_shape=(3, 224, 224)),
        input_shape=(3, 224, 224),
        default_global_batch=256,
        structure="Conv",
    ),
    "resnet101": ModelEntry(
        name="resnet101",
        builder=lambda: resnet101(input_shape=(3, 224, 224)),
        input_shape=(3, 224, 224),
        default_global_batch=64,
        structure="Conv",
    ),
    "wide_resnet101_2": ModelEntry(
        name="wide_resnet101_2",
        builder=lambda: wide_resnet101_2(input_shape=(3, 400, 400)),
        input_shape=(3, 400, 400),
        default_global_batch=16,
        structure="Intense Conv",
    ),
    "inception_v3": ModelEntry(
        name="inception_v3",
        builder=lambda: inception_v3(input_shape=(3, 299, 299)),
        input_shape=(3, 299, 299),
        default_global_batch=32,
        structure="Light Conv",
    ),
}

#: The three workloads in Table 1 / Figure 9, in the paper's order.
TABLE1_MODELS: List[str] = ["vgg16", "wide_resnet101_2", "inception_v3"]


def available_models() -> List[str]:
    """Names of all registered models."""
    return sorted(MODEL_REGISTRY)


def model_entry(name: str) -> ModelEntry:
    """Return the registry entry for ``name``; raise ``KeyError`` with help."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None


def build_model(name: str) -> ModelGraph:
    """Build a registered model by name with the paper's input shape."""
    return model_entry(name).builder()
