"""VGG model family (Simonyan & Zisserman, 2015).

The paper evaluates VGG-16 (Table 1: ~132 M parameters, 21 layers counting
convolutions, poolings and fully connected layers, 3x224x224 input) and uses
VGG-11 for the scaling-strategy analysis in Section 2 (Figures 1-3).

Both are pure chains, which makes them the natural workload for the planner's
single-chain dynamic program (Algorithm 1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from .graph import ModelGraph
from .layers import GraphBuilder

__all__ = ["build_vgg", "vgg11", "vgg16", "VGG_CONFIGS"]

# Standard VGG configurations: integers are conv output channels, "M" is a
# 2x2 max pooling with stride 2.
VGG_CONFIGS: Dict[str, List[Union[int, str]]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
    "vgg19": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, 256, "M",
        512, 512, 512, 512, "M",
        512, 512, 512, 512, "M",
    ],
}


def build_vgg(
    config: Sequence[Union[int, str]],
    name: str,
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
    include_relu: bool = True,
) -> ModelGraph:
    """Build a VGG-style chain model from a configuration list.

    Parameters
    ----------
    config:
        Sequence of conv channel counts and ``"M"`` markers for max pooling.
    name:
        Name for the resulting :class:`ModelGraph`.
    input_shape:
        (C, H, W) of the input samples.
    num_classes:
        Output dimension of the final classifier layer.
    include_relu:
        If False, ReLU layers are folded away (useful for tests that want the
        paper's "21 layer" conv/pool/fc counting of VGG-16).
    """
    b = GraphBuilder(name, input_shape)
    conv_idx = 0
    pool_idx = 0
    for item in config:
        if item == "M":
            pool_idx += 1
            b.add_maxpool(f"features.pool{pool_idx}", kernel=2, stride=2)
        else:
            conv_idx += 1
            b.add_conv2d(
                f"features.conv{conv_idx}",
                out_channels=int(item),
                kernel=3,
                stride=1,
                padding=1,
                bias=True,
            )
            if include_relu:
                b.add_relu(f"features.relu{conv_idx}")
    b.add_flatten("flatten")
    b.add_dense("classifier.fc1", 4096)
    if include_relu:
        b.add_relu("classifier.relu1")
        b.add_dropout("classifier.drop1")
    b.add_dense("classifier.fc2", 4096)
    if include_relu:
        b.add_relu("classifier.relu2")
        b.add_dropout("classifier.drop2")
    b.add_dense("classifier.fc3", num_classes)
    return b.finish()


def vgg11(
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
    include_relu: bool = True,
) -> ModelGraph:
    """VGG-11 (configuration "A"), used in the Section 2 scaling analysis."""
    return build_vgg(VGG_CONFIGS["vgg11"], "vgg11", input_shape, num_classes, include_relu)


def vgg16(
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
    include_relu: bool = True,
) -> ModelGraph:
    """VGG-16 (configuration "D"), a primary evaluation workload (Table 1)."""
    return build_vgg(VGG_CONFIGS["vgg16"], "vgg16", input_shape, num_classes, include_relu)
