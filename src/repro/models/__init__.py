"""DNN model zoo: static computation graphs for the paper's workloads.

Public API:

* :class:`~repro.models.graph.LayerSpec` and
  :class:`~repro.models.graph.ModelGraph` — the static graph representation
  consumed by the profiler and planner.
* :class:`~repro.models.layers.GraphBuilder` — shape-tracking builder used to
  define new models.
* ``vgg11`` / ``vgg16`` / ``resnet50`` / ``wide_resnet101_2`` /
  ``inception_v3`` — the paper's workloads.
* ``build_model`` / ``MODEL_REGISTRY`` — name-based lookup used by examples
  and benchmark harnesses.
"""

from .graph import GraphValidationError, LayerSpec, ModelGraph
from .layers import GraphBuilder, Shape, conv_output_hw, pool_output_hw
from .vgg import build_vgg, vgg11, vgg16, VGG_CONFIGS
from .resnet import build_resnet, resnet50, resnet101, wide_resnet101_2
from .inception import inception_v3
from .registry import (
    MODEL_REGISTRY,
    TABLE1_MODELS,
    ModelEntry,
    available_models,
    build_model,
    model_entry,
)

__all__ = [
    "LayerSpec",
    "ModelGraph",
    "GraphValidationError",
    "GraphBuilder",
    "Shape",
    "conv_output_hw",
    "pool_output_hw",
    "build_vgg",
    "vgg11",
    "vgg16",
    "VGG_CONFIGS",
    "build_resnet",
    "resnet50",
    "resnet101",
    "wide_resnet101_2",
    "inception_v3",
    "MODEL_REGISTRY",
    "TABLE1_MODELS",
    "ModelEntry",
    "available_models",
    "build_model",
    "model_entry",
]
