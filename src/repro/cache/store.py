"""The content-addressed on-disk artifact cache.

:class:`ArtifactCache` persists small JSON payloads (layer timings, whole
training plans) across processes and CI runs.  Design points:

* **Content addressing** — keys are SHA-256 digests of the entry's full
  derivation inputs (see :mod:`repro.cache.fingerprint`), so entries never go
  stale: changing any input changes the key, and the old entry is simply
  never read again.
* **Schema versioning** — every entry lives under a ``v<N>`` directory and
  carries ``cache_schema_version`` in its envelope.  Bumping
  :data:`CACHE_SCHEMA_VERSION` abandons every old entry at once (the CI
  workflow keys its cache restore on this version for the same reason).
* **Crash/corruption safety** — writes go to a temp file in the target
  directory followed by an atomic ``os.replace``, so concurrent writers of
  the same key race benignly (last writer wins with identical content).
  Unreadable or mismatched entries are treated as misses, counted in
  ``stats.errors``, and recomputed — a corrupted cache can slow a run down
  but never crash it or poison its results.

The cache root resolves, in order: the explicit ``root`` argument, the
``REPRO_CACHE_DIR`` environment variable, then ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..obs.metrics import global_registry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ArtifactCache",
    "default_cache_dir",
]

#: Bump to invalidate every persisted entry at once (layout or semantics
#: change of any cached payload).  CI keys its cross-run cache on this.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class CacheStats:
    """Counters describing one :class:`ArtifactCache`'s traffic.

    ``errors`` counts entries that existed but could not be used (corrupted
    JSON, wrong schema, key mismatch); each error is also a miss.

    The per-instance counts are backed by :mod:`repro.obs.metrics` scoped
    counters, so every increment also feeds the process-wide
    ``artifact_cache.hits`` / ``misses`` / ``writes`` / ``errors``
    aggregates in :func:`~repro.obs.metrics.global_registry`.  The public
    attributes (``stats.hits`` and friends) read exactly as before.
    """

    __slots__ = ("_hits", "_misses", "_writes", "_errors")

    def __init__(self) -> None:
        registry = global_registry()
        self._hits = registry.scoped_counter("artifact_cache.hits")
        self._misses = registry.scoped_counter("artifact_cache.misses")
        self._writes = registry.scoped_counter("artifact_cache.writes")
        self._errors = registry.scoped_counter("artifact_cache.errors")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def writes(self) -> int:
        return self._writes.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    def record_hit(self) -> None:
        self._hits.add(1)

    def record_miss(self) -> None:
        self._misses.add(1)

    def record_write(self) -> None:
        self._writes.add(1)

    def record_error(self) -> None:
        self._errors.add(1)

    def reset(self) -> None:
        """Zero this instance's counts (global aggregates keep their totals)."""
        self._hits.reset()
        self._misses.reset()
        self._writes.reset()
        self._errors.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"writes={self.writes}, errors={self.errors})"
        )


class ArtifactCache:
    """Content-addressed, schema-versioned JSON store shared across processes.

    Parameters
    ----------
    root:
        Cache root directory (created lazily).  ``None`` resolves via
        :func:`default_cache_dir`.
    schema_version:
        Entry-format version; entries written under a different version are
        invisible.  Exposed as a parameter so tests can prove that a schema
        bump forces recomputation.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        schema_version: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        self.base_dir = (
            Path(root).expanduser() if root is not None else default_cache_dir()
        )
        self.schema_version = schema_version
        self.root = self.base_dir / f"v{schema_version}"
        self.stats = CacheStats()

    # -------------------------------------------------------------- plumbing
    def entry_path(self, namespace: str, key: str) -> Path:
        """Path of the entry file for ``key`` (two-level fan-out by prefix)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache key must be a hex digest, got {key!r}")
        return self.root / namespace / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------- api
    def get(self, namespace: str, key: str) -> Optional[Dict[str, Any]]:
        """Payload stored under ``key``, or ``None`` on miss.

        Any failure to read or validate the entry (corrupted file, foreign
        schema, envelope/key mismatch) counts as a miss; the bad file is
        best-effort removed so it is not re-parsed on every lookup.
        """
        path = self.entry_path(namespace, key)
        try:
            raw = path.read_text()
        except (OSError, UnicodeDecodeError):
            self.stats.record_miss()
            return None
        try:
            envelope = json.loads(raw)
            if (
                not isinstance(envelope, dict)
                or envelope.get("cache_schema_version") != self.schema_version
                or envelope.get("key") != key
                or "payload" not in envelope
            ):
                raise ValueError("invalid cache envelope")
            payload = envelope["payload"]
        except ValueError:
            self.stats.record_error()
            self.stats.record_miss()
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None
        self.stats.record_hit()
        return payload

    def put(self, namespace: str, key: str, payload: Dict[str, Any]) -> Path:
        """Persist ``payload`` under ``key`` atomically and return its path."""
        path = self.entry_path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "cache_schema_version": self.schema_version,
            "namespace": namespace,
            "key": key,
            "payload": payload,
        }
        # Write-then-rename keeps readers from ever seeing a partial entry,
        # even when several processes compute and store the same key at once.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True, indent=1)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.record_write()
        return path

    def get_or_compute(
        self,
        namespace: str,
        key: str,
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Cached payload for ``key``, computing and storing it on a miss."""
        cached = self.get(namespace, key)
        if cached is not None:
            return cached
        payload = compute()
        self.put(namespace, key, payload)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArtifactCache(root={str(self.root)!r}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
