"""Content fingerprints for cacheable planner/profiler inputs.

The persistent artifact cache (:mod:`repro.cache.store`) is content-addressed:
an entry's key is a SHA-256 digest of everything that determines its value —
the model-graph topology, the GPU specification, the profiler configuration,
the network fabric, the planner configuration, and the workload parameters
(batch, GPU budget, amplification limit).  Two processes that derive the same
inputs derive the same key and therefore share one entry; *any* change to an
input (an edited graph, a different GPU, a bumped schema) produces a different
key, which is how invalidation works — stale entries are simply never looked
up again.

All fingerprints go through :func:`canonical_json`, which serializes with
sorted keys and exact float representations so the digest is stable across
processes, platforms and Python versions.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict
from typing import Any

__all__ = [
    "canonical_json",
    "fingerprint",
    "graph_fingerprint",
    "gpu_spec_fingerprint",
    "fabric_fingerprint",
    "profiler_fingerprint",
    "planner_config_fingerprint",
    "fleet_fingerprint",
    "trace_fingerprint",
    "snapshot_fingerprint",
    "shard_anchor_fingerprint",
]


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact float reprs.

    ``repr``-based float serialization (the ``json`` default) round-trips
    exactly, so numerically identical inputs always produce byte-identical
    canonical strings.  NaN/Infinity are rejected: they have no canonical
    JSON form and would silently produce unshareable keys.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``parts``."""
    digest = hashlib.sha256()
    digest.update(canonical_json(list(parts)).encode("utf-8"))
    return digest.hexdigest()


def graph_fingerprint(graph) -> str:
    """Fingerprint of a :class:`~repro.models.graph.ModelGraph`.

    Covers the graph name, every layer's full static spec, and the edge
    list — any topology or per-layer change (an added layer, an edited FLOP
    count) changes the digest.  The digest is memoized on the graph object;
    ``add_layer`` after fingerprinting is not expected (planning operates on
    finished graphs), but the memo is keyed by layer/edge counts so a grown
    graph re-fingerprints rather than serving a stale digest.
    """
    memo = getattr(graph, "_fingerprint_memo", None)
    shape = (len(graph), len(graph.edges()))
    if memo is not None and memo[0] == shape:
        return memo[1]
    payload = {
        "name": graph.name,
        "layers": [
            [lid, asdict(graph.spec(lid))] for lid in graph.layer_ids()
        ],
        "edges": [list(edge) for edge in graph.edges()],
    }
    digest = fingerprint("model-graph", payload)
    try:
        graph._fingerprint_memo = (shape, digest)
    except AttributeError:  # pragma: no cover - exotic graph stand-ins
        pass
    return digest


def gpu_spec_fingerprint(gpu) -> str:
    """Fingerprint of a :class:`~repro.profiler.gpu_spec.GPUSpec`."""
    return fingerprint("gpu-spec", asdict(gpu))


def fabric_fingerprint(fabric) -> str:
    """Fingerprint of a :class:`~repro.network.fabric.NetworkFabric`."""
    return fingerprint("fabric", asdict(fabric))


def profiler_fingerprint(profiler) -> str:
    """Fingerprint of everything a profiler folds into a layer timing."""
    return fingerprint(
        "profiler",
        asdict(profiler.gpu),
        profiler.use_cuda_graphs,
        profiler.dtype_bytes,
    )


def fleet_fingerprint(fleet) -> str:
    """Fingerprint of a :class:`~repro.sched.fleet.ClusterFleet`.

    Pools are serialized sorted by name, so two fleets that differ only in
    pool declaration order — which cannot change scheduling outcomes —
    share a fingerprint, while any change to a pool's GPU spec, size or
    host shape produces a new one.
    """
    payload = sorted(
        [pool.name, asdict(pool.gpu), pool.num_gpus, pool.gpus_per_host]
        for pool in fleet.pools
    )
    return fingerprint("fleet", payload)


def trace_fingerprint(trace) -> str:
    """Fingerprint of a :class:`~repro.sched.traces.TraceJob` arrival log.

    Order-sensitive: the same jobs submitted in a different order are a
    different workload (trace order breaks exact-time ties in the event
    queue).  The online service uses this to label a bridged replay with
    the identity of the arrival log it reproduced.
    """
    payload = [
        {
            "name": job.name,
            "model": job.model,
            "global_batch": job.global_batch,
            "arrival_time": job.arrival_time,
            "iterations": job.iterations,
            "kind": job.kind.value,
            "amplification_limit": job.amplification_limit,
            "max_gpus": job.max_gpus,
        }
        for job in trace
    ]
    return fingerprint("trace", payload)


def snapshot_fingerprint(payload) -> str:
    """Fingerprint of an :class:`~repro.sched.snapshot.EngineSnapshot` payload.

    Content-addresses a captured engine state: two runs that froze the same
    simulation at the same event boundary share a digest, and a persisted
    snapshot whose recorded fingerprint no longer matches its payload has
    been corrupted — the recovery path verifies this before applying a
    single field.
    """
    return fingerprint("engine-snapshot", payload)


def shard_anchor_fingerprint(workload: str, boundaries, index: int) -> str:
    """Content key of one epoch anchor in the shard-replay anchor store.

    ``workload`` is the shard driver's fingerprint of everything that
    determines the run (scheduler identity, policy, trace, failure
    schedule); ``boundaries`` is the full epoch-boundary spec and ``index``
    the anchor's position in it (anchor 0 is the loaded-but-unstepped
    engine).  Two drivers partitioning the same run the same way share
    anchors; any change to the workload or the partition produces fresh
    keys, and the stale anchors are simply never read again.
    """
    return fingerprint("shard-anchor", workload, list(boundaries), index)


def planner_config_fingerprint(config) -> str:
    """Fingerprint of a :class:`~repro.core.planner.planner.PlannerConfig`.

    An unbounded amplification limit (``float('inf')``) is legal in a config
    but has no canonical JSON form, so it is named explicitly.
    """
    payload = {
        key: "inf" if isinstance(value, float) and math.isinf(value) else value
        for key, value in asdict(config).items()
    }
    return fingerprint("planner-config", payload)
