"""``repro.cache`` — persistent, content-addressed planner/profiler artifacts.

The planner's value proposition is that burst-parallel planning is cheap
enough to run per job, online, at cluster scale — but the in-process memo
tables built by PR 2 die with the interpreter.  This package makes those
artifacts durable and shareable: an :class:`~repro.cache.store.ArtifactCache`
keyed by content fingerprints (:mod:`repro.cache.fingerprint`) of the
model-graph topology, GPU spec, profiler config, planner config, batch and
GPU budget, with schema-versioned invalidation.  Cold-start planner grids,
repeated bench/CI runs, sweep worker processes and the scheduler's plan
pre-warming all read and write the same on-disk entries.

Public API:

* :class:`~repro.cache.store.ArtifactCache` / ``CacheStats`` /
  :data:`~repro.cache.store.CACHE_SCHEMA_VERSION` /
  :func:`~repro.cache.store.default_cache_dir`;
* :func:`~repro.cache.fingerprint.fingerprint` and the typed helpers
  (``graph_fingerprint``, ``gpu_spec_fingerprint``, ``fabric_fingerprint``,
  ``profiler_fingerprint``, ``planner_config_fingerprint``).
"""

from .fingerprint import (
    canonical_json,
    fabric_fingerprint,
    fingerprint,
    fleet_fingerprint,
    gpu_spec_fingerprint,
    graph_fingerprint,
    planner_config_fingerprint,
    profiler_fingerprint,
    shard_anchor_fingerprint,
    snapshot_fingerprint,
    trace_fingerprint,
)
from .store import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    ArtifactCache,
    CacheStats,
    default_cache_dir,
)

__all__ = [
    "canonical_json",
    "fingerprint",
    "graph_fingerprint",
    "gpu_spec_fingerprint",
    "fabric_fingerprint",
    "profiler_fingerprint",
    "planner_config_fingerprint",
    "fleet_fingerprint",
    "trace_fingerprint",
    "snapshot_fingerprint",
    "shard_anchor_fingerprint",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "ArtifactCache",
    "CacheStats",
    "default_cache_dir",
]
