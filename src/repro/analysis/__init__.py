"""Experiment entry points (one per table/figure) and text reporting."""

from .experiments import (
    figure1_scaling_strategies,
    figure2_batch_optimal_per_gpu_batch,
    figure3_network_speed_comparison,
    figure4_utilization_cdf,
    figure5_layer_scalability,
    figure9_cluster_throughput,
    figure10_tradeoff,
    figure11_mechanism_ablation,
    figure12_collocation_matrix,
    figure13_policy_comparison,
    render_policy_comparison,
    render_scenarios,
    render_tradeoff,
    table1_workload_characteristics,
    table3_planner_search_time,
    Figure9Result,
)
from .reporting import format_bars, format_matrix, format_table

__all__ = [
    "figure1_scaling_strategies",
    "figure2_batch_optimal_per_gpu_batch",
    "figure3_network_speed_comparison",
    "figure4_utilization_cdf",
    "figure5_layer_scalability",
    "table1_workload_characteristics",
    "figure9_cluster_throughput",
    "figure10_tradeoff",
    "figure11_mechanism_ablation",
    "figure12_collocation_matrix",
    "figure13_policy_comparison",
    "table3_planner_search_time",
    "render_scenarios",
    "render_tradeoff",
    "render_policy_comparison",
    "Figure9Result",
    "format_table",
    "format_matrix",
    "format_bars",
]
