"""One entry point per paper experiment (every table and figure).

Each ``figureN_*`` / ``tableN_*`` function runs the corresponding experiment
on the simulated substrates and returns plain data structures; ``render_*``
helpers turn them into the text tables the benchmark harnesses print.  The
benchmark files under ``benchmarks/`` are thin wrappers around these
functions, and EXPERIMENTS.md records how the outputs compare with the
paper's reported results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.executor import ClusterExecutor, CollocationProfile
from ..cluster.job import TrainingJob
from ..cluster.partition import ClusterPartitionBaseline
from ..cluster.throughput import ScenarioThroughput, TradeoffPoint
from ..core.multiplexing.collocation import (
    CollocationResult,
    GPUCollocationRunner,
    pairwise_collocation_matrix,
)
from ..core.multiplexing.config import MultiplexConfig
from ..core.planner.planner import BurstParallelPlanner, PlannerConfig
from ..models.registry import TABLE1_MODELS, build_model, model_entry
from ..network.fabric import get_fabric
from ..profiler.layer_profiler import LayerProfiler, per_gpu_batch
from ..profiler.utilization import utilization_cdf
from ..sched import ClusterScheduler, ScheduleResult, alibaba_trace, synthetic_trace
from ..scaling.sample_efficiency import VGG11_ERROR_035
from ..scaling.strategies import (
    BatchOptimalScaling,
    ScalingAnalysis,
    StrongScaling,
    WeakScaling,
)
from ..workloads.synthetic import default_kernel_grid
from ..workloads.table1 import WorkloadCharacteristics, table1_characteristics
from .reporting import format_table

__all__ = [
    "figure1_scaling_strategies",
    "figure2_batch_optimal_per_gpu_batch",
    "figure3_network_speed_comparison",
    "figure4_utilization_cdf",
    "figure5_layer_scalability",
    "table1_workload_characteristics",
    "figure9_cluster_throughput",
    "figure10_tradeoff",
    "figure11_mechanism_ablation",
    "figure12_collocation_matrix",
    "figure13_policy_comparison",
    "table3_planner_search_time",
    "render_scenarios",
    "render_tradeoff",
    "render_policy_comparison",
]

DEFAULT_GPU_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


# ---------------------------------------------------------------------------
# Section 2: scaling-strategy analysis (Figures 1-4).
# ---------------------------------------------------------------------------

def figure1_scaling_strategies(
    fabric_name: str = "1tbps",
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    reference_batch: int = 256,
) -> Dict[str, List]:
    """Figure 1: speedup vs GPU count for weak / strong / batch-optimal scaling."""
    analysis = ScalingAnalysis(
        build_model("vgg11"),
        get_fabric(fabric_name),
        VGG11_ERROR_035,
        gpu_counts=gpu_counts,
        reference_batch=reference_batch,
    )
    curves = analysis.speedup_curves(
        [
            WeakScaling(per_gpu_batch_size=reference_batch),
            StrongScaling(global_batch_size=reference_batch),
            BatchOptimalScaling(),
        ]
    )
    return {"gpu_counts": list(gpu_counts), "curves": curves}


def figure2_batch_optimal_per_gpu_batch(
    fabric_name: str = "nvswitch",
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    reference_batch: int = 256,
) -> Dict[int, int]:
    """Figure 2: per-GPU batch size chosen by batch-optimal scaling."""
    analysis = ScalingAnalysis(
        build_model("vgg11"),
        get_fabric(fabric_name),
        VGG11_ERROR_035,
        gpu_counts=gpu_counts,
        reference_batch=reference_batch,
    )
    return analysis.batch_optimal_per_gpu_batches()


def figure3_network_speed_comparison(
    fabric_names: Sequence[str] = ("10gbps", "100gbps", "1tbps", "nvswitch"),
    num_gpus: int = 256,
    reference_batch: int = 256,
) -> Dict[str, Dict[str, float]]:
    """Figure 3: speedup of each strategy at 256 GPUs for several networks."""
    results: Dict[str, Dict[str, float]] = {}
    model = build_model("vgg11")
    for name in fabric_names:
        analysis = ScalingAnalysis(
            model,
            get_fabric(name),
            VGG11_ERROR_035,
            gpu_counts=[num_gpus],
            reference_batch=reference_batch,
        )
        curves = analysis.speedup_curves(
            [
                WeakScaling(per_gpu_batch_size=reference_batch),
                StrongScaling(global_batch_size=reference_batch),
                BatchOptimalScaling(),
            ]
        )
        results[name] = {
            strategy: points[0].speedup for strategy, points in curves.items()
        }
    return results


def figure4_utilization_cdf(
    batches: Sequence[int] = (1, 4, 16, 64, 256),
    model_name: str = "resnet50",
) -> Dict[int, object]:
    """Figure 4: device-utilization CDF of ResNet-50 at several batch sizes."""
    graph = build_model(model_name)
    return {int(b): utilization_cdf(graph, int(b)) for b in batches}


def figure5_layer_scalability(
    model_name: str = "vgg16",
    large_batch: int = 128,
    small_batch: int = 2,
    ops: Sequence[str] = ("conv2d", "dense", "maxpool"),
) -> List[Tuple[str, float]]:
    """Figure 5: per-layer speedup when strong scaling 128 -> 2 samples.

    The y-value for each layer is how much faster the layer runs with 2
    samples than with 128 samples, i.e. the benefit of strong scaling that
    layer across 64 GPUs.
    """
    graph = build_model(model_name)
    profiler = LayerProfiler()
    rows = []
    for spec in graph.specs():
        if spec.op not in ops:
            continue
        t_large = profiler.layer_timing(spec, large_batch).total_time
        t_small = profiler.layer_timing(spec, small_batch).total_time
        rows.append((spec.name, t_large / t_small if t_small > 0 else float("inf")))
    return rows


def table1_workload_characteristics(
    models: Sequence[str] = tuple(TABLE1_MODELS),
) -> List[WorkloadCharacteristics]:
    """Table 1: workload characteristics regenerated from the model zoo."""
    return table1_characteristics(models)


# ---------------------------------------------------------------------------
# Section 7: evaluation (Figures 9-12, Table 3).
# ---------------------------------------------------------------------------

@dataclass
class Figure9Result:
    """Scenario bars for one workload of Figure 9."""

    model: str
    global_batch: int
    scenarios: List[ScenarioThroughput]

    def scenario(self, label: str) -> ScenarioThroughput:
        for s in self.scenarios:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def throughput_gain(self) -> float:
        """Total cluster throughput of BP + Col relative to DP alone."""
        dp = self.scenario("DP").total_throughput
        col = self.scenario("BP + Col").total_throughput
        return col / dp if dp > 0 else float("inf")

    @property
    def fg_degradation(self) -> float:
        """Foreground throughput loss of BP + Col relative to BP alone."""
        bp = self.scenario("BP").fg_throughput
        col = self.scenario("BP + Col").fg_throughput
        return 1.0 - (col / bp) if bp > 0 else 0.0


def figure9_cluster_throughput(
    models: Sequence[str] = tuple(TABLE1_MODELS),
    num_gpus: int = 8,
    fabric_name: str = "nvswitch",
    amplification_limit: Optional[float] = None,
    amplification_sweep: Sequence[float] = (1.5, 2.0, 3.0, 4.0, 6.0, 8.0),
    bg_batch: int = 4,
    calibrate: bool = True,
    sim_time: float = 0.2,
) -> List[Figure9Result]:
    """Figure 9: cluster throughput of DP / BP / BP+Col / BG-only per workload.

    The paper sets the GPU-sec amplification limit per workload "to minimize
    the impact on the foreground performance while having a reasonable gain
    on total training throughput"; when ``amplification_limit`` is ``None``
    we reproduce that tuning by sweeping ``amplification_sweep`` and keeping
    the limit that minimizes the burst-parallel iteration time.

    When ``calibrate`` is true, the per-GPU interference profile is measured
    with the detailed GPU multiplexing simulator; otherwise the default
    analytical profile is used (much faster, similar shape).
    """
    fabric = get_fabric(fabric_name)
    profiler = LayerProfiler()
    executor = ClusterExecutor(fabric, profiler)
    planner = executor.planner
    runner = (
        GPUCollocationRunner(profiler, fabric, sim_time=sim_time) if calibrate else None
    )
    results = []
    for name in models:
        entry = model_entry(name)
        graph = build_model(name)
        if amplification_limit is not None:
            chosen_amp = amplification_limit
        else:
            chosen_amp = min(
                amplification_sweep,
                key=lambda amp: planner.plan(
                    graph, entry.default_global_batch, num_gpus, amp
                ).iteration_time,
            )
        job = TrainingJob(
            name=name,
            graph=graph,
            global_batch=entry.default_global_batch,
            amplification_limit=chosen_amp,
        )
        profile: Optional[CollocationProfile] = None
        if runner is not None:
            profile = CollocationProfile.calibrate(
                runner,
                graph,
                per_gpu_batch(entry.default_global_batch, num_gpus),
                graph,
                MultiplexConfig(bg_batch_size=bg_batch),
                sync_gpus=num_gpus,
            )
        scenarios = executor.figure9_scenarios(
            job,
            num_gpus,
            amplification_limit=chosen_amp,
            bg_batch=bg_batch,
            collocation=profile,
        )
        results.append(
            Figure9Result(
                model=name,
                global_batch=entry.default_global_batch,
                scenarios=scenarios,
            )
        )
    return results


def figure10_tradeoff(
    model_name: str = "vgg16",
    num_gpus: int = 8,
    fabric_name: str = "nvswitch",
    amplification_limits: Sequence[float] = (1.25, 1.5, 2.0, 3.0, 4.0, 8.0),
    bg_batches: Sequence[int] = (2, 4, 8),
    partition_options: Sequence[int] = (1, 2, 4, 8),
    collocation: Optional[CollocationProfile] = None,
) -> Dict[str, List[TradeoffPoint]]:
    """Figure 10: foreground speedup vs cluster throughput trade-off.

    Sweeps the GPU-sec amplification limit and background batch size to
    produce the "BP + Col" operating points, and evaluates the static
    cluster-partition baseline for comparison.
    """
    fabric = get_fabric(fabric_name)
    profiler = LayerProfiler()
    executor = ClusterExecutor(fabric, profiler)
    planner = executor.planner
    entry = model_entry(model_name)
    graph = build_model(model_name)
    job = TrainingJob(name=model_name, graph=graph, global_batch=entry.default_global_batch)
    single = planner.single_gpu_plan(graph, entry.default_global_batch)

    profile = collocation if collocation is not None else CollocationProfile()

    bp_col_points: List[TradeoffPoint] = []
    for amp in amplification_limits:
        plan = planner.plan(graph, entry.default_global_batch, num_gpus, amp)
        for bg_batch in bg_batches:
            background = job.background(batch=bg_batch)
            scenario = executor.execute_plan(
                plan, background=background, collocation=profile,
                label=f"BP+Col amp={amp:g} bg={bg_batch}",
            )
            speedup = single.iteration_time / scenario.fg_iteration_time
            bp_col_points.append(
                TradeoffPoint(
                    label=scenario.label,
                    fg_speedup=speedup,
                    cluster_throughput=scenario.total_throughput,
                    amplification_limit=amp,
                    bg_batch_size=bg_batch,
                )
            )

    baseline = ClusterPartitionBaseline(fabric, profiler, planner)
    partition_points = baseline.tradeoff_points(
        job, job.background(batch=max(bg_batches)), num_gpus, partition_options
    )

    bg_only = executor.background_only(job.background(batch=max(bg_batches)), num_gpus)
    bg_only_point = TradeoffPoint(
        label="BG Only",
        fg_speedup=0.0,
        cluster_throughput=bg_only.total_throughput,
    )
    return {
        "bp_col": bp_col_points,
        "partition": partition_points,
        "bg_only": [bg_only_point],
    }


def figure11_mechanism_ablation(
    model_name: str = "vgg16",
    num_gpus: int = 8,
    fabric_name: str = "nvswitch",
    fg_per_gpu_batch: Optional[int] = None,
    naive_bg_batch: int = 16,
    reduced_bg_batch: int = 4,
    sim_time: float = 0.3,
) -> List[CollocationResult]:
    """Figure 11: contribution of each multiplexing mechanism (single GPU)."""
    entry = model_entry(model_name)
    graph = build_model(model_name)
    if fg_per_gpu_batch is None:
        fg_per_gpu_batch = per_gpu_batch(entry.default_global_batch, num_gpus)
    runner = GPUCollocationRunner(
        LayerProfiler(), get_fabric(fabric_name), sim_time=sim_time
    )
    return runner.mechanism_ablation(
        graph,
        fg_per_gpu_batch,
        graph,
        sync_gpus=num_gpus,
        naive_bg_batch=naive_bg_batch,
        reduced_bg_batch=reduced_bg_batch,
    )


def figure12_collocation_matrix(
    sim_time: float = 0.1,
) -> Dict[Tuple[str, str], float]:
    """Figure 12: pairwise collocation of synthetic kernels under priorities."""
    grid = [spec.as_tuple() for spec in default_kernel_grid()]
    cells = pairwise_collocation_matrix(grid, sim_time=sim_time)
    return {
        (c.high_priority_label, c.low_priority_label): c.relative_throughput
        for c in cells
    }


def figure13_policy_comparison(
    num_gpus: int = 32,
    num_jobs: int = 24,
    seed: int = 7,
    policies: Sequence[str] = ("fifo", "srgs", "collocation"),
    trace_kind: str = "synthetic",
    fabric_name: str = "nvswitch",
) -> Dict[str, ScheduleResult]:
    """"Figure 13": multi-tenant scheduling-policy comparison.

    Goes beyond the paper's single-job evaluation: a trace of foreground and
    background jobs arrives over time and is served by the trace-driven
    cluster scheduler (:mod:`repro.sched`) under each policy.  All policies
    share one scheduler instance, so every burst-parallel plan search is
    paid once; results are deterministic under a fixed ``seed``.

    ``trace_kind`` selects the workload: ``"synthetic"`` (Poisson arrivals
    over the model zoo) or ``"alibaba"`` (heavy-tailed, mostly-small jobs
    with a diurnal arrival wave).
    """
    if trace_kind == "synthetic":
        trace = synthetic_trace(num_jobs, seed=seed)
    elif trace_kind == "alibaba":
        trace = alibaba_trace(num_jobs, seed=seed)
    else:
        raise ValueError(
            f"unknown trace_kind {trace_kind!r}; expected 'synthetic' or 'alibaba'"
        )
    scheduler = ClusterScheduler(num_gpus, fabric=fabric_name)
    return {policy: scheduler.run(trace, policy) for policy in policies}


def table3_planner_search_time(
    models: Sequence[str] = tuple(TABLE1_MODELS),
    gpu_counts: Sequence[int] = (8, 1024),
    fabric_name: str = "nvswitch",
    amplification_limit: float = 2.0,
) -> Dict[str, Dict[int, float]]:
    """Table 3: wall-clock time of the burst-parallel plan search."""
    fabric = get_fabric(fabric_name)
    planner = BurstParallelPlanner(fabric, config=PlannerConfig(amplification_limit))
    results: Dict[str, Dict[int, float]] = {}
    for name in models:
        graph = build_model(name)
        results[name] = {}
        for gpus in gpu_counts:
            # Use a global batch large enough that every power-of-two width up
            # to the cluster size is a feasible candidate.
            global_batch = max(model_entry(name).default_global_batch, gpus)
            start = time.perf_counter()
            planner.plan(graph, global_batch, gpus, amplification_limit)
            results[name][gpus] = time.perf_counter() - start
    return results


# ---------------------------------------------------------------------------
# Rendering helpers used by benchmarks and examples.
# ---------------------------------------------------------------------------

def render_scenarios(results: Sequence[Figure9Result]) -> str:
    """Figure 9 as a text table (one block of bars per workload)."""
    blocks = []
    for result in results:
        labels = [s.label for s in result.scenarios]
        fg = [s.fg_throughput for s in result.scenarios]
        bg = [s.bg_throughput for s in result.scenarios]
        rows = [
            (label, f, b, f + b)
            for label, f, b in zip(labels, fg, bg)
        ]
        blocks.append(
            format_table(
                ["scenario", "FG samples/s", "BG samples/s", "total"],
                rows,
                precision=1,
                title=f"{result.model} (global batch {result.global_batch})",
            )
        )
    return "\n\n".join(blocks)


def render_policy_comparison(results: Dict[str, ScheduleResult]) -> str:
    """Figure 13 as a text table (one row of fleet metrics per policy)."""
    rows = []
    for policy, result in results.items():
        m = result.metrics
        rows.append(
            (
                policy,
                m.mean_jct,
                m.p95_jct,
                m.makespan,
                m.utilization * 100.0,
                m.fg_goodput,
                m.bg_goodput,
                m.preemptions,
                m.replans,
            )
        )
    return format_table(
        [
            "policy",
            "mean JCT (s)",
            "p95 JCT (s)",
            "makespan (s)",
            "util (%)",
            "FG samples/s",
            "BG samples/s",
            "preempt",
            "replans",
        ],
        rows,
        precision=2,
        title="Figure 13: scheduling policies on a multi-tenant trace",
    )


def render_tradeoff(points: Dict[str, List[TradeoffPoint]]) -> str:
    """Figure 10 as a text table of operating points."""
    rows = []
    for group, pts in points.items():
        for p in pts:
            rows.append((group, p.label, p.fg_speedup, p.cluster_throughput))
    return format_table(
        ["group", "operating point", "FG speedup", "cluster samples/s"],
        rows,
        precision=2,
        title="Figure 10: foreground speedup vs cluster throughput",
    )
