"""Plain-text rendering of experiment results.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent and make the
bench output readable in a terminal or a CI log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_matrix", "format_bars"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[tuple, float],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render a (row, col) -> value mapping as a matrix (Figure 12 style)."""
    headers = [""] + list(col_labels)
    rows = []
    for r in row_labels:
        rows.append([r] + [values.get((r, c), float("nan")) for c in col_labels])
    return format_table(headers, rows, precision=precision, title=title)


def format_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Render labelled values as horizontal ASCII bars (Figure 9/11 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    peak = max(values) if values else 0.0
    lines = [title] if title else []
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar_len = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{label.rjust(label_width)} | {'#' * bar_len} {value:,.1f}{unit}"
        )
    return "\n".join(lines)
