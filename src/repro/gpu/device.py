"""Discrete-event simulator of one GPU shared by multiple training tasks.

Models the execution path the paper's Section 5 and Figure 8 describe:

* each task has a host thread that launches operations (kernels or CUDA-graph
  segments) with a per-launch host latency, limited to a configurable number
  of outstanding launches (launch pacing);
* launches from all tasks funnel through a *shared* driver transmission queue
  that delivers work to the device strictly in FIFO order regardless of
  stream priority, and the device accepts only a bounded number of
  in-flight operations — together these are the head-of-line blocking
  sources the paper calls out (an unbounded low-priority job can fill the
  device's queues and starve high-priority launches);
* on the device, each task has a stream: an in-order queue of kernels.  The
  device scheduler favors higher-priority streams (when stream priorities are
  enabled) but is **non-preemptive**: a kernel keeps the SM share it was
  granted until it completes;
* SMs are modelled as a divisible capacity: a kernel *requests* an occupancy
  (how many SMs it could fill) and is *granted* whatever share is free when
  it starts, running proportionally slower when granted less than requested.
  This is how a collocated background job soaks up the SMs a strong-scaled
  foreground job leaves idle — and also how a long low-priority kernel that
  grabbed most of the device delays short high-priority kernels (Figure 12);
* interference-sensitive operations (NCCL all-reduce) take longer when
  another task is on the device, and the "slowdown feedback loop" mechanism
  pauses background work around them.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import global_registry
from .kernel import Kernel, LaunchOp, TaskWorkload

__all__ = ["DeviceConfig", "TaskStats", "SimulationResult", "GPUSimulator"]

_EPS = 1e-12

# One tick per simulated device run — the observability registry's view of
# the collocation experiments (counted per run(), outside the event loop).
_SIM_RUNS = global_registry().counter("gpu.sim.runs")


@dataclass(frozen=True)
class DeviceConfig:
    """Mechanism toggles and device constants for one simulation.

    The Figure 11 ablation is expressed entirely through these switches plus
    the per-task pacing limits in :class:`~repro.gpu.kernel.TaskWorkload`.

    Attributes
    ----------
    use_stream_priorities:
        Whether the device scheduler favors higher-priority streams.
    exclusive_sensitive_ops:
        The slowdown feedback loop: while an interference-sensitive kernel of
        a higher-priority task is running or at the head of its stream, do
        not start lower-priority kernels.
    driver_delivery_latency:
        Time for the shared driver queue to hand one launch op to the device.
    device_queue_slots:
        Maximum launch ops the device holds in its queues at once (shared
        across all streams); when full, the driver FIFO stalls and later
        launches — regardless of priority — wait behind it.
    shared_slowdown:
        Mild duration inflation (cache/bandwidth contention) applied to a
        kernel that starts while another task's kernel is running.
    grant_threshold:
        A kernel starts only when it can be granted at least
        ``min(requested_occupancy, grant_threshold)`` of the device;
        otherwise it waits for running kernels to finish (non-preemption).
        Partial grants above the threshold run proportionally slower.
    sm_capacity:
        Total divisible SM capacity of the device (1.0 = the whole GPU).
    """

    use_stream_priorities: bool = True
    exclusive_sensitive_ops: bool = False
    driver_delivery_latency: float = 1.5e-6
    device_queue_slots: int = 16
    shared_slowdown: float = 1.1
    grant_threshold: float = 0.5
    sm_capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.driver_delivery_latency < 0:
            raise ValueError("driver_delivery_latency must be non-negative")
        if self.device_queue_slots < 1:
            raise ValueError("device_queue_slots must be at least 1")
        if self.shared_slowdown < 1.0:
            raise ValueError("shared_slowdown must be >= 1.0")
        if not (0.0 < self.grant_threshold <= 1.0):
            raise ValueError("grant_threshold must be in (0, 1]")
        if self.sm_capacity <= 0:
            raise ValueError("sm_capacity must be positive")


@dataclass
class TaskStats:
    """Per-task outcome of a simulation run."""

    task_id: str
    priority: int
    iterations_completed: int = 0
    kernels_completed: int = 0
    busy_time: float = 0.0
    samples_per_iteration: float = 0.0
    sim_time: float = 0.0
    first_iteration_end: float = 0.0
    last_iteration_end: float = 0.0
    #: Accumulated observed execution time per kernel name (for the slowdown
    #: feedback loop: comparing observed durations against isolated ones).
    kernel_time_by_name: Dict[str, float] = field(default_factory=dict)
    kernel_count_by_name: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_samples_per_s(self) -> float:
        """Achieved training throughput in samples per second.

        Measured over whole iterations (from simulation start to the last
        iteration boundary) so that a partially finished iteration does not
        bias short simulations.
        """
        if self.iterations_completed == 0:
            return 0.0
        horizon = self.last_iteration_end if self.last_iteration_end > 0 else self.sim_time
        if horizon <= 0:
            return 0.0
        return self.iterations_completed * self.samples_per_iteration / horizon

    @property
    def iterations_per_s(self) -> float:
        if self.iterations_completed == 0 or self.last_iteration_end <= 0:
            return 0.0
        return self.iterations_completed / self.last_iteration_end

    def mean_kernel_time(self, name: str) -> float:
        """Average observed duration of a kernel, or 0.0 if never executed."""
        count = self.kernel_count_by_name.get(name, 0)
        if count == 0:
            return 0.0
        return self.kernel_time_by_name[name] / count


@dataclass
class SimulationResult:
    """Outcome of one :class:`GPUSimulator` run."""

    sim_time: float
    tasks: Dict[str, TaskStats]
    device_utilization: float

    def task(self, task_id: str) -> TaskStats:
        return self.tasks[task_id]

    def throughput(self, task_id: str) -> float:
        return self.tasks[task_id].throughput_samples_per_s


@dataclass
class _QueuedKernel:
    kernel: Kernel
    task_id: str
    delivered_at: float
    op_id: int
    last_of_op: bool
    last_of_iteration: bool


@dataclass
class _TaskState:
    workload: TaskWorkload
    next_op_index: int = 0
    outstanding_ops: int = 0
    host_free_at: float = 0.0
    host_event_pending: bool = False
    stream_queue: Deque[_QueuedKernel] = field(default_factory=deque)
    sensitive_running: int = 0
    running_kernels: int = 0
    stats: Optional[TaskStats] = None


class GPUSimulator:
    """Event-driven simulation of one GPU multiplexing several tasks."""

    def __init__(self, tasks: Sequence[TaskWorkload], config: DeviceConfig = DeviceConfig()):
        if not tasks:
            raise ValueError("need at least one task to simulate")
        ids = [t.task_id for t in tasks]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate task ids: {ids}")
        self.config = config
        self._tasks: Dict[str, _TaskState] = {
            t.task_id: _TaskState(workload=t) for t in tasks
        }
        for state in self._tasks.values():
            state.stats = TaskStats(
                task_id=state.workload.task_id,
                priority=state.workload.priority,
                samples_per_iteration=state.workload.samples_per_iteration,
            )

    # ------------------------------------------------------------------- run
    def run(self, sim_time: float) -> SimulationResult:
        """Simulate the device for ``sim_time`` seconds and report statistics."""
        if sim_time <= 0:
            raise ValueError("sim_time must be positive")
        _SIM_RUNS.add(1)
        cfg = self.config
        now = 0.0
        counter = itertools.count()
        events: List[Tuple[float, int, str, object]] = []

        def push(t: float, kind: str, payload: object = None) -> None:
            heapq.heappush(events, (t, next(counter), kind, payload))

        # Shared driver transmission queue (FIFO across all tasks).
        driver_queue: Deque[Tuple[LaunchOp, str]] = deque()
        driver_delivering = False
        # Launch ops delivered to device queues and not yet fully executed.
        device_inflight_ops = 0

        used_capacity = 0.0
        capacity_integral = 0.0
        last_time = 0.0

        for task_id in self._tasks:
            push(0.0, "host", task_id)
            self._tasks[task_id].host_event_pending = True

        def other_task_running(task_id: str) -> bool:
            return any(
                s.running_kernels > 0
                for tid, s in self._tasks.items()
                if tid != task_id
            )

        def sensitive_higher_priority_active(priority: int) -> bool:
            """A sensitive kernel of a higher-priority task running or queued at head."""
            for state in self._tasks.values():
                if state.workload.priority <= priority:
                    continue
                if state.sensitive_running > 0:
                    return True
                head = state.stream_queue[0] if state.stream_queue else None
                if head is not None and head.kernel.interference_sensitive:
                    return True
            return False

        def maybe_start_delivery() -> None:
            nonlocal driver_delivering
            if driver_delivering or not driver_queue:
                return
            if device_inflight_ops >= cfg.device_queue_slots:
                return  # device queues full: the shared FIFO stalls
            driver_delivering = True
            push(now + cfg.driver_delivery_latency, "delivered", None)

        def try_schedule() -> None:
            nonlocal used_capacity
            progress = True
            while progress:
                progress = False
                candidates = [s for s in self._tasks.values() if s.stream_queue]
                if not candidates:
                    return
                if cfg.use_stream_priorities:
                    candidates.sort(
                        key=lambda s: (-s.workload.priority, s.stream_queue[0].delivered_at)
                    )
                else:
                    candidates.sort(key=lambda s: s.stream_queue[0].delivered_at)
                for state in candidates:
                    task_id = state.workload.task_id
                    priority = state.workload.priority
                    if state.running_kernels > 0:
                        # A CUDA stream executes its kernels in order, one at
                        # a time; concurrency only comes from *other* streams.
                        continue
                    if cfg.exclusive_sensitive_ops and sensitive_higher_priority_active(priority):
                        # Slowdown feedback loop: hold back lower-priority work
                        # while a sensitive higher-priority operator is in flight.
                        continue
                    head = state.stream_queue[0]
                    requested = min(head.kernel.occupancy, cfg.sm_capacity)
                    available = cfg.sm_capacity - used_capacity
                    grant = min(requested, available)
                    if grant + _EPS < min(requested, cfg.grant_threshold * cfg.sm_capacity):
                        if cfg.use_stream_priorities:
                            # Non-preemptive but priority-aware: lower-priority
                            # work must not jump ahead of a starved
                            # higher-priority kernel.
                            return
                        continue
                    # Start the kernel with the granted SM share.
                    state.stream_queue.popleft()
                    duration = head.kernel.duration * (requested / grant)
                    if other_task_running(task_id):
                        duration *= cfg.shared_slowdown
                        if head.kernel.interference_sensitive:
                            duration *= (
                                head.kernel.sensitive_slowdown / cfg.shared_slowdown
                            )
                    used_capacity += grant
                    state.running_kernels += 1
                    if head.kernel.interference_sensitive:
                        state.sensitive_running += 1
                    push(now + duration, "kernel_end", (head, grant, duration))
                    progress = True
                    break  # re-evaluate candidate order after every start

        while events:
            time_, _, kind, payload = heapq.heappop(events)
            if time_ > sim_time:
                break
            capacity_integral += used_capacity * (time_ - last_time)
            last_time = time_
            now = time_

            if kind == "host":
                task_id = payload  # type: ignore[assignment]
                state = self._tasks[task_id]
                state.host_event_pending = False
                wl = state.workload
                # An "unbounded" task is still backpressured by the finite
                # driver/device queues: launch calls block once they fill up.
                limit = (
                    wl.max_outstanding_ops
                    if wl.max_outstanding_ops is not None
                    else cfg.device_queue_slots
                )
                if state.outstanding_ops >= limit:
                    continue  # retried when an op completes
                if now + _EPS < state.host_free_at:
                    push(state.host_free_at, "host", task_id)
                    state.host_event_pending = True
                    continue
                op = wl.iteration_ops[state.next_op_index]
                state.next_op_index = (state.next_op_index + 1) % len(wl.iteration_ops)
                state.outstanding_ops += 1
                state.host_free_at = now + wl.host_launch_latency
                push(state.host_free_at, "driver_enqueue", (op, task_id))
                push(state.host_free_at, "host", task_id)
                state.host_event_pending = True

            elif kind == "driver_enqueue":
                op, task_id = payload  # type: ignore[misc]
                driver_queue.append((op, task_id))
                maybe_start_delivery()

            elif kind == "delivered":
                driver_delivering = False
                if not driver_queue:
                    continue
                if device_inflight_ops >= cfg.device_queue_slots:
                    continue  # retried when an op completes
                op, task_id = driver_queue.popleft()
                device_inflight_ops += 1
                state = self._tasks[task_id]
                wl = state.workload
                is_last_op_of_iter = op is wl.iteration_ops[-1]
                kernels = list(op.kernels)
                for i, k in enumerate(kernels):
                    state.stream_queue.append(
                        _QueuedKernel(
                            kernel=k,
                            task_id=task_id,
                            delivered_at=now,
                            op_id=op.op_id,
                            last_of_op=(i == len(kernels) - 1),
                            last_of_iteration=(
                                is_last_op_of_iter and i == len(kernels) - 1
                            ),
                        )
                    )
                maybe_start_delivery()
                try_schedule()

            elif kind == "kernel_end":
                queued, grant, duration = payload  # type: ignore[misc]
                task_id = queued.task_id
                state = self._tasks[task_id]
                used_capacity = max(0.0, used_capacity - grant)
                state.running_kernels = max(0, state.running_kernels - 1)
                if queued.kernel.interference_sensitive:
                    state.sensitive_running = max(0, state.sensitive_running - 1)
                stats = state.stats
                assert stats is not None
                stats.kernels_completed += 1
                stats.busy_time += duration
                name = queued.kernel.name
                stats.kernel_time_by_name[name] = (
                    stats.kernel_time_by_name.get(name, 0.0) + duration
                )
                stats.kernel_count_by_name[name] = (
                    stats.kernel_count_by_name.get(name, 0) + 1
                )
                if queued.last_of_op:
                    device_inflight_ops = max(0, device_inflight_ops - 1)
                    state.outstanding_ops = max(0, state.outstanding_ops - 1)
                    if not state.host_event_pending:
                        push(now, "host", task_id)
                        state.host_event_pending = True
                    maybe_start_delivery()
                if queued.last_of_iteration:
                    stats.iterations_completed += 1
                    if stats.first_iteration_end == 0.0:
                        stats.first_iteration_end = now
                    stats.last_iteration_end = now
                try_schedule()

        # Close the utilization integral at the end of the simulated window.
        capacity_integral += used_capacity * max(0.0, sim_time - last_time)

        for state in self._tasks.values():
            assert state.stats is not None
            state.stats.sim_time = sim_time
        utilization = capacity_integral / (self.config.sm_capacity * sim_time)
        return SimulationResult(
            sim_time=sim_time,
            tasks={tid: s.stats for tid, s in self._tasks.items() if s.stats is not None},
            device_utilization=min(1.0, utilization),
        )
