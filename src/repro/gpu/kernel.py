"""Kernel and launch-operation descriptions for the GPU device simulator.

The multiplexing study (paper Section 5) is about *mechanisms*: CUDA streams
with priorities, a non-preemptive on-device scheduler, shared driver queues,
CUDA graph launches, and launch pacing.  The simulator therefore works on a
deliberately small vocabulary:

* a :class:`Kernel` is a unit of device work with a duration, an execution
  occupancy (fraction of the device's SMs it needs), and flags describing its
  sensitivity to interference (NCCL all-reduce being the paper's example);
* a :class:`LaunchOp` is what the host submits in one call — either a single
  kernel (``cudaLaunchKernel``) or a group of kernels captured into a CUDA
  graph segment;
* a :class:`TaskWorkload` is the repeating sequence of launch ops that makes
  up one training iteration of a job, plus the job's priority and pacing
  parameters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["Kernel", "LaunchOp", "TaskWorkload", "split_into_graphs"]

_op_counter = itertools.count()


@dataclass(frozen=True)
class Kernel:
    """One device kernel.

    Attributes
    ----------
    name:
        Debug label, e.g. ``"features.conv3.fwd"``.
    duration:
        Isolated execution time on an otherwise idle device, in seconds.
    occupancy:
        Fraction of the device's execution resources (SM slots) the kernel
        occupies while running, in (0, 1].
    interference_sensitive:
        True for operations whose duration inflates sharply when another
        task shares the device (the paper observed >2x for NCCL all-reduce).
    sensitive_slowdown:
        Duration multiplier applied when an interference-sensitive kernel
        starts while another task's kernel is running.
    """

    name: str
    duration: float
    occupancy: float
    interference_sensitive: bool = False
    sensitive_slowdown: float = 2.2

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"kernel {self.name!r}: negative duration")
        if not (0.0 < self.occupancy <= 1.0):
            raise ValueError(f"kernel {self.name!r}: occupancy must be in (0, 1]")
        if self.sensitive_slowdown < 1.0:
            raise ValueError(f"kernel {self.name!r}: slowdown must be >= 1.0")


@dataclass(frozen=True)
class LaunchOp:
    """One host-side launch: a single kernel or a CUDA-graph segment."""

    kernels: tuple
    is_graph: bool = False
    op_id: int = field(default_factory=lambda: next(_op_counter))

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a launch op must contain at least one kernel")

    @property
    def duration(self) -> float:
        """Total isolated device time of the op's kernels."""
        return sum(k.duration for k in self.kernels)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)


def split_into_graphs(
    kernels: Sequence[Kernel], graph_split_size: Optional[int]
) -> List[LaunchOp]:
    """Group a kernel sequence into CUDA-graph launch segments.

    ``graph_split_size`` bounds the number of kernels per graph launch —
    DeepPool splits large graphs so that low-priority graph launches cannot
    head-of-line block high-priority work (paper Section 5).  ``None`` puts
    the entire sequence into a single graph.
    """
    if graph_split_size is not None and graph_split_size < 1:
        raise ValueError("graph_split_size must be positive")
    kernels = list(kernels)
    if not kernels:
        return []
    if graph_split_size is None:
        return [LaunchOp(kernels=tuple(kernels), is_graph=True)]
    ops = []
    for start in range(0, len(kernels), graph_split_size):
        chunk = tuple(kernels[start : start + graph_split_size])
        ops.append(LaunchOp(kernels=chunk, is_graph=True))
    return ops


@dataclass
class TaskWorkload:
    """The repeating launch sequence of one job on one GPU.

    Attributes
    ----------
    task_id:
        Unique name, e.g. ``"fg"`` or ``"bg"``.
    iteration_ops:
        Launch ops making up one training iteration, in order.
    samples_per_iteration:
        Samples processed per iteration (per-GPU batch size), used to convert
        completed iterations into throughput.
    priority:
        CUDA stream priority; higher values are favored by the device
        scheduler when stream priorities are enabled.
    max_outstanding_ops:
        Launch-pacing limit: how many launch ops may be in flight (launched
        but not finished) at once.  ``None`` models the naive unbounded
        behaviour.
    host_launch_latency:
        Host time consumed per launch op.
    """

    task_id: str
    iteration_ops: List[LaunchOp]
    samples_per_iteration: float
    priority: int = 0
    max_outstanding_ops: Optional[int] = None
    host_launch_latency: float = 4.0e-6

    def __post_init__(self) -> None:
        if not self.iteration_ops:
            raise ValueError(f"task {self.task_id!r} has no launch ops")
        if self.samples_per_iteration <= 0:
            raise ValueError(f"task {self.task_id!r}: samples_per_iteration must be positive")
        if self.max_outstanding_ops is not None and self.max_outstanding_ops < 1:
            raise ValueError(f"task {self.task_id!r}: pacing limit must be >= 1")
        if self.host_launch_latency < 0:
            raise ValueError(f"task {self.task_id!r}: negative host latency")

    @property
    def iteration_device_time(self) -> float:
        """Isolated device time of one iteration."""
        return sum(op.duration for op in self.iteration_ops)

    @property
    def num_kernels_per_iteration(self) -> int:
        return sum(op.num_kernels for op in self.iteration_ops)
