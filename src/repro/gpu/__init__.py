"""GPU device simulator substrate.

A discrete-event model of one GPU shared by a high-priority foreground job
and a low-priority background job, reproducing the mechanisms of the paper's
Section 5: CUDA streams with priorities, a non-preemptive device scheduler,
shared driver queues, CUDA graph launches, launch pacing, and the slowdown
feedback loop.

Public API:

* :class:`~repro.gpu.kernel.Kernel`, :class:`~repro.gpu.kernel.LaunchOp`,
  :class:`~repro.gpu.kernel.TaskWorkload` — workload vocabulary.
* :class:`~repro.gpu.device.GPUSimulator` /
  :class:`~repro.gpu.device.DeviceConfig` — the simulator itself.
* :class:`~repro.gpu.workload.TrainingTaskBuilder` /
  :func:`~repro.gpu.workload.synthetic_workload` — build DNN-iteration and
  microbenchmark workloads.
"""

from .device import DeviceConfig, GPUSimulator, SimulationResult, TaskStats
from .kernel import Kernel, LaunchOp, TaskWorkload, split_into_graphs
from .workload import TrainingTaskBuilder, synthetic_workload

__all__ = [
    "Kernel",
    "LaunchOp",
    "TaskWorkload",
    "split_into_graphs",
    "GPUSimulator",
    "DeviceConfig",
    "SimulationResult",
    "TaskStats",
    "TrainingTaskBuilder",
    "synthetic_workload",
]
