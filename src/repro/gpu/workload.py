"""Build simulator task workloads from model graphs.

Translates one training iteration of a DNN (forward pass, backward pass,
gradient all-reduce) into the kernel/launch-op vocabulary of the GPU device
simulator, using the analytical layer profiler for kernel durations and SM
occupancies.  This is the bridge between the planning substrates and the
multiplexing study (Figures 11 and 12).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..models.graph import ModelGraph
from ..network.collectives import CollectiveCostModel, DEFAULT_BUCKET_BYTES
from ..network.fabric import NetworkFabric
from ..profiler.gpu_spec import GPUSpec
from ..profiler.layer_profiler import AMP_DTYPE_BYTES, LayerProfiler
from .kernel import Kernel, LaunchOp, TaskWorkload, split_into_graphs

__all__ = ["TrainingTaskBuilder", "synthetic_workload"]

#: SM occupancy of NCCL communication kernels (NCCL uses a handful of SMs).
NCCL_KERNEL_OCCUPANCY = 0.15

#: Minimum occupancy attributed to any compute kernel (launch/config overhead
#: keeps even tiny kernels from being free).
MIN_KERNEL_OCCUPANCY = 0.02

#: Host-side cost per operator in eager execution (framework dispatch +
#: cudaLaunchKernel), i.e. without CUDA graphs.  Much larger than the raw
#: launch syscall: this is the overhead CUDA graphs eliminate and the reason
#: models with many small kernels gain the most from graphs (paper Section 5).
EAGER_OP_OVERHEAD = 30e-6


class TrainingTaskBuilder:
    """Builds :class:`TaskWorkload` objects for training jobs on one GPU."""

    def __init__(
        self,
        profiler: Optional[LayerProfiler] = None,
        fabric: Optional[NetworkFabric] = None,
    ) -> None:
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.fabric = fabric
        self.collectives = CollectiveCostModel(fabric) if fabric is not None else None

    # ------------------------------------------------------------------ build
    def kernels_for_iteration(
        self,
        graph: ModelGraph,
        per_gpu_batch: int,
        sync_gpus: int = 1,
        sensitive_sync: bool = True,
    ) -> List[Kernel]:
        """Kernel sequence of one training iteration on one GPU.

        Forward kernels in topological order, backward kernels in reverse
        order, then gradient all-reduce kernels (one per gradient bucket)
        when ``sync_gpus > 1`` and a fabric was provided.
        """
        if per_gpu_batch <= 0:
            raise ValueError("per_gpu_batch must be positive")
        fwd: List[Kernel] = []
        bwd: List[Kernel] = []
        for lid in graph.layer_ids():
            spec = graph.spec(lid)
            timing = self.profiler.layer_timing(spec, per_gpu_batch)
            if timing.num_kernels == 0:
                continue
            occupancy = max(
                MIN_KERNEL_OCCUPANCY,
                min(1.0, self.profiler.forward_occupancy(spec, per_gpu_batch)),
            )
            if timing.forward_kernels > 0 and timing.forward_time > 0:
                per_kernel = timing.forward_time / timing.forward_kernels
                for k in range(timing.forward_kernels):
                    fwd.append(
                        Kernel(
                            name=f"{spec.name}.fwd{k}",
                            duration=per_kernel,
                            occupancy=occupancy,
                        )
                    )
            if timing.backward_kernels > 0 and timing.backward_time > 0:
                per_kernel = timing.backward_time / timing.backward_kernels
                for k in range(timing.backward_kernels):
                    bwd.append(
                        Kernel(
                            name=f"{spec.name}.bwd{k}",
                            duration=per_kernel,
                            occupancy=occupancy,
                        )
                    )
        kernels = fwd + list(reversed(bwd))
        if sync_gpus > 1 and self.collectives is not None:
            kernels.extend(
                self._sync_kernels(graph, sync_gpus, sensitive_sync)
            )
        return kernels

    def _sync_kernels(
        self, graph: ModelGraph, sync_gpus: int, sensitive: bool
    ) -> List[Kernel]:
        assert self.collectives is not None
        total_bytes = graph.total_params() * AMP_DTYPE_BYTES
        if total_bytes == 0:
            return []
        num_buckets = max(1, math.ceil(total_bytes / DEFAULT_BUCKET_BYTES))
        bucket_bytes = total_bytes / num_buckets
        bucket_time = self.collectives.all_reduce_time(bucket_bytes, sync_gpus)
        return [
            Kernel(
                name=f"allreduce.bucket{i}",
                duration=bucket_time,
                occupancy=NCCL_KERNEL_OCCUPANCY,
                interference_sensitive=sensitive,
            )
            for i in range(num_buckets)
        ]

    def build_task(
        self,
        graph: ModelGraph,
        per_gpu_batch: int,
        task_id: str,
        priority: int = 0,
        use_cuda_graphs: bool = True,
        graph_split_size: Optional[int] = 24,
        max_outstanding_ops: Optional[int] = 4,
        sync_gpus: int = 1,
        gpu: Optional[GPUSpec] = None,
    ) -> TaskWorkload:
        """Build one job's repeating launch sequence for the simulator.

        With CUDA graphs enabled, kernels are grouped into graph segments of
        ``graph_split_size`` kernels and each segment costs one (cheap) graph
        launch; without graphs every kernel is its own launch and pays the
        full ``cudaLaunchKernel`` latency.
        """
        kernels = self.kernels_for_iteration(graph, per_gpu_batch, sync_gpus)
        device = gpu if gpu is not None else self.profiler.gpu
        if use_cuda_graphs:
            ops = split_into_graphs(kernels, graph_split_size)
            split = graph_split_size if graph_split_size is not None else len(kernels)
            host_latency = max(
                device.kernel_launch_overhead, device.graph_launch_overhead * split
            )
        else:
            ops = [LaunchOp(kernels=(k,), is_graph=False) for k in kernels]
            host_latency = EAGER_OP_OVERHEAD
        return TaskWorkload(
            task_id=task_id,
            iteration_ops=ops,
            samples_per_iteration=per_gpu_batch,
            priority=priority,
            max_outstanding_ops=max_outstanding_ops,
            host_launch_latency=host_latency,
        )


def synthetic_workload(
    task_id: str,
    kernel_duration: float,
    occupancy: float,
    priority: int = 0,
    kernels_per_iteration: int = 16,
    max_outstanding_ops: Optional[int] = 1,
    host_launch_latency: float = 4.0e-6,
) -> TaskWorkload:
    """A stream of identical kernels — the Figure 12 microbenchmark workload.

    ``kernel_duration`` controls execution latency and ``occupancy`` stands in
    for compute intensity (how much of the device each kernel needs).
    """
    kernels = tuple(
        Kernel(
            name=f"{task_id}.k{i}",
            duration=kernel_duration,
            occupancy=occupancy,
        )
        for i in range(kernels_per_iteration)
    )
    ops = [LaunchOp(kernels=(k,), is_graph=False) for k in kernels]
    return TaskWorkload(
        task_id=task_id,
        iteration_ops=ops,
        samples_per_iteration=kernels_per_iteration,
        priority=priority,
        max_outstanding_ops=max_outstanding_ops,
        host_launch_latency=host_launch_latency,
    )
