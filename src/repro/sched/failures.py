"""Failure injection and checkpoint/restart cost modeling for the scheduler.

Clusters lose nodes.  A :class:`NodeFailure` takes one host (and every GPU on
it) down for a duration; the scheduler turns each one into a pair of
``NODE_FAILURE`` / ``NODE_RECOVERY`` events on the simulation timeline.  Jobs
touching a failed host are killed and re-queued, rolling their progress back
to the last checkpoint under a :class:`CheckpointModel`:

* work since the last checkpoint is **lost** (subtracted from the job's
  useful GPU-seconds and accounted as ``lost_gpu_seconds``);
* the restart pays ``restart_overhead_s`` of dead time on its next
  placement before any iteration progresses;
* collocated guests of a killed foreground job are evicted and re-queued —
  with a rollback of their own only when their specific GPU was on the
  failed host (a guest on a surviving GPU merely loses its slot).

:func:`inject_failures` generates deterministic failure schedules (seeded,
non-overlapping per host) so benchmark scenarios can replay identical
failure storms run after run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..obs.metrics import global_registry
from .fleet import ClusterFleet

__all__ = ["NodeFailure", "CheckpointModel", "inject_failures", "validate_failures"]


@dataclass(frozen=True)
class NodeFailure:
    """One host going down at ``time`` for ``duration`` simulated seconds.

    The host recovers (all its GPUs return to the free pool) at
    ``time + duration``.
    """

    time: float
    host: int
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.host < 0:
            raise ValueError("host id must be non-negative")
        if self.duration <= 0:
            raise ValueError("failure duration must be positive")

    @property
    def recovery_time(self) -> float:
        return self.time + self.duration


@dataclass(frozen=True)
class CheckpointModel:
    """Checkpoint/restart cost knobs for failure handling.

    Attributes
    ----------
    interval_s:
        Simulated seconds between checkpoints of a *placed* job.  The
        checkpoint clock restarts at every placement (an eviction or
        preemption snapshots progress by construction), so a failure loses
        at most ``interval_s`` worth of recent progress.
    restart_overhead_s:
        Dead time a restarted job pays at its next placement (checkpoint
        restore, NCCL re-initialization...) before iterations progress
        again.  The job holds its GPUs during this window, so the overhead
        shows up as allocated-but-not-busy time.
    """

    interval_s: float = 120.0
    restart_overhead_s: float = 15.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("checkpoint interval_s must be positive")
        if self.restart_overhead_s < 0:
            raise ValueError("restart_overhead_s must be non-negative")


def validate_failures(
    fleet: ClusterFleet, failures: Sequence[NodeFailure]
) -> List[NodeFailure]:
    """Check a failure schedule against a fleet and return it time-sorted.

    Host ids must exist in the fleet and the downtime windows of one host
    must not overlap (a host cannot fail while it is already down).
    """
    ordered = sorted(failures, key=lambda f: (f.time, f.host))
    last_recovery: Dict[int, float] = {}
    for failure in ordered:
        if failure.host >= fleet.num_hosts:
            raise ValueError(
                f"failure names host {failure.host}, but the fleet has "
                f"{fleet.num_hosts} hosts"
            )
        previous = last_recovery.get(failure.host)
        if previous is not None and failure.time < previous:
            raise ValueError(
                f"host {failure.host} fails at t={failure.time:.3f} while "
                f"still down (recovers at t={previous:.3f})"
            )
        last_recovery[failure.host] = failure.recovery_time
    return ordered


def inject_failures(
    fleet: ClusterFleet,
    num_failures: int,
    seed: int = 0,
    window: Tuple[float, float] = (60.0, 600.0),
    mean_downtime: float = 45.0,
    min_downtime: float = 5.0,
) -> List[NodeFailure]:
    """Deterministic failure schedule: seeded, non-overlapping per host.

    Failure times are drawn uniformly over ``window``, hosts uniformly over
    the fleet, and downtimes as ``min_downtime`` plus an exponential with
    mean ``mean_downtime``.  A draw that would overlap an existing downtime
    window of the same host is re-drawn (bounded attempts), keeping the
    schedule valid by construction.  Identical arguments always produce an
    identical schedule.
    """
    if num_failures < 0:
        raise ValueError("num_failures must be non-negative")
    if window[0] < 0 or window[1] <= window[0]:
        raise ValueError("window must be a non-negative (start, end) with end > start")
    if mean_downtime <= 0 or min_downtime <= 0:
        raise ValueError("downtimes must be positive")
    rng = random.Random(seed)
    windows: Dict[int, List[Tuple[float, float]]] = {}
    failures: List[NodeFailure] = []
    for _ in range(num_failures):
        for _attempt in range(64):
            time = rng.uniform(*window)
            host = rng.randrange(fleet.num_hosts)
            duration = min_downtime + rng.expovariate(1.0 / mean_downtime)
            taken = windows.setdefault(host, [])
            if all(time + duration <= s or time >= e for s, e in taken):
                taken.append((time, time + duration))
                failures.append(NodeFailure(time=time, host=host, duration=duration))
                break
        # An unplaceable failure (dense schedule on a tiny fleet) is simply
        # dropped after the attempt budget; the schedule stays deterministic.
    registry = global_registry()
    registry.counter("sched.failures.injected").add(len(failures))
    registry.counter("sched.failures.dropped").add(num_failures - len(failures))
    return validate_failures(fleet, failures)
