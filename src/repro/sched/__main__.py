"""Command-line entry point: ``python -m repro.sched``.

``shard-smoke`` runs the shard-parity check CI gates on: the same workload
is replayed three ways — single-process through ``ClusterScheduler.run``,
sharded cold (the serial anchor pass materializes and persists the epoch
anchors), and sharded warm across worker processes (pure parallel phase,
every anchor a cache hit) — and all three
:func:`~repro.serve.replay.result_fingerprint` digests must match byte for
byte.  A JSON report with the per-epoch counters and timings is written for
CI to upload as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import List, Optional

from ..cache import ArtifactCache
from ..obs.metrics import global_registry
from .failures import inject_failures
from .scheduler import ClusterScheduler
from .shard import replay_sharded
from .traces import alibaba_trace, mixed_trace, synthetic_trace

_GENERATORS = {
    "synthetic": synthetic_trace,
    "alibaba": alibaba_trace,
    "mixed": mixed_trace,
}


def _cmd_shard_smoke(args: argparse.Namespace) -> int:
    trace = _GENERATORS[args.trace](args.num_jobs, seed=args.seed)
    print(
        f"shard-smoke: trace={args.trace} jobs={len(trace)} "
        f"gpus={args.num_gpus} policy={args.policy} epochs={args.epochs} "
        f"workers={args.workers} seed={args.seed}"
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def scheduler() -> ClusterScheduler:
        return ClusterScheduler(args.num_gpus, fabric=args.fabric)

    failures = (
        inject_failures(
            scheduler().fleet, args.failures, seed=args.failure_seed
        )
        if args.failures
        else []
    )
    if failures:
        print(f"failures: {len(failures)} injected (seed={args.failure_seed})")

    serial_start = perf_counter()
    serial = scheduler().run(trace, args.policy, failures=failures)
    serial_s = perf_counter() - serial_start
    from ..serve.replay import result_fingerprint

    serial_fp = result_fingerprint(serial)
    print(
        f"serial  : events={serial.events_processed} "
        f"wall={serial_s:.3f}s fp={serial_fp}"
    )

    with tempfile.TemporaryDirectory(prefix="shard-smoke-") as default_dir:
        cache = ArtifactCache(args.cache_dir or default_dir)
        registry = global_registry()
        before = registry.snapshot()
        cold = replay_sharded(
            scheduler(),
            trace,
            args.policy,
            failures=failures,
            epochs=args.epochs,
            workers=args.workers,
            anchor_cache=cache,
        )
        cold_fp = cold.result_fingerprint()
        print(
            f"cold    : anchors={cold.anchor_writes} written in "
            f"{cold.anchor_pass_s:.3f}s, replay={cold.replay_s:.3f}s "
            f"fp={cold_fp}"
        )
        warm = replay_sharded(
            scheduler(),
            trace,
            args.policy,
            failures=failures,
            epochs=args.epochs,
            workers=args.workers,
            anchor_cache=cache,
        )
        counters = registry.delta_since(before)
        warm_fp = warm.result_fingerprint()
        print(
            f"warm    : anchors={warm.anchor_hits} hit, "
            f"replay={warm.replay_s:.3f}s "
            f"utilization={warm.worker_utilization:.2f} fp={warm_fp}"
        )

    match = serial_fp == cold_fp == warm_fp
    report = {
        "trace": args.trace,
        "num_jobs": args.num_jobs,
        "num_gpus": args.num_gpus,
        "policy": args.policy,
        "seed": args.seed,
        "failures": len(failures),
        "serial_fingerprint": serial_fp,
        "serial_wall_s": serial_s,
        "match": match,
        "cold": cold.to_payload(),
        "warm": warm.to_payload(),
        "counters": counters,
    }
    report_path = out / "shard_report.json"
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"artifact: {report_path}")

    if not match:
        print("FAIL: sharded replay diverged from the single-process run")
        return 1
    print(
        "OK: sharded replay matches the single-process run byte for byte "
        f"(cold and warm, {warm.workers} workers x {len(warm.epochs)} epochs)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched",
        description="Scheduler replay utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser(
        "shard-smoke",
        help="replay a trace sharded and assert single-process parity",
    )
    smoke.add_argument("--trace", choices=sorted(_GENERATORS), default="mixed")
    smoke.add_argument("--num-jobs", type=int, default=800)
    smoke.add_argument("--num-gpus", type=int, default=512)
    smoke.add_argument("--seed", type=int, default=11)
    smoke.add_argument("--policy", default="collocation")
    smoke.add_argument("--fabric", default="nvswitch")
    smoke.add_argument("--failures", type=int, default=4)
    smoke.add_argument("--failure-seed", type=int, default=9)
    smoke.add_argument("--epochs", type=int, default=5)
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument(
        "--cache-dir",
        default=None,
        help="anchor/plan cache root (default: a fresh temp directory)",
    )
    smoke.add_argument(
        "--out", default="shard-artifacts", help="artifact output directory"
    )
    smoke.set_defaults(fn=_cmd_shard_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
