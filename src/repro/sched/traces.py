"""Job-arrival traces for the multi-tenant cluster scheduler.

Three generators are provided, all fully deterministic under a seed:

* :func:`synthetic_trace` — Poisson arrivals over the evaluation model zoo,
  with a configurable share of single-GPU background jobs.  This is the
  workload the policy-comparison benchmark runs.
* :func:`alibaba_trace` — an Alibaba-PAI-style workload: the vast majority
  of jobs are small (short, narrow, mostly background/best-effort) while a
  small head of large foreground jobs dominates GPU demand, with log-normal
  job sizes and a diurnal arrival-rate modulation.
* :func:`mixed_trace` — both of the above interleaved on one timeline: the
  steady Poisson tenant mix sharing the cluster with the heavy-tailed
  diurnal tenant, which is the workload the cluster-scale ``sched_sim_xl``
  benchmark replays.

Neither generator needs the real cluster traces; they reproduce the shape
(arrival process, size skew, foreground/background mix) that the scheduling
policies are sensitive to.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..cluster.job import JobKind, TrainingJob
from ..models.graph import ModelGraph

__all__ = ["TraceJob", "synthetic_trace", "alibaba_trace", "mixed_trace"]


@dataclass(frozen=True)
class TraceJob:
    """One job of an arrival trace.

    Attributes
    ----------
    name:
        Unique job name within the trace.
    model:
        Registry name of the model to train (see ``repro.models.registry``).
    global_batch:
        Global batch size (for background jobs: the single-GPU batch).
    arrival_time:
        Submission time in simulated seconds.
    iterations:
        Training-iteration budget; the job completes after this many
        iterations.
    kind:
        Foreground (distributed, planner-scheduled) or background
        (single-GPU, best-effort).
    amplification_limit:
        Inefficiency tolerance handed to the burst-parallel planner
        (foreground jobs only).
    max_gpus:
        Optional cap on the job's GPU width (defaults to the cluster size).
    """

    name: str
    model: str
    global_batch: int
    arrival_time: float
    iterations: int
    kind: JobKind = JobKind.FOREGROUND
    amplification_limit: float = 2.0
    max_gpus: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"job {self.name!r}: arrival_time must be >= 0")
        if self.iterations < 1:
            raise ValueError(f"job {self.name!r}: iterations must be positive")
        if self.global_batch < 1:
            raise ValueError(f"job {self.name!r}: global_batch must be positive")
        if self.max_gpus is not None and self.max_gpus < 1:
            raise ValueError(f"job {self.name!r}: max_gpus must be positive")

    @property
    def is_foreground(self) -> bool:
        return self.kind is JobKind.FOREGROUND

    def with_arrival(
        self, arrival_time: float, name: Optional[str] = None
    ) -> "TraceJob":
        """Copy of this job submitted at a different time.

        Pass ``name`` when the copy coexists with the original in one run —
        a service resubmission reusing the old name would be rejected at
        submit (job names index live state), and silently reusing the old
        arrival for ordering would jump the queue.  See :meth:`resubmitted`.
        """
        if name is not None:
            return replace(self, arrival_time=arrival_time, name=name)
        return replace(self, arrival_time=arrival_time)

    def resubmitted(self, arrival_time: float, attempt: int = 1) -> "TraceJob":
        """Copy for cancel-then-resubmit through the service API.

        The copy is renamed ``<name>#<attempt>`` (fresh identity, so
        duplicate-name rejection never trips on the cancelled original) and
        re-stamped with the new ``arrival_time`` (fresh queue position, so
        the stale arrival can't leapfrog jobs submitted in between).
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base, _, _ = self.name.partition("#")
        return replace(
            self, arrival_time=arrival_time, name=f"{base}#{attempt}"
        )

    def to_training_job(self, graph: ModelGraph) -> TrainingJob:
        """The cluster-layer job description for this trace entry."""
        return TrainingJob(
            name=self.name,
            graph=graph,
            global_batch=self.global_batch,
            kind=self.kind,
            amplification_limit=(
                self.amplification_limit if self.is_foreground else None
            ),
        )


def _sorted_and_named(jobs: List[TraceJob]) -> List[TraceJob]:
    """Stable-sort a trace by arrival time (ties keep generation order)."""
    return sorted(jobs, key=lambda j: (j.arrival_time, j.name))


def synthetic_trace(
    num_jobs: int,
    seed: int = 0,
    arrival_rate: float = 0.8,
    models: Sequence[str] = ("vgg16", "resnet50"),
    bg_fraction: float = 0.35,
    fg_iterations: Tuple[int, int] = (300, 1500),
    bg_iterations: Tuple[int, int] = (500, 3000),
    bg_batches: Sequence[int] = (2, 4, 8),
    amplification_limits: Sequence[float] = (2.0,),
) -> List[TraceJob]:
    """Poisson-arrival synthetic trace over the evaluation model zoo.

    Interarrival gaps are exponential with rate ``arrival_rate`` (jobs per
    second); each job is background with probability ``bg_fraction``,
    otherwise a foreground job with an iteration budget drawn uniformly from
    ``fg_iterations``.  Identical seeds produce identical traces.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be positive")
    if not (0.0 <= bg_fraction <= 1.0):
        raise ValueError("bg_fraction must be in [0, 1]")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    from ..models.registry import model_entry  # deferred: registry builds lazily

    rng = random.Random(seed)
    jobs: List[TraceJob] = []
    clock = 0.0
    for i in range(num_jobs):
        clock += rng.expovariate(arrival_rate)
        model = rng.choice(list(models))
        if rng.random() < bg_fraction:
            jobs.append(
                TraceJob(
                    name=f"bg-{i:03d}",
                    model=model,
                    global_batch=rng.choice(list(bg_batches)),
                    arrival_time=clock,
                    iterations=rng.randint(*bg_iterations),
                    kind=JobKind.BACKGROUND,
                )
            )
        else:
            jobs.append(
                TraceJob(
                    name=f"fg-{i:03d}",
                    model=model,
                    global_batch=model_entry(model).default_global_batch,
                    arrival_time=clock,
                    iterations=rng.randint(*fg_iterations),
                    kind=JobKind.FOREGROUND,
                    amplification_limit=rng.choice(list(amplification_limits)),
                )
            )
    return _sorted_and_named(jobs)


def alibaba_trace(
    num_jobs: int,
    seed: int = 0,
    mean_interarrival: float = 1.5,
    models: Sequence[str] = ("vgg16", "resnet50"),
    small_fraction: float = 0.8,
    sigma: float = 1.0,
    small_iterations: int = 400,
    large_iterations: int = 1200,
    diurnal_period: float = 60.0,
) -> List[TraceJob]:
    """Alibaba-PAI-style heavy-tailed trace.

    Mirrors the published cluster-trace shape rather than the raw data:
    ~``small_fraction`` of jobs are small single-GPU best-effort jobs while a
    small head of wide foreground jobs carries most of the GPU demand;
    iteration budgets are log-normal (heavy tail), and the arrival rate is
    modulated by a deterministic diurnal wave of period ``diurnal_period``
    simulated seconds.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be positive")
    if not (0.0 <= small_fraction <= 1.0):
        raise ValueError("small_fraction must be in [0, 1]")
    from ..models.registry import model_entry

    rng = random.Random(seed)
    jobs: List[TraceJob] = []
    clock = 0.0
    for i in range(num_jobs):
        # Day/night modulation: gaps stretch up to ~2x in the trough.
        phase = 2.0 * math.pi * clock / diurnal_period
        modulation = 1.5 - 0.5 * math.sin(phase)
        clock += rng.expovariate(1.0 / (mean_interarrival * modulation))
        model = rng.choice(list(models))
        if rng.random() < small_fraction:
            iterations = max(1, int(small_iterations * rng.lognormvariate(0.0, sigma)))
            jobs.append(
                TraceJob(
                    name=f"small-{i:03d}",
                    model=model,
                    global_batch=rng.choice((2, 4)),
                    arrival_time=clock,
                    iterations=iterations,
                    kind=JobKind.BACKGROUND,
                )
            )
        else:
            iterations = max(1, int(large_iterations * rng.lognormvariate(0.0, sigma)))
            jobs.append(
                TraceJob(
                    name=f"large-{i:03d}",
                    model=model,
                    global_batch=model_entry(model).default_global_batch,
                    arrival_time=clock,
                    iterations=iterations,
                    kind=JobKind.FOREGROUND,
                    amplification_limit=2.0,
                )
            )
    return _sorted_and_named(jobs)


def mixed_trace(
    num_jobs: int,
    seed: int = 0,
    synthetic_fraction: float = 0.5,
    arrival_rate: float = 0.8,
    mean_interarrival: float = 1.5,
    models: Sequence[str] = ("vgg16", "resnet50"),
) -> List[TraceJob]:
    """Synthetic and Alibaba-style tenants interleaved on one timeline.

    ``synthetic_fraction`` of the jobs come from :func:`synthetic_trace`
    (steady Poisson mix) and the rest from :func:`alibaba_trace`
    (heavy-tailed, diurnal); job names are prefixed by tenant so the merged
    trace keeps unique names, and the merge is re-sorted by arrival time.
    This is the cluster-scale workload ``sched_sim_xl`` replays: neither
    tenant alone exercises both a deep steady queue and bursty wide jobs.
    """
    if num_jobs < 2:
        raise ValueError("mixed_trace needs at least 2 jobs (one per tenant)")
    if not (0.0 < synthetic_fraction < 1.0):
        raise ValueError("synthetic_fraction must be strictly between 0 and 1")
    num_synthetic = max(1, min(num_jobs - 1, round(num_jobs * synthetic_fraction)))
    synthetic = synthetic_trace(
        num_synthetic, seed=seed, arrival_rate=arrival_rate, models=models
    )
    alibaba = alibaba_trace(
        num_jobs - num_synthetic,
        seed=seed + 1,
        mean_interarrival=mean_interarrival,
        models=models,
    )
    jobs = [replace(job, name=f"syn-{job.name}") for job in synthetic]
    jobs += [replace(job, name=f"ali-{job.name}") for job in alibaba]
    return _sorted_and_named(jobs)
