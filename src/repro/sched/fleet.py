"""Heterogeneous GPU fleets: named pools of GPU generations, mapped to hosts.

Real multi-tenant clusters are not racks of identical accelerators: they mix
GPU generations (A100 pods next to V100 pods), and the scheduler must know
which is which — a burst-parallel plan computed for one generation is wrong
for another, and a failure takes down a *host* (a node with several GPUs),
not an abstract device index.

This module models that structure:

* :class:`GpuPoolSpec` — one named pool of identical GPUs
  (:class:`~repro.profiler.gpu_spec.GPUSpec`), organized into hosts of
  ``gpus_per_host`` devices.
* :class:`ClusterFleet` — an ordered collection of pools with a global,
  deterministic GPU-id and host-id numbering.  ``speed_order`` ranks pools
  fastest-first by peak FLOPs (ties broken by pool *name*, never by
  declaration order, so fleet metrics are invariant to how the pools were
  enumerated).
* :class:`FleetPool` — the free-GPU registry for one scheduler run: one
  heap-disciplined :class:`~repro.sched.events.GpuPool` per pool, plus the
  bookkeeping for failed hosts (a failed host's GPUs leave the free pool and
  re-enter it only at recovery; GPUs released by evicted jobs while their
  host is down are absorbed rather than double-freed).

The legacy homogeneous path is a one-pool fleet
(:meth:`ClusterFleet.homogeneous`); every scheduler decision reduces to the
pre-fleet behaviour in that case, which is what keeps the committed
``sched_sim`` / ``sched_sim_xl`` baselines bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Iterable, List, Tuple

from ..profiler.gpu_spec import A100_40GB, GPUSpec
from .events import GpuPool

__all__ = ["GpuPoolSpec", "ClusterFleet", "FleetPool"]


@dataclass(frozen=True)
class GpuPoolSpec:
    """One named pool of identical GPUs, organized into hosts.

    Attributes
    ----------
    name:
        Unique pool name within the fleet (e.g. ``"a100"``).
    gpu:
        Hardware specification every GPU in the pool shares.
    num_gpus:
        Number of GPUs in the pool.
    gpus_per_host:
        GPUs per host (node); the last host may be partial when
        ``num_gpus`` is not a multiple.  Failures take down whole hosts.
    """

    name: str
    gpu: GPUSpec
    num_gpus: int
    gpus_per_host: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        if self.num_gpus < 1:
            raise ValueError(f"pool {self.name!r}: num_gpus must be positive")
        if self.gpus_per_host < 1:
            raise ValueError(f"pool {self.name!r}: gpus_per_host must be positive")

    @property
    def num_hosts(self) -> int:
        return math.ceil(self.num_gpus / self.gpus_per_host)


@dataclass(frozen=True)
class ClusterFleet:
    """A mix of GPU pools with deterministic global GPU/host numbering.

    GPU ids are contiguous per pool in declaration order (pool 0 owns
    ``[0, n0)``, pool 1 owns ``[n0, n0 + n1)``, ...), and host ids likewise.
    Scheduling decisions never depend on the declaration order — pools are
    always considered in :attr:`speed_order` (or its reverse) — so permuting
    the pools renumbers devices but cannot change fleet metrics *absent a
    failure schedule*: :class:`~repro.sched.failures.NodeFailure` addresses
    hosts by their global (declaration-order-dependent) id, so the same
    host index names a different pool's host after a permutation.
    """

    pools: Tuple[GpuPoolSpec, ...]

    def __post_init__(self) -> None:
        if not self.pools:
            raise ValueError("a fleet needs at least one GPU pool")
        names = [pool.name for pool in self.pools]
        if len(set(names)) != len(names):
            raise ValueError(f"pool names must be unique, got {names}")

    @classmethod
    def homogeneous(
        cls, num_gpus: int, gpu: GPUSpec = A100_40GB, gpus_per_host: int = 8
    ) -> "ClusterFleet":
        """The legacy single-pool fleet of ``num_gpus`` identical GPUs."""
        return cls((GpuPoolSpec("default", gpu, num_gpus, gpus_per_host),))

    # ------------------------------------------------------------- aggregates
    @property
    def num_gpus(self) -> int:
        return sum(pool.num_gpus for pool in self.pools)

    @property
    def num_hosts(self) -> int:
        return sum(pool.num_hosts for pool in self.pools)

    @property
    def is_homogeneous(self) -> bool:
        return len(self.pools) == 1

    @property
    def pool_names(self) -> Tuple[str, ...]:
        """Pool names in declaration order."""
        return tuple(pool.name for pool in self.pools)

    @cached_property
    def speed_order(self) -> Tuple[str, ...]:
        """Pool names fastest-first (peak FLOPs, ties broken by name).

        The tie-break is the *name*, not the declaration index, so two
        fleets with permuted pool declarations make identical decisions.
        """
        ranked = sorted(self.pools, key=lambda p: (-p.gpu.peak_flops, p.name))
        return tuple(pool.name for pool in ranked)

    # ------------------------------------------------------------ id mapping
    @cached_property
    def _by_name(self) -> Dict[str, GpuPoolSpec]:
        return {pool.name: pool for pool in self.pools}

    @cached_property
    def _gpu_offsets(self) -> Dict[str, int]:
        offsets: Dict[str, int] = {}
        base = 0
        for pool in self.pools:
            offsets[pool.name] = base
            base += pool.num_gpus
        return offsets

    @cached_property
    def _host_offsets(self) -> Dict[str, int]:
        offsets: Dict[str, int] = {}
        base = 0
        for pool in self.pools:
            offsets[pool.name] = base
            base += pool.num_hosts
        return offsets

    def pool(self, name: str) -> GpuPoolSpec:
        """Look up a pool by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown GPU pool {name!r}; available: {sorted(self._by_name)}"
            ) from None

    def gpu_ids_of_pool(self, name: str) -> range:
        """Global GPU ids belonging to one pool."""
        pool = self.pool(name)
        base = self._gpu_offsets[name]
        return range(base, base + pool.num_gpus)

    def pool_of_gpu(self, gpu_id: int) -> str:
        """Name of the pool a global GPU id belongs to."""
        for pool in self.pools:
            base = self._gpu_offsets[pool.name]
            if base <= gpu_id < base + pool.num_gpus:
                return pool.name
        raise ValueError(f"gpu id {gpu_id} outside the fleet (0..{self.num_gpus - 1})")

    def host_of_gpu(self, gpu_id: int) -> int:
        """Global host id owning a global GPU id."""
        name = self.pool_of_gpu(gpu_id)
        pool = self.pool(name)
        local = gpu_id - self._gpu_offsets[name]
        return self._host_offsets[name] + local // pool.gpus_per_host

    def pool_of_host(self, host_id: int) -> str:
        """Name of the pool a global host id belongs to."""
        for pool in self.pools:
            base = self._host_offsets[pool.name]
            if base <= host_id < base + pool.num_hosts:
                return pool.name
        raise ValueError(f"host id {host_id} outside the fleet (0..{self.num_hosts - 1})")

    def gpus_of_host(self, host_id: int) -> Tuple[int, ...]:
        """Global GPU ids on one host (the blast radius of a node failure)."""
        name = self.pool_of_host(host_id)
        pool = self.pool(name)
        local_host = host_id - self._host_offsets[name]
        start = local_host * pool.gpus_per_host
        stop = min(start + pool.gpus_per_host, pool.num_gpus)
        base = self._gpu_offsets[name]
        return tuple(range(base + start, base + stop))


class FleetPool:
    """The free GPUs of a fleet, tracked per pool, with failure bookkeeping.

    One :class:`~repro.sched.events.GpuPool` heap per pool keeps takes
    deterministic (lowest free id of the requested type).  Host failures
    move a host's GPUs into a *down* set: free ones leave their heap
    immediately, busy ones are absorbed when their evicted job releases
    them, and recovery returns every one of the host's GPUs to its heap
    exactly once — no leaks, no double-frees.
    """

    def __init__(self, fleet: ClusterFleet) -> None:
        self._fleet = fleet
        self._free: Dict[str, GpuPool] = {
            name: GpuPool(fleet.gpu_ids_of_pool(name)) for name in fleet.pool_names
        }
        self._down: set = set()
        self._down_hosts: set = set()

    def free_of(self, pool_name: str) -> int:
        """Number of free GPUs in one pool."""
        return len(self._free[pool_name])

    def take(self, pool_name: str, count: int) -> List[int]:
        """Remove and return the ``count`` lowest free GPU ids of one pool."""
        return self._free[pool_name].take(count)

    def release(self, gpu_ids: Iterable[int]) -> None:
        """Return GPUs to their pools (GPUs on a down host stay down)."""
        for gpu_id in gpu_ids:
            if gpu_id in self._down:
                continue  # absorbed until the host recovers
            self._free[self._fleet.pool_of_gpu(gpu_id)].release([gpu_id])

    def fail_host(self, host_id: int) -> Tuple[int, ...]:
        """Mark a host down; its free GPUs leave the pool immediately.

        Returns the host's GPU ids (the failure's blast radius).  GPUs
        currently assigned to jobs are absorbed when those jobs release
        them.  Failing a host that is already down is rejected — the
        scheduler validates failure schedules for per-host overlap.
        """
        gpu_ids = self._fleet.gpus_of_host(host_id)
        if any(g in self._down for g in gpu_ids):
            raise ValueError(f"host {host_id} is already down")
        self._down.update(gpu_ids)
        self._down_hosts.add(host_id)
        self._free[self._fleet.pool_of_host(host_id)].remove(gpu_ids)
        return gpu_ids

    def recover_host(self, host_id: int) -> None:
        """Bring a host back: all of its GPUs re-enter the free pool."""
        gpu_ids = self._fleet.gpus_of_host(host_id)
        if not all(g in self._down for g in gpu_ids):
            raise ValueError(f"host {host_id} is not down")
        self._down.difference_update(gpu_ids)
        self._down_hosts.discard(host_id)
        self._free[self._fleet.pool_of_host(host_id)].release(gpu_ids)

    def free_ids(self) -> List[int]:
        """Sorted ids of every free GPU (integrity checks in tests)."""
        out: List[int] = []
        for pool in self._free.values():
            out.extend(pool.ids())
        return sorted(out)

    def down_ids(self) -> List[int]:
        """Sorted ids of GPUs on currently-down hosts."""
        return sorted(self._down)

    @property
    def num_down_hosts(self) -> int:
        """Hosts currently marked down (the sampler's ``failed_hosts`` gauge)."""
        return len(self._down_hosts)

    @property
    def num_down_gpus(self) -> int:
        """GPUs on currently-down hosts (free or pending absorption)."""
        return len(self._down)

    def __len__(self) -> int:
        return sum(len(pool) for pool in self._free.values())

    def __bool__(self) -> bool:
        return any(self._free.values())

    # ------------------------------------------------------- snapshot/restore
    def snapshot_state(self) -> Dict[str, Any]:
        """Canonical capture: per-pool sorted free lists + down bookkeeping.

        Free ids are dumped sorted — a :class:`GpuPool` heap's take order is
        a pure function of its id *set* (always the lowest free id), so the
        sorted list is a canonical form independent of heap layout.
        """
        return {
            "free": {name: pool.ids() for name, pool in self._free.items()},
            "down": sorted(self._down),
            "down_hosts": sorted(self._down_hosts),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Rebuild free/down state in place from :meth:`snapshot_state`.

        Mutates this instance rather than returning a new one: the engine's
        telemetry gauges close over the ``FleetPool`` reference, so identity
        must survive a restore.
        """
        if set(payload["free"]) != set(self._fleet.pool_names):
            raise ValueError(
                "fleet snapshot pools do not match this fleet: "
                f"{sorted(payload['free'])} vs {sorted(self._fleet.pool_names)}"
            )
        # Rebuild in fleet declaration order, not payload order — canonical
        # JSON sorts keys, and dict iteration order must stay deterministic.
        self._free = {
            name: GpuPool(payload["free"][name]) for name in self._fleet.pool_names
        }
        self._down = set(payload["down"])
        self._down_hosts = set(payload["down_hosts"])
