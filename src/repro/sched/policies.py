"""Scheduling policies for the multi-tenant cluster scheduler.

A policy answers three questions at every scheduling point (a job arrival or
completion): in what order should pending jobs be considered, how many GPUs
should a foreground job get out of the free pool, and which mechanisms
(background collocation, background preemption, re-planning of running jobs)
are enabled.  Three policies are provided:

* :class:`FIFOPolicy` — strict arrival order with head-of-line blocking and
  full-width placements: the classic baseline cluster queue.
* :class:`ShortestRemainingGPUSecondsPolicy` — shortest remaining
  GPU-seconds first with backfilling: jobs shrink to the free-GPU budget so
  short work is never stuck behind wide work.
* :class:`CollocationAwarePolicy` — the DeepPool-style policy: backfilled
  burst-parallel foreground placements, background jobs packed onto the idle
  gaps of foreground GPUs via the collocation profile, background preemption
  when a foreground job needs dedicated GPUs, and re-planning of running
  foreground jobs onto freed capacity.

Policies see the scheduler's job states duck-typed (``is_foreground``,
``arrival_time``, ``order``, ``global_batch``, ``max_gpus``,
``remaining_gpu_seconds``) and never mutate them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple, Type

__all__ = [
    "floor_pow2",
    "width_cap",
    "SchedulingPolicy",
    "FIFOPolicy",
    "ShortestRemainingGPUSecondsPolicy",
    "CollocationAwarePolicy",
    "POLICIES",
    "get_policy",
]


def floor_pow2(value: int) -> int:
    """Largest power of two that is <= ``value`` (0 for values below 1)."""
    if value < 1:
        return 0
    return 1 << (value.bit_length() - 1)


def width_cap(job, num_gpus: int) -> int:
    """Hard cap on a job's GPU width within a pool of ``num_gpus``.

    The pool size, the job's batch (a layer cannot split below one sample
    per GPU), and the job's own ``max_gpus``.  Policies derive placement
    widths from it, and the scheduler's prewarm/re-plan/migration paths
    share it so the prewarmed plan set always covers exactly the widths
    the scheduler can request.
    """
    return min(
        num_gpus,
        job.global_batch,
        job.max_gpus if job.max_gpus is not None else num_gpus,
    )


class SchedulingPolicy(ABC):
    """Strategy interface consulted by the scheduler's event loop."""

    #: Registry key and display name.
    name: str = "base"
    #: Consider pending jobs strictly in order and stop at the first that
    #: does not fit (head-of-line blocking) instead of backfilling past it.
    strict_order: bool = False
    #: Pack background jobs onto foreground GPUs instead of dedicating GPUs.
    collocate_background: bool = False
    #: Evict dedicated background jobs when a foreground job needs GPUs.
    preempt_background: bool = False
    #: Re-plan running foreground jobs onto freed GPUs when the queue drains.
    replan_running: bool = False
    #: When re-planning, also consider migrating a running foreground job to
    #: a *different* (typically faster) GPU pool if that strictly improves
    #: its iteration time.  Meaningless on homogeneous fleets.
    replan_across_types: bool = False
    #: Whether ``sort_key`` depends on ``now`` (aging, deadlines...).  The
    #: scheduler keeps the pending queue sorted incrementally under keys
    #: computed at insertion; a policy whose keys drift with time must set
    #: this so the queue is re-keyed before every placement pass.
    dynamic_priority: bool = False

    @abstractmethod
    def sort_key(self, job, now: float) -> Tuple:
        """Ordering key for the pending queue (smaller schedules first).

        For jobs *waiting* in the queue the key must be stable over time
        unless :attr:`dynamic_priority` is set: the scheduler computes it
        once when the job enters the pending queue.
        """

    def pool_preference(self, job, fleet) -> Tuple[str, ...]:
        """Order in which the fleet's GPU pools are tried for ``job``.

        Foreground jobs prefer the fastest pools (their iteration time is
        the cluster's product) and fall back to slower pools on contention;
        background jobs fill from the slowest pool up, keeping fast GPUs
        available for foreground work.  On a homogeneous fleet both orders
        collapse to the single pool, reproducing the pre-fleet behaviour.
        """
        order = fleet.speed_order
        if job.is_foreground:
            return order
        return tuple(reversed(order))

    def desired_width(self, job, num_gpus: int) -> int:
        """Power-of-two GPU width the job would use on an empty cluster."""
        return max(1, floor_pow2(width_cap(job, num_gpus)))

    def width_for(
        self, job, free_gpus: int, num_gpus: int, pending_foreground: int = 1
    ) -> Optional[int]:
        """GPU width to start ``job`` at given the free pool, or ``None`` to wait.

        ``pending_foreground`` counts the foreground jobs waiting (including
        this one); policies may use it to divide the cluster instead of
        letting the head of the queue monopolize it.  The default behaviour
        backfills greedily: the job takes the largest power-of-two width
        that fits the free pool.
        """
        del pending_foreground
        desired = self.desired_width(job, num_gpus)
        width = min(desired, floor_pow2(free_gpus))
        return width if width >= 1 else None


class FIFOPolicy(SchedulingPolicy):
    """First-in-first-out with full-width placements and no backfilling."""

    name = "fifo"
    strict_order = True

    def sort_key(self, job, now: float) -> Tuple:
        return (job.arrival_time, job.order)

    def width_for(
        self, job, free_gpus: int, num_gpus: int, pending_foreground: int = 1
    ) -> Optional[int]:
        # FIFO insists on the job's full requested width: nothing starts
        # until the head of the queue can be placed at that width.
        del pending_foreground
        desired = self.desired_width(job, num_gpus)
        return desired if free_gpus >= desired else None


class ShortestRemainingGPUSecondsPolicy(SchedulingPolicy):
    """Shortest remaining GPU-seconds first, with backfilling."""

    name = "srgs"

    def sort_key(self, job, now: float) -> Tuple:
        return (job.remaining_gpu_seconds, job.arrival_time, job.order)


class CollocationAwarePolicy(ShortestRemainingGPUSecondsPolicy):
    """DeepPool-style policy: burst-parallel foregrounds, collocated backgrounds.

    Inherits the shortest-remaining-GPU-seconds ordering but schedules
    foreground jobs ahead of background jobs (background work rides the
    foreground jobs' idle gaps, so it should never delay them), packs
    background jobs onto foreground GPUs, preempts dedicated background jobs
    when foreground work arrives, and re-plans running foreground jobs onto
    capacity freed by completions.
    """

    name = "collocation"
    collocate_background = True
    preempt_background = True
    replan_running = True
    replan_across_types = True
    #: Collocate a background job only when the slot's expected efficiency
    #: (fraction of its isolated throughput) is at least this much; below it,
    #: waiting for a dedicated GPU beats crawling beside a busy foreground.
    min_collocation_efficiency: float = 0.5

    def sort_key(self, job, now: float) -> Tuple:
        return (not job.is_foreground,) + super().sort_key(job, now)

    def width_for(
        self, job, free_gpus: int, num_gpus: int, pending_foreground: int = 1
    ) -> Optional[int]:
        # Space-share: burst-parallel speedup is sublinear in width, so when
        # several foreground jobs are waiting, running them side by side at
        # smaller widths beats serial full-width runs.  Freed capacity is
        # reclaimed later by re-planning (and, meanwhile, by collocation).
        desired = self.desired_width(job, num_gpus)
        share = free_gpus // max(1, pending_foreground)
        width = min(desired, floor_pow2(max(share, 1)), floor_pow2(free_gpus))
        return width if width >= 1 else None


#: Registry of the built-in policies, keyed by :attr:`SchedulingPolicy.name`.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    policy.name: policy
    for policy in (
        FIFOPolicy,
        ShortestRemainingGPUSecondsPolicy,
        CollocationAwarePolicy,
    )
}


def get_policy(policy) -> SchedulingPolicy:
    """Resolve a policy instance from a name, class, or instance."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, SchedulingPolicy):
        return policy()
    try:
        return POLICIES[policy]()
    except (KeyError, TypeError):
        raise KeyError(
            f"unknown scheduling policy {policy!r}; "
            f"available: {', '.join(sorted(POLICIES))}"
        ) from None
