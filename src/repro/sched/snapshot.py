"""Crash-safe capture and restore of a live :class:`SchedulerEngine`.

:class:`EngineSnapshot` serializes *everything* that determines the rest of
a run — the job-state table, the event heap (in its canonical sorted order,
see the total-order audit in :mod:`repro.sched.events`), the per-pool free
lists and down-host bookkeeping, the pending/ordering structures with their
tie-break counters, the completion records, and the engine clocks — as one
canonical-JSON document.  Restoring it into a *fresh* engine (same fleet,
same policy, same planner/profiler configuration — all three are verified)
and continuing yields the exact event history of the uninterrupted run:
``result_fingerprint`` parity at any event boundary, which the property
tests assert and the crash harness in :mod:`repro.serve.chaos` relies on.

Two deliberate non-goals keep the format small and honest:

* ``_JobState.plan`` is not captured.  The bound :class:`TrainingPlan` is
  write-only after installation — every scalar the simulation reads
  (``base_iter_time``, ``work_per_iteration``, ``busy_fractions``,
  ``width``) is serialized directly — so the restored state carries
  ``plan=None`` and behaves identically.
* Derived caches (plan cache, graph cache, iso-time cache) are not
  captured.  They are pure functions of the scheduler's configuration;
  the restored run recomputes them on demand, and the snapshot *verifies*
  it is being applied under the same configuration by recomputing each
  job's ``iso_iter_time`` and comparing exactly.

The payload is versioned (``schema``) and fingerprinted
(:func:`~repro.cache.fingerprint.snapshot_fingerprint`), so persisted
snapshots are content-addressable and corruption is detectable before a
single field is applied.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from ..cache.fingerprint import (
    canonical_json,
    fleet_fingerprint,
    snapshot_fingerprint,
)
from ..cluster.job import JobKind
from .metrics import JobRecord
from .traces import TraceJob

__all__ = ["EngineSnapshot", "SNAPSHOT_SCHEMA"]

#: Bumped whenever the payload layout changes; restore rejects other schemas.
SNAPSHOT_SCHEMA = 1

# Restore maps status strings back onto the engine's module-level constants:
# the arrival handler tests ``status is not _PENDING`` by identity, and
# strings parsed from JSON are not interned.
_STATUS_CANON: Dict[str, str] = {}


def _status_constants() -> Dict[str, str]:
    if not _STATUS_CANON:
        from . import engine as _engine

        for const in (
            _engine._PENDING,
            _engine._RUNNING,
            _engine._DONE,
            _engine._CANCELLED,
        ):
            _STATUS_CANON[const] = const
    return _STATUS_CANON


def _enc_float(value: float) -> Any:
    """Encode a float for canonical JSON; infinities get a named sentinel."""
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _dec_float(value: Any) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return value


def _dump_trace_job(job: TraceJob) -> Dict[str, Any]:
    return {
        "name": job.name,
        "model": job.model,
        "global_batch": job.global_batch,
        "arrival_time": job.arrival_time,
        "iterations": job.iterations,
        "kind": job.kind.value,
        "amplification_limit": _enc_float(job.amplification_limit),
        "max_gpus": job.max_gpus,
    }


def _load_trace_job(row: Dict[str, Any]) -> TraceJob:
    return TraceJob(
        name=row["name"],
        model=row["model"],
        global_batch=row["global_batch"],
        arrival_time=row["arrival_time"],
        iterations=row["iterations"],
        kind=JobKind(row["kind"]),
        amplification_limit=_dec_float(row["amplification_limit"]),
        max_gpus=row["max_gpus"],
    )


def _dump_record(record: JobRecord) -> Dict[str, Any]:
    row = asdict(record)
    row["kind"] = record.kind.value
    return row


def _load_record(row: Dict[str, Any]) -> JobRecord:
    data = dict(row)
    data["kind"] = JobKind(data["kind"])
    return JobRecord(**data)


def _dump_job_state(state) -> Dict[str, Any]:
    return {
        "trace": _dump_trace_job(state.trace),
        "order": state.order,
        "iso_iter_time": state.iso_iter_time,
        "status": state.status,
        "remaining": state.remaining,
        "version": state.version,
        "last_update": state.last_update,
        "rate": state.rate,
        "start_time": state.start_time,
        "width": state.width,
        "gpu_ids": list(state.gpu_ids),
        "gpu_type": state.gpu_type,
        "base_iter_time": state.base_iter_time,
        "work_per_iteration": state.work_per_iteration,
        "busy_fractions": list(state.busy_fractions),
        # References become names; a second restore pass re-wires them.
        "hosted": [[index, guest.name] for index, guest in state.hosted.items()],
        "guest_order": state.guest_order.dump(),
        "host": state.host.name if state.host is not None else None,
        "host_index": state.host_index,
        "placed_iso_time": state.placed_iso_time,
        "ckpt_remaining": state.ckpt_remaining,
        "next_checkpoint": state.next_checkpoint,
        "penalty_until": state.penalty_until,
        "pending_restart_penalty": state.pending_restart_penalty,
        "preemptions": state.preemptions,
        "replans": state.replans,
        "restarts": state.restarts,
        "busy_gpu_seconds": state.busy_gpu_seconds,
        "allocated_gpu_seconds": state.allocated_gpu_seconds,
        "lost_gpu_seconds": state.lost_gpu_seconds,
    }


class EngineSnapshot:
    """One canonical-JSON document capturing a live engine mid-run."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.payload = payload

    # ---------------------------------------------------------------- identity
    def fingerprint(self) -> str:
        """Content fingerprint of the captured state."""
        return snapshot_fingerprint(self.payload)

    def to_json(self) -> str:
        """Canonical JSON serialization (byte-stable across processes)."""
        return canonical_json(self.payload)

    @classmethod
    def from_json(cls, text: str) -> "EngineSnapshot":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("engine snapshot must be a JSON object")
        schema = payload.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported engine-snapshot schema {schema!r} "
                f"(this build reads schema {SNAPSHOT_SCHEMA})"
            )
        return cls(payload)

    # ----------------------------------------------------------------- capture
    @classmethod
    def capture(cls, engine) -> "EngineSnapshot":
        """Freeze a live engine's run state into a serializable payload."""
        sched = engine.scheduler
        jobs: List[Dict[str, Any]] = [
            _dump_job_state(state) for state in engine.states.values()
        ]
        payload: Dict[str, Any] = {
            "schema": SNAPSHOT_SCHEMA,
            "policy": engine.policy.name,
            "fleet": fleet_fingerprint(sched.fleet),
            "num_gpus": sched.num_gpus,
            "clock": engine.clock,
            "first_arrival": engine.first_arrival,
            "last_finish": engine.last_finish,
            "failures_injected": engine.failures_injected,
            "next_order": engine._order,
            "track_failures": sched._track_failures,
            "queue": engine.queue.snapshot_state(),
            "free": engine.free.snapshot_state(),
            "pending": engine.pending.dump(),
            "fg_running": sched._fg_running.dump(),
            "bg_dedicated": sched._bg_dedicated.dump(),
            "jobs": jobs,
            "records": [_dump_record(r) for r in engine.records],
        }
        return cls(payload)

    # ------------------------------------------------------------------- apply
    def apply(self, engine) -> None:
        """Load this snapshot into a freshly constructed engine.

        The target must be a new engine (no jobs added, clock at zero) built
        on a scheduler whose fleet, policy and planner/profiler configuration
        match the capturing run — all three are verified, the last one by
        recomputing every job's ``iso_iter_time`` and comparing exactly.
        Restoration mutates the engine's existing containers in place where
        telemetry gauges or the scheduler hold references to them.
        """
        payload = self.payload
        # Schema first: a payload from a different build would otherwise
        # surface as a KeyError (or worse, a silently misread field) deep
        # inside state application.
        schema = payload.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"cannot apply engine snapshot with schema {schema!r}: this "
                f"build applies schema {SNAPSHOT_SCHEMA} (re-capture the "
                "snapshot with a matching build)"
            )
        sched = engine.scheduler
        # "Fresh" means no job was added and no event processed.  Pre-queued
        # events are allowed — a service reconstructed with its original
        # failure schedule has them — because the snapshot's queue capture
        # replaces the heap wholesale (it holds those same un-fired events).
        if engine.states or engine.queue.popped or engine.clock != 0.0:
            raise ValueError("snapshots must be restored into a fresh engine")
        if payload["policy"] != engine.policy.name:
            raise ValueError(
                f"snapshot was captured under policy {payload['policy']!r}, "
                f"engine runs {engine.policy.name!r}"
            )
        if payload["fleet"] != fleet_fingerprint(sched.fleet):
            raise ValueError(
                "snapshot fleet does not match this scheduler's fleet "
                "(GPU pools, sizes or host shapes differ)"
            )
        statuses = _status_constants()
        from .engine import _JobState

        # Pass 1: rebuild every job state with its scalar fields.
        rows = sorted(payload["jobs"], key=lambda row: row["order"])
        states: Dict[str, Any] = {}
        for row in rows:
            trace = _load_trace_job(row["trace"])
            state = _JobState(
                trace,
                row["order"],
                sched._graph(trace.model),
                sched._iso_iter_time(trace.model, trace.global_batch),
            )
            if state.iso_iter_time != row["iso_iter_time"]:
                raise ValueError(
                    f"snapshot job {trace.name!r} was profiled at "
                    f"iso_iter_time={row['iso_iter_time']!r}, this scheduler "
                    f"derives {state.iso_iter_time!r} — planner/profiler "
                    "configuration differs from the capturing run"
                )
            state.status = statuses[row["status"]]
            state.remaining = row["remaining"]
            state.version = row["version"]
            state.last_update = row["last_update"]
            state.rate = row["rate"]
            state.start_time = row["start_time"]
            state.width = row["width"]
            state.gpu_ids = list(row["gpu_ids"])
            state.gpu_type = row["gpu_type"]
            state.plan = None  # write-only after installation; never read
            state.base_iter_time = row["base_iter_time"]
            state.work_per_iteration = row["work_per_iteration"]
            state.busy_fractions = list(row["busy_fractions"])
            state.host_index = row["host_index"]
            state.placed_iso_time = row["placed_iso_time"]
            state.ckpt_remaining = row["ckpt_remaining"]
            state.next_checkpoint = row["next_checkpoint"]
            state.penalty_until = row["penalty_until"]
            state.pending_restart_penalty = row["pending_restart_penalty"]
            state.preemptions = row["preemptions"]
            state.replans = row["replans"]
            state.restarts = row["restarts"]
            state.busy_gpu_seconds = row["busy_gpu_seconds"]
            state.allocated_gpu_seconds = row["allocated_gpu_seconds"]
            state.lost_gpu_seconds = row["lost_gpu_seconds"]
            states[trace.name] = state

        # Pass 2: re-wire collocation references by name.
        for row in rows:
            state = states[row["trace"]["name"]]
            state.hosted = {index: states[name] for index, name in row["hosted"]}
            state.guest_order.load(row["guest_order"], states.__getitem__)
            host = row["host"]
            state.host = states[host] if host is not None else None

        # The engine's states dict is aliased by ``scheduler._states``;
        # update it in place so both views stay one object.
        engine.states.clear()
        engine.states.update(states)
        engine.queue.restore_state(payload["queue"])
        engine.free.restore_state(payload["free"])
        engine.pending.load(payload["pending"], states.__getitem__)
        sched._fg_running.load(payload["fg_running"], states.__getitem__)
        sched._bg_dedicated.load(payload["bg_dedicated"], states.__getitem__)
        sched._track_failures = payload["track_failures"]
        engine.records.clear()
        engine.records.extend(_load_record(r) for r in payload["records"])
        engine.clock = payload["clock"]
        engine.first_arrival = payload["first_arrival"]
        engine.last_finish = payload["last_finish"]
        engine.failures_injected = payload["failures_injected"]
        engine._order = payload["next_order"]

    # ------------------------------------------------------------- inspection
    @property
    def clock(self) -> float:
        return self.payload["clock"]

    @property
    def events_pending(self) -> int:
        return len(self.payload["queue"]["events"])

    @property
    def events_processed(self) -> int:
        return self.payload["queue"]["popped"]

    def job_names(self) -> List[str]:
        """Names of every job the captured run had registered, sorted."""
        return sorted(row["trace"]["name"] for row in self.payload["jobs"])

    def job_status(self, name: str) -> Optional[str]:
        for row in self.payload["jobs"]:
            if row["trace"]["name"] == name:
                return row["status"]
        return None
