"""Event-dispatch core shared by offline replay and the online service.

:class:`SchedulerEngine` is one run's event loop, extracted from
:class:`~repro.sched.scheduler.ClusterScheduler` so that the offline
:meth:`~repro.sched.scheduler.ClusterScheduler.run` path and the online
:class:`~repro.serve.service.SchedulerService` drive the *same* engine: the
offline path feeds every arrival up front and drains the queue; the service
feeds arrivals incrementally against a virtual clock
(:meth:`SchedulerEngine.advance_to`) and may :meth:`cancel` jobs in flight.
Both produce bit-identical :class:`ScheduleResult` metrics for the same
arrival log, which is the parity obligation `repro.serve` tests against.

The engine owns one run's mutable registries (event queue, pending queue,
free-GPU pool, job states, completion records) and delegates every placement
decision to the owning scheduler's helpers, so policy behaviour lives in
exactly one place.  Construction re-binds the scheduler's per-run registry
attributes (``_states``/``_fg_running``/``_bg_dedicated``/``_free``) exactly
as ``run()`` historically did — integrity tests inspect them there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..core.planner.plan import TrainingPlan
from ..models.graph import ModelGraph
from ..obs.metrics import global_registry
from ..obs.trace import EV_ARRIVAL, EV_CANCEL, EV_GPU_FREE, EV_NODE_RECOVERY
from .events import Event, EventKind, EventQueue
from .failures import NodeFailure, validate_failures
from .fleet import FleetPool
from .metrics import FleetMetrics, JobRecord
from .ordering import PendingQueue, SortedJobList
from .policies import SchedulingPolicy, get_policy
from .traces import TraceJob

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .snapshot import EngineSnapshot

__all__ = ["SchedulerEngine", "ScheduleResult"]

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"

# Per-kind event-loop counters, prefetched at import so the loop pays one
# dict lookup + integer add per event.  ``sched.events.stale`` counts finish
# events discarded by lazy invalidation (not an EventKind of their own);
# ``sched.events.cancel`` counts jobs cancelled through the engine API.
_EVENT_COUNTERS = {
    kind: global_registry().counter(f"sched.events.{kind.value}")
    for kind in EventKind
}
_STALE_EVENTS = global_registry().counter("sched.events.stale")
_CANCELLED_JOBS = global_registry().counter("sched.events.cancel")


class _JobState:
    """Mutable per-job simulation state (one instance per trace job per run)."""

    def __init__(
        self, trace: TraceJob, order: int, graph: ModelGraph, iso_iter_time: float
    ) -> None:
        self.trace = trace
        self.order = order
        self.graph = graph
        #: Single-GPU time per iteration on the fleet's reference (fastest)
        #: pool; the work estimate policies sort by.
        self.iso_iter_time = iso_iter_time
        self.status = _PENDING
        self.remaining = float(trace.iterations)
        self.version = 0
        self.last_update = trace.arrival_time
        self.rate = 0.0  # iterations per second while running
        self.start_time: Optional[float] = None
        # Foreground placement state.
        self.width = 0
        self.gpu_ids: List[int] = []
        self.gpu_type: Optional[str] = None  # fleet pool of the placement
        self.plan: Optional[TrainingPlan] = None
        self.base_iter_time = 0.0
        self.work_per_iteration = 0.0  # busy GPU-seconds per iteration
        self.busy_fractions: List[float] = []
        self.hosted: Dict[int, "_JobState"] = {}  # local GPU index -> bg job
        #: Guests ordered by arrival order, maintained on attach/detach.
        self.guest_order = SortedJobList()
        # Background placement state.
        self.host: Optional["_JobState"] = None
        self.host_index = 0
        #: Isolated iteration time on the pool the job is placed on (equals
        #: ``iso_iter_time`` on a homogeneous fleet).
        self.placed_iso_time = iso_iter_time
        # Failure / checkpoint state.
        self.ckpt_remaining = float(trace.iterations)
        self.next_checkpoint: Optional[float] = None
        self.penalty_until = 0.0  # restart overhead window of the placement
        self.pending_restart_penalty = 0.0  # owed at the next placement
        # Accounting.
        self.preemptions = 0
        self.replans = 0
        self.restarts = 0
        self.busy_gpu_seconds = 0.0
        self.allocated_gpu_seconds = 0.0
        self.lost_gpu_seconds = 0.0

    # Attributes policies read (duck-typed).
    @property
    def name(self) -> str:
        return self.trace.name

    @property
    def is_foreground(self) -> bool:
        return self.trace.is_foreground

    @property
    def arrival_time(self) -> float:
        return self.trace.arrival_time

    @property
    def global_batch(self) -> int:
        return self.trace.global_batch

    @property
    def max_gpus(self) -> Optional[int]:
        return self.trace.max_gpus

    @property
    def remaining_gpu_seconds(self) -> float:
        """Estimated single-GPU compute remaining (the policy sort key)."""
        return self.remaining * self.iso_iter_time

    @property
    def collocated(self) -> bool:
        return self.host is not None


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduler run: per-job records plus fleet metrics."""

    policy: str
    num_gpus: int
    records: Tuple[JobRecord, ...]
    metrics: FleetMetrics
    #: Events the simulation processed (arrivals, finishes, node failures
    #: and recoveries, and stale finishes discarded by lazy invalidation) —
    #: the run's deterministic op count, reported by the benchmark harness.
    events_processed: int = 0
    #: Node failures injected into the run.
    failures_injected: int = 0

    def record(self, name: str) -> JobRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no record for job {name!r}")


class SchedulerEngine:
    """One run's discrete-event loop over a :class:`ClusterScheduler`.

    The engine is deliberately *incremental*: jobs are registered with
    :meth:`add_job` (arrival events enter the queue as they are admitted),
    failures with :meth:`add_failures`, and time moves either all the way to
    quiescence (:meth:`drain` — the offline path) or up to a virtual-clock
    bound (:meth:`advance_to` — the service path).  Event *seq* numbers
    break exact-time ties, so feeding the same arrival log in the same
    order reproduces the offline run event for event.
    """

    def __init__(
        self,
        scheduler,
        policy: Union[str, SchedulingPolicy],
    ) -> None:
        self.scheduler = scheduler
        self.policy = get_policy(policy)
        self.states: Dict[str, _JobState] = {}
        self.queue = EventQueue()
        self.free = FleetPool(scheduler.fleet)
        self.pending = PendingQueue(self.policy)
        self.records: List[JobRecord] = []
        self.clock = 0.0
        self.first_arrival: Optional[float] = None
        self.last_finish: Optional[float] = None
        self.failures_injected = 0
        self._order = 0
        # Re-bind the scheduler's per-run registries (one engine == one run);
        # placement helpers and integrity tests consult them there.
        scheduler._states = self.states
        scheduler._fg_running = SortedJobList()
        scheduler._bg_dedicated = SortedJobList()
        scheduler._free = self.free
        scheduler._track_failures = False
        self._recorder = scheduler._recorder
        if self._recorder is not None:
            self._recorder.begin_run(scheduler.fleet, self.policy.name)
        self._sampler = scheduler._sampler
        self._gauges = None
        if self._sampler is not None:
            self._sampler.begin_run()
            self._gauges = scheduler._make_gauges(self.pending, self.free)

    # ------------------------------------------------------------------ intake
    def add_job(self, job: TraceJob) -> None:
        """Register one job and queue its arrival event.

        Jobs must be added in the order their arrivals should break exact
        simulated-time ties (trace order, for the offline path).  Duplicate
        names are rejected — the engine indexes state by name.
        """
        if job.name in self.states:
            raise ValueError(f"duplicate job name {job.name!r}")
        if job.arrival_time < self.clock:
            raise ValueError(
                f"job {job.name!r} arrives at {job.arrival_time}, before the "
                f"engine clock {self.clock}"
            )
        sched = self.scheduler
        self.states[job.name] = _JobState(
            job,
            self._order,
            sched._graph(job.model),
            sched._iso_iter_time(job.model, job.global_batch),
        )
        self._order += 1
        self.queue.push(job.arrival_time, EventKind.JOB_ARRIVAL, job.name)
        if self.first_arrival is None or job.arrival_time < self.first_arrival:
            self.first_arrival = job.arrival_time

    def add_failures(self, failures: Sequence[NodeFailure]) -> int:
        """Validate and queue a node-failure schedule; returns its length."""
        ordered = validate_failures(self.scheduler.fleet, failures) if failures else []
        if ordered:
            self.scheduler._track_failures = True
        for failure in ordered:
            self.queue.push(failure.time, EventKind.NODE_FAILURE, "", host=failure.host)
            self.queue.push(
                failure.recovery_time, EventKind.NODE_RECOVERY, "", host=failure.host
            )
        self.failures_injected += len(ordered)
        return len(ordered)

    # -------------------------------------------------------------- event loop
    def step(self) -> Event:
        """Pop and dispatch one event, then run a scheduling pass."""
        sched = self.scheduler
        event = self.queue.pop()
        now = event.time
        self.clock = max(self.clock, now)
        if self._sampler is not None:
            # Boundaries at or before ``now`` sample the state *before*
            # this event's changes (piecewise-constant between events).
            self._sampler.advance_to(now, self._gauges)
        _EVENT_COUNTERS[event.kind].add(1)
        if event.kind is EventKind.JOB_ARRIVAL:
            state = self.states[event.job_name]
            if state.status is not _PENDING:
                # Cancelled before its arrival event popped: lazy-invalidated
                # exactly like a stale finish, including skipping the
                # scheduling pass (the cancellation already ran one).
                _STALE_EVENTS.add(1)
                return event
            state.last_update = now
            self.pending.add(state, now)
            if self._recorder is not None:
                self._recorder.emit(now, EV_ARRIVAL, job=state.name)
        elif event.kind is EventKind.NODE_FAILURE:
            sched._fail_host(event.host, now, self.free, self.pending)
        elif event.kind is EventKind.NODE_RECOVERY:
            self.free.recover_host(event.host)
            if self._recorder is not None:
                pool = sched.fleet.pool_of_host(event.host)
                self._recorder.emit(
                    now,
                    EV_NODE_RECOVERY,
                    pool=pool,
                    host=event.host,
                    gpus=sched.fleet.gpus_of_host(event.host),
                    free_gpus=self.free.free_of(pool),
                )
        else:
            state = self.states[event.job_name]
            if state.status != _RUNNING or event.version != state.version:
                _STALE_EVENTS.add(1)
                return event  # stale finish event (job was re-planned/preempted)
            sched._finish(state, now, self.free, self.pending, self.queue, self.records)
            self.last_finish = now if self.last_finish is None else max(
                self.last_finish, now
            )
        self._schedule_point(now)
        return event

    def _schedule_point(self, now: float) -> None:
        """One scheduling pass: place pending work, then expand running jobs."""
        sched = self.scheduler
        sched._schedule_pending(now, self.pending, self.free, self.policy, self.queue)
        if self.policy.replan_running and not self.pending and self.free:
            sched._expand_running(now, self.free, self.policy, self.queue)

    def drain(self) -> int:
        """Dispatch events until the queue is empty; returns steps taken."""
        steps = 0
        while self.queue:
            self.step()
            steps += 1
        return steps

    def advance_to(self, time: float) -> int:
        """Dispatch every event strictly before ``time``; returns steps taken.

        The bound is *exclusive* so that a job submitted at ``time`` slots
        into the queue before same-instant events that were pushed later —
        reproducing the offline path, where all arrivals are queued first.
        Afterwards the engine clock is at least ``time``.
        """
        steps = 0
        while True:
            peek = self.queue.peek_time()
            if peek is None or peek >= time:
                break
            self.step()
            steps += 1
        self.clock = max(self.clock, time)
        return steps

    # ------------------------------------------------------------ cancellation
    def cancel(self, name: str, now: float) -> bool:
        """Cancel one job at simulated time ``now``.

        Pending jobs leave the queue with their progress-to-date kept on
        their state (the service layer reads ``busy_gpu_seconds`` /
        ``lost_gpu_seconds`` for quota settlement — the same accounting the
        offline ``lost_gpu_seconds`` semantics use).  Running jobs release
        their GPUs (or their collocation slot) exactly like a completion,
        minus the completion record.  Returns ``False`` when the job is
        already done or cancelled.
        """
        state = self.states[name]
        if state.status in (_DONE, _CANCELLED):
            return False
        sched = self.scheduler
        recorder = self._recorder
        _CANCELLED_JOBS.add(1)
        if state.status == _PENDING:
            if state in self.pending:
                self.pending.remove(state)
            state.status = _CANCELLED
            state.version += 1  # invalidate any in-flight event
            if recorder is not None:
                recorder.emit(now, EV_CANCEL, job=state.name, detail="pending")
            self._schedule_point(now)
            return True
        # Running: mirror _finish's teardown without emitting a completion.
        gpu_pool = state.gpu_type or ""
        gpus = tuple(state.gpu_ids)
        if state.is_foreground:
            sched._fg_running.remove(state)
        elif not state.collocated:
            sched._bg_dedicated.remove(state)
        sched._advance(state, now)
        state.status = _CANCELLED
        if state.collocated:
            assert state.host is not None
            host = state.host
            del host.hosted[state.host_index]
            host.guest_order.remove(state)
            state.host = None
            if not host.hosted:
                # Last guest left: the host runs at full speed again.
                sched._advance(host, now)
                sched._reschedule_finish(host, now, self.queue)
            if recorder is not None:
                recorder.emit(
                    now, EV_CANCEL, job=state.name, pool=gpu_pool,
                    gpus=gpus, detail="collocated",
                )
        else:
            self.free.release(state.gpu_ids)
            if recorder is not None:
                recorder.emit(
                    now, EV_GPU_FREE, job=state.name, pool=gpu_pool,
                    gpus=gpus, free_gpus=self.free.free_of(gpu_pool),
                )
                recorder.emit(
                    now, EV_CANCEL, job=state.name, pool=gpu_pool,
                    gpus=gpus, width=max(state.width, 1), detail="running",
                )
        state.gpu_ids = []
        state.gpu_type = None
        if state.is_foreground:
            # Orphaned guests go back to the queue and are re-placed below.
            for guest in list(state.guest_order):
                sched._detach_background(guest, now, self.pending)
            state.hosted = {}
            state.guest_order = SortedJobList()
        state.version += 1
        self._schedule_point(now)
        return True

    # ------------------------------------------------------- snapshot/restore
    def snapshot(self) -> "EngineSnapshot":
        """Freeze the run's complete state (see :mod:`repro.sched.snapshot`).

        Legal at any event boundary — between :meth:`step` calls, after an
        :meth:`advance_to`, mid-drain.  The capture is read-only: taking a
        snapshot never changes the run's subsequent event history.
        """
        from .snapshot import EngineSnapshot

        return EngineSnapshot.capture(self)

    def restore(self, snapshot: "EngineSnapshot") -> None:
        """Load a snapshot into this freshly constructed engine.

        The engine must be new (no jobs added, clock at zero) and built on a
        scheduler whose fleet, policy and planner/profiler configuration
        match the capturing run; continuing afterwards reproduces the
        uninterrupted run's event history exactly — same
        ``events_processed``, same metrics, same ``result_fingerprint``.
        """
        snapshot.apply(self)

    # ---------------------------------------------------------------- results
    def unfinished(self) -> List[str]:
        """Names of jobs neither completed nor cancelled, sorted."""
        return sorted(
            s.name
            for s in self.states.values()
            if s.status not in (_DONE, _CANCELLED)
        )

    def result(self, require_complete: bool = True) -> ScheduleResult:
        """Fold the run into a :class:`ScheduleResult`.

        ``require_complete`` raises on jobs that never completed (the
        offline deadlock check); cancelled jobs are never counted as
        unfinished.
        """
        if require_complete:
            unfinished = self.unfinished()
            if unfinished:
                raise RuntimeError(
                    f"scheduler deadlock under policy {self.policy.name!r}: "
                    f"jobs never completed: {', '.join(unfinished)}"
                )
        # Makespan runs from the first arrival to the last completion, so a
        # trace submitted late does not dilute utilization and goodput.
        first = self.first_arrival if self.first_arrival is not None else 0.0
        last = first if self.last_finish is None else max(self.last_finish, first)
        metrics = FleetMetrics.compute(
            self.records, self.scheduler.num_gpus, last - first
        )
        return ScheduleResult(
            policy=self.policy.name,
            num_gpus=self.scheduler.num_gpus,
            records=tuple(self.records),
            metrics=metrics,
            events_processed=self.queue.popped,
            failures_injected=self.failures_injected,
        )
