"""Trace-driven multi-tenant cluster scheduler.

This is the cluster-manager story of the paper turned into a discrete-event
simulator: a stream of :class:`~repro.sched.traces.TraceJob`\\ s arrives over
time, a :class:`~repro.sched.policies.SchedulingPolicy` decides admission
order and GPU widths, the :class:`~repro.core.planner.planner.BurstParallelPlanner`
produces a burst-parallel plan for every foreground placement, the
:class:`~repro.cluster.coordinator.ClusterCoordinator` maps the plan onto the
job's GPUs (yielding per-GPU busy fractions), and background jobs are packed
onto the idle gaps of foreground GPUs through the
:class:`~repro.cluster.executor.CollocationProfile`.

The event loop supports the dynamics a real cluster manager needs:

* **admission / backfilling** — pending jobs are (re)considered at every
  arrival and completion, in policy order;
* **collocation** — background jobs attached to a foreground GPU progress at
  ``idle * bg_idle_efficiency + busy * bg_busy_efficiency`` of their isolated
  rate while slowing the host foreground job by ``fg_slowdown``;
* **preemption** — policies may evict dedicated background jobs (their
  progress is kept; they re-enter the pending queue) to make room for
  foreground work;
* **re-planning** — when completions free GPUs and the queue is empty,
  policies may re-plan a running foreground job to a wider burst-parallel
  plan (or, on a heterogeneous fleet, migrate it to a faster pool),
  preserving its progress;
* **heterogeneity** — the cluster is a :class:`~repro.sched.fleet.ClusterFleet`
  of named GPU pools (mixed generations).  Every pool gets its own
  profiler/planner identity, plans and isolated-iteration times are derived
  and cached per pool (no aliasing across GPU types), and policies place
  foreground jobs fastest-pool-first with fallback to slower pools on
  contention while background jobs fill from the slowest pool up;
* **failures** — :class:`~repro.sched.failures.NodeFailure` events take whole
  hosts down.  Jobs touching a failed host are killed, rolled back to their
  last checkpoint under the scheduler's
  :class:`~repro.sched.failures.CheckpointModel` (lost work is accounted as
  ``lost_gpu_seconds``), their collocated guests are evicted and re-queued,
  and restarted jobs pay a restart overhead at their next placement.
  Recovery returns the host's GPUs to the free pool — never leaked, never
  double-freed.

Plans are cached by ``(model, batch, width, amplification limit)`` plus the
owning pool planner's content fingerprint (so schedulers with different
planner or profiler configurations — or two pools of different GPU
generations — can never alias plans), and the cache can be pre-warmed before
replay via :meth:`ClusterScheduler.prewarm_plans` — batch planning every
(model, width) a trace can request, optionally across worker processes
through a :class:`~repro.core.planner.pool.PlannerPool`.

The placement pass is *incremental*: the pending queue, the running
foreground jobs, the dedicated background jobs and each host's guests are
kept in mutation-maintained order (:mod:`repro.sched.ordering`) instead of
being re-sorted on every event, so one scheduling point costs O(changes ·
log n), not O(n log n).  Everything is deterministic: identical traces,
policies and failure schedules produce bit-identical
:class:`~repro.sched.metrics.FleetMetrics` — and a homogeneous one-pool
fleet reproduces the pre-fleet scheduler bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.coordinator import ClusterCoordinator
from ..cluster.executor import CollocationProfile
from ..core.planner.plan import TrainingPlan
from ..core.planner.planner import BurstParallelPlanner
from ..core.planner.pool import PlannerPool, PlanRequest
from ..models.graph import ModelGraph
from ..models.registry import build_model
from ..network.fabric import NetworkFabric, get_fabric
from ..obs.sampler import TimeSeriesSampler
from ..obs.trace import (
    EV_COLLOCATE,
    EV_COMPLETION,
    EV_DETACH,
    EV_GPU_FREE,
    EV_GPU_GRANT,
    EV_KILL,
    EV_MIGRATION,
    EV_NODE_FAILURE,
    EV_PLACEMENT,
    EV_PREEMPTION,
    EV_REPLAN,
    EV_RESTART,
    TraceRecorder,
)
from ..profiler.layer_profiler import LayerProfiler
from .engine import (  # noqa: F401  (ScheduleResult re-exported for API stability)
    ScheduleResult,
    SchedulerEngine,
    _DONE,
    _JobState,
    _PENDING,
    _RUNNING,
)
from .events import EventKind, EventQueue
from .failures import CheckpointModel, NodeFailure
from .fleet import ClusterFleet, FleetPool
from .metrics import JobRecord
from .ordering import PendingQueue, SortedJobList
from .policies import SchedulingPolicy, floor_pow2, width_cap
from .traces import TraceJob

__all__ = ["ClusterScheduler", "ScheduleResult"]


class ClusterScheduler:
    """Discrete-event scheduler serving a trace of jobs on a GPU cluster.

    The cluster is either homogeneous (``num_gpus`` identical GPUs matching
    the profiler's spec — the legacy constructor) or a
    :class:`~repro.sched.fleet.ClusterFleet` of named pools mixing GPU
    generations.  One instance can run many (trace, policy, failures)
    combinations; planner and profiler caches persist across runs, so
    comparing policies on the same trace only pays each burst-parallel plan
    search once.  Pools whose GPU spec matches the scheduler's profiler
    share its profiler/planner (and therefore its caches); other pools get
    per-pool instances with their own content fingerprints, so plans and
    profiles can never alias across GPU types.
    """

    def __init__(
        self,
        num_gpus: Union[int, ClusterFleet],
        fabric: Union[NetworkFabric, str, None] = None,
        profiler: Optional[LayerProfiler] = None,
        planner: Optional[BurstParallelPlanner] = None,
        collocation: Optional[CollocationProfile] = None,
        checkpoint: Optional[CheckpointModel] = None,
    ) -> None:
        fleet: Optional[ClusterFleet]
        if isinstance(num_gpus, ClusterFleet):
            fleet = num_gpus
        else:
            if num_gpus < 1:
                raise ValueError("num_gpus must be at least 1")
            fleet = None  # built below, once the profiler's GPU spec is known
        if fabric is None or isinstance(fabric, str):
            fabric = get_fabric(fabric if fabric is not None else "nvswitch")
        self.fabric = fabric
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.planner = (
            planner
            if planner is not None
            else BurstParallelPlanner(self.fabric, self.profiler)
        )
        self.collocation = (
            collocation if collocation is not None else CollocationProfile()
        )
        self.checkpoint = checkpoint if checkpoint is not None else CheckpointModel()
        if fleet is None:
            fleet = ClusterFleet.homogeneous(num_gpus, gpu=self.profiler.gpu)
        self.fleet = fleet
        self.num_gpus = fleet.num_gpus
        #: Pools whose GPU spec matches ``self.profiler`` resolve to
        #: ``self.planner`` / ``self.profiler`` dynamically, so swapping
        #: either attribute after construction can never serve stale plans.
        self._default_pools = {
            pool.name for pool in fleet.pools if pool.gpu == self.profiler.gpu
        }
        self._reference_pool = fleet.speed_order[0]
        self._pool_profilers: Dict[str, LayerProfiler] = {}
        self._pool_planners: Dict[str, BurstParallelPlanner] = {}
        self._plan_cache: Dict[Tuple[str, int, int, float, str], TrainingPlan] = {}
        self._graph_cache: Dict[str, ModelGraph] = {}
        self._iso_cache: Dict[Tuple[str, int, str], float] = {}
        self._states: Dict[str, _JobState] = {}
        # Planner identities folded into plan-cache keys; memoized per
        # planner object so swapping a planner can never serve the old
        # planner's plans.
        self._planner_fps: Dict[int, Tuple[BurstParallelPlanner, str]] = {}
        # Mutation-maintained placement registries (re-bound per run).
        self._fg_running = SortedJobList()
        self._bg_dedicated = SortedJobList()
        self._free = FleetPool(fleet)
        self._track_failures = False
        # Observability seams (repro.obs).  ``None`` means disabled; every
        # emission site guards on that, so an unobserved run pays exactly one
        # attribute load + ``is None`` test per state change — nothing else.
        self._recorder: Optional[TraceRecorder] = None
        self._sampler: Optional[TimeSeriesSampler] = None

    # ----------------------------------------------------------- observability
    def attach_recorder(self, recorder: Optional[TraceRecorder]) -> None:
        """Attach a trace recorder (``None`` detaches).

        The recorder receives one structured event per scheduler state
        change — placements, collocations, preemptions, re-plans,
        migrations, failures, restarts, completions, per-pool GPU
        grants/frees — stamped with simulated time.  Recording only *reads*
        state, so metrics are bit-identical with or without it.
        """
        self._recorder = recorder

    def attach_sampler(self, sampler: Optional[TimeSeriesSampler]) -> None:
        """Attach a time-series sampler (``None`` detaches).

        The sampler records cluster gauges (pending depth, free GPUs per
        pool, allocation, collocated guests, failed hosts) on its fixed
        sim-time grid during :meth:`run`.
        """
        self._sampler = sampler

    def _make_gauges(self, pending, free: FleetPool):
        """Gauge callback for the attached sampler, bound to one run's state."""
        pool_names = self.fleet.pool_names
        num_gpus = self.num_gpus

        def gauges() -> Dict[str, Union[int, float]]:
            free_total = len(free)
            down = free.num_down_gpus
            reading: Dict[str, Union[int, float]] = {
                "pending_jobs": len(pending),
                "running_foreground": len(self._fg_running),
                "running_background": len(self._bg_dedicated),
                "collocated_guests": sum(len(s.hosted) for s in self._fg_running),
                "free_gpus": free_total,
                "failed_hosts": free.num_down_hosts,
                "down_gpus": down,
                "allocated_gpus": num_gpus - free_total - down,
                "utilization_allocated": (num_gpus - free_total - down) / num_gpus,
            }
            for name in pool_names:
                reading[f"free_gpus.{name}"] = free.free_of(name)
            return reading

        return gauges

    # ------------------------------------------------------------------ caches
    def _graph(self, model: str) -> ModelGraph:
        if model not in self._graph_cache:
            self._graph_cache[model] = build_model(model)
        return self._graph_cache[model]

    def _profiler_for(self, pool_name: str) -> LayerProfiler:
        """The layer profiler modeling one pool's GPU generation."""
        if pool_name in self._default_pools:
            return self.profiler
        prof = self._pool_profilers.get(pool_name)
        if prof is None:
            pool = self.fleet.pool(pool_name)
            prof = LayerProfiler(
                gpu=pool.gpu,
                use_cuda_graphs=self.profiler.use_cuda_graphs,
                dtype_bytes=self.profiler.dtype_bytes,
                enable_cache=self.profiler.enable_cache,
                persistent_cache=self.profiler.persistent_cache,
            )
            self._pool_profilers[pool_name] = prof
        return prof

    def _planner_for(self, pool_name: str) -> BurstParallelPlanner:
        """The burst-parallel planner targeting one pool's GPU generation."""
        if pool_name in self._default_pools:
            return self.planner
        planner = self._pool_planners.get(pool_name)
        if planner is None:
            planner = BurstParallelPlanner(
                self.fabric,
                self._profiler_for(pool_name),
                config=self.planner.config,
                cache=self.planner.cache,
            )
            self._pool_planners[pool_name] = planner
        return planner

    def _iso_time_on(self, model: str, batch: int, pool_name: str) -> float:
        """Isolated single-GPU iteration time of a model on one pool."""
        key = (model, batch, pool_name)
        if key not in self._iso_cache:
            self._iso_cache[key] = self._profiler_for(pool_name).iteration_compute_time(
                self._graph(model), batch
            )
        return self._iso_cache[key]

    def _iso_iter_time(self, model: str, batch: int) -> float:
        """Isolated iteration time on the reference (fastest) pool."""
        return self._iso_time_on(model, batch, self._reference_pool)

    def _fingerprint_of(self, planner: BurstParallelPlanner) -> str:
        entry = self._planner_fps.get(id(planner))
        if entry is None or entry[0] is not planner:
            entry = (planner, planner.fingerprint())
            self._planner_fps[id(planner)] = entry
        return entry[1]

    def _plan_cache_key(
        self,
        model: str,
        batch: int,
        width: int,
        amp_limit: float,
        gpu_pool: Optional[str] = None,
    ) -> Tuple[str, int, int, float, str]:
        planner = self.planner if gpu_pool is None else self._planner_for(gpu_pool)
        return (model, batch, width, amp_limit, self._fingerprint_of(planner))

    def _plan_for(self, state: _JobState, width: int, gpu_pool: str) -> TrainingPlan:
        key = self._plan_cache_key(
            state.trace.model,
            state.global_batch,
            width,
            state.trace.amplification_limit,
            gpu_pool,
        )
        if key not in self._plan_cache:
            self._plan_cache[key] = self._planner_for(gpu_pool).plan(
                state.graph,
                state.global_batch,
                width,
                amplification_limit=state.trace.amplification_limit,
            )
        return self._plan_cache[key]

    def prewarm_plans(
        self,
        trace: Sequence[TraceJob],
        pool: Optional[PlannerPool] = None,
    ) -> int:
        """Plan every (model, width, GPU pool) the trace can request.

        Every foreground job is expanded to the power-of-two widths its
        policy could ever place it at on each fleet pool (1 up to
        ``floor_pow2`` of the pool/batch/``max_gpus`` cap), the deduplicated
        requests are planned — through ``pool`` (possibly multiprocess,
        possibly backed by a shared persistent cache) when given, inline on
        the per-pool planners otherwise — and the results seed
        :attr:`_plan_cache` so trace replay never stalls on a planner
        search.  Returns the number of plans seeded.

        A :class:`~repro.core.planner.pool.PlannerPool` plans for exactly
        one GPU identity, so pool-backed prewarming requires a homogeneous
        fleet and a pool whose fabric/profiler/planner fingerprint matches
        this scheduler's planner; a mismatch raises ``ValueError``.  Pool
        results are deterministic and independent of the worker count, so
        replay metrics are identical whether the cache was warmed inline,
        by one worker, or by many.
        """
        if pool is not None:
            if not self.fleet.is_homogeneous:
                raise ValueError(
                    "PlannerPool-backed prewarming plans for a single GPU "
                    "identity; a heterogeneous fleet must prewarm inline "
                    "(pool=None)"
                )
            # Validate against the fleet pool's planner — the identity the
            # seeded cache keys carry — not ``self.planner``, which models a
            # different GPU whenever the single pool's spec diverges from
            # the scheduler's profiler.
            target = self._planner_for(self.fleet.pool_names[0])
            pool_fp = pool.planner().fingerprint()
            if pool_fp != self._fingerprint_of(target):
                raise ValueError(
                    "PlannerPool configuration does not match this "
                    "scheduler's planner for the fleet's GPU pool "
                    "(fabric/profiler/config fingerprints differ); prewarmed "
                    "plans would alias under the wrong planner identity"
                )
        seeded = 0
        for pool_name in self.fleet.pool_names:
            pool_gpus = self.fleet.pool(pool_name).num_gpus
            requests: List[PlanRequest] = []
            seen = set()
            for job in trace:
                if not job.is_foreground:
                    continue
                cap = width_cap(job, pool_gpus)
                width = 1
                top = floor_pow2(max(cap, 1))
                while width <= top:
                    request = PlanRequest(
                        job.model, job.global_batch, width, job.amplification_limit
                    )
                    if request not in seen:
                        seen.add(request)
                        requests.append(request)
                    width *= 2
            if pool is not None:
                plans = pool.plan_batch(requests)
            else:
                planner = self._planner_for(pool_name)
                plans = [
                    planner.plan(
                        self._graph(r.model),
                        r.global_batch,
                        r.total_gpus,
                        amplification_limit=r.amplification_limit,
                    )
                    for r in requests
                ]
            for request, plan in zip(requests, plans):
                key = self._plan_cache_key(
                    request.model,
                    request.global_batch,
                    request.total_gpus,
                    request.amplification_limit,
                    pool_name,
                )
                if key not in self._plan_cache:
                    self._plan_cache[key] = plan
                    seeded += 1
        return seeded

    def prewarm_job(self, job: TraceJob) -> int:
        """Plan every (pool, width) one foreground job could be placed at.

        The online service calls this at admission time
        (``prewarm_on_admit``) so the job's first placement never stalls on
        a planner search.  Returns the number of plans seeded — 0 for
        background jobs, whose dedicated and collocated rates derive from
        the profiler rather than a plan.
        """
        if not job.is_foreground:
            return 0
        seeded = 0
        for pool_name in self.fleet.pool_names:
            pool_gpus = self.fleet.pool(pool_name).num_gpus
            width = 1
            top = floor_pow2(max(width_cap(job, pool_gpus), 1))
            while width <= top:
                key = self._plan_cache_key(
                    job.model,
                    job.global_batch,
                    width,
                    job.amplification_limit,
                    pool_name,
                )
                if key not in self._plan_cache:
                    self._plan_cache[key] = self._planner_for(pool_name).plan(
                        self._graph(job.model),
                        job.global_batch,
                        width,
                        amplification_limit=job.amplification_limit,
                    )
                    seeded += 1
                width *= 2
        return seeded

    # --------------------------------------------------------------- event loop
    def run(
        self,
        trace: Sequence[TraceJob],
        policy: Union[str, SchedulingPolicy],
        failures: Sequence[NodeFailure] = (),
    ) -> ScheduleResult:
        """Simulate the whole trace under one policy and return its metrics.

        ``failures`` is an optional schedule of
        :class:`~repro.sched.failures.NodeFailure` events (see
        :func:`~repro.sched.failures.inject_failures`); each one takes a
        host down at its time and brings it back after its duration.

        The loop itself lives in :class:`~repro.sched.engine.SchedulerEngine`
        (shared with the online :class:`~repro.serve.service.SchedulerService`);
        this method is the offline driver: queue every arrival in trace
        order, queue the failure schedule, drain to quiescence.
        """
        if not trace:
            raise ValueError("trace must contain at least one job")
        names = [job.name for job in trace]
        if len(set(names)) != len(names):
            raise ValueError("trace job names must be unique")
        engine = SchedulerEngine(self, policy)
        for job in trace:
            engine.add_job(job)
        engine.add_failures(failures)
        engine.drain()
        return engine.result(require_complete=True)

    # ---------------------------------------------------------------- progress
    @staticmethod
    def _work_key(state: _JobState) -> Tuple[float, int]:
        """Most-remaining-work-first ordering (preemption/re-plan registries)."""
        return (-state.remaining_gpu_seconds, state.order)

    def _advance(self, state: _JobState, now: float) -> None:
        """Account progress since the job's last update."""
        start = state.last_update
        state.last_update = now
        if state.status != _RUNNING or now - start <= 0:
            return
        # A restarted job makes no progress until its restart overhead
        # (``penalty_until``) has elapsed; it holds its GPUs throughout.
        if state.penalty_until > start:
            effective = max(0.0, now - state.penalty_until)
        else:
            effective = now - start
        before = state.remaining
        done = min(before, effective * state.rate)
        if (
            self._track_failures
            and state.next_checkpoint is not None
            and state.next_checkpoint <= now
        ):
            # Snapshot the remaining work at the *latest* checkpoint instant
            # the window covers (earlier ones are superseded, so they are
            # never materialized); a failure rolls back to this snapshot.
            interval = self.checkpoint.interval_s
            begin = max(start, state.penalty_until)
            steps = int((now - state.next_checkpoint) // interval)
            last = state.next_checkpoint + steps * interval
            if last > now:  # floating-point guard at the window boundary
                last -= interval
            at_ckpt = min(before, max(0.0, last - begin) * state.rate)
            state.ckpt_remaining = before - at_ckpt
            state.next_checkpoint = last + interval
        state.remaining = before - done
        state.busy_gpu_seconds += done * state.work_per_iteration
        if state.is_foreground:
            state.allocated_gpu_seconds += (now - start) * state.width
        elif not state.collocated:
            state.allocated_gpu_seconds += now - start
        # The job's remaining work moved: keep its registry position honest.
        if state in self._fg_running:
            self._fg_running.rekey(state, self._work_key(state))
        elif state in self._bg_dedicated:
            self._bg_dedicated.rekey(state, self._work_key(state))

    def _current_rate(self, state: _JobState) -> float:
        """Iterations per second in the job's current placement."""
        profile = self.collocation
        if state.is_foreground:
            slowdown = profile.fg_slowdown if state.hosted else 1.0
            return 1.0 / (state.base_iter_time * slowdown)
        if state.collocated:
            assert state.host is not None
            busy = state.host.busy_fractions[state.host_index]
            efficiency = (
                (1.0 - busy) * profile.bg_idle_efficiency
                + busy * profile.bg_busy_efficiency
            )
            return efficiency / state.placed_iso_time
        return 1.0 / state.placed_iso_time

    def _reschedule_finish(
        self, state: _JobState, now: float, queue: EventQueue
    ) -> None:
        """Recompute the job's rate and (re)arm its finish event."""
        state.version += 1
        state.rate = self._current_rate(state)
        finish = now + state.remaining / state.rate
        if state.penalty_until > now:
            finish += state.penalty_until - now
        queue.push(finish, EventKind.JOB_FINISH, state.name, state.version)

    def _begin_placement(self, state: _JobState, now: float) -> None:
        """Common bookkeeping when a job starts (or restarts) running."""
        state.status = _RUNNING
        if state.start_time is None:
            state.start_time = now
        state.last_update = now
        if self._track_failures:
            begin = now
            if state.pending_restart_penalty > 0.0:
                if self._recorder is not None:
                    # The placement consumes the owed restart overhead here —
                    # the restart marker on the timeline.
                    self._recorder.emit(
                        now,
                        EV_RESTART,
                        job=state.name,
                        pool=state.gpu_type or "",
                        gpus=tuple(state.gpu_ids),
                        detail=f"overhead_s={state.pending_restart_penalty}",
                    )
                state.penalty_until = now + state.pending_restart_penalty
                state.pending_restart_penalty = 0.0
                begin = state.penalty_until
            else:
                state.penalty_until = 0.0
            # Placement snapshots progress by construction (evictions keep
            # it), so the checkpoint clock restarts here.
            self._snapshot_checkpoint(state, begin)

    def _snapshot_checkpoint(self, state: _JobState, begin: float) -> None:
        """Checkpoint the job's progress now; a rollback returns here.

        Called at every (re)configuration that serializes the job's state —
        placement, re-plan, migration — so ``work_per_iteration`` is always
        constant between the snapshot and any rollback that prices the lost
        iterations with it.
        """
        state.ckpt_remaining = state.remaining
        state.next_checkpoint = begin + self.checkpoint.interval_s

    @staticmethod
    def _suspend_restart_penalty(state: _JobState, now: float) -> None:
        """Bank the unpaid part of a restart-overhead window on eviction.

        A restarted job pays ``restart_overhead_s`` of dead time after its
        placement; if it is evicted or killed mid-window, the unpaid
        remainder is owed again at its next placement instead of being
        silently forgiven.
        """
        if state.penalty_until > now:
            state.pending_restart_penalty += state.penalty_until - now
        state.penalty_until = 0.0

    # --------------------------------------------------------------- placement
    def _install_plan(self, state: _JobState, plan: TrainingPlan) -> None:
        """Bind a burst-parallel plan (and its per-GPU occupancy) to a job."""
        coordinator = ClusterCoordinator(num_gpus=plan.total_gpus)
        coordinator.place_plan(plan)
        state.busy_fractions = coordinator.busy_fractions(plan.iteration_time)
        state.plan = plan
        state.base_iter_time = plan.iteration_time
        state.work_per_iteration = plan.total_gpu_seconds()
        state.width = plan.total_gpus

    def _start_foreground(
        self, state: _JobState, width: int, gpu_pool: str, now: float,
        free: FleetPool, queue: EventQueue,
    ) -> None:
        self._install_plan(state, self._plan_for(state, width, gpu_pool))
        state.gpu_ids = free.take(gpu_pool, width)
        state.gpu_type = gpu_pool
        state.hosted = {}
        state.guest_order = SortedJobList()
        if self._recorder is not None:
            gpus = tuple(state.gpu_ids)
            self._recorder.emit(
                now, EV_GPU_GRANT, job=state.name, pool=gpu_pool,
                gpus=gpus, free_gpus=free.free_of(gpu_pool),
            )
            self._recorder.emit(
                now, EV_PLACEMENT, job=state.name, pool=gpu_pool,
                gpus=gpus, width=width, detail="foreground",
            )
        self._begin_placement(state, now)
        self._fg_running.add(state, self._work_key(state))
        self._reschedule_finish(state, now, queue)

    def _start_background_dedicated(
        self, state: _JobState, gpu_pool: str, now: float, free: FleetPool,
        queue: EventQueue,
    ) -> None:
        state.width = 1
        state.gpu_ids = free.take(gpu_pool, 1)
        state.gpu_type = gpu_pool
        state.host = None
        state.placed_iso_time = self._iso_time_on(
            state.trace.model, state.global_batch, gpu_pool
        )
        state.work_per_iteration = state.placed_iso_time
        if self._recorder is not None:
            gpus = tuple(state.gpu_ids)
            self._recorder.emit(
                now, EV_GPU_GRANT, job=state.name, pool=gpu_pool,
                gpus=gpus, free_gpus=free.free_of(gpu_pool),
            )
            self._recorder.emit(
                now, EV_PLACEMENT, job=state.name, pool=gpu_pool,
                gpus=gpus, width=1, detail="background",
            )
        self._begin_placement(state, now)
        self._bg_dedicated.add(state, self._work_key(state))
        self._reschedule_finish(state, now, queue)

    def _attach_background(
        self, state: _JobState, host: _JobState, index: int, now: float,
        queue: EventQueue,
    ) -> None:
        """Collocate a background job onto one GPU of a running foreground job."""
        first_guest = not host.hosted
        host.hosted[index] = state
        host.guest_order.add(state, (state.order,))
        state.host = host
        state.host_index = index
        state.width = 1
        state.gpu_ids = [host.gpu_ids[index]]
        state.gpu_type = host.gpu_type
        assert host.gpu_type is not None
        state.placed_iso_time = self._iso_time_on(
            state.trace.model, state.global_batch, host.gpu_type
        )
        state.work_per_iteration = state.placed_iso_time
        if self._recorder is not None:
            self._recorder.emit(
                now, EV_COLLOCATE, job=state.name, pool=state.gpu_type,
                gpus=tuple(state.gpu_ids), width=1,
                detail=f"collocated:{host.name}",
            )
        self._begin_placement(state, now)
        self._reschedule_finish(state, now, queue)
        if first_guest:
            # The foreground host now pays the collocation slowdown.
            self._advance(host, now)
            self._reschedule_finish(host, now, queue)

    def _pick_background_host(
        self, states: Sequence[_JobState], min_efficiency: float
    ) -> Optional[Tuple[_JobState, int]]:
        """Most-idle free slot on a running foreground job, or ``None``.

        Slots whose expected background efficiency falls below
        ``min_efficiency`` are not offered: a background job crawling beside
        an always-busy foreground is worse than waiting for a free GPU.
        """
        profile = self.collocation
        best: Optional[Tuple[float, int, int, _JobState]] = None
        for fg in states:
            for index, busy in enumerate(fg.busy_fractions):
                if index in fg.hosted:
                    continue
                efficiency = (
                    (1.0 - busy) * profile.bg_idle_efficiency
                    + busy * profile.bg_busy_efficiency
                )
                if efficiency < min_efficiency:
                    continue
                key = (busy, fg.order, index)
                if best is None or key < (best[0], best[1], best[2]):
                    best = (busy, fg.order, index, fg)
        if best is None:
            return None
        return best[3], best[2]

    def _detach_background(
        self, state: _JobState, now: float, pending: PendingQueue,
        rollback: bool = False,
    ) -> None:
        """Return a collocated background job to the pending queue.

        ``rollback=True`` marks the detachment as failure-induced: the
        guest's own GPU died, so its progress rolls back to the last
        checkpoint and it owes a restart.
        """
        self._advance(state, now)
        if self._track_failures:
            self._suspend_restart_penalty(state, now)
        if rollback:
            self._rollback_to_checkpoint(state)
        if self._recorder is not None:
            self._recorder.emit(
                now, EV_DETACH, job=state.name, pool=state.gpu_type or "",
                gpus=tuple(state.gpu_ids),
                detail="rollback" if rollback else "requeue",
            )
        assert state.host is not None
        del state.host.hosted[state.host_index]
        state.host.guest_order.remove(state)
        state.host = None
        state.gpu_ids = []
        state.gpu_type = None
        state.status = _PENDING
        state.version += 1  # invalidate the in-flight finish event
        pending.add(state, now)

    def _preempt_background(
        self, state: _JobState, now: float, free: FleetPool,
        pending: PendingQueue,
    ) -> None:
        """Evict a dedicated background job, keeping its progress."""
        self._bg_dedicated.remove(state)
        self._advance(state, now)
        if self._track_failures:
            self._suspend_restart_penalty(state, now)
        free.release(state.gpu_ids)
        if self._recorder is not None:
            pool = state.gpu_type or ""
            gpus = tuple(state.gpu_ids)
            self._recorder.emit(
                now, EV_GPU_FREE, job=state.name, pool=pool,
                gpus=gpus, free_gpus=free.free_of(pool),
            )
            self._recorder.emit(
                now, EV_PREEMPTION, job=state.name, pool=pool, gpus=gpus,
            )
        state.gpu_ids = []
        state.gpu_type = None
        state.status = _PENDING
        state.version += 1
        state.preemptions += 1
        pending.add(state, now)

    # ---------------------------------------------------------------- failures
    def _rollback_to_checkpoint(self, state: _JobState) -> None:
        """Lose the work since the last checkpoint and owe a restart."""
        lost = state.ckpt_remaining - state.remaining
        if lost > 0:
            wasted = lost * state.work_per_iteration
            state.remaining = state.ckpt_remaining
            state.busy_gpu_seconds -= wasted
            state.lost_gpu_seconds += wasted
        state.restarts += 1
        state.pending_restart_penalty = self.checkpoint.restart_overhead_s

    def _fail_running(
        self, state: _JobState, now: float, free: FleetPool, pending: PendingQueue
    ) -> None:
        """Kill a running job hit by a node failure and re-queue it.

        The caller has already removed the job from its registry (and
        evicted any guests).  Surviving GPUs return to the free pool;
        GPUs on the failed host are absorbed until recovery.
        """
        self._advance(state, now)
        self._suspend_restart_penalty(state, now)  # superseded by the rollback
        self._rollback_to_checkpoint(state)
        free.release(state.gpu_ids)
        if self._recorder is not None:
            pool = state.gpu_type or ""
            gpus = tuple(state.gpu_ids)
            self._recorder.emit(
                now, EV_GPU_FREE, job=state.name, pool=pool,
                gpus=gpus, free_gpus=free.free_of(pool),
            )
            self._recorder.emit(
                now, EV_KILL, job=state.name, pool=pool, gpus=gpus,
                detail="node-failure",
            )
        state.gpu_ids = []
        state.gpu_type = None
        if state.is_foreground:
            state.hosted = {}
            state.guest_order = SortedJobList()
        state.status = _PENDING
        state.version += 1
        pending.add(state, now)

    def _fail_host(
        self, host: int, now: float, free: FleetPool, pending: PendingQueue
    ) -> None:
        """Take one host down: kill and re-queue everything it touches."""
        down = set(free.fail_host(host))
        if self._recorder is not None:
            pool = self.fleet.pool_of_host(host)
            self._recorder.emit(
                now, EV_NODE_FAILURE, pool=pool, host=host,
                gpus=tuple(sorted(down)), free_gpus=free.free_of(pool),
            )
        affected_fg = [
            s for s in list(self._fg_running) if not down.isdisjoint(s.gpu_ids)
        ]
        for state in affected_fg:
            # Guests are evicted first: one whose specific GPU died rolls
            # back like its host; one on a surviving GPU just loses its slot.
            for guest in list(state.guest_order):
                guest_died = bool(guest.gpu_ids) and guest.gpu_ids[0] in down
                self._detach_background(guest, now, pending, rollback=guest_died)
            self._fg_running.remove(state)
            self._fail_running(state, now, free, pending)
        affected_bg = [
            s for s in list(self._bg_dedicated) if not down.isdisjoint(s.gpu_ids)
        ]
        for state in affected_bg:
            self._bg_dedicated.remove(state)
            self._fail_running(state, now, free, pending)

    # --------------------------------------------------------------- completion
    def _finish(
        self, state: _JobState, now: float, free: FleetPool,
        pending: PendingQueue, queue: EventQueue, records: List[JobRecord],
    ) -> None:
        gpu_pool = state.gpu_type or ""
        if state.is_foreground:
            self._fg_running.remove(state)
        elif not state.collocated:
            self._bg_dedicated.remove(state)
        self._advance(state, now)
        state.remaining = 0.0
        state.status = _DONE
        if state.collocated:
            assert state.host is not None
            host = state.host
            del host.hosted[state.host_index]
            host.guest_order.remove(state)
            state.host = None
            if not host.hosted:
                # Last guest left: the host runs at full speed again.
                self._advance(host, now)
                self._reschedule_finish(host, now, queue)
        else:
            free.release(state.gpu_ids)
            if self._recorder is not None:
                self._recorder.emit(
                    now, EV_GPU_FREE, job=state.name, pool=gpu_pool,
                    gpus=tuple(state.gpu_ids), free_gpus=free.free_of(gpu_pool),
                )
        if self._recorder is not None:
            self._recorder.emit(
                now, EV_COMPLETION, job=state.name, pool=gpu_pool,
                gpus=tuple(state.gpu_ids), width=max(state.width, 1),
            )
        state.gpu_ids = []
        if state.is_foreground:
            # Orphaned guests go back to the queue and are re-placed below.
            for guest in list(state.guest_order):
                self._detach_background(guest, now, pending)
            state.hosted = {}
        assert state.start_time is not None
        records.append(
            JobRecord(
                name=state.name,
                model=state.trace.model,
                kind=state.trace.kind,
                arrival_time=state.arrival_time,
                start_time=state.start_time,
                finish_time=now,
                iterations=state.trace.iterations,
                global_batch=state.global_batch,
                width=max(state.width, 1),
                busy_gpu_seconds=state.busy_gpu_seconds,
                allocated_gpu_seconds=state.allocated_gpu_seconds,
                preemptions=state.preemptions,
                replans=state.replans,
                gpu_pool=gpu_pool,
                restarts=state.restarts,
                lost_gpu_seconds=state.lost_gpu_seconds,
            )
        )

    # -------------------------------------------------------------- scheduling
    def _schedule_pending(
        self, now: float, pending: PendingQueue, free: FleetPool,
        policy: SchedulingPolicy, queue: EventQueue,
    ) -> None:
        """Place pending jobs until the policy makes no further progress.

        The queue is already in policy order (keys maintained on insertion),
        so one pass costs O(pending) instead of O(pending log pending);
        policies with time-varying keys declare ``dynamic_priority`` and are
        re-keyed here before each pass.  Foreground jobs try the fleet's
        pools in the policy's preference order (fastest first by default),
        falling back to slower pools when the fast ones are contended.
        """
        while pending:
            if policy.dynamic_priority:
                pending.resort(now)
            order = list(pending)
            placed = 0
            waiting_fg = pending.foreground_waiting
            for state in order:
                if state.is_foreground:
                    placement: Optional[Tuple[str, int]] = None
                    for pool_name in policy.pool_preference(state, self.fleet):
                        pool_gpus = self.fleet.pool(pool_name).num_gpus
                        desired = policy.desired_width(state, pool_gpus)
                        if (
                            policy.preempt_background
                            and free.free_of(pool_name) < desired
                        ):
                            self._preempt_for(
                                desired, pool_name, now, free, pending
                            )
                        width = policy.width_for(
                            state, free.free_of(pool_name), pool_gpus, waiting_fg
                        )
                        if width is not None:
                            placement = (pool_name, width)
                            break
                    waiting_fg -= 1  # this job's share is settled either way
                    if placement is None:
                        if policy.strict_order:
                            break
                        continue
                    # Placed jobs leave the queue immediately: a background
                    # job placed earlier in this pass may be preempted later
                    # in the same pass and must be free to re-enter it.
                    pending.remove(state)
                    self._start_foreground(
                        state, placement[1], placement[0], now, free, queue
                    )
                    placed += 1
                else:
                    if self._place_background(state, now, free, policy, queue):
                        pending.remove(state)
                        placed += 1
                    elif policy.strict_order:
                        break
            if not placed:
                break

    def _preempt_for(
        self, desired: int, gpu_pool: str, now: float, free: FleetPool,
        pending: PendingQueue,
    ) -> None:
        """Evict the fewest dedicated background jobs that widen a placement.

        Widths are powers of two, so eviction only helps when it lifts
        ``floor_pow2`` of the pool's free count; preempting beyond that (or
        when even evicting every victim would not reach the next power of
        two) only churns background jobs without changing the foreground
        placement.  Only victims running *on the contended pool* are
        considered — evicting a background job from another pool frees the
        wrong kind of GPU.

        The victim registry is maintained most-remaining-work-first, so the
        eviction order needs no sort.
        """
        victims = [s for s in self._bg_dedicated if s.gpu_type == gpu_pool]
        free_gpus = free.free_of(gpu_pool)
        attainable = min(desired, floor_pow2(free_gpus + len(victims)))
        needed = attainable - free_gpus
        if attainable <= floor_pow2(free_gpus) or needed <= 0:
            return
        for victim in victims[:needed]:
            self._preempt_background(victim, now, free, pending)

    def _place_background(
        self, state: _JobState, now: float, free: FleetPool,
        policy: SchedulingPolicy, queue: EventQueue,
    ) -> bool:
        # A whole free GPU always beats sharing one with a foreground job;
        # background jobs fill from the policy's least-preferred-first order
        # (slowest pool first by default).
        for pool_name in policy.pool_preference(state, self.fleet):
            if free.free_of(pool_name):
                self._start_background_dedicated(state, pool_name, now, free, queue)
                return True
        if policy.collocate_background:
            min_efficiency = getattr(policy, "min_collocation_efficiency", 0.0)
            host = self._pick_background_host(
                list(self._fg_running), min_efficiency
            )
            if host is not None:
                self._attach_background(state, host[0], host[1], now, queue)
                return True
        return False

    def _expand_running(
        self, now: float, free: FleetPool, policy: SchedulingPolicy,
        queue: EventQueue,
    ) -> None:
        """Re-plan running foreground jobs onto freed GPUs (widest win first).

        ``_fg_running`` is maintained most-remaining-work-first, so scanning
        it in order and taking the first improvable job reproduces the old
        sort-then-pick without re-sorting per freed GPU.  A job first tries
        to widen within its own pool; when the policy allows
        ``replan_across_types`` (and the job hosts no guests, whose GPU
        slots a migration would destroy), it may instead migrate to another
        pool whose plan strictly beats its current iteration time.  Every
        action strictly lowers some job's iteration time over a finite set
        of (pool, width) plans, so the loop terminates.
        """
        while free:
            expanded = False
            for state in list(self._fg_running):
                own = state.gpu_type
                assert own is not None
                own_gpus = self.fleet.pool(own).num_gpus
                cap = width_cap(state, own_gpus)
                if state.width < cap:
                    new_width = min(
                        floor_pow2(state.width + free.free_of(own)), floor_pow2(cap)
                    )
                    if new_width > state.width:
                        plan = self._plan_for(state, new_width, own)
                        if plan.iteration_time < state.base_iter_time:
                            self._replan(state, plan, new_width, now, free, queue)
                            expanded = True
                            break
                if policy.replan_across_types and not state.hosted:
                    migrated = self._try_migrate(state, now, free, queue)
                    if migrated:
                        expanded = True
                        break
            if not expanded:
                return

    def _try_migrate(
        self, state: _JobState, now: float, free: FleetPool, queue: EventQueue
    ) -> bool:
        """Move a job to another pool when that strictly beats its plan."""
        for pool_name in self.fleet.speed_order:
            if pool_name == state.gpu_type:
                continue
            pool_gpus = self.fleet.pool(pool_name).num_gpus
            cap = width_cap(state, pool_gpus)
            width = min(floor_pow2(free.free_of(pool_name)), floor_pow2(cap))
            if width < 1:
                continue
            plan = self._plan_for(state, width, pool_name)
            if plan.iteration_time >= state.base_iter_time:
                continue
            self._advance(state, now)
            free.release(state.gpu_ids)
            old_pool = state.gpu_type
            old_gpus = tuple(state.gpu_ids)
            state.gpu_ids = free.take(pool_name, width)
            state.gpu_type = pool_name
            self._install_plan(state, plan)
            if self._recorder is not None:
                assert old_pool is not None
                self._recorder.emit(
                    now, EV_GPU_FREE, job=state.name, pool=old_pool,
                    gpus=old_gpus, free_gpus=free.free_of(old_pool),
                )
                gpus = tuple(state.gpu_ids)
                self._recorder.emit(
                    now, EV_GPU_GRANT, job=state.name, pool=pool_name,
                    gpus=gpus, free_gpus=free.free_of(pool_name),
                )
                self._recorder.emit(
                    now, EV_MIGRATION, job=state.name, pool=pool_name,
                    gpus=gpus, width=width, detail=f"from:{old_pool}",
                )
            if self._track_failures:
                # Migration serializes the job's state: checkpoint here so a
                # rollback never prices old iterations at the new plan's
                # per-iteration cost.
                self._snapshot_checkpoint(state, max(now, state.penalty_until))
            state.replans += 1
            self._reschedule_finish(state, now, queue)
            return True
        return False

    def _replan(
        self, state: _JobState, plan: TrainingPlan, new_width: int, now: float,
        free: FleetPool, queue: EventQueue,
    ) -> None:
        """Move a running foreground job to a wider plan, keeping progress."""
        self._advance(state, now)
        assert state.gpu_type is not None
        old_width = state.width
        extra = free.take(state.gpu_type, new_width - state.width)
        state.gpu_ids = state.gpu_ids + extra
        self._install_plan(state, plan)
        if self._recorder is not None:
            self._recorder.emit(
                now, EV_GPU_GRANT, job=state.name, pool=state.gpu_type,
                gpus=tuple(extra), free_gpus=free.free_of(state.gpu_type),
            )
            self._recorder.emit(
                now, EV_REPLAN, job=state.name, pool=state.gpu_type,
                gpus=tuple(state.gpu_ids), width=new_width,
                detail=f"from_width:{old_width}",
            )
        if self._track_failures:
            # Re-planning serializes the job's state: checkpoint here so a
            # rollback never prices old iterations at the new plan's
            # per-iteration cost.
            self._snapshot_checkpoint(state, max(now, state.penalty_until))
        state.replans += 1
        self._reschedule_finish(state, now, queue)
        # Guests keep their GPU slot but their host's gaps moved.
        for guest in list(state.guest_order):
            self._advance(guest, now)
            self._reschedule_finish(guest, now, queue)
