"""Trace-driven multi-tenant cluster scheduler.

This is the cluster-manager story of the paper turned into a discrete-event
simulator: a stream of :class:`~repro.sched.traces.TraceJob`\\ s arrives over
time, a :class:`~repro.sched.policies.SchedulingPolicy` decides admission
order and GPU widths, the :class:`~repro.core.planner.planner.BurstParallelPlanner`
produces a burst-parallel plan for every foreground placement, the
:class:`~repro.cluster.coordinator.ClusterCoordinator` maps the plan onto the
job's GPUs (yielding per-GPU busy fractions), and background jobs are packed
onto the idle gaps of foreground GPUs through the
:class:`~repro.cluster.executor.CollocationProfile`.

The event loop supports the dynamics a real cluster manager needs:

* **admission / backfilling** — pending jobs are (re)considered at every
  arrival and completion, in policy order;
* **collocation** — background jobs attached to a foreground GPU progress at
  ``idle * bg_idle_efficiency + busy * bg_busy_efficiency`` of their isolated
  rate while slowing the host foreground job by ``fg_slowdown``;
* **preemption** — policies may evict dedicated background jobs (their
  progress is kept; they re-enter the pending queue) to make room for
  foreground work;
* **re-planning** — when completions free GPUs and the queue is empty,
  policies may re-plan a running foreground job to a wider burst-parallel
  plan, preserving its progress.

Plans are cached by ``(model, batch, width, amplification limit)`` plus the
planner's content fingerprint (so schedulers with different planner or
profiler configurations can never alias plans), and the cache can be
pre-warmed before replay via :meth:`ClusterScheduler.prewarm_plans` — batch
planning every (model, width) a trace can request, optionally across worker
processes through a :class:`~repro.core.planner.pool.PlannerPool`.

The placement pass is *incremental*: the pending queue, the running
foreground jobs, the dedicated background jobs and each host's guests are
kept in mutation-maintained order (:mod:`repro.sched.ordering`) instead of
being re-sorted on every event, so one scheduling point costs O(changes ·
log n), not O(n log n).  Everything is deterministic: identical traces and
policies produce bit-identical :class:`~repro.sched.metrics.FleetMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.coordinator import ClusterCoordinator
from ..cluster.executor import CollocationProfile
from ..core.planner.plan import TrainingPlan
from ..core.planner.planner import BurstParallelPlanner
from ..core.planner.pool import PlannerPool, PlanRequest
from ..models.graph import ModelGraph
from ..models.registry import build_model
from ..network.fabric import NetworkFabric, get_fabric
from ..profiler.layer_profiler import LayerProfiler
from .events import EventKind, EventQueue, GpuPool
from .metrics import FleetMetrics, JobRecord
from .ordering import PendingQueue, SortedJobList
from .policies import SchedulingPolicy, floor_pow2, get_policy
from .traces import TraceJob

__all__ = ["ClusterScheduler", "ScheduleResult"]

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"


class _JobState:
    """Mutable per-job simulation state (one instance per trace job per run)."""

    def __init__(
        self, trace: TraceJob, order: int, graph: ModelGraph, iso_iter_time: float
    ) -> None:
        self.trace = trace
        self.order = order
        self.graph = graph
        #: Single-GPU time per iteration; the work estimate policies sort by.
        self.iso_iter_time = iso_iter_time
        self.status = _PENDING
        self.remaining = float(trace.iterations)
        self.version = 0
        self.last_update = trace.arrival_time
        self.rate = 0.0  # iterations per second while running
        self.start_time: Optional[float] = None
        # Foreground placement state.
        self.width = 0
        self.gpu_ids: List[int] = []
        self.plan: Optional[TrainingPlan] = None
        self.base_iter_time = 0.0
        self.work_per_iteration = 0.0  # busy GPU-seconds per iteration
        self.busy_fractions: List[float] = []
        self.hosted: Dict[int, "_JobState"] = {}  # local GPU index -> bg job
        #: Guests ordered by arrival order, maintained on attach/detach.
        self.guest_order = SortedJobList()
        # Background placement state.
        self.host: Optional["_JobState"] = None
        self.host_index = 0
        # Accounting.
        self.preemptions = 0
        self.replans = 0
        self.busy_gpu_seconds = 0.0
        self.allocated_gpu_seconds = 0.0

    # Attributes policies read (duck-typed).
    @property
    def name(self) -> str:
        return self.trace.name

    @property
    def is_foreground(self) -> bool:
        return self.trace.is_foreground

    @property
    def arrival_time(self) -> float:
        return self.trace.arrival_time

    @property
    def global_batch(self) -> int:
        return self.trace.global_batch

    @property
    def max_gpus(self) -> Optional[int]:
        return self.trace.max_gpus

    @property
    def remaining_gpu_seconds(self) -> float:
        """Estimated single-GPU compute remaining (the policy sort key)."""
        return self.remaining * self.iso_iter_time

    @property
    def collocated(self) -> bool:
        return self.host is not None


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduler run: per-job records plus fleet metrics."""

    policy: str
    num_gpus: int
    records: Tuple[JobRecord, ...]
    metrics: FleetMetrics
    #: Events the simulation processed (arrivals, finishes, and stale
    #: finishes discarded by lazy invalidation) — the run's deterministic
    #: op count, reported by the benchmark harness.
    events_processed: int = 0

    def record(self, name: str) -> JobRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no record for job {name!r}")


class ClusterScheduler:
    """Discrete-event scheduler serving a trace of jobs on a GPU cluster.

    One instance can run many (trace, policy) combinations; planner and
    profiler caches persist across runs, so comparing policies on the same
    trace only pays each burst-parallel plan search once.
    """

    def __init__(
        self,
        num_gpus: int,
        fabric: Union[NetworkFabric, str, None] = None,
        profiler: Optional[LayerProfiler] = None,
        planner: Optional[BurstParallelPlanner] = None,
        collocation: Optional[CollocationProfile] = None,
    ) -> None:
        if num_gpus < 1:
            raise ValueError("num_gpus must be at least 1")
        self.num_gpus = num_gpus
        if fabric is None or isinstance(fabric, str):
            fabric = get_fabric(fabric if fabric is not None else "nvswitch")
        self.fabric = fabric
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.planner = (
            planner
            if planner is not None
            else BurstParallelPlanner(self.fabric, self.profiler)
        )
        self.collocation = (
            collocation if collocation is not None else CollocationProfile()
        )
        self._plan_cache: Dict[
            Tuple[str, int, int, float, str], TrainingPlan
        ] = {}
        self._graph_cache: Dict[str, ModelGraph] = {}
        self._iso_cache: Dict[Tuple[str, int], float] = {}
        self._states: Dict[str, _JobState] = {}
        # Planner identity folded into plan-cache keys; memoized per planner
        # object so swapping self.planner can never serve the old planner's
        # plans.
        self._planner_fp: Optional[str] = None
        self._planner_fp_owner: Optional[BurstParallelPlanner] = None
        # Mutation-maintained placement registries (re-bound per run).
        self._fg_running = SortedJobList()
        self._bg_dedicated = SortedJobList()

    # ------------------------------------------------------------------ caches
    def _graph(self, model: str) -> ModelGraph:
        if model not in self._graph_cache:
            self._graph_cache[model] = build_model(model)
        return self._graph_cache[model]

    def _iso_iter_time(self, model: str, batch: int) -> float:
        key = (model, batch)
        if key not in self._iso_cache:
            self._iso_cache[key] = self.profiler.iteration_compute_time(
                self._graph(model), batch
            )
        return self._iso_cache[key]

    def _planner_fingerprint(self) -> str:
        if self._planner_fp is None or self._planner_fp_owner is not self.planner:
            self._planner_fp = self.planner.fingerprint()
            self._planner_fp_owner = self.planner
        return self._planner_fp

    def _plan_cache_key(
        self, model: str, batch: int, width: int, amp_limit: float
    ) -> Tuple[str, int, int, float, str]:
        return (model, batch, width, amp_limit, self._planner_fingerprint())

    def _plan_for(self, state: _JobState, width: int) -> TrainingPlan:
        key = self._plan_cache_key(
            state.trace.model,
            state.global_batch,
            width,
            state.trace.amplification_limit,
        )
        if key not in self._plan_cache:
            self._plan_cache[key] = self.planner.plan(
                state.graph,
                state.global_batch,
                width,
                amplification_limit=state.trace.amplification_limit,
            )
        return self._plan_cache[key]

    def prewarm_plans(
        self,
        trace: Sequence[TraceJob],
        pool: Optional[PlannerPool] = None,
    ) -> int:
        """Plan every (model, width) the trace can request, before replay.

        Every foreground job is expanded to the power-of-two widths its
        policy could ever place it at (1 up to ``floor_pow2`` of its
        GPU/batch/``max_gpus`` cap), the deduplicated requests are planned —
        through ``pool`` (possibly multiprocess, possibly backed by a shared
        persistent cache) when given, inline on this scheduler's planner
        otherwise — and the results seed :attr:`_plan_cache` so trace replay
        never stalls on a planner search.  Returns the number of plans
        seeded.

        When a pool is used, its fabric/profiler/planner configuration must
        match this scheduler's planner: the cache key identifies plans by
        *this* planner's fingerprint, so a mismatched pool would seed
        foreign plans under it.  The fingerprints are compared up front and
        a mismatch raises ``ValueError``.  Pool results are deterministic
        and independent of the worker count, so replay metrics are identical
        whether the cache was warmed inline, by one worker, or by many.
        """
        if pool is not None:
            pool_fp = pool.planner().fingerprint()
            if pool_fp != self._planner_fingerprint():
                raise ValueError(
                    "PlannerPool configuration does not match this "
                    "scheduler's planner (fabric/profiler/config fingerprints "
                    "differ); prewarmed plans would alias under the wrong "
                    "planner identity"
                )
        requests: List[PlanRequest] = []
        seen = set()
        for job in trace:
            if not job.is_foreground:
                continue
            cap = min(
                self.num_gpus,
                job.global_batch,
                job.max_gpus if job.max_gpus is not None else self.num_gpus,
            )
            width = 1
            top = floor_pow2(max(cap, 1))
            while width <= top:
                request = PlanRequest(
                    job.model, job.global_batch, width, job.amplification_limit
                )
                if request not in seen:
                    seen.add(request)
                    requests.append(request)
                width *= 2
        if pool is not None:
            plans = pool.plan_batch(requests)
        else:
            plans = [
                self.planner.plan(
                    self._graph(r.model),
                    r.global_batch,
                    r.total_gpus,
                    amplification_limit=r.amplification_limit,
                )
                for r in requests
            ]
        seeded = 0
        for request, plan in zip(requests, plans):
            key = self._plan_cache_key(
                request.model,
                request.global_batch,
                request.total_gpus,
                request.amplification_limit,
            )
            if key not in self._plan_cache:
                self._plan_cache[key] = plan
                seeded += 1
        return seeded

    # --------------------------------------------------------------- event loop
    def run(
        self, trace: Sequence[TraceJob], policy: Union[str, SchedulingPolicy]
    ) -> ScheduleResult:
        """Simulate the whole trace under one policy and return its metrics."""
        policy = get_policy(policy)
        if not trace:
            raise ValueError("trace must contain at least one job")
        names = [job.name for job in trace]
        if len(set(names)) != len(names):
            raise ValueError("trace job names must be unique")

        states: Dict[str, _JobState] = {}
        for order, job in enumerate(trace):
            states[job.name] = _JobState(
                job, order, self._graph(job.model),
                self._iso_iter_time(job.model, job.global_batch),
            )
        # Per-run registries the placement helpers consult (re-bound every
        # run so one scheduler can serve many traces/policies).
        self._states = states
        self._fg_running = SortedJobList()
        self._bg_dedicated = SortedJobList()

        queue = EventQueue()
        for job in trace:
            queue.push(job.arrival_time, EventKind.JOB_ARRIVAL, job.name)

        free = GpuPool(range(self.num_gpus))
        pending = PendingQueue(policy)
        records: List[JobRecord] = []
        first_arrival = min(job.arrival_time for job in trace)
        last_finish = first_arrival

        while queue:
            event = queue.pop()
            state = states[event.job_name]
            now = event.time
            if event.kind is EventKind.JOB_ARRIVAL:
                state.last_update = now
                pending.add(state, now)
            else:
                if state.status != _RUNNING or event.version != state.version:
                    continue  # stale finish event (job was re-planned/preempted)
                self._finish(state, now, free, pending, queue, records)
                last_finish = max(last_finish, now)
            self._schedule_pending(now, pending, free, policy, queue)
            if policy.replan_running and not pending and free:
                self._expand_running(now, free, queue)

        unfinished = [s.name for s in states.values() if s.status != _DONE]
        if unfinished:
            raise RuntimeError(
                f"scheduler deadlock under policy {policy.name!r}: "
                f"jobs never completed: {', '.join(sorted(unfinished))}"
            )
        # Makespan runs from the first arrival to the last completion, so a
        # trace submitted late does not dilute utilization and goodput.
        metrics = FleetMetrics.compute(
            records, self.num_gpus, last_finish - first_arrival
        )
        return ScheduleResult(
            policy=policy.name,
            num_gpus=self.num_gpus,
            records=tuple(records),
            metrics=metrics,
            events_processed=queue.popped,
        )

    # ---------------------------------------------------------------- progress
    @staticmethod
    def _work_key(state: _JobState) -> Tuple[float, int]:
        """Most-remaining-work-first ordering (preemption/re-plan registries)."""
        return (-state.remaining_gpu_seconds, state.order)

    def _advance(self, state: _JobState, now: float) -> None:
        """Account progress since the job's last update."""
        elapsed = now - state.last_update
        state.last_update = now
        if state.status != _RUNNING or elapsed <= 0:
            return
        done = min(state.remaining, elapsed * state.rate)
        state.remaining -= done
        state.busy_gpu_seconds += done * state.work_per_iteration
        if state.is_foreground:
            state.allocated_gpu_seconds += elapsed * state.width
        elif not state.collocated:
            state.allocated_gpu_seconds += elapsed
        # The job's remaining work moved: keep its registry position honest.
        if state in self._fg_running:
            self._fg_running.rekey(state, self._work_key(state))
        elif state in self._bg_dedicated:
            self._bg_dedicated.rekey(state, self._work_key(state))

    def _current_rate(self, state: _JobState) -> float:
        """Iterations per second in the job's current placement."""
        profile = self.collocation
        if state.is_foreground:
            slowdown = profile.fg_slowdown if state.hosted else 1.0
            return 1.0 / (state.base_iter_time * slowdown)
        if state.collocated:
            assert state.host is not None
            busy = state.host.busy_fractions[state.host_index]
            efficiency = (
                (1.0 - busy) * profile.bg_idle_efficiency
                + busy * profile.bg_busy_efficiency
            )
            return efficiency / state.iso_iter_time
        return 1.0 / state.iso_iter_time

    def _reschedule_finish(
        self, state: _JobState, now: float, queue: EventQueue
    ) -> None:
        """Recompute the job's rate and (re)arm its finish event."""
        state.version += 1
        state.rate = self._current_rate(state)
        finish = now + state.remaining / state.rate
        queue.push(finish, EventKind.JOB_FINISH, state.name, state.version)

    # --------------------------------------------------------------- placement
    def _install_plan(self, state: _JobState, plan: TrainingPlan) -> None:
        """Bind a burst-parallel plan (and its per-GPU occupancy) to a job."""
        coordinator = ClusterCoordinator(num_gpus=plan.total_gpus)
        coordinator.place_plan(plan)
        state.busy_fractions = coordinator.busy_fractions(plan.iteration_time)
        state.plan = plan
        state.base_iter_time = plan.iteration_time
        state.work_per_iteration = plan.total_gpu_seconds()
        state.width = plan.total_gpus

    def _start_foreground(
        self, state: _JobState, width: int, now: float, free: GpuPool,
        queue: EventQueue,
    ) -> None:
        self._install_plan(state, self._plan_for(state, width))
        state.gpu_ids = free.take(width)
        state.hosted = {}
        state.guest_order = SortedJobList()
        state.status = _RUNNING
        if state.start_time is None:
            state.start_time = now
        state.last_update = now
        self._fg_running.add(state, self._work_key(state))
        self._reschedule_finish(state, now, queue)

    def _start_background_dedicated(
        self, state: _JobState, now: float, free: GpuPool, queue: EventQueue
    ) -> None:
        state.width = 1
        state.gpu_ids = free.take(1)
        state.host = None
        state.work_per_iteration = state.iso_iter_time
        state.status = _RUNNING
        if state.start_time is None:
            state.start_time = now
        state.last_update = now
        self._bg_dedicated.add(state, self._work_key(state))
        self._reschedule_finish(state, now, queue)

    def _attach_background(
        self, state: _JobState, host: _JobState, index: int, now: float,
        queue: EventQueue,
    ) -> None:
        """Collocate a background job onto one GPU of a running foreground job."""
        first_guest = not host.hosted
        host.hosted[index] = state
        host.guest_order.add(state, (state.order,))
        state.host = host
        state.host_index = index
        state.width = 1
        state.gpu_ids = [host.gpu_ids[index]]
        state.work_per_iteration = state.iso_iter_time
        state.status = _RUNNING
        if state.start_time is None:
            state.start_time = now
        state.last_update = now
        self._reschedule_finish(state, now, queue)
        if first_guest:
            # The foreground host now pays the collocation slowdown.
            self._advance(host, now)
            self._reschedule_finish(host, now, queue)

    def _pick_background_host(
        self, states: Sequence[_JobState], min_efficiency: float
    ) -> Optional[Tuple[_JobState, int]]:
        """Most-idle free slot on a running foreground job, or ``None``.

        Slots whose expected background efficiency falls below
        ``min_efficiency`` are not offered: a background job crawling beside
        an always-busy foreground is worse than waiting for a free GPU.
        """
        profile = self.collocation
        best: Optional[Tuple[float, int, int, _JobState]] = None
        for fg in states:
            for index, busy in enumerate(fg.busy_fractions):
                if index in fg.hosted:
                    continue
                efficiency = (
                    (1.0 - busy) * profile.bg_idle_efficiency
                    + busy * profile.bg_busy_efficiency
                )
                if efficiency < min_efficiency:
                    continue
                key = (busy, fg.order, index)
                if best is None or key < (best[0], best[1], best[2]):
                    best = (busy, fg.order, index, fg)
        if best is None:
            return None
        return best[3], best[2]

    def _detach_background(
        self, state: _JobState, now: float, pending: PendingQueue
    ) -> None:
        """Return a collocated background job to the pending queue."""
        self._advance(state, now)
        assert state.host is not None
        del state.host.hosted[state.host_index]
        state.host.guest_order.remove(state)
        state.host = None
        state.gpu_ids = []
        state.status = _PENDING
        state.version += 1  # invalidate the in-flight finish event
        pending.add(state, now)

    def _preempt_background(
        self, state: _JobState, now: float, free: GpuPool,
        pending: PendingQueue,
    ) -> None:
        """Evict a dedicated background job, keeping its progress."""
        self._bg_dedicated.remove(state)
        self._advance(state, now)
        free.release(state.gpu_ids)
        state.gpu_ids = []
        state.status = _PENDING
        state.version += 1
        state.preemptions += 1
        pending.add(state, now)

    # --------------------------------------------------------------- completion
    def _finish(
        self, state: _JobState, now: float, free: GpuPool,
        pending: PendingQueue, queue: EventQueue, records: List[JobRecord],
    ) -> None:
        if state.is_foreground:
            self._fg_running.remove(state)
        elif not state.collocated:
            self._bg_dedicated.remove(state)
        self._advance(state, now)
        state.remaining = 0.0
        state.status = _DONE
        if state.collocated:
            assert state.host is not None
            host = state.host
            del host.hosted[state.host_index]
            host.guest_order.remove(state)
            state.host = None
            if not host.hosted:
                # Last guest left: the host runs at full speed again.
                self._advance(host, now)
                self._reschedule_finish(host, now, queue)
        else:
            free.release(state.gpu_ids)
        state.gpu_ids = []
        if state.is_foreground:
            # Orphaned guests go back to the queue and are re-placed below.
            for guest in list(state.guest_order):
                self._detach_background(guest, now, pending)
            state.hosted = {}
        assert state.start_time is not None
        records.append(
            JobRecord(
                name=state.name,
                model=state.trace.model,
                kind=state.trace.kind,
                arrival_time=state.arrival_time,
                start_time=state.start_time,
                finish_time=now,
                iterations=state.trace.iterations,
                global_batch=state.global_batch,
                width=max(state.width, 1),
                busy_gpu_seconds=state.busy_gpu_seconds,
                allocated_gpu_seconds=state.allocated_gpu_seconds,
                preemptions=state.preemptions,
                replans=state.replans,
            )
        )

    # -------------------------------------------------------------- scheduling
    def _schedule_pending(
        self, now: float, pending: PendingQueue, free: GpuPool,
        policy: SchedulingPolicy, queue: EventQueue,
    ) -> None:
        """Place pending jobs until the policy makes no further progress.

        The queue is already in policy order (keys maintained on insertion),
        so one pass costs O(pending) instead of O(pending log pending);
        policies with time-varying keys declare ``dynamic_priority`` and are
        re-keyed here before each pass.
        """
        while pending:
            if policy.dynamic_priority:
                pending.resort(now)
            order = list(pending)
            placed = 0
            waiting_fg = pending.foreground_waiting
            for state in order:
                if state.is_foreground:
                    desired = policy.desired_width(state, self.num_gpus)
                    if policy.preempt_background and len(free) < desired:
                        self._preempt_for(desired, now, free, pending)
                    width = policy.width_for(
                        state, len(free), self.num_gpus, waiting_fg
                    )
                    waiting_fg -= 1  # this job's share is settled either way
                    if width is None:
                        if policy.strict_order:
                            break
                        continue
                    # Placed jobs leave the queue immediately: a background
                    # job placed earlier in this pass may be preempted later
                    # in the same pass and must be free to re-enter it.
                    pending.remove(state)
                    self._start_foreground(state, width, now, free, queue)
                    placed += 1
                else:
                    if self._place_background(state, now, free, policy, queue):
                        pending.remove(state)
                        placed += 1
                    elif policy.strict_order:
                        break
            if not placed:
                break

    def _preempt_for(
        self, desired: int, now: float, free: GpuPool,
        pending: PendingQueue,
    ) -> None:
        """Evict the fewest dedicated background jobs that widen a placement.

        Widths are powers of two, so eviction only helps when it lifts
        ``floor_pow2`` of the free pool; preempting beyond that (or when even
        evicting every victim would not reach the next power of two) only
        churns background jobs without changing the foreground placement.

        The victim registry is maintained most-remaining-work-first, so the
        eviction order needs no sort.
        """
        victims = list(self._bg_dedicated)
        attainable = min(desired, floor_pow2(len(free) + len(victims)))
        needed = attainable - len(free)
        if attainable <= floor_pow2(len(free)) or needed <= 0:
            return
        for victim in victims[:needed]:
            self._preempt_background(victim, now, free, pending)

    def _place_background(
        self, state: _JobState, now: float, free: GpuPool,
        policy: SchedulingPolicy, queue: EventQueue,
    ) -> bool:
        # A whole free GPU always beats sharing one with a foreground job.
        if free:
            self._start_background_dedicated(state, now, free, queue)
            return True
        if policy.collocate_background:
            min_efficiency = getattr(policy, "min_collocation_efficiency", 0.0)
            host = self._pick_background_host(
                list(self._fg_running), min_efficiency
            )
            if host is not None:
                self._attach_background(state, host[0], host[1], now, queue)
                return True
        return False

    def _expand_running(
        self, now: float, free: GpuPool, queue: EventQueue
    ) -> None:
        """Re-plan running foreground jobs onto freed GPUs (widest win first).

        ``_fg_running`` is maintained most-remaining-work-first, so scanning
        it in order and taking the first expandable job reproduces the old
        sort-then-pick without re-sorting per freed GPU.
        """
        while free:
            expanded = False
            for state in list(self._fg_running):
                cap = min(
                    self.num_gpus,
                    state.global_batch,
                    state.max_gpus if state.max_gpus is not None else self.num_gpus,
                )
                if state.width >= cap:
                    continue
                new_width = min(floor_pow2(state.width + len(free)), floor_pow2(cap))
                if new_width <= state.width:
                    continue
                plan = self._plan_for(state, new_width)
                if plan.iteration_time >= state.base_iter_time:
                    continue  # wider is not faster for this job; keep as is
                self._replan(state, plan, new_width, now, free, queue)
                expanded = True
                break
            if not expanded:
                return

    def _replan(
        self, state: _JobState, plan: TrainingPlan, new_width: int, now: float,
        free: GpuPool, queue: EventQueue,
    ) -> None:
        """Move a running foreground job to a wider plan, keeping progress."""
        self._advance(state, now)
        extra = free.take(new_width - state.width)
        state.gpu_ids = state.gpu_ids + extra
        self._install_plan(state, plan)
        state.replans += 1
        self._reschedule_finish(state, now, queue)
        # Guests keep their GPU slot but their host's gaps moved.
        for guest in list(state.guest_order):
            self._advance(guest, now)
            self._reschedule_finish(guest, now, queue)
