"""Fleet-level metrics for trace-driven scheduler runs.

The scheduler reduces a whole simulation to one :class:`JobRecord` per
completed job and one :class:`FleetMetrics` summary per run:

* job-completion-time (JCT) distribution — mean / median / p95 / max;
* makespan — time from the first arrival to the last completion;
* cluster utilization — busy GPU-seconds over ``num_gpus * makespan``,
  counting only useful work (foreground stage time, background compute);
* foreground / background goodput — completed training samples per second
  of makespan, split by job class.

Both dataclasses are frozen so two runs can be compared with ``==`` when
asserting determinism under a fixed trace seed.

Aggregation is columnar: :class:`MetricsFold` accumulates per-field columns
(one list per float field, running integers for the exact sums) and folds
them into a :class:`FleetMetrics` at the end.  ``FleetMetrics.compute``
delegates to it, and the sharded replay driver feeds it per-epoch record
batches — in global record order, so the float summation order (and hence
every bit of the result) is identical to a single-process run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Sequence

from ..cluster.job import JobKind

__all__ = ["JobRecord", "FleetMetrics", "MetricsFold", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]) without numpy."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle summary of one completed job.

    Attributes
    ----------
    name / model / kind:
        Job identity (kind distinguishes foreground from background).
    arrival_time / start_time / finish_time:
        Submission, first placement, and completion times (seconds).
    iterations / global_batch:
        Work completed: ``iterations * global_batch`` training samples.
    width:
        GPU width at completion (1 for background jobs).
    busy_gpu_seconds:
        GPU-seconds of useful compute the job performed.
    allocated_gpu_seconds:
        GPU-seconds of capacity dedicated to the job (zero while a
        background job rides collocated on foreground GPUs).
    preemptions / replans:
        Times the job was preempted off its GPUs / re-planned to a new width.
    gpu_pool:
        Name of the fleet pool the job completed on (empty when the
        scheduler predates fleets, e.g. records built by hand in tests).
    restarts:
        Times a node failure killed the job and forced a restart.
    lost_gpu_seconds:
        Useful GPU-seconds rolled back by failures (work since the last
        checkpoint, re-done after each restart).
    """

    name: str
    model: str
    kind: JobKind
    arrival_time: float
    start_time: float
    finish_time: float
    iterations: int
    global_batch: int
    width: int
    busy_gpu_seconds: float
    allocated_gpu_seconds: float
    preemptions: int = 0
    replans: int = 0
    gpu_pool: str = ""
    restarts: int = 0
    lost_gpu_seconds: float = 0.0

    @property
    def jct(self) -> float:
        """Job completion time: finish minus arrival."""
        return self.finish_time - self.arrival_time

    @property
    def queue_delay(self) -> float:
        """Time spent waiting before the first placement."""
        return self.start_time - self.arrival_time

    @property
    def samples(self) -> int:
        """Training samples processed over the job's lifetime."""
        return self.iterations * self.global_batch

    @property
    def is_foreground(self) -> bool:
        return self.kind is JobKind.FOREGROUND


@dataclass(frozen=True)
class FleetMetrics:
    """Aggregate outcome of one scheduler run."""

    num_gpus: int
    num_jobs: int
    makespan: float
    mean_jct: float
    median_jct: float
    p95_jct: float
    max_jct: float
    mean_queue_delay: float
    utilization: float
    fg_goodput: float
    bg_goodput: float
    preemptions: int
    replans: int
    restarts: int = 0
    lost_gpu_seconds: float = 0.0

    @property
    def total_goodput(self) -> float:
        return self.fg_goodput + self.bg_goodput

    @classmethod
    def compute(
        cls, records: Sequence[JobRecord], num_gpus: int, makespan: float
    ) -> "FleetMetrics":
        """Summarize a run from its completed-job records.

        Zero completed jobs (a partial or aborted replay, or a sampler
        summarizing mid-run) is a valid input: the result is an all-zero
        metrics object with ``num_jobs=0`` — never an exception.
        """
        fold = MetricsFold()
        fold.extend(records)
        return fold.finalize(num_gpus, makespan)


class MetricsFold:
    """Columnar accumulator folding job records into :class:`FleetMetrics`.

    Records (or their serialized row form, see :meth:`add_row`) are appended
    one batch at a time; :meth:`finalize` reduces the columns with the exact
    arithmetic ``FleetMetrics.compute`` always used — built-in ``sum`` over
    each float column in append order, integer running totals for the exact
    sums — so a fold fed the records of a single run in order produces a
    bit-identical metrics object.  That invariance is what lets the sharded
    replay driver stitch per-epoch record batches (appended in epoch order,
    preserving the global record order) into the same fingerprint as an
    unsharded run, without ever materializing 100k :class:`JobRecord`
    objects just to aggregate them.
    """

    __slots__ = (
        "_jcts",
        "_queue_delays",
        "_busy",
        "_lost",
        "_fg_samples",
        "_bg_samples",
        "_preemptions",
        "_replans",
        "_restarts",
    )

    def __init__(self) -> None:
        self._jcts: List[float] = []
        self._queue_delays: List[float] = []
        self._busy: List[float] = []
        self._lost: List[float] = []
        self._fg_samples = 0
        self._bg_samples = 0
        self._preemptions = 0
        self._replans = 0
        self._restarts = 0

    def __len__(self) -> int:
        return len(self._jcts)

    def _append(
        self,
        arrival_time: float,
        start_time: float,
        finish_time: float,
        samples: int,
        foreground: bool,
        busy_gpu_seconds: float,
        lost_gpu_seconds: float,
        preemptions: int,
        replans: int,
        restarts: int,
    ) -> None:
        self._jcts.append(finish_time - arrival_time)
        self._queue_delays.append(start_time - arrival_time)
        self._busy.append(busy_gpu_seconds)
        self._lost.append(lost_gpu_seconds)
        if foreground:
            self._fg_samples += samples
        else:
            self._bg_samples += samples
        self._preemptions += preemptions
        self._replans += replans
        self._restarts += restarts

    def add(self, record: JobRecord) -> None:
        """Fold one completed-job record in."""
        self._append(
            record.arrival_time,
            record.start_time,
            record.finish_time,
            record.iterations * record.global_batch,
            record.kind is JobKind.FOREGROUND,
            record.busy_gpu_seconds,
            record.lost_gpu_seconds,
            record.preemptions,
            record.replans,
            record.restarts,
        )

    def extend(self, records: Sequence[JobRecord]) -> None:
        """Fold a batch of records in, preserving their order."""
        for record in records:
            self.add(record)

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Fold one serialized record row (``asdict`` form, kind as string).

        This is the row layout :mod:`repro.sched.snapshot` persists and the
        shard workers ship between processes; folding it directly skips the
        :class:`JobRecord` construction on the aggregation path.
        """
        self._append(
            row["arrival_time"],
            row["start_time"],
            row["finish_time"],
            row["iterations"] * row["global_batch"],
            row["kind"] == JobKind.FOREGROUND.value,
            row["busy_gpu_seconds"],
            row["lost_gpu_seconds"],
            row["preemptions"],
            row["replans"],
            row["restarts"],
        )

    def finalize(self, num_gpus: int, makespan: float) -> FleetMetrics:
        """Reduce the accumulated columns into a :class:`FleetMetrics`."""
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        jcts = self._jcts
        if not jcts:
            return FleetMetrics(
                num_gpus=num_gpus,
                num_jobs=0,
                makespan=makespan,
                mean_jct=0.0,
                median_jct=0.0,
                p95_jct=0.0,
                max_jct=0.0,
                mean_queue_delay=0.0,
                utilization=0.0,
                fg_goodput=0.0,
                bg_goodput=0.0,
                preemptions=0,
                replans=0,
                restarts=0,
                lost_gpu_seconds=0.0,
            )
        span = max(makespan, 1e-12)
        busy = sum(self._busy)
        return FleetMetrics(
            num_gpus=num_gpus,
            num_jobs=len(jcts),
            makespan=makespan,
            mean_jct=sum(jcts) / len(jcts),
            median_jct=percentile(jcts, 50.0),
            p95_jct=percentile(jcts, 95.0),
            max_jct=max(jcts),
            mean_queue_delay=sum(self._queue_delays) / len(jcts),
            utilization=min(1.0, busy / (num_gpus * span)),
            fg_goodput=self._fg_samples / span,
            bg_goodput=self._bg_samples / span,
            preemptions=self._preemptions,
            replans=self._replans,
            restarts=self._restarts,
            lost_gpu_seconds=sum(self._lost),
        )
