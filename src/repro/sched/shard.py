"""Sharded, epoch-parallel replay of one scheduler run.

A discrete-event simulation is inherently serial: event *n* determines the
state event *n+1* dispatches against.  What makes it shardable anyway is
PR 8's :class:`~repro.sched.snapshot.EngineSnapshot` — a fingerprint-exact
freeze of the complete run state at any event boundary.  This module turns
that primitive into a parallel replay driver:

1. **Partition** the timeline into *epochs*.  :func:`partition_epochs` cuts
   at arrival-time quantiles of the trace so each epoch carries a comparable
   share of the event stream; callers may also pass explicit boundaries.
2. **Anchor** each epoch with a snapshot of the engine state at its start.
   Anchors are content-addressed in the shared :mod:`repro.cache` store
   (:func:`~repro.cache.fingerprint.shard_anchor_fingerprint` keys them by
   the full workload identity plus the partition), so the serial *anchor
   pass* that materializes them runs at most once per workload — every
   later replay of the same run, in this process or any other, starts from
   cache hits and goes straight to the parallel phase.  An anchor is the
   engine snapshot with its completion-record list stripped to a bare
   *count*: a worker only ever appends new records, so shipping the
   history would be dead weight — on a 100k-job trace it is the majority
   of the later anchors' bytes, and dropping it is what makes restore
   cheap enough for the parallel phase to win.
3. **Replay** every epoch independently: each worker restores its anchor
   into a fresh engine and advances to the epoch's end boundary (the last
   epoch drains).  Workers are processes (the
   :class:`~repro.core.planner.pool.PlannerPool` discipline: module-level
   worker functions on picklable payloads, ``workers <= 1`` runs inline),
   they share the persistent plan store via ``cache_dir``, and they report
   their :mod:`repro.obs` counter deltas back for fold-in, so the driver's
   registry reflects the work wherever it executed.
4. **Stitch** the per-epoch record batches — in epoch order, which *is*
   global completion order — through the columnar
   :class:`~repro.sched.metrics.MetricsFold`, whose float reductions use
   the exact summation the single-process path uses.

The stitched :class:`~repro.sched.engine.ScheduleResult` is therefore
*bit-identical* to a single-process replay of the same workload — same
records, same metrics, same
:func:`~repro.serve.replay.result_fingerprint` — at every epoch and worker
count.  The property tests assert this and the CI ``shard`` job gates on it.

Determinism note: an ``advance_to`` at each boundary is a no-op relative to
a plain ``drain`` — the bound is exclusive and the engine clock moves to
``max(clock, boundary)``, which the next event's dispatch would do anyway —
so the anchor pass and the epoch replays traverse the exact event history
of the uninterrupted run.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..cache import ArtifactCache
from ..cache.fingerprint import (
    fabric_fingerprint,
    fingerprint,
    fleet_fingerprint,
    planner_config_fingerprint,
    shard_anchor_fingerprint,
    trace_fingerprint,
)
from ..cluster.executor import CollocationProfile
from ..core.planner.planner import BurstParallelPlanner, PlannerConfig
from ..network.fabric import NetworkFabric
from ..obs.metrics import global_registry
from ..profiler.gpu_spec import GPUSpec
from ..profiler.layer_profiler import LayerProfiler
from .engine import ScheduleResult, SchedulerEngine
from .failures import CheckpointModel, NodeFailure, validate_failures
from .fleet import ClusterFleet, GpuPoolSpec
from .metrics import JobRecord, MetricsFold
from .policies import SchedulingPolicy, get_policy
from .scheduler import ClusterScheduler
from .snapshot import EngineSnapshot, _dump_record, _load_record
from .traces import TraceJob

__all__ = [
    "ShardConfig",
    "ShardReport",
    "EpochReport",
    "partition_epochs",
    "replay_sharded",
]

#: Cache namespace holding epoch-anchor snapshots.
ANCHOR_NAMESPACE = "shard-anchors"


def _make_anchor(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a snapshot payload as an epoch anchor.

    The completion records are replaced by their count: a replaying worker
    never reads them (it only appends new ones), and the stitch phase needs
    just the count to verify the anchor agrees with the records the earlier
    epochs produced.
    """
    return {
        "snapshot": {**payload, "records": []},
        "prior_records": len(payload["records"]),
    }


def _valid_anchor(payload: Any) -> bool:
    """Whether a cache payload has the anchor shape (guards stale entries)."""
    return (
        isinstance(payload, dict)
        and isinstance(payload.get("snapshot"), dict)
        and isinstance(payload.get("prior_records"), int)
    )

_REGISTRY = global_registry()
_RUNS = _REGISTRY.counter("sched.shard.runs")
_EPOCHS_REPLAYED = _REGISTRY.counter("sched.shard.epochs_replayed")
_ANCHOR_HITS = _REGISTRY.counter("sched.shard.anchor_hits")
_ANCHOR_MISSES = _REGISTRY.counter("sched.shard.anchor_misses")
_ANCHOR_WRITES = _REGISTRY.counter("sched.shard.anchor_writes")
_ANCHOR_PASSES = _REGISTRY.counter("sched.shard.anchor_passes")
_ANCHOR_TIMER = _REGISTRY.timer("sched.shard.anchor_pass")
_REPLAY_TIMER = _REGISTRY.timer("sched.shard.replay")


def partition_epochs(trace: Sequence[TraceJob], epochs: int) -> List[float]:
    """Cut the trace timeline into ``epochs`` spans at arrival quantiles.

    Returns the ``epochs - 1`` interior boundaries (non-decreasing arrival
    times); an epoch spans ``[boundary[i-1], boundary[i])`` with the usual
    exclusive-bound convention of :meth:`SchedulerEngine.advance_to`, the
    first epoch starting at time zero and the last draining to quiescence.
    Quantiles of the *arrival* distribution keep event counts roughly
    balanced across epochs without simulating anything.  A bursty trace may
    produce duplicate boundaries — i.e. *empty* epochs — which replay as
    zero-step no-ops and stitch cleanly.
    """
    if epochs < 1:
        raise ValueError("epochs must be at least 1")
    if not trace:
        raise ValueError("cannot partition an empty trace")
    arrivals = sorted(job.arrival_time for job in trace)
    return [
        arrivals[(index * len(arrivals)) // epochs] for index in range(1, epochs)
    ]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker process needs to rebuild an equivalent scheduler.

    All fields are plain frozen dataclasses (or scalars), so the config
    pickles under both fork and spawn start methods.  ``build_scheduler``
    reconstructs a scheduler whose planner/profiler derivations match the
    capturing one exactly — :meth:`EngineSnapshot.apply` verifies this by
    recomputing every job's ``iso_iter_time``, so a drifted configuration
    fails loudly instead of diverging silently.
    """

    pools: Tuple[GpuPoolSpec, ...]
    fabric: NetworkFabric
    gpu: GPUSpec
    use_cuda_graphs: bool
    dtype_bytes: int
    planner_config: PlannerConfig
    collocation: CollocationProfile
    checkpoint: CheckpointModel
    policy: str
    #: Persistent-cache root shared with the workers (plans, profiles and
    #: epoch anchors); ``None`` runs every worker cold.
    cache_dir: Optional[str] = None

    @classmethod
    def from_scheduler(
        cls,
        scheduler: ClusterScheduler,
        policy: Union[str, SchedulingPolicy],
        cache_dir: Optional[str] = None,
    ) -> "ShardConfig":
        """Capture a live scheduler's configuration (not its run state)."""
        if cache_dir is None:
            cache = scheduler.profiler.persistent_cache
            cache_dir = str(cache.base_dir) if cache is not None else None
        return cls(
            pools=tuple(scheduler.fleet.pools),
            fabric=scheduler.fabric,
            gpu=scheduler.profiler.gpu,
            use_cuda_graphs=scheduler.profiler.use_cuda_graphs,
            dtype_bytes=scheduler.profiler.dtype_bytes,
            planner_config=scheduler.planner.config,
            collocation=scheduler.collocation,
            checkpoint=scheduler.checkpoint,
            policy=get_policy(policy).name,
            cache_dir=cache_dir,
        )

    def build_scheduler(self) -> ClusterScheduler:
        """A fresh scheduler equivalent to the one this config captured."""
        cache = (
            ArtifactCache(self.cache_dir) if self.cache_dir is not None else None
        )
        profiler = LayerProfiler(
            gpu=self.gpu,
            use_cuda_graphs=self.use_cuda_graphs,
            dtype_bytes=self.dtype_bytes,
            persistent_cache=cache,
        )
        planner = BurstParallelPlanner(
            self.fabric, profiler, self.planner_config, cache=cache
        )
        return ClusterScheduler(
            ClusterFleet(self.pools),
            fabric=self.fabric,
            profiler=profiler,
            planner=planner,
            collocation=self.collocation,
            checkpoint=self.checkpoint,
        )

    def fingerprint(self) -> str:
        """Content identity of the captured configuration.

        ``cache_dir`` is excluded: it changes where artifacts live, never
        what the simulation computes.
        """
        return fingerprint(
            "shard-config",
            fleet_fingerprint(ClusterFleet(self.pools)),
            fabric_fingerprint(self.fabric),
            asdict(self.gpu),
            self.use_cuda_graphs,
            self.dtype_bytes,
            planner_config_fingerprint(self.planner_config),
            asdict(self.collocation),
            asdict(self.checkpoint),
            self.policy,
        )


@dataclass
class _EpochTask:
    """One epoch's replay assignment (picklable worker payload)."""

    index: int
    config: ShardConfig
    #: Exclusive advance bound; ``None`` drains the final epoch.
    end: Optional[float]
    #: Inline anchor (:func:`_make_anchor` shape), or ``None`` when the
    #: worker should read it from the shared store (cheaper than pickling
    #: the payload through pipes).
    anchor: Optional[Dict[str, Any]]
    anchor_dir: Optional[str]
    anchor_schema: int
    key: str


#: One rebuilt scheduler per worker process, keyed by config fingerprint, so
#: every epoch a worker replays reuses the same warm plan/graph/iso caches.
_WORKER_SCHEDULERS: Dict[str, ClusterScheduler] = {}


def _worker_scheduler(config: ShardConfig) -> ClusterScheduler:
    key = config.fingerprint()
    scheduler = _WORKER_SCHEDULERS.get(key)
    if scheduler is None:
        _WORKER_SCHEDULERS.clear()  # at most one live config per worker
        scheduler = _WORKER_SCHEDULERS[key] = config.build_scheduler()
    return scheduler


def _replay_epoch(
    task: _EpochTask, scheduler: Optional[ClusterScheduler] = None
) -> Dict[str, Any]:
    """Worker: restore one epoch's anchor, advance to its end, ship rows.

    Runs in a pool process (``scheduler=None`` — rebuilt from the config
    and memoized per process) or inline in the driver (the driver passes
    its own scheduler).  Returns a plain dict of picklable fields; the
    ``counters`` entry is this call's :mod:`repro.obs` counter delta, which
    the driver folds into its registry for pooled workers only (inline
    increments land in the driver's registry directly).
    """
    registry = global_registry()
    before = registry.counter_values()
    wall_start = perf_counter()
    anchor = task.anchor
    if anchor is None:
        store = ArtifactCache(task.anchor_dir, task.anchor_schema)
        anchor = store.get(ANCHOR_NAMESPACE, task.key)
        if not _valid_anchor(anchor):
            raise RuntimeError(
                f"epoch {task.index}: anchor {task.key[:12]}… vanished from "
                f"the anchor store at {task.anchor_dir} between the driver's "
                "probe and this worker's read"
            )
    if scheduler is None:
        scheduler = _worker_scheduler(task.config)
    engine = SchedulerEngine(scheduler, task.config.policy)
    restore_start = perf_counter()
    engine.restore(EngineSnapshot(anchor["snapshot"]))
    restore_s = perf_counter() - restore_start
    # The anchor carries no record history, so everything on the restored
    # engine after the advance is this epoch's output.
    steps = engine.drain() if task.end is None else engine.advance_to(task.end)
    rows = [_dump_record(record) for record in engine.records]
    after = registry.counter_values()
    counters = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] - before.get(name, 0)
    }
    return {
        "index": task.index,
        "steps": steps,
        "start_records": anchor["prior_records"],
        "rows": rows,
        "restore_s": restore_s,
        "wall_s": perf_counter() - wall_start,
        "counters": counters,
        "events_processed": engine.queue.popped,
        "first_arrival": engine.first_arrival,
        "last_finish": engine.last_finish,
        "failures_injected": engine.failures_injected,
        "unfinished": engine.unfinished() if task.end is None else [],
    }


@dataclass(frozen=True)
class EpochReport:
    """Per-epoch accounting from one sharded replay."""

    index: int
    #: Exclusive end boundary (``None`` for the draining final epoch).
    end: Optional[float]
    #: Events the epoch dispatched.
    steps: int
    #: Completion records the epoch produced.
    records: int
    #: Wall seconds restoring the anchor into a fresh engine.
    restore_s: float
    #: Wall seconds for the whole epoch task (anchor read + restore + replay).
    wall_s: float


@dataclass(frozen=True)
class ShardReport:
    """Outcome of :func:`replay_sharded`: the stitched result plus accounting."""

    result: ScheduleResult
    boundaries: Tuple[float, ...]
    #: Worker processes the parallel phase actually used (1 = inline).
    workers: int
    epochs: Tuple[EpochReport, ...]
    #: Workload fingerprint the anchor keys derive from.
    workload: str
    anchor_hits: int
    anchor_misses: int
    anchor_writes: int
    #: Wall seconds of the serial anchor pass (0.0 on a fully warm store).
    anchor_pass_s: float
    #: Wall seconds of the parallel replay phase.
    replay_s: float

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker-pool's wall capacity spent replaying."""
        capacity = self.workers * self.replay_s
        if capacity <= 0.0:
            return 0.0
        return min(1.0, sum(epoch.wall_s for epoch in self.epochs) / capacity)

    def result_fingerprint(self) -> str:
        """The run's :func:`~repro.serve.replay.result_fingerprint`."""
        from ..serve.replay import result_fingerprint  # avoid import cycle

        return result_fingerprint(self.result)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe summary (the CI shard job uploads this as an artifact)."""
        return {
            "workload": self.workload,
            "result_fingerprint": self.result_fingerprint(),
            "policy": self.result.policy,
            "num_gpus": self.result.num_gpus,
            "num_jobs": self.result.metrics.num_jobs,
            "events_processed": self.result.events_processed,
            "failures_injected": self.result.failures_injected,
            "boundaries": list(self.boundaries),
            "workers": self.workers,
            "anchor_hits": self.anchor_hits,
            "anchor_misses": self.anchor_misses,
            "anchor_writes": self.anchor_writes,
            "anchor_pass_s": self.anchor_pass_s,
            "replay_s": self.replay_s,
            "worker_utilization": self.worker_utilization,
            "epochs": [asdict(epoch) for epoch in self.epochs],
        }


def replay_sharded(
    scheduler: ClusterScheduler,
    trace: Sequence[TraceJob],
    policy: Union[str, SchedulingPolicy],
    failures: Sequence[NodeFailure] = (),
    *,
    epochs: int = 4,
    workers: int = 1,
    boundaries: Optional[Sequence[float]] = None,
    anchor_cache: Optional[ArtifactCache] = None,
) -> ShardReport:
    """Replay one run epoch-parallel; bit-identical to the serial path.

    Parameters
    ----------
    scheduler / trace / policy / failures:
        Exactly the inputs :meth:`ClusterScheduler.run` takes.
    epochs:
        Timeline partitions (see :func:`partition_epochs`).  Ignored when
        ``boundaries`` is given.
    workers:
        Worker processes for the parallel phase; capped at the epoch count,
        ``<= 1`` replays inline on ``scheduler`` itself with no pool.
    boundaries:
        Explicit non-decreasing epoch boundaries overriding the quantile
        partition (``len(boundaries) + 1`` epochs).
    anchor_cache:
        Store for epoch anchors; defaults to the scheduler profiler's
        persistent cache.  With no store, anchors live only in memory and
        travel to workers by value.

    Returns a :class:`ShardReport` whose ``result`` matches
    ``scheduler.run(trace, policy, failures)`` bit for bit.
    """
    policy_obj = get_policy(policy)
    jobs = list(trace)
    if not jobs:
        raise ValueError("cannot replay an empty trace")
    names = {job.name for job in jobs}
    if len(names) != len(jobs):
        raise ValueError("trace contains duplicate job names")
    ordered = validate_failures(scheduler.fleet, failures) if failures else []
    if boundaries is not None:
        cuts = [float(bound) for bound in boundaries]
        for left, right in zip(cuts, cuts[1:]):
            if right < left:
                raise ValueError("epoch boundaries must be non-decreasing")
        epochs = len(cuts) + 1
    else:
        cuts = partition_epochs(jobs, epochs)
    if anchor_cache is None:
        anchor_cache = scheduler.profiler.persistent_cache
    config = ShardConfig.from_scheduler(scheduler, policy_obj)
    workload = fingerprint(
        "shard-workload",
        config.fingerprint(),
        trace_fingerprint(jobs),
        [[f.time, f.host, f.duration] for f in ordered],
        cuts,
    )
    keys = [shard_anchor_fingerprint(workload, cuts, i) for i in range(epochs)]
    _RUNS.add(1)

    # ------------------------------------------------------------ anchor pass
    anchors: List[Optional[Dict[str, Any]]] = [None] * epochs
    hits = 0
    if anchor_cache is not None:
        for index, key in enumerate(keys):
            found = anchor_cache.get(ANCHOR_NAMESPACE, key)
            if _valid_anchor(found):
                anchors[index] = found
                hits += 1
    misses = epochs - hits
    _ANCHOR_HITS.add(hits)
    _ANCHOR_MISSES.add(misses)
    writes = 0
    anchor_pass_s = 0.0
    if misses:
        # Serial pass on the caller's scheduler, cut short at the last
        # missing anchor.  This costs one (partial) plain replay — paid at
        # most once per workload, since every anchor it captures is written
        # back under its content key.
        _ANCHOR_PASSES.add(1)
        last_miss = max(i for i in range(epochs) if anchors[i] is None)
        pass_start = perf_counter()
        with _ANCHOR_TIMER.time():
            engine = SchedulerEngine(scheduler, policy_obj)
            for job in jobs:
                engine.add_job(job)
            engine.add_failures(ordered)
            for index in range(last_miss + 1):
                if index:
                    engine.advance_to(cuts[index - 1])
                if anchors[index] is None:
                    anchor = _make_anchor(engine.snapshot().payload)
                    anchors[index] = anchor
                    if anchor_cache is not None:
                        anchor_cache.put(ANCHOR_NAMESPACE, keys[index], anchor)
                        writes += 1
        anchor_pass_s = perf_counter() - pass_start
    _ANCHOR_WRITES.add(writes)

    # ------------------------------------------------------- parallel replay
    effective = max(1, min(workers, epochs))
    ship_inline = anchor_cache is None or effective <= 1
    tasks = [
        _EpochTask(
            index=index,
            config=config,
            end=cuts[index] if index < epochs - 1 else None,
            anchor=anchors[index] if ship_inline else None,
            anchor_dir=(
                str(anchor_cache.base_dir) if anchor_cache is not None else None
            ),
            anchor_schema=(
                anchor_cache.schema_version if anchor_cache is not None else 0
            ),
            key=keys[index],
        )
        for index in range(epochs)
    ]
    replay_start = perf_counter()
    with _REPLAY_TIMER.time():
        if effective <= 1:
            outs = [_replay_epoch(task, scheduler=scheduler) for task in tasks]
        else:
            with multiprocessing.Pool(processes=effective) as pool:
                outs = pool.map(_replay_epoch, tasks)
            # Pooled increments happened in other processes; fold their
            # deltas in so this registry reflects the whole run.  (Inline
            # increments already landed here — merging would double-count.)
            for out in outs:
                _REGISTRY.merge_counters(out["counters"])
    replay_s = perf_counter() - replay_start
    _EPOCHS_REPLAYED.add(epochs)

    # ---------------------------------------------------------------- stitch
    fold = MetricsFold()
    records: List[JobRecord] = []
    for out in outs:
        if out["start_records"] != len(records):
            raise RuntimeError(
                f"epoch {out['index']} replayed from an anchor holding "
                f"{out['start_records']} completion records, but epochs "
                f"0..{out['index'] - 1} produced {len(records)} — the anchor "
                "store is inconsistent with this partition"
            )
        for row in out["rows"]:
            fold.add_row(row)
            records.append(_load_record(row))
    final = outs[-1]
    if final["unfinished"]:
        raise RuntimeError(
            f"scheduler deadlock under policy {policy_obj.name!r}: jobs "
            f"never completed: {', '.join(final['unfinished'])}"
        )
    first = final["first_arrival"] if final["first_arrival"] is not None else 0.0
    last = first if final["last_finish"] is None else max(final["last_finish"], first)
    metrics = fold.finalize(scheduler.num_gpus, last - first)
    result = ScheduleResult(
        policy=policy_obj.name,
        num_gpus=scheduler.num_gpus,
        records=tuple(records),
        metrics=metrics,
        events_processed=final["events_processed"],
        failures_injected=final["failures_injected"],
    )
    return ShardReport(
        result=result,
        boundaries=tuple(cuts),
        workers=effective,
        epochs=tuple(
            EpochReport(
                index=out["index"],
                end=tasks[out["index"]].end,
                steps=out["steps"],
                records=len(out["rows"]),
                restore_s=out["restore_s"],
                wall_s=out["wall_s"],
            )
            for out in outs
        ),
        workload=workload,
        anchor_hits=hits,
        anchor_misses=misses,
        anchor_writes=writes,
        anchor_pass_s=anchor_pass_s,
        replay_s=replay_s,
    )
