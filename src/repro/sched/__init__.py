"""Trace-driven multi-tenant cluster scheduler (the DeepPool cluster manager).

Public API:

* :class:`~repro.sched.scheduler.ClusterScheduler` /
  :class:`~repro.sched.scheduler.ScheduleResult` — the discrete-event
  scheduler and one run's outcome.
* :class:`~repro.sched.engine.SchedulerEngine` — the event-dispatch core
  one run is made of, shared by the offline ``run`` path and the online
  :class:`~repro.serve.service.SchedulerService` (incremental arrivals,
  virtual-clock ``advance_to``, in-flight ``cancel``).
* :mod:`~repro.sched.policies` — :class:`FIFOPolicy`,
  :class:`ShortestRemainingGPUSecondsPolicy`, and the DeepPool-style
  :class:`CollocationAwarePolicy` (registry: :data:`POLICIES` /
  :func:`get_policy`).
* :mod:`~repro.sched.traces` — :class:`TraceJob` plus the
  :func:`synthetic_trace` and :func:`alibaba_trace` generators.
* :mod:`~repro.sched.metrics` — :class:`JobRecord` and
  :class:`FleetMetrics` (JCT distribution, makespan, utilization, goodput,
  failure losses).
* :mod:`~repro.sched.fleet` — :class:`GpuPoolSpec` / :class:`ClusterFleet` /
  :class:`FleetPool`: heterogeneous fleets of named GPU pools mapped onto
  hosts.
* :mod:`~repro.sched.failures` — :class:`NodeFailure` /
  :class:`CheckpointModel` / :func:`inject_failures`: host failures and the
  checkpoint/restart cost model.
* :mod:`~repro.sched.events` — the :class:`EventQueue` primitives.
* :mod:`~repro.sched.snapshot` — :class:`EngineSnapshot`: crash-safe
  capture/restore of a live engine at any event boundary
  (``SchedulerEngine.snapshot()`` / ``.restore()``), fingerprint-exact.
* :mod:`~repro.sched.shard` — :func:`replay_sharded` /
  :func:`partition_epochs` / :class:`ShardConfig` / :class:`ShardReport`:
  epoch-parallel replay over cached snapshot anchors, bit-identical to the
  single-process path at every epoch and worker count.
"""

from .engine import SchedulerEngine
from .events import Event, EventKind, EventQueue, GpuPool
from .failures import CheckpointModel, NodeFailure, inject_failures, validate_failures
from .fleet import ClusterFleet, FleetPool, GpuPoolSpec
from .metrics import FleetMetrics, JobRecord, percentile
from .ordering import PendingQueue, SortedJobList
from .snapshot import SNAPSHOT_SCHEMA, EngineSnapshot
from .policies import (
    POLICIES,
    CollocationAwarePolicy,
    FIFOPolicy,
    SchedulingPolicy,
    ShortestRemainingGPUSecondsPolicy,
    floor_pow2,
    get_policy,
)
from .scheduler import ClusterScheduler, ScheduleResult
from .shard import (
    EpochReport,
    ShardConfig,
    ShardReport,
    partition_epochs,
    replay_sharded,
)
from .traces import TraceJob, alibaba_trace, mixed_trace, synthetic_trace

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "GpuPool",
    "GpuPoolSpec",
    "ClusterFleet",
    "FleetPool",
    "NodeFailure",
    "CheckpointModel",
    "inject_failures",
    "validate_failures",
    "PendingQueue",
    "SortedJobList",
    "FleetMetrics",
    "JobRecord",
    "percentile",
    "SchedulingPolicy",
    "FIFOPolicy",
    "ShortestRemainingGPUSecondsPolicy",
    "CollocationAwarePolicy",
    "POLICIES",
    "get_policy",
    "floor_pow2",
    "ClusterScheduler",
    "SchedulerEngine",
    "ScheduleResult",
    "EngineSnapshot",
    "SNAPSHOT_SCHEMA",
    "ShardConfig",
    "ShardReport",
    "EpochReport",
    "partition_epochs",
    "replay_sharded",
    "TraceJob",
    "synthetic_trace",
    "alibaba_trace",
    "mixed_trace",
]
