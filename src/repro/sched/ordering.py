"""Mutation-maintained orderings for the scheduler's placement pass.

PR 2 made the event queue and GPU free-list heap-disciplined, but the
placement pass itself still re-sorted three populations from scratch at
every scheduling point: the pending queue (``sorted`` per pass), the
preemption victim list, and the re-planning candidates — O(n log n) Python
key-function calls *per event*, ruinous at the ``sched_sim_xl`` scale
(thousands of GPUs, tens of thousands of jobs).

This module replaces those sorts with structures maintained on mutation:

* :class:`SortedJobList` — a list kept sorted under ``bisect.insort``
  discipline.  Keys are computed **once per insertion** (O(log n) search +
  one C-level ``insert``) and removal is an O(log n) lookup of the stored
  key.  Iteration yields jobs in key order for free.
* :class:`PendingQueue` — a :class:`SortedJobList` keyed by the scheduling
  policy's ``sort_key``, with a maintained count of waiting foreground jobs.

Correctness relies on a property the scheduler enforces: a job's key never
changes *while it is inside* a structure.  Keys derived from
``remaining_gpu_seconds`` only move when ``_advance`` updates the job's
progress, and the scheduler re-keys the affected entry right there; keys
derived from policy ``sort_key`` are static for the built-in policies while
a job waits (policies whose keys depend on the current time must set
``dynamic_priority`` and are re-keyed every pass).  Ties are broken by a
monotonic insertion sequence, reproducing the stable-sort semantics of the
code this replaces.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Iterator, List, Tuple

__all__ = ["SortedJobList", "PendingQueue"]


class SortedJobList:
    """Items kept sorted by a caller-supplied tuple key, stable on ties.

    Items must expose a ``name`` attribute unique within the structure (the
    scheduler's per-run job states do).  The stored key is the caller's key
    extended with a monotonic sequence number, so equal caller keys order by
    insertion — exactly what a stable sort over an append-ordered list
    produced before.
    """

    def __init__(self) -> None:
        self._keys: List[Tuple] = []
        self._items: List = []
        self._key_of: Dict[str, Tuple] = {}
        # Explicit int (not itertools.count) so snapshot/restore can resume
        # the tie-break numbering exactly where the original run stood.
        self._next_seq = 0

    def add(self, item, key: Tuple) -> None:
        if item.name in self._key_of:
            raise ValueError(f"job {item.name!r} already tracked")
        full = tuple(key) + (self._next_seq,)
        self._next_seq += 1
        index = bisect.bisect_left(self._keys, full)
        self._keys.insert(index, full)
        self._items.insert(index, item)
        self._key_of[item.name] = full

    def remove(self, item) -> None:
        full = self._key_of.pop(item.name)
        index = bisect.bisect_left(self._keys, full)
        # The sequence suffix makes stored keys unique, so bisect lands
        # exactly on the entry.
        del self._keys[index]
        del self._items[index]

    def rekey(self, item, key: Tuple) -> None:
        """Move an item to the position its new key dictates."""
        self.remove(item)
        self.add(item, key)

    def __contains__(self, item) -> bool:
        return item.name in self._key_of

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def clear(self) -> None:
        self._keys.clear()
        self._items.clear()
        self._key_of.clear()

    # ------------------------------------------------------- snapshot/restore
    def dump(self) -> Dict[str, Any]:
        """Serializable capture: entries in key order plus the seq counter.

        Stored keys are tuples of floats/ints (policy keys extended with the
        tie-break seq); JSON round-trips them as lists whose elementwise
        comparison semantics match the originals, so :meth:`load` can insert
        them back verbatim.
        """
        return {
            "entries": [
                [item.name, list(self._key_of[item.name])] for item in self._items
            ],
            "next_seq": self._next_seq,
        }

    def load(self, payload: Dict[str, Any], resolve: Callable[[str], Any]) -> None:
        """Rebuild from :meth:`dump` output; ``resolve`` maps names to items.

        Entries were dumped in sorted order with their *full* keys (tie-break
        seq included), so they are appended directly — no re-keying, no
        re-sorting — and future insertions interleave exactly as they would
        have in the original run.
        """
        self.clear()
        for name, key in payload["entries"]:
            full = tuple(key)
            self._keys.append(full)
            self._items.append(resolve(name))
            self._key_of[name] = full
        self._next_seq = payload["next_seq"]


class PendingQueue:
    """The pending jobs, kept in policy order as they come and go.

    Jobs are keyed by ``policy.sort_key(job, now)`` at insertion time.  For
    the built-in policies that key is frozen while the job waits (arrival
    time and order never change; ``remaining_gpu_seconds`` only changes
    while *running*, and re-entry recomputes the key), so iteration order is
    identical to the per-pass ``sorted(pending, key=...)`` it replaces.
    Policies with time-varying keys (aging, deadlines) must set
    ``dynamic_priority = True``; the scheduler then calls :meth:`resort`
    before each pass, restoring the previous full-sort behaviour.
    """

    def __init__(self, policy) -> None:
        self._policy = policy
        self._jobs = SortedJobList()
        self.foreground_waiting = 0

    def add(self, state, now: float) -> None:
        self._jobs.add(state, self._policy.sort_key(state, now))
        if state.is_foreground:
            self.foreground_waiting += 1

    def remove(self, state) -> None:
        self._jobs.remove(state)
        if state.is_foreground:
            self.foreground_waiting -= 1

    def resort(self, now: float) -> None:
        """Recompute every key at ``now`` (dynamic-priority policies only)."""
        jobs = list(self._jobs)
        self._jobs.clear()
        for state in jobs:
            self._jobs.add(state, self._policy.sort_key(state, now))

    def __contains__(self, state) -> bool:
        return state in self._jobs

    def __iter__(self) -> Iterator:
        return iter(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    # ------------------------------------------------------- snapshot/restore
    def dump(self) -> Dict[str, Any]:
        """Serializable capture of the queue (policy itself is not captured)."""
        return {
            "jobs": self._jobs.dump(),
            "foreground_waiting": self.foreground_waiting,
        }

    def load(self, payload: Dict[str, Any], resolve: Callable[[str], Any]) -> None:
        """Rebuild from :meth:`dump`; the policy must match the dumping run."""
        self._jobs.load(payload["jobs"], resolve)
        self.foreground_waiting = payload["foreground_waiting"]
