"""Discrete-event core of the multi-tenant cluster scheduler.

The scheduler is a discrete-event simulator in the classic event-queue style:
every state change (a job arriving, a job finishing) is an :class:`Event`
with a firing time, and the simulation advances by popping the earliest event
from an :class:`EventQueue` and reacting to it.  Events are totally ordered
by ``(time, seq)`` so simultaneous events resolve deterministically in
insertion order, which keeps whole simulations reproducible under a fixed
trace seed.

Finish events are *lazily invalidated*: re-planning or preempting a job bumps
the job's version counter instead of searching the heap, and stale events are
discarded when popped.  This keeps re-planning O(log n) per change.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(str, Enum):
    """What happened at an event's firing time."""

    JOB_ARRIVAL = "arrival"
    JOB_FINISH = "finish"


@dataclass(frozen=True)
class Event:
    """One scheduled state change.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    seq:
        Monotonic sequence number; ties on ``time`` resolve in push order.
    kind:
        Arrival or finish.
    job_name:
        Name of the job the event refers to.
    version:
        For finish events, the job-state version the event was scheduled
        against.  A mismatch when popped means the job was re-planned or
        preempted in the meantime and the event is stale.
    """

    time: float
    seq: int
    kind: EventKind
    job_name: str
    version: int = 0


class EventQueue:
    """Min-heap of events ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(
        self, time: float, kind: EventKind, job_name: str, version: int = 0
    ) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(
            time=time,
            seq=next(self._counter),
            kind=kind,
            job_name=job_name,
            version=version,
        )
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
