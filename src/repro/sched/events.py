"""Discrete-event core of the multi-tenant cluster scheduler.

The scheduler is a discrete-event simulator in the classic event-queue style:
every state change (a job arriving, a job finishing) is an :class:`Event`
with a firing time, and the simulation advances by popping the earliest event
from an :class:`EventQueue` and reacting to it.  Events are totally ordered
by ``(time, seq)`` so simultaneous events resolve deterministically in
insertion order, which keeps whole simulations reproducible under a fixed
trace seed.

Both containers here obey strict heap discipline: all mutations are
``heappush``/``heappop`` (O(log n)), never sort-on-insert.  Events implement
``__lt__`` on ``(time, seq)`` and are stored in the heap directly, avoiding a
wrapper-tuple allocation per push.  :class:`GpuPool` applies the same
discipline to the cluster's free-GPU set, which the scheduler previously
re-sorted on every placement.

Finish events are *lazily invalidated*: re-planning or preempting a job bumps
the job's version counter instead of searching the heap, and stale events are
discarded when popped.  This keeps re-planning O(log n) per change.

**Total-order audit** (crash-safe snapshots rely on it): ``seq`` is assigned
from a per-queue monotonic counter, so no two events of one queue ever share
``(time, seq)`` — ``Event.__lt__`` is a *strict total order* with no
equal-priority ambiguity left for heap internals to break arbitrarily.  That
is what lets :mod:`repro.sched.snapshot` serialize the heap as its sorted
event list (a canonical form independent of the heap's internal array
layout) and restore it bit-compatibly: the extraction sequence of a heap is
a pure function of the total order, never of insertion history.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional

from ..obs.metrics import global_registry

__all__ = ["EventKind", "Event", "EventQueue", "GpuPool"]

# Process-wide aggregates for GPU free-list traffic; fetched once at import
# so the hot path pays a single attribute load + integer add per operation.
_POOL_TAKES = global_registry().counter("sched.gpu_pool.takes")
_POOL_RELEASES = global_registry().counter("sched.gpu_pool.releases")


class EventKind(str, Enum):
    """What happened at an event's firing time."""

    JOB_ARRIVAL = "arrival"
    JOB_FINISH = "finish"
    NODE_FAILURE = "node-failure"
    NODE_RECOVERY = "node-recovery"


@dataclass(frozen=True)
class Event:
    """One scheduled state change.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    seq:
        Monotonic sequence number; ties on ``time`` resolve in push order.
    kind:
        Arrival, finish, node failure, or node recovery.
    job_name:
        Name of the job the event refers to (empty for node events).
    version:
        For finish events, the job-state version the event was scheduled
        against.  A mismatch when popped means the job was re-planned or
        preempted in the meantime and the event is stale.
    host:
        For node failure/recovery events, the fleet host id going down or
        coming back (``-1`` for job events).
    """

    time: float
    seq: int
    kind: EventKind
    job_name: str
    version: int = 0
    host: int = -1

    def __lt__(self, other: "Event") -> bool:
        # seq is unique per queue, so (time, seq) is a strict total order.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class EventQueue:
    """Min-heap of events ordered by ``(time, seq)``.

    The queue counts its pushes and pops; ``popped`` is the number of events
    the simulation actually processed — a deterministic op count the
    benchmark harness reports for scheduler scenarios.  The counts live in
    per-queue scoped counters that roll up into the process-wide
    ``sched.heap.pushes`` / ``sched.heap.pops`` aggregates.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        # Explicit int (not itertools.count) so snapshot/restore can capture
        # and resume the exact sequence numbering mid-run.
        self._next_seq = 0
        registry = global_registry()
        self._pushed = registry.scoped_counter("sched.heap.pushes")
        self._popped = registry.scoped_counter("sched.heap.pops")

    @property
    def pushed(self) -> int:
        """Events scheduled on this queue since construction."""
        return self._pushed.value

    @property
    def popped(self) -> int:
        """Events this queue has handed to the simulation."""
        return self._popped.value

    def push(
        self,
        time: float,
        kind: EventKind,
        job_name: str,
        version: int = 0,
        host: int = -1,
    ) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(
            time=time,
            seq=self._next_seq,
            kind=kind,
            job_name=job_name,
            version=version,
            host=host,
        )
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        self._pushed.add(1)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        self._popped.add(1)
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # ------------------------------------------------------- snapshot/restore
    def snapshot_state(self) -> Dict[str, Any]:
        """Canonical capture of the queue: sorted events + counter state.

        The heap is serialized in ``(time, seq)`` order — the strict total
        order ``__lt__`` implements — so two queues holding the same events
        always serialize identically, whatever their internal array layout.
        ``pushed``/``popped`` travel along because ``popped`` is the run's
        deterministic op count (``ScheduleResult.events_processed``); a
        restored run must keep counting from where the original stood.
        """
        events = sorted(self._heap)
        return {
            "events": [
                [e.time, e.seq, e.kind.value, e.job_name, e.version, e.host]
                for e in events
            ],
            "next_seq": self._next_seq,
            "pushed": self._pushed.value,
            "popped": self._popped.value,
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Rebuild this queue from :meth:`snapshot_state` output.

        A list sorted by ``(time, seq)`` already satisfies the heap
        invariant, so restoration is O(n); ``heapify`` is kept as a guard
        against hand-edited payloads.
        """
        self._heap = [
            Event(
                time=row[0],
                seq=row[1],
                kind=EventKind(row[2]),
                job_name=row[3],
                version=row[4],
                host=row[5],
            )
            for row in payload["events"]
        ]
        heapq.heapify(self._heap)
        self._next_seq = payload["next_seq"]
        self._pushed.add(payload["pushed"] - self._pushed.value)
        self._popped.add(payload["popped"] - self._popped.value)


class GpuPool:
    """The cluster's free GPUs, kept as a min-heap of device ids.

    Placements always take the lowest-numbered free GPUs (which keeps runs
    deterministic), so the pool is exactly a priority queue: ``take`` pops
    ``count`` ids in O(count · log n) and ``release`` pushes each freed id
    back in O(log n) — replacing the previous list that was re-sorted on
    every take.
    """

    def __init__(self, gpu_ids: Iterable[int] = ()) -> None:
        self._heap = list(gpu_ids)
        heapq.heapify(self._heap)
        self._takes = _POOL_TAKES
        self._releases = _POOL_RELEASES

    def take(self, count: int) -> List[int]:
        """Remove and return the ``count`` lowest free GPU ids."""
        if count > len(self._heap):
            raise ValueError(
                f"cannot take {count} GPUs from a pool of {len(self._heap)}"
            )
        self._takes.add(1)
        return [heapq.heappop(self._heap) for _ in range(count)]

    def release(self, gpu_ids: Iterable[int]) -> None:
        """Return GPUs to the pool."""
        self._releases.add(1)
        for gpu_id in gpu_ids:
            heapq.heappush(self._heap, gpu_id)

    def remove(self, gpu_ids: Iterable[int]) -> List[int]:
        """Take specific GPUs out of the pool (those present), sorted.

        Used by node-failure handling: a failed host's *free* GPUs leave
        the pool immediately (its busy GPUs are reclaimed when their
        evicted jobs release them).  Ids not currently free are ignored.
        Failures are rare, so the O(n) rebuild is acceptable — every other
        mutation keeps strict heap discipline.
        """
        targets = set(gpu_ids)
        removed = sorted(g for g in self._heap if g in targets)
        if removed:
            self._heap = [g for g in self._heap if g not in targets]
            heapq.heapify(self._heap)
        return removed

    def ids(self) -> List[int]:
        """Sorted ids of every free GPU (for integrity checks)."""
        return sorted(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
