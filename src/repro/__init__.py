"""DeepPool reproduction: Efficient Strong Scaling Through Burst Parallel Training.

A simulation-based reproduction of the MLSys 2022 paper.  The package is
organised as:

* ``repro.models`` — static computation graphs of the evaluation workloads;
* ``repro.profiler`` — analytical GPU cost model (replaces on-device
  profiling);
* ``repro.network`` — NVSwitch-style fabric, collective, and redistribution
  cost models;
* ``repro.scaling`` — weak / strong / batch-optimal scaling analysis
  (Section 2);
* ``repro.core.planner`` — the burst-parallel training planner (Section 4);
* ``repro.core.multiplexing`` — GPU multiplexing mechanisms and experiments
  (Section 5);
* ``repro.gpu`` — discrete-event GPU device simulator;
* ``repro.cluster`` — cluster coordinator, runtimes, executor, and baselines;
* ``repro.sched`` — trace-driven multi-tenant cluster scheduler (event loop,
  scheduling policies, trace generators, fleet metrics);
* ``repro.workloads`` / ``repro.analysis`` — experiment definitions and the
  per-figure entry points used by the benchmark harnesses;
* ``repro.bench`` — the performance harness: named scenarios, deterministic
  ``BENCH_*.json`` artifacts, and the CI regression gate
  (``python -m repro.bench``);
* ``repro.cache`` — the persistent content-addressed artifact cache shared
  by the profiler, the planner, and the benchmark harness across processes
  and CI runs.
"""

from .core.planner import BurstParallelPlanner, PlannerConfig, TrainingPlan
from .models import build_model, available_models
from .network import get_fabric
from .profiler import LayerProfiler
from .sched import ClusterScheduler

__version__ = "0.1.0"

__all__ = [
    "BurstParallelPlanner",
    "PlannerConfig",
    "TrainingPlan",
    "LayerProfiler",
    "ClusterScheduler",
    "build_model",
    "available_models",
    "get_fabric",
    "__version__",
]
