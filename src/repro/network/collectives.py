"""Collective-communication cost models (NCCL stand-in).

DeepPool synchronizes gradients with NCCL all-reduce after the backward pass
and assumes, for planning, that synchronization does not overlap with compute
(paper Section 4.1, ``sync(i, g)``).  We model the standard ring all-reduce:
each GPU sends and receives ``2 * (g - 1) / g`` times the payload, so

    time = 2 * (g - 1) / g * bytes / bandwidth + 2 * (g - 1) * hop_delay

which reduces to zero for a single GPU.  All-gather and reduce-scatter (each
half of an all-reduce) are provided for completeness and for the activation
redistribution model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fabric import NetworkFabric

__all__ = ["CollectiveCostModel"]


#: Default gradient bucket size (bytes).  PyTorch DDP / NCCL fuse gradients
#: into ~25 MB buckets, so the per-collective latency is paid once per bucket
#: rather than once per layer; per-layer sync costs amortize the latency by
#: the layer's share of a bucket.
DEFAULT_BUCKET_BYTES = 25 * 1024 * 1024


@dataclass(frozen=True)
class CollectiveCostModel:
    """Cost model for NCCL-style collectives over a :class:`NetworkFabric`."""

    fabric: NetworkFabric
    bucket_bytes: float = DEFAULT_BUCKET_BYTES

    def all_reduce_time(self, payload_bytes: float, num_gpus: int) -> float:
        """Ring all-reduce completion time across ``num_gpus`` GPUs."""
        self._validate(payload_bytes, num_gpus)
        if num_gpus == 1 or payload_bytes == 0:
            return 0.0
        g = num_gpus
        bytes_on_wire = 2.0 * (g - 1) / g * payload_bytes
        return (
            bytes_on_wire / self.fabric.bandwidth_bytes_per_s
            + 2.0 * (g - 1) * self.fabric.propagation_delay
        )

    def reduce_scatter_time(self, payload_bytes: float, num_gpus: int) -> float:
        """Ring reduce-scatter (first half of an all-reduce)."""
        self._validate(payload_bytes, num_gpus)
        if num_gpus == 1 or payload_bytes == 0:
            return 0.0
        g = num_gpus
        bytes_on_wire = (g - 1) / g * payload_bytes
        return (
            bytes_on_wire / self.fabric.bandwidth_bytes_per_s
            + (g - 1) * self.fabric.propagation_delay
        )

    def all_gather_time(self, payload_bytes: float, num_gpus: int) -> float:
        """Ring all-gather (second half of an all-reduce)."""
        return self.reduce_scatter_time(payload_bytes, num_gpus)

    def broadcast_time(self, payload_bytes: float, num_gpus: int) -> float:
        """Tree broadcast of a payload from one GPU to the rest."""
        self._validate(payload_bytes, num_gpus)
        if num_gpus == 1 or payload_bytes == 0:
            return 0.0
        import math

        hops = math.ceil(math.log2(num_gpus))
        return hops * (
            payload_bytes / self.fabric.bandwidth_bytes_per_s
            + self.fabric.propagation_delay
        )

    def gradient_sync_time(
        self, params: int, num_gpus: int, dtype_bytes: int = 2
    ) -> float:
        """``sync(i, g)``: all-reduce time for one layer's gradients.

        The bandwidth term is exact; the latency term is amortized by the
        layer's share of a gradient bucket, modelling NCCL/DDP gradient
        bucketing (a model with many small layers does not pay the full ring
        latency once per layer).
        """
        self._validate(params, num_gpus)
        payload = params * dtype_bytes
        if num_gpus == 1 or payload == 0:
            return 0.0
        g = num_gpus
        bytes_on_wire = 2.0 * (g - 1) / g * payload
        bandwidth_term = bytes_on_wire / self.fabric.bandwidth_bytes_per_s
        latency_term = 2.0 * (g - 1) * self.fabric.propagation_delay
        bucket_share = min(1.0, payload / self.bucket_bytes)
        return bandwidth_term + latency_term * bucket_share

    @staticmethod
    def _validate(payload_bytes: float, num_gpus: int) -> None:
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if num_gpus < 1:
            raise ValueError("num_gpus must be at least 1")
