"""Network fabric model.

The paper uses a deliberately simple network model inside the planner
("modeling communication cost", Section 4.1): full bi-section bandwidth (as
provided by NVSwitch), characterized by a per-GPU bandwidth and a minimum
propagation delay; transfer time is payload size divided by bandwidth plus
the delay.  We adopt exactly that model, both for planning and for the
simulated execution, and provide the named presets used in Figures 1-3
(10 Gbps .. 4.8 Tbps per GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkFabric", "NETWORK_PRESETS", "get_fabric"]


@dataclass(frozen=True)
class NetworkFabric:
    """Full bi-section network connecting the GPUs.

    Attributes
    ----------
    name:
        Human-readable label (used in Figure 3's legend).
    bandwidth_bytes_per_s:
        Per-GPU injection/ejection bandwidth in bytes per second
        (uni-directional).
    propagation_delay:
        Minimum latency of any transfer, in seconds.
    """

    name: str
    bandwidth_bytes_per_s: float
    propagation_delay: float = 5e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")

    @classmethod
    def from_bits_per_s(
        cls, name: str, bits_per_s: float, propagation_delay: float = 5e-6
    ) -> "NetworkFabric":
        """Build a fabric from a link speed quoted in bits per second."""
        return cls(name, bits_per_s / 8.0, propagation_delay)

    def transfer_time(self, payload_bytes: float) -> float:
        """Time to move a payload between two GPUs: size/bandwidth + delay."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if payload_bytes == 0:
            return 0.0
        return payload_bytes / self.bandwidth_bytes_per_s + self.propagation_delay

    @property
    def bandwidth_bits_per_s(self) -> float:
        return self.bandwidth_bytes_per_s * 8.0


#: Named fabrics used across the paper's figures.
#:
#: * ``nvswitch`` — 600 GB/s per GPU (Table 2), i.e. 4.8 Tbps bi-directional,
#:   the speed quoted in Figure 2.
#: * ``1tbps`` — the per-GPU speed assumed in Figure 1.
#: * ``connectx6`` — 200 Gbps NIC (Section 2).
#: * ``100gbps`` / ``10gbps`` — slower datacenter networks in Figure 3.
NETWORK_PRESETS = {
    "nvswitch": NetworkFabric("NVSwitch 4.8 Tbps", 600e9, propagation_delay=3e-6),
    "1tbps": NetworkFabric.from_bits_per_s("1 Tbps", 1e12, propagation_delay=5e-6),
    "connectx6": NetworkFabric.from_bits_per_s("200 Gbps", 200e9, propagation_delay=8e-6),
    "100gbps": NetworkFabric.from_bits_per_s("100 Gbps", 100e9, propagation_delay=10e-6),
    "10gbps": NetworkFabric.from_bits_per_s("10 Gbps", 10e9, propagation_delay=20e-6),
}


def get_fabric(name: str) -> NetworkFabric:
    """Look up a fabric preset by name."""
    key = name.lower()
    if key not in NETWORK_PRESETS:
        raise KeyError(f"unknown fabric {name!r}; available: {sorted(NETWORK_PRESETS)}")
    return NETWORK_PRESETS[key]
