"""Activation redistribution cost: the planner's ``comm(i, g) -> (j, h)``.

When the burst-parallel plan changes the number of GPUs between consecutive
layers, the samples (activations) produced by layer ``i`` on ``g`` GPUs must
be redistributed across the ``h`` GPUs that will run layer ``j``; gradients
make the mirror-image trip during the backward pass (paper Section 4.1).

We model a balanced redistribution over the full bi-section fabric:

* Each of the ``max(g, h)``-GPU side holds ``1/max`` of the samples per GPU
  and each of the ``min``-side GPUs holds ``1/min``.
* GPUs that appear in both the source and destination sets keep their own
  shard; only the difference must cross the network.
* The transfer completes when the most-loaded endpoint has finished sending
  or receiving its share.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fabric import NetworkFabric

__all__ = ["RedistributionCostModel"]


@dataclass(frozen=True)
class RedistributionCostModel:
    """Cost of moving a layer boundary's activations between GPU sets.

    Attributes
    ----------
    fabric:
        The network fabric connecting the GPUs.
    include_backward:
        Whether to count the gradient trip of the backward pass as well
        (the planner does; per-direction costs are available via
        :meth:`one_way_time`).
    """

    fabric: NetworkFabric
    include_backward: bool = True

    def one_way_time(
        self, activation_bytes_total: float, src_gpus: int, dst_gpus: int
    ) -> float:
        """Time to redistribute a full batch's activations one way."""
        if activation_bytes_total < 0:
            raise ValueError("activation bytes must be non-negative")
        if src_gpus < 1 or dst_gpus < 1:
            raise ValueError("GPU counts must be at least 1")
        if activation_bytes_total == 0 or src_gpus == dst_gpus:
            # Same GPU set and same even partition: nothing moves.
            return 0.0
        lo, hi = sorted((src_gpus, dst_gpus))
        # The `lo` overlapping GPUs keep the shard they already own
        # (1/hi of the batch each); everything else crosses the fabric.
        moved_fraction = 1.0 - lo / hi
        moved_bytes = activation_bytes_total * moved_fraction
        # Sending side: the (hi - lo) GPUs not in the destination each push
        # 1/hi of the batch.  Receiving side: each of the `lo` destination
        # GPUs absorbs an equal share of what moved.
        send_per_gpu = activation_bytes_total / hi
        recv_per_gpu = moved_bytes / lo
        bottleneck_bytes = max(send_per_gpu, recv_per_gpu)
        return (
            bottleneck_bytes / self.fabric.bandwidth_bytes_per_s
            + self.fabric.propagation_delay
        )

    def transition_time(
        self, activation_bytes_total: float, src_gpus: int, dst_gpus: int
    ) -> float:
        """``comm(i, g) -> (j, h)``: forward (and optionally backward) cost."""
        one_way = self.one_way_time(activation_bytes_total, src_gpus, dst_gpus)
        return 2.0 * one_way if self.include_backward else one_way
