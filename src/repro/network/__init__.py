"""Communication substrate: fabric, collective, and redistribution models.

Public API:

* :class:`~repro.network.fabric.NetworkFabric` and the ``NETWORK_PRESETS``
  used in Figures 1-3 (10 Gbps through NVSwitch-class 4.8 Tbps).
* :class:`~repro.network.collectives.CollectiveCostModel` — NCCL-style ring
  all-reduce costs, i.e. the planner's ``sync(i, g)``.
* :class:`~repro.network.transfer.RedistributionCostModel` — activation
  redistribution when the GPU count changes between layers, i.e. the
  planner's ``comm(i, g) -> (j, h)``.
"""

from .fabric import NETWORK_PRESETS, NetworkFabric, get_fabric
from .collectives import CollectiveCostModel
from .transfer import RedistributionCostModel

__all__ = [
    "NetworkFabric",
    "NETWORK_PRESETS",
    "get_fabric",
    "CollectiveCostModel",
    "RedistributionCostModel",
]
