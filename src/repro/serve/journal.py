"""Write-ahead journal of service intents (submit / cancel / quota changes).

The online :class:`~repro.serve.service.SchedulerService` is deterministic:
its entire state is a pure function of the *intent sequence* it was fed
(each submit/cancel/set-quota, stamped with the virtual clock it was applied
at).  That makes crash safety a logging problem — persist every intent
*before* applying it, and recovery is "replay the intents".  This module is
that log:

* **Record framing** — one ASCII line per record:
  ``J1 <seq> <length> <crc32> <canonical-json>\\n``.  The payload is
  canonical JSON (no embedded newlines), the CRC covers ``seq`` plus the
  payload, and the declared length must match — so truncation, bit flips
  and splices are all detected before a single intent is replayed.
* **Atomic appends** — each record is a single ``os.write`` of the full
  line, fsync'd by default.  A crash mid-append leaves a *torn tail*: a
  final line without its terminator (payload bytes cannot contain ``\\n``).
  A torn record was never acknowledged to the caller — the write-ahead
  discipline appends before applying — so scanning truncates it silently
  and safely.
* **Segment rotation** — the journal is a directory of
  ``wal-<first_seq>.log`` segments, rotated every ``segment_records``
  appends, so compaction can drop whole files.
* **Snapshot-anchored compaction** — :meth:`IntentJournal.compact` deletes
  segments wholly covered by a persisted snapshot's ``journal_seq``
  (see :mod:`repro.serve.recovery`); replay after recovery only walks the
  suffix.

Corruption *before* the tail (a flipped bit mid-segment, a missing segment)
is different from a torn tail: the records after it may be intact but can
no longer be applied — replaying across a sequence gap would diverge from
the acknowledged history.  :func:`scan_journal` therefore stops at the
first invalid record and **quantifies** everything after it
(``lost_records`` / ``lost_bytes``) instead of silently accepting a
corrupted prefix; :mod:`repro.serve.recovery` surfaces those numbers in its
:class:`~repro.serve.recovery.RecoveryReport`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..cache.fingerprint import canonical_json

__all__ = ["IntentJournal", "JournalRecord", "JournalScan", "scan_journal"]

_MAGIC = "J1"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


@dataclass(frozen=True)
class JournalRecord:
    """One durable intent: its sequence number and payload."""

    seq: int
    intent: Dict[str, Any]


@dataclass
class JournalScan:
    """Outcome of reading a journal directory back.

    ``records`` is the replayable prefix (contiguous sequence numbers).
    ``torn_tail_bytes`` counts bytes of an unterminated final record — an
    append the crash interrupted before acknowledgement, dropped safely.
    ``lost_records``/``lost_bytes`` quantify *acknowledged* intents that can
    no longer be replayed (mid-stream corruption or a sequence gap); any
    non-zero value here is reportable data loss, never silent.
    """

    records: List[JournalRecord] = field(default_factory=list)
    segments: List[Path] = field(default_factory=list)
    torn_tail_bytes: int = 0
    lost_records: int = 0
    lost_bytes: int = 0
    #: First error encountered (empty when the journal read back clean).
    error: str = ""

    @property
    def last_seq(self) -> int:
        """Sequence number of the last replayable record (0 when empty)."""
        return self.records[-1].seq if self.records else 0


def _encode(seq: int, intent: Dict[str, Any]) -> bytes:
    body = canonical_json(intent)
    if "\n" in body:  # canonical JSON never contains newlines; belt & braces
        raise ValueError("journal intents must serialize without newlines")
    payload = body.encode("utf-8")
    crc = zlib.crc32(f"{seq}:".encode("ascii") + payload) & 0xFFFFFFFF
    head = f"{_MAGIC} {seq} {len(payload)} {crc:08x} ".encode("ascii")
    return head + payload + b"\n"


def _decode(line: bytes) -> Optional[JournalRecord]:
    """Parse one terminated line; ``None`` when framing or CRC fails."""
    try:
        head, _, payload = line.rstrip(b"\n").partition(b" {")
        if not payload:
            return None
        payload = b"{" + payload
        magic, seq_s, len_s, crc_s = head.decode("ascii").split(" ")
        if magic != _MAGIC:
            return None
        seq = int(seq_s)
        if int(len_s) != len(payload):
            return None
        crc = zlib.crc32(f"{seq}:".encode("ascii") + payload) & 0xFFFFFFFF
        if crc != int(crc_s, 16):
            return None
        intent = json.loads(payload.decode("utf-8"))
        if not isinstance(intent, dict):
            return None
        return JournalRecord(seq=seq, intent=intent)
    except (ValueError, UnicodeDecodeError):
        return None


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _list_segments(directory: Path) -> List[Path]:
    if not directory.is_dir():
        return []
    out = [
        path
        for path in directory.iterdir()
        if path.name.startswith(_SEGMENT_PREFIX)
        and path.name.endswith(_SEGMENT_SUFFIX)
    ]
    return sorted(out)


def scan_journal(directory: Union[str, Path]) -> JournalScan:
    """Read every segment back, validating framing, CRCs and seq continuity.

    The replayable run starts at the first decodable record's sequence
    number (compaction legitimately drops the journal's head) and ends at
    the first invalid record or discontinuity; a torn final record of the
    *last* segment is dropped as unacknowledged, anything else unreadable
    is counted as loss.
    """
    directory = Path(directory)
    scan = JournalScan(segments=_list_segments(directory))
    expected: Optional[int] = None
    broken = False
    for index, segment in enumerate(scan.segments):
        data = segment.read_bytes()
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                tail = len(data) - offset
                if index == len(scan.segments) - 1 and not broken:
                    # Unterminated final record: a crash mid-append.  The
                    # write-ahead discipline means it was never applied nor
                    # acknowledged — dropping it is lossless.
                    scan.torn_tail_bytes = tail
                else:
                    scan.lost_bytes += tail
                    if not scan.error:
                        scan.error = f"unterminated record inside {segment.name}"
                    broken = True
                break
            line = data[offset : newline + 1]
            offset = newline + 1
            if broken:
                # Past the first corruption every record is unreachable —
                # replaying across the gap would diverge from the
                # acknowledged history.  Count, don't apply.
                scan.lost_bytes += len(line)
                if _decode(line) is not None:
                    scan.lost_records += 1
                continue
            record = _decode(line)
            if record is None:
                broken = True
                scan.lost_bytes += len(line)
                if not scan.error:
                    scan.error = f"corrupt record in {segment.name}"
                continue
            if expected is None and record.seq >= 1:
                # The journal's head may have been compacted away; the run
                # starts wherever the first surviving record says it does.
                expected = record.seq
            if record.seq != expected:
                broken = True
                scan.lost_bytes += len(line)
                scan.lost_records += 1
                if not scan.error:
                    scan.error = (
                        f"sequence gap in {segment.name}: expected "
                        f"{expected}, found {record.seq}"
                    )
                continue
            scan.records.append(record)
            expected += 1
    return scan


class IntentJournal:
    """Append-only intent log over a directory of rotated segments.

    Opening an existing directory resumes numbering after the last valid
    record and truncates a torn tail in place, so a recovered service keeps
    journaling into the same directory.  ``fsync=False`` trades durability
    for speed in tests that kill processes anyway (the torn-write chaos
    harness injects its own partial writes deterministically).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_records: int = 4096,
        fsync: bool = True,
        first_seq: int = 1,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if first_seq < 1:
            raise ValueError("first_seq must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_records = segment_records
        self._fsync = fsync
        self._fd: Optional[int] = None
        scan = scan_journal(self.directory)
        if scan.error:
            raise ValueError(
                f"journal at {self.directory} is corrupt ({scan.error}); "
                "recover it explicitly before appending"
            )
        # ``first_seq`` floors the numbering of an *empty* directory, so a
        # recovery that had to discard a corrupt journal can keep counting
        # from the last applied intent instead of restarting at 1.
        self._next_seq = max(scan.last_seq + 1, first_seq)
        self._segment_count = 0
        if scan.segments and scan.torn_tail_bytes == 0:
            # Count the records already in the newest segment so rotation
            # keeps its bound across restarts.
            last = scan.segments[-1]
            first_of_last = int(
                last.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            )
            self._segment_count = self._next_seq - first_of_last
            self._open_segment(last)
        elif scan.segments:
            last = scan.segments[-1]
            valid = last.stat().st_size - scan.torn_tail_bytes
            os.truncate(last, valid)
            first_of_last = int(
                last.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            )
            self._segment_count = self._next_seq - first_of_last
            self._open_segment(last)

    # ------------------------------------------------------------------ state
    @property
    def next_seq(self) -> int:
        """Sequence number the next append will carry."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last durable record (0 when empty)."""
        return self._next_seq - 1

    def _open_segment(self, path: Path) -> None:
        self._close_fd()
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def _close_fd(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # ----------------------------------------------------------------- append
    def append(self, intent: Dict[str, Any]) -> int:
        """Durably append one intent; returns its sequence number.

        The full record goes down in a single ``os.write`` (followed by an
        ``fsync`` unless disabled), *before* the caller applies the intent —
        the write-ahead ordering every recovery guarantee rests on.
        """
        if self._fd is None or self._segment_count >= self._segment_records:
            self._open_segment(_segment_path(self.directory, self._next_seq))
            self._segment_count = 0
        seq = self._next_seq
        record = _encode(seq, intent)
        self._write_bytes(record)
        self._next_seq += 1
        self._segment_count += 1
        return seq

    def _write_bytes(self, record: bytes) -> None:
        """Single seam for record IO — the torn-write chaos hook overrides it."""
        assert self._fd is not None
        os.write(self._fd, record)
        if self._fsync:
            os.fsync(self._fd)

    # ------------------------------------------------------------- compaction
    def compact(self, upto_seq: int) -> List[Path]:
        """Delete segments wholly covered by records ``<= upto_seq``.

        A segment is removable only when a *newer* segment exists (so the
        journal never loses its numbering anchor) and every record it holds
        is at or below ``upto_seq`` — the sequence a durable snapshot
        already captures.  Returns the deleted paths.
        """
        segments = _list_segments(self.directory)
        removed: List[Path] = []
        for current, following in zip(segments, segments[1:]):
            last_in_current = (
                int(following.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]) - 1
            )
            if last_in_current <= upto_seq:
                current.unlink()
                removed.append(current)
            else:
                break
        return removed

    def close(self) -> None:
        self._close_fd()

    def __enter__(self) -> "IntentJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
