"""Crash-fault injection harness for the durable scheduler service.

The harness runs one deterministic multi-tenant workload three ways —
uninterrupted (the baseline), through a sequence of seeded SIGKILLs with
recovery between them, and to completion after the last recovery — and
asserts the end states are *identical*: same
:func:`~repro.serve.replay.result_fingerprint`, same per-tenant ledger
settlements, byte for byte.  Crashes are real: each cycle runs the
workload in a subprocess (``python -m repro.serve chaos-worker``) that
``SIGKILL``\\ s itself at a planned point, either

* **between engine steps** (``kind="step"``) — the service dies with
  intents journaled but simulation progress unsaved, exercising
  snapshot + journal-suffix replay; or
* **mid-append** (``kind="append"``) — the journal record is torn after
  ``torn_bytes`` bytes before the kill, exercising torn-tail detection
  (a torn intent was never acknowledged, so losing it is correct).

The drive loop is *resumable by construction*: every action is keyed on
recovered state (job-handle membership for submits, ``handle.done()`` for
cancels, quota-override membership for quota changes), so re-driving the
same trace after recovery re-issues exactly the intents that did not
survive the crash — at the same virtual clocks, because the recovered
clock is pinned to the last applied intent.  Determinism closes the loop:
if recovery rebuilt the true state, the continuation cannot diverge.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..sched.scheduler import ClusterScheduler
from ..sched.traces import alibaba_trace, mixed_trace, synthetic_trace
from .admission import QuotaAdmission, TenantQuota
from .journal import scan_journal
from .recovery import list_snapshots, recover_service
from .replay import result_fingerprint
from .service import SchedulerService, default_tenant

__all__ = [
    "ChaosReport",
    "CrashPlan",
    "CrashPoint",
    "default_spec",
    "run_crash_plan",
]

_GENERATORS = {
    "synthetic": synthetic_trace,
    "alibaba": alibaba_trace,
    "mixed": mixed_trace,
}


@dataclass(frozen=True)
class CrashPoint:
    """One planned kill: where in the run, and how dirty.

    ``kind="step"`` kills the process just before engine step ``at`` of
    that worker run; ``kind="append"`` kills it during journal append
    ``at``, leaving ``torn_bytes`` bytes of the record on disk (0 = a
    clean boundary, the crash landing between the append's write and its
    acknowledgement).
    """

    kind: str
    at: int
    torn_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("step", "append"):
            raise ValueError("CrashPoint.kind must be 'step' or 'append'")
        if self.at < 0 or self.torn_bytes < 0:
            raise ValueError("CrashPoint.at/torn_bytes must be >= 0")


@dataclass(frozen=True)
class CrashPlan:
    """A seeded sequence of crash points, applied one per kill/recover cycle."""

    points: tuple

    @classmethod
    def seeded(
        cls,
        seed: int,
        crashes: int,
        max_step: int = 600,
        max_append: int = 40,
        max_torn: int = 96,
    ) -> "CrashPlan":
        """Derive ``crashes`` pseudo-random crash points from ``seed``."""
        rng = random.Random(seed)
        points = []
        for _ in range(crashes):
            if rng.random() < 0.5:
                points.append(CrashPoint("step", rng.randrange(1, max_step)))
            else:
                points.append(
                    CrashPoint(
                        "append",
                        rng.randrange(0, max_append),
                        torn_bytes=rng.randrange(0, max_torn),
                    )
                )
        return cls(points=tuple(points))


@dataclass
class ChaosReport:
    """Outcome of one crash plan: parity verdict plus per-cycle recoveries."""

    baseline_fingerprint: str = ""
    final_fingerprint: str = ""
    tenants_match: bool = False
    #: Kill cycles that actually fired (SIGKILL observed).
    crashes: int = 0
    #: Planned points the run finished before reaching.
    unreached: int = 0
    #: RecoveryReport dicts, one per worker run that recovered.
    recoveries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Recovered run ended byte-identical to the uninterrupted one."""
        return (
            bool(self.baseline_fingerprint)
            and self.final_fingerprint == self.baseline_fingerprint
            and self.tenants_match
        )


def default_spec(
    num_jobs: int = 120,
    num_gpus: int = 64,
    seed: int = 11,
    policy: str = "collocation",
    generator: str = "synthetic",
    fabric: str = "nvswitch",
) -> Dict[str, Any]:
    """The harness workload: a multi-tenant trace with cancels and a quota op.

    ``max_pending=4`` forces backpressure queueing (and end-of-run
    starvation rejections), every 5th job is cancelled right after
    submission, and one tenant's quota is raised mid-trace — so the journal
    carries all three intent kinds and the ledgers settle non-trivially.
    """
    return {
        "generator": generator,
        "num_jobs": num_jobs,
        "num_gpus": num_gpus,
        "seed": seed,
        "policy": policy,
        "fabric": fabric,
        "cancel_every": 5,
        "quota_at": num_jobs // 2,
        "max_pending": 4,
        "snapshot_every": 8,
        "snapshot_keep": 2,
        "segment_records": 16,
    }


def _trace_for(spec: Dict[str, Any]) -> List[Any]:
    trace = _GENERATORS[spec["generator"]](spec["num_jobs"], seed=spec["seed"])
    return sorted(trace, key=lambda job: job.arrival_time)


def _build_service(
    spec: Dict[str, Any],
    journal_dir: Optional[Path],
    recorder=None,
) -> SchedulerService:
    scheduler = ClusterScheduler(spec["num_gpus"], fabric=spec["fabric"])
    admission = QuotaAdmission(
        default=TenantQuota(max_pending=spec["max_pending"])
    )
    kwargs: Dict[str, Any] = {}
    if journal_dir is not None:
        kwargs = {
            "journal_dir": journal_dir,
            "snapshot_every": spec["snapshot_every"],
            "snapshot_keep": spec["snapshot_keep"],
        }
    service = SchedulerService(
        scheduler,
        policy=spec["policy"],
        admission=admission,
        recorder=recorder,
        **kwargs,
    )
    if journal_dir is not None and spec.get("segment_records"):
        # Small segments so rotation and compaction are exercised even by
        # short smoke runs.
        service.journal._segment_records = spec["segment_records"]
    return service


async def _drive(service: SchedulerService, spec: Dict[str, Any]) -> None:
    """Drive (or resume) the workload; every action is recovery-idempotent."""
    trace = _trace_for(spec)
    quota_at = spec["quota_at"]
    boost_tenant = default_tenant(trace[quota_at]) if trace else ""
    for index, job in enumerate(trace):
        if job.name not in service._jobs:
            await service.advance_to(job.arrival_time)
            await service.submit(job)
        if spec["cancel_every"] and index % spec["cancel_every"] == 2:
            # No-op when already cancelled pre-crash: the handle resolved.
            await service.cancel(job.name)
        if index == quota_at and boost_tenant not in service._quota_overrides:
            await service.set_quota(
                boost_tenant, TenantQuota(max_pending=512)
            )
    await service.drain()


def _final_state(service: SchedulerService) -> Dict[str, Any]:
    result = service.result(require_complete=False)
    return {
        "fingerprint": result_fingerprint(result),
        "tenants": service.cluster_state()["tenants"],
    }


def _arm_step_crash(service: SchedulerService, at: int) -> None:
    engine = service._engine
    original = engine.step
    count = 0

    def step():
        nonlocal count
        if count >= at:
            os.kill(os.getpid(), signal.SIGKILL)
        count += 1
        return original()

    engine.step = step  # shadows the bound method for this instance


def _arm_append_crash(
    service: SchedulerService, at: int, torn_bytes: int
) -> None:
    journal = service.journal
    if journal is None:
        raise ValueError("append crash requires a journal")
    original = journal._write_bytes
    count = 0

    def write(record: bytes) -> None:
        nonlocal count
        if count == at:
            # Tear the record: some prefix lands on disk, never the whole
            # line, then die before acknowledging.
            keep = min(torn_bytes, len(record) - 1)
            if keep > 0:
                os.write(journal._fd, record[:keep])
                os.fsync(journal._fd)
            os.kill(os.getpid(), signal.SIGKILL)
        count += 1
        original(record)

    journal._write_bytes = write


def run_chaos_worker(
    spec: Dict[str, Any],
    journal_dir: Optional[Union[str, Path]],
    crash: Optional[CrashPoint] = None,
    trace_out: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """One worker run: build or recover the service, arm the crash, drive.

    Returns the final state (never returns when the crash point fires —
    the process SIGKILLs itself).  ``journal_dir=None`` is the baseline
    mode: no durability, no crash, just the uninterrupted run.
    ``trace_out`` writes the run's obs stream — recovery and snapshot
    markers included — as a Chrome trace.
    """
    import asyncio

    from ..obs.trace import TraceRecorder

    recorder = TraceRecorder() if trace_out is not None else None
    recovery: Optional[Dict[str, Any]] = None
    if journal_dir is None:
        service = _build_service(spec, None, recorder)
    else:
        directory = Path(journal_dir)
        scan = scan_journal(directory)
        has_state = bool(scan.segments or scan.records or list_snapshots(directory))
        if has_state:
            service, report = recover_service(
                lambda: _build_service(spec, None, recorder),
                directory,
                snapshot_every=spec["snapshot_every"],
                snapshot_keep=spec["snapshot_keep"],
            )
            service.journal._segment_records = spec["segment_records"]
            recovery = {
                "snapshot_seq": report.snapshot_seq,
                "replayed_records": report.replayed_records,
                "final_seq": report.final_seq,
                "torn_tail_bytes": report.torn_tail_bytes,
                "lost_records": report.lost_records,
                "lost_bytes": report.lost_bytes,
                "journal_reset": report.journal_reset,
                "corrupt_snapshots": len(report.corrupt_snapshots),
            }
        else:
            service = _build_service(spec, directory, recorder)
    if crash is not None:
        if crash.kind == "step":
            _arm_step_crash(service, crash.at)
        else:
            _arm_append_crash(service, crash.at, crash.torn_bytes)
    asyncio.run(_drive(service, spec))
    state = _final_state(service)
    state["recovery"] = recovery
    if recorder is not None and trace_out is not None:
        recorder.write_chrome_trace(Path(trace_out))
    return state


def _spawn_worker(
    spec: Dict[str, Any],
    journal_dir: Path,
    crash: Optional[CrashPoint],
    python: str,
    trace_out: Optional[Path] = None,
) -> subprocess.CompletedProcess:
    cmd = [
        python,
        "-m",
        "repro.serve",
        "chaos-worker",
        "--dir",
        str(journal_dir),
        "--spec",
        json.dumps(spec),
    ]
    if crash is not None:
        cmd += ["--crash-kind", crash.kind, "--crash-at", str(crash.at)]
        if crash.kind == "append":
            cmd += ["--torn-bytes", str(crash.torn_bytes)]
    if trace_out is not None:
        cmd += ["--trace-out", str(trace_out)]
    return subprocess.run(cmd, capture_output=True, text=True)


def run_crash_plan(
    plan: CrashPlan,
    spec: Dict[str, Any],
    workdir: Union[str, Path],
    python: str = sys.executable,
    trace_out: Optional[Union[str, Path]] = None,
) -> ChaosReport:
    """Execute a crash plan end to end and report the parity verdict.

    Baseline first (in this process, no journal), then one subprocess per
    crash point — each must die by SIGKILL — then a final subprocess that
    recovers and completes.  A crash point the run finishes before reaching
    is counted ``unreached`` and ends the killing early (the run is already
    complete, so parity is checked directly).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal_dir = workdir / "wal"

    baseline = run_chaos_worker(spec, None)
    report = ChaosReport(baseline_fingerprint=baseline["fingerprint"])

    # Every worker gets the trace path; only the run that completes (crashed
    # ones never return from SIGKILL) actually writes it.
    trace_path = Path(trace_out) if trace_out is not None else None
    final: Optional[Dict[str, Any]] = None
    for point in plan.points:
        proc = _spawn_worker(spec, journal_dir, point, python, trace_out=trace_path)
        if proc.returncode == -signal.SIGKILL:
            report.crashes += 1
            continue
        if proc.returncode == 0:
            # The workload completed before the crash point fired.
            report.unreached += 1
            final = json.loads(proc.stdout.splitlines()[-1])
            break
        raise RuntimeError(
            f"chaos worker failed unexpectedly (rc={proc.returncode}):\n"
            f"{proc.stderr}"
        )
    if final is None:
        proc = _spawn_worker(spec, journal_dir, None, python, trace_out=trace_path)
        if proc.returncode != 0:
            raise RuntimeError(
                f"final recovery worker failed (rc={proc.returncode}):\n"
                f"{proc.stderr}"
            )
        final = json.loads(proc.stdout.splitlines()[-1])

    if final.get("recovery"):
        report.recoveries.append(final["recovery"])
    report.final_fingerprint = final["fingerprint"]
    # Plain sorted dumps (not canonical_json): tenant ledgers legitimately
    # hold infinite quotas, which round-trip as ``Infinity`` literals.
    report.tenants_match = json.dumps(
        final["tenants"], sort_keys=True
    ) == json.dumps(baseline["tenants"], sort_keys=True)
    return report
