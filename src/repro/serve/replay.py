"""Replay-to-live bridge: drive a service from an arrival trace.

:func:`replay_trace` feeds any :class:`~repro.sched.traces.TraceJob` trace
through :meth:`SchedulerService.submit` as a load generator — advance the
virtual clock to each arrival, submit, drain — and reports submit-path
throughput alongside the run's :class:`~repro.sched.engine.ScheduleResult`.

The proof obligation this module carries: a bridged replay under
:class:`~repro.serve.admission.AcceptAll` produces the **same metrics
fingerprint** as the offline ``ClusterScheduler.run`` path on the same
trace/policy/failures (:func:`result_fingerprint` — full-precision, no
rounding).  ``python -m repro.serve smoke`` and the test suite assert it.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import asdict, dataclass
from typing import Sequence, Tuple

from ..cache.fingerprint import canonical_json, fingerprint, trace_fingerprint
from ..sched.engine import ScheduleResult
from ..sched.traces import TraceJob
from .service import JobHandle, SchedulerService

__all__ = ["ReplayReport", "replay_trace", "replay_trace_sync", "result_fingerprint"]


def result_fingerprint(result: ScheduleResult) -> str:
    """Full-precision fingerprint of a run's deterministic outcome.

    Covers the op count and every fleet metric at exact float precision
    (via :func:`~repro.cache.fingerprint.canonical_json` reprs), so two
    runs share a fingerprint iff they simulated the same event history —
    the equality the replay-to-live bridge is held to.
    """
    return fingerprint(
        "schedule-result",
        {
            "policy": result.policy,
            "num_gpus": result.num_gpus,
            "events_processed": result.events_processed,
            "failures_injected": result.failures_injected,
            "metrics": asdict(result.metrics),
        },
    )


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one bridged replay."""

    #: Jobs submitted through the service API.
    jobs: int
    #: Admission decisions at submit time.
    accepted_at_submit: int
    queued_at_submit: int
    rejected_at_submit: int
    #: Final dispositions after drain.
    completed: int
    rejected: int
    cancelled: int
    #: Wall-clock seconds spent inside ``submit`` calls (the submit path
    #: only — clock advances and the drain are excluded).
    submit_seconds: float
    #: Identity of the arrival log that was bridged.
    trace_fingerprint: str
    result: ScheduleResult
    handles: Tuple[JobHandle, ...] = ()

    @property
    def submissions_per_sec(self) -> float:
        """Sustained submit-path throughput of this replay."""
        if self.submit_seconds <= 0.0:
            return float("inf")
        return self.jobs / self.submit_seconds

    def fingerprint(self) -> str:
        """The run's :func:`result_fingerprint` (throughput excluded)."""
        return result_fingerprint(self.result)

    def summary(self) -> str:
        """Canonical one-line JSON summary (deterministic fields only)."""
        return canonical_json(
            {
                "jobs": self.jobs,
                "completed": self.completed,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "queued_at_submit": self.queued_at_submit,
                "trace_fingerprint": self.trace_fingerprint,
                "result_fingerprint": self.fingerprint(),
            }
        )


async def replay_trace(
    service: SchedulerService,
    trace: Sequence[TraceJob],
    require_complete: bool = True,
) -> ReplayReport:
    """Bridge a trace through the live submission API and run to quiescence.

    Jobs are submitted in trace order; before each submission the virtual
    clock advances to the job's arrival time, so the engine sees the exact
    event interleaving the offline path derives from the same log.  The
    trace must be arrival-ordered (every generator in
    :mod:`repro.sched.traces` returns it that way).
    """
    if not trace:
        raise ValueError("trace must contain at least one job")
    last = None
    for job in trace:
        if last is not None and job.arrival_time < last:
            raise ValueError(
                "trace must be sorted by arrival time to bridge it live "
                f"(job {job.name!r} arrives at {job.arrival_time} after "
                f"{last})"
            )
        last = job.arrival_time

    handles = []
    submit_seconds = 0.0
    queued_at_submit = 0
    rejected_at_submit = 0
    for job in trace:
        await service.advance_to(job.arrival_time)
        begin = _time.perf_counter()
        handle = await service.submit(job)
        submit_seconds += _time.perf_counter() - begin
        handles.append(handle)
        # Decision as made at submit time (a queued job may be admitted by
        # a later completion, so sample before the clock moves again).
        status = handle.status()
        if status == "queued":
            queued_at_submit += 1
        elif status == "rejected":
            rejected_at_submit += 1
    await service.drain()
    result = service.result(require_complete=require_complete)
    statuses = [h.status() for h in handles]
    return ReplayReport(
        jobs=len(handles),
        accepted_at_submit=len(handles) - queued_at_submit - rejected_at_submit,
        queued_at_submit=queued_at_submit,
        rejected_at_submit=rejected_at_submit,
        completed=statuses.count("done"),
        rejected=statuses.count("rejected"),
        cancelled=statuses.count("cancelled"),
        submit_seconds=submit_seconds,
        trace_fingerprint=trace_fingerprint(trace),
        result=result,
        handles=tuple(handles),
    )


def replay_trace_sync(
    service: SchedulerService,
    trace: Sequence[TraceJob],
    require_complete: bool = True,
) -> ReplayReport:
    """:func:`replay_trace` for synchronous callers (benchmarks, CLIs)."""
    return asyncio.run(replay_trace(service, trace, require_complete))
