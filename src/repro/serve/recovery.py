"""Crash recovery for the online scheduler service.

Durable state lives in one directory: the write-ahead segments of the
:class:`~repro.serve.journal.IntentJournal` plus ``state-<seq>.json``
snapshot files, each a fingerprinted canonical-JSON capture of
:meth:`~repro.serve.service.SchedulerService.durable_state` anchored at the
journal sequence it reflects.  Recovery is

    newest valid snapshot  +  replay of the journal suffix past its anchor

and degrades gracefully instead of failing hard:

* a **corrupt snapshot** (bad JSON, wrong schema, fingerprint mismatch) is
  skipped in favour of the next older one — the price is a longer journal
  replay, never wrong state;
* with **no usable snapshot** the full journal replays from a cold service;
* **journal corruption past the last snapshot** cannot be replayed across
  (the sequence gap would diverge from acknowledged history), so recovery
  stops there and *quantifies* the loss — ``lost_records``/``lost_bytes``
  in the :class:`RecoveryReport` — then resets the journal and anchors a
  fresh snapshot so the damaged history is never needed again;
* a **torn tail** (crash mid-append) is dropped silently: the write-ahead
  ordering guarantees it was never applied nor acknowledged.

Determinism does the heavy lifting.  Each journal record carries the
virtual clock it was applied at, so replay advances the engine to that
clock (re-processing every event through the same emission and accounting
seams) before re-applying the intent — the recovered service is
fingerprint-identical to the uninterrupted one, which the crash harness in
:mod:`repro.serve.chaos` asserts for every seeded crash point.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..cache.fingerprint import canonical_json, snapshot_fingerprint
from ..obs.trace import EV_RECOVERY, EV_SNAPSHOT
from .journal import IntentJournal, JournalRecord, scan_journal

__all__ = [
    "SERVICE_SNAPSHOT_SCHEMA",
    "RecoveryReport",
    "list_snapshots",
    "load_snapshot",
    "recover_service",
    "write_snapshot",
]

#: Bumped whenever the service snapshot layout changes.
SERVICE_SNAPSHOT_SCHEMA = 1

_SNAP_PREFIX = "state-"
_SNAP_SUFFIX = ".json"


@dataclass
class RecoveryReport:
    """What one recovery did, and what (if anything) it could not save.

    ``lost_records``/``lost_bytes`` quantify acknowledged intents that
    could not be replayed (journal corruption past the last usable
    snapshot).  ``torn_tail_bytes`` is *not* loss — a torn append was never
    acknowledged.  ``journal_reset`` records that the damaged journal was
    discarded and re-anchored on a fresh snapshot.
    """

    snapshot_path: Optional[str] = None
    #: Journal sequence the chosen snapshot anchored (0 = cold start).
    snapshot_seq: int = 0
    corrupt_snapshots: List[str] = field(default_factory=list)
    replayed_records: int = 0
    #: Last intent sequence the recovered service reflects.
    final_seq: int = 0
    torn_tail_bytes: int = 0
    lost_records: int = 0
    lost_bytes: int = 0
    journal_error: str = ""
    journal_reset: bool = False

    @property
    def clean(self) -> bool:
        """True when recovery lost nothing and skipped no snapshot."""
        return (
            self.lost_records == 0
            and self.lost_bytes == 0
            and not self.corrupt_snapshots
        )


def _snapshot_seq(path: Path) -> int:
    return int(path.name[len(_SNAP_PREFIX) : -len(_SNAP_SUFFIX)])


def list_snapshots(directory: Union[str, Path]) -> List[Path]:
    """Snapshot files under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for path in directory.iterdir():
        if path.name.startswith(_SNAP_PREFIX) and path.name.endswith(
            _SNAP_SUFFIX
        ):
            try:
                _snapshot_seq(path)
            except ValueError:
                continue
            out.append(path)
    return sorted(out)


def write_snapshot(service) -> Path:
    """Persist the service's durable state, atomically, and compact.

    The document (``{"schema", "fingerprint", "payload"}``) goes through a
    same-directory temp file and ``os.replace`` so a crash mid-write can
    never leave a half-written ``state-*.json`` where recovery would find
    it.  After the rename, snapshots beyond ``snapshot_keep`` are pruned
    and the journal is compacted behind the oldest one retained.
    """
    journal = service._journal
    if journal is None:
        raise ValueError("service has no journal attached")
    payload = service.durable_state()
    doc = {
        "schema": SERVICE_SNAPSHOT_SCHEMA,
        "fingerprint": snapshot_fingerprint(payload),
        "payload": payload,
    }
    directory = journal.directory
    seq = payload["journal_seq"]
    path = directory / f"{_SNAP_PREFIX}{seq:012d}{_SNAP_SUFFIX}"
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".state-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(doc))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    service._emitter.emit(service.clock, EV_SNAPSHOT, detail=f"seq={seq}")
    snaps = list_snapshots(directory)
    keep = service._snapshot_keep
    for old in snaps[:-keep]:
        old.unlink()
    snaps = snaps[-keep:]
    if snaps:
        journal.compact(_snapshot_seq(snaps[0]))
    return path


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one snapshot back, verifying schema and content fingerprint.

    Raises ``ValueError`` on any corruption — recovery treats that as
    "try the next older snapshot", never as fatal.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"snapshot {path.name}: unreadable ({exc})")
    if not isinstance(doc, dict) or doc.get("schema") != SERVICE_SNAPSHOT_SCHEMA:
        raise ValueError(f"snapshot {path.name}: unsupported schema")
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise ValueError(f"snapshot {path.name}: malformed payload")
    if snapshot_fingerprint(payload) != doc.get("fingerprint"):
        raise ValueError(f"snapshot {path.name}: fingerprint mismatch")
    return payload


def recover_service(
    factory: Callable[[], Any],
    journal_dir: Union[str, Path],
    snapshot_every: Optional[int] = None,
    snapshot_keep: int = 2,
    journal_fsync: bool = True,
) -> Tuple[Any, RecoveryReport]:
    """Rebuild a crashed service from its durable directory.

    ``factory`` must construct a *fresh* service exactly as the crashed one
    was configured (same scheduler fleet, policy, admission policy, failure
    schedule, planner/profiler config) but **without** ``journal_dir`` —
    recovery restores state, replays the journal suffix, then attaches the
    journal itself and re-anchors a snapshot when needed.  Returns the
    recovered service and a :class:`RecoveryReport`.
    """
    directory = Path(journal_dir)
    scan = scan_journal(directory)
    report = RecoveryReport(
        torn_tail_bytes=scan.torn_tail_bytes,
        lost_records=scan.lost_records,
        lost_bytes=scan.lost_bytes,
        journal_error=scan.error,
    )

    chosen_payload: Optional[Dict[str, Any]] = None
    for path in reversed(list_snapshots(directory)):
        try:
            chosen_payload = load_snapshot(path)
        except ValueError as exc:
            report.corrupt_snapshots.append(str(exc))
            continue
        report.snapshot_path = str(path)
        break

    service = factory()
    if service._journal is not None:
        raise ValueError(
            "recovery factory must build the service without journal_dir; "
            "recover_service attaches the journal itself"
        )
    anchor = 0
    if chosen_payload is not None:
        service.restore_durable_state(chosen_payload)
        anchor = chosen_payload["journal_seq"]
    report.snapshot_seq = anchor

    # Replay the contiguous suffix past the anchor.  scan.records is itself
    # contiguous, so a first record beyond anchor+1 means the whole suffix
    # is unreachable (compaction outran every usable snapshot) — counted as
    # loss, never replayed across.
    expected = anchor + 1
    suffix: List[JournalRecord] = []
    for record in scan.records:
        if record.seq <= anchor:
            continue
        if record.seq != expected:
            report.lost_records += 1
            continue
        suffix.append(record)
        expected += 1
    for record in suffix:
        service.apply_intent(record)
    applied = anchor + len(suffix)
    report.replayed_records = len(suffix)
    report.final_seq = applied

    # A journal whose history diverges from the recovered state (corruption,
    # or records the snapshot/suffix could not account for) is discarded:
    # numbering continues from the last applied intent and a fresh snapshot
    # below re-anchors recovery so the damaged history is never needed.
    reset = bool(scan.error) or applied < scan.last_seq
    if reset:
        for segment in scan.segments:
            if segment.exists():
                segment.unlink()
    report.journal_reset = reset

    journal = IntentJournal(directory, fsync=journal_fsync, first_seq=applied + 1)
    service._attach_journal(journal, snapshot_every, snapshot_keep)
    service._applied_seq = applied
    service._emitter.emit(
        service.clock,
        EV_RECOVERY,
        detail=(
            f"anchor={anchor};replayed={len(suffix)};"
            f"lost={report.lost_records}"
        ),
    )
    if reset or snapshot_every:
        write_snapshot(service)
    return service, report
