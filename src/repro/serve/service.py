"""The online scheduler service: asyncio API over the shared engine.

:class:`SchedulerService` wraps one :class:`~repro.sched.scheduler.ClusterScheduler`
with a virtual-clock event loop and an in-process async API::

    service = SchedulerService(ClusterScheduler(64), policy="collocation")
    handle = await service.submit(job)          # admission decided here
    await service.advance_to(120.0)             # simulated time moves
    info = service.query(handle.name)
    await service.cancel(handle.name)
    await service.drain()                       # run to quiescence
    result = service.result()                   # same shape as offline run()

Everything that mutates the engine happens synchronously inside the calling
task — the event loop is *virtual* (simulated seconds, not wall-clock), so a
fixed submission log always produces the same event sequence, and a bridged
trace replay (:mod:`repro.serve.replay`) reproduces the offline
``ClusterScheduler.run`` metrics bit for bit.

One emission seam feeds everything: the service installs a recorder-shaped
:class:`_ServiceEmitter` as the scheduler's ``_recorder``, so the engine's
existing `repro.obs` emission sites simultaneously drive (a) an optional
inner :class:`~repro.obs.trace.TraceRecorder`, (b) the async ``watch()``
streams, and (c) tenant accounting — the trace recorder and the service
stream can never disagree about what happened.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    AsyncIterator,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)
from collections import deque

from ..obs.metrics import global_registry
from ..obs.trace import (
    EV_CANCEL,
    EV_COLLOCATE,
    EV_COMPLETION,
    EV_DETACH,
    EV_KILL,
    EV_PLACEMENT,
    EV_PREEMPTION,
    EV_SUBMIT,
    ObsEvent,
    TraceRecorder,
)
from ..sched.engine import _CANCELLED, ScheduleResult, SchedulerEngine
from ..sched.failures import NodeFailure
from ..sched.policies import SchedulingPolicy
from ..sched.snapshot import (
    EngineSnapshot,
    _dec_float,
    _dump_trace_job,
    _enc_float,
    _load_trace_job,
)
from ..sched.traces import TraceJob
from .admission import (
    AcceptAll,
    AdmissionDecision,
    AdmissionPolicy,
    TenantAccount,
    TenantQuota,
)
from .journal import IntentJournal, JournalRecord

__all__ = ["SchedulerService", "JobHandle", "JobInfo", "default_tenant"]

_SUBMIT_TIMER = global_registry().timer("serve.submit")
_SUBMISSIONS = global_registry().counter("serve.submissions")
_WATCH_EVENTS = global_registry().counter("serve.watch.events")
_PREWARMED_PLANS = global_registry().counter("serve.prewarmed_plans")

#: Sentinel closing every watch() stream.
_WATCH_CLOSED = object()

# Service-level handle statuses (engine statuses pass through otherwise).
_ST_QUEUED = "queued"
_ST_REJECTED = "rejected"
_ST_CANCELLED = _CANCELLED


def default_tenant(job: TraceJob) -> str:
    """Tenant id of a job: the first dash-separated token of its name.

    The repo's trace generators prefix names by population (``fg-``/``bg-``,
    ``small-``/``large-``, ``syn-``/``ali-``), so the default carves a trace
    into the tenants those prefixes describe.  Pass ``tenant=`` at submit
    (or ``tenant_of=`` at construction) to override.
    """
    head, _, _ = job.name.partition("-")
    return head or "default"


@dataclass(frozen=True)
class JobInfo:
    """Point-in-time snapshot of one submission (returned by ``query``)."""

    name: str
    tenant: str
    status: str
    arrival_time: float
    iterations: int
    remaining_iterations: float
    width: int
    gpu_pool: str
    busy_gpu_seconds: float
    lost_gpu_seconds: float
    preemptions: int
    replans: int
    restarts: int
    estimate_gpu_seconds: float


class JobHandle:
    """Live view of one submission; resolves when the job leaves the system."""

    def __init__(
        self, service: "SchedulerService", job: TraceJob, tenant: str,
        estimate: float,
    ) -> None:
        self._service = service
        self.job = job
        self.tenant = tenant
        self.estimate_gpu_seconds = estimate
        #: Service-level status override; ``None`` delegates to the engine.
        self._service_status: Optional[str] = None
        self._finished = False
        self._event: Optional[asyncio.Event] = None

    @property
    def name(self) -> str:
        return self.job.name

    def status(self) -> str:
        """``queued``/``rejected`` (service) or the engine's job status."""
        if self._service_status is not None:
            return self._service_status
        state = self._service._engine.states.get(self.name)
        if state is None:  # accepted handles always have engine state
            return _ST_QUEUED
        return state.status

    def done(self) -> bool:
        """True once the job completed, was rejected, or was cancelled."""
        return self._finished

    async def wait(self) -> JobInfo:
        """Block until the job leaves the system; returns the final info.

        Simulated time does not move by itself — some task must be driving
        :meth:`SchedulerService.advance_to` / :meth:`~SchedulerService.drain`
        (the replay bridge, for instance) for this to resolve.
        """
        if not self._finished:
            if self._event is None:
                self._event = asyncio.Event()
            await self._event.wait()
        return self.info()

    def info(self) -> JobInfo:
        state = self._service._engine.states.get(self.name)
        if state is None:
            return JobInfo(
                name=self.name,
                tenant=self.tenant,
                status=self.status(),
                arrival_time=self.job.arrival_time,
                iterations=self.job.iterations,
                remaining_iterations=float(self.job.iterations),
                width=0,
                gpu_pool="",
                busy_gpu_seconds=0.0,
                lost_gpu_seconds=0.0,
                preemptions=0,
                replans=0,
                restarts=0,
                estimate_gpu_seconds=self.estimate_gpu_seconds,
            )
        return JobInfo(
            name=self.name,
            tenant=self.tenant,
            status=self.status(),
            arrival_time=state.arrival_time,
            iterations=state.trace.iterations,
            remaining_iterations=state.remaining,
            width=state.width,
            gpu_pool=state.gpu_type or "",
            busy_gpu_seconds=state.busy_gpu_seconds,
            lost_gpu_seconds=state.lost_gpu_seconds,
            preemptions=state.preemptions,
            replans=state.replans,
            restarts=state.restarts,
            estimate_gpu_seconds=self.estimate_gpu_seconds,
        )

    def _resolve(self) -> None:
        self._finished = True
        if self._event is not None:
            self._event.set()


class _ServiceEmitter:
    """Recorder-shaped fanout: one emission seam drives trace + service.

    Implements the :class:`~repro.obs.trace.TraceRecorder` surface the
    scheduler's emission sites call (``begin_run``/``emit``), forwards
    verbatim to the optional inner recorder, and hands each event to the
    service for accounting and ``watch()`` broadcast.
    """

    def __init__(
        self, service: "SchedulerService", recorder: Optional[TraceRecorder]
    ) -> None:
        self._service = service
        self._recorder = recorder

    def begin_run(self, fleet, policy: str) -> None:
        if self._recorder is not None:
            self._recorder.begin_run(fleet, policy)

    def emit(
        self,
        time: float,
        kind: str,
        job: str = "",
        pool: str = "",
        host: int = -1,
        gpus: Sequence[int] = (),
        width: int = 0,
        free_gpus: int = -1,
        detail: str = "",
    ) -> None:
        if self._recorder is not None:
            self._recorder.emit(
                time, kind, job=job, pool=pool, host=host, gpus=gpus,
                width=width, free_gpus=free_gpus, detail=detail,
            )
        self._service._on_event(
            ObsEvent(
                time=time, kind=kind, job=job, pool=pool, host=host,
                gpus=tuple(gpus), width=width, free_gpus=free_gpus,
                detail=detail,
            )
        )


class SchedulerService:
    """Single-process asyncio scheduler service over one engine run.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.sched.scheduler.ClusterScheduler` to drive.  The
        service owns the scheduler's recorder seam for its lifetime.
    policy:
        Scheduling policy (name or instance), as for ``run()``.
    admission:
        :class:`~repro.serve.admission.AdmissionPolicy`; defaults to
        :class:`~repro.serve.admission.AcceptAll` (the replay-parity mode).
    failures:
        Optional node-failure schedule, injected up front as in ``run()``.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder` receiving the full
        event stream (engine + service events) for export.
    tenant_of:
        Maps a job to its tenant id; defaults to :func:`default_tenant`.
    prewarm_on_admit:
        Plan every (pool, width) a job could use at admission time
        (:meth:`~repro.sched.scheduler.ClusterScheduler.prewarm_job`), so
        its placements never stall on a planner search mid-run.
    journal_dir:
        Directory for the write-ahead intent journal
        (:class:`~repro.serve.journal.IntentJournal`).  Every submit,
        cancel and quota change is persisted *before* it is applied, making
        the service crash-recoverable via
        :func:`~repro.serve.recovery.recover_service`.  The directory must
        not already hold durable state — recovery owns that path.
    snapshot_every:
        Write a durable service snapshot every N journaled intents (and
        compact the journal behind the oldest retained snapshot).  Requires
        ``journal_dir``.
    snapshot_keep:
        How many snapshot generations to retain (older ones bound the
        journal suffix a recovery may have to replay).
    journal_fsync:
        Fsync every journal append (default).  Disable only in tests that
        inject their own crash points.
    """

    def __init__(
        self,
        scheduler,
        policy: Union[str, SchedulingPolicy] = "collocation",
        admission: Optional[AdmissionPolicy] = None,
        failures: Sequence[NodeFailure] = (),
        recorder: Optional[TraceRecorder] = None,
        tenant_of: Optional[Callable[[TraceJob], str]] = None,
        prewarm_on_admit: bool = False,
        journal_dir: Optional[Union[str, Path]] = None,
        snapshot_every: Optional[int] = None,
        snapshot_keep: int = 2,
        journal_fsync: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.admission = admission if admission is not None else AcceptAll()
        self.prewarm_on_admit = prewarm_on_admit
        self._tenant_of = tenant_of if tenant_of is not None else default_tenant
        self._jobs: Dict[str, JobHandle] = {}
        self._accounts: Dict[str, TenantAccount] = {}
        self._backpressure: Dict[str, Deque[JobHandle]] = {}
        self._watchers: List[Tuple[asyncio.Queue, Optional[frozenset]]] = []
        self._closed = False
        self._replaying = False
        self._journal: Optional[IntentJournal] = None
        self._snapshot_every: Optional[int] = None
        self._snapshot_keep = snapshot_keep
        self._applied_seq = 0
        self._quota_overrides: Dict[str, TenantQuota] = {}
        # The emitter must own the recorder seam *before* the engine is
        # built: engine construction emits begin_run through it.
        self._emitter = _ServiceEmitter(self, recorder)
        scheduler.attach_recorder(self._emitter)
        self._engine = SchedulerEngine(scheduler, policy)
        self._engine.add_failures(failures)
        if journal_dir is not None:
            from .recovery import list_snapshots

            journal = IntentJournal(journal_dir, fsync=journal_fsync)
            if journal.last_seq > 0 or list_snapshots(journal.directory):
                journal.close()
                raise RuntimeError(
                    f"durable state already exists under {journal_dir}; "
                    "open it with repro.serve.recovery.recover_service instead"
                )
            self._attach_journal(journal, snapshot_every, snapshot_keep)
        elif snapshot_every is not None:
            raise ValueError("snapshot_every requires journal_dir")

    # -------------------------------------------------------------- properties
    @property
    def clock(self) -> float:
        """Current virtual time in simulated seconds."""
        return self._engine.clock

    @property
    def policy(self) -> SchedulingPolicy:
        return self._engine.policy

    def account(self, tenant: str) -> TenantAccount:
        """The tenant's live account (created at first submission)."""
        acct = self._accounts.get(tenant)
        if acct is None:
            acct = TenantAccount(tenant, self.admission.quota_for(tenant))
            self._accounts[tenant] = acct
        return acct

    # ------------------------------------------------------------------ submit
    async def submit(
        self,
        job: TraceJob,
        tenant: Optional[str] = None,
        arrival_time: Optional[float] = None,
    ) -> JobHandle:
        """Submit one job; admission is decided before this returns.

        The job's queue position is ``max(job.arrival_time, clock)`` (or
        ``arrival_time`` if given) — submissions cannot time-travel behind
        the virtual clock.  Duplicate names are rejected with ``ValueError``
        (use :meth:`TraceJob.resubmitted` for cancel-then-resubmit flows).
        """
        with _SUBMIT_TIMER.time():
            return self._submit(job, tenant, arrival_time)

    def _submit(
        self,
        job: TraceJob,
        tenant: Optional[str],
        arrival_time: Optional[float],
    ) -> JobHandle:
        if self._closed:
            raise RuntimeError("service is closed")
        name = job.name
        if name in self._jobs:
            raise ValueError(
                f"duplicate job name {name!r}: already submitted to this "
                "service (cancelled jobs keep their name; resubmit with "
                "TraceJob.resubmitted)"
            )
        arrival = (
            arrival_time if arrival_time is not None
            else max(job.arrival_time, self._engine.clock)
        )
        if arrival < self._engine.clock:
            raise ValueError(
                f"job {name!r}: arrival_time {arrival} is behind the "
                f"virtual clock {self._engine.clock}"
            )
        tenant_id = tenant if tenant is not None else self._tenant_of(job)
        # Write-ahead: the intent is durable before any state mutates, so a
        # crash anywhere past this line replays it; a crash before (or mid-
        # append) loses only a submission that was never acknowledged.
        self._journal_op(
            {
                "op": "submit",
                "clock": self._engine.clock,
                "arrival": arrival,
                "tenant": tenant_id,
                "job": _dump_trace_job(job),
            }
        )
        account = self.account(tenant_id)
        estimate = self._estimate(job)
        handle = JobHandle(self, job, tenant_id, estimate)
        decision = self.admission.decide(account, job, estimate)
        self._jobs[name] = handle
        _SUBMISSIONS.add(1)
        account.submitted_c.add(1)
        if decision is AdmissionDecision.REJECT:
            handle._service_status = _ST_REJECTED
            account.rejected_c.add(1)
            handle._resolve()
            self._emitter.emit(
                arrival, EV_SUBMIT, job=name, detail=f"reject:{tenant_id}"
            )
        elif decision is AdmissionDecision.QUEUE:
            handle._service_status = _ST_QUEUED
            account.queued += 1
            account.queued_c.add(1)
            self._backpressure.setdefault(tenant_id, deque()).append(handle)
            self._emitter.emit(
                arrival, EV_SUBMIT, job=name, detail=f"queue:{tenant_id}"
            )
        else:
            self._admit(handle, arrival)
        self._maybe_snapshot()
        return handle

    def _estimate(self, job: TraceJob) -> float:
        """Admission-time GPU-second estimate: the policy work figure.

        ``iterations × iso_iter_time`` on the fleet's reference pool —
        exactly the ``remaining_gpu_seconds`` scheduling policies sort by,
        served from the scheduler's iso-time cache.
        """
        return job.iterations * self.scheduler._iso_iter_time(
            job.model, job.global_batch
        )

    def _admit(self, handle: JobHandle, arrival: float) -> None:
        """Commit the quota hold and hand the job to the engine."""
        account = self._accounts[handle.tenant]
        job = handle.job
        if job.arrival_time != arrival:
            # Re-stamp only when the time actually moved, so a bridged
            # replay submits the caller's TraceJob objects unmodified.
            job = job.with_arrival(arrival)
        account.admit(handle.estimate_gpu_seconds)
        account.engine_pending += 1
        account.admitted_c.add(1)
        handle._service_status = None  # engine owns the status now
        if self.prewarm_on_admit:
            _PREWARMED_PLANS.add(self.scheduler.prewarm_job(job))
        self._engine.add_job(job)
        self._emitter.emit(
            arrival, EV_SUBMIT, job=job.name, detail=f"accept:{handle.tenant}"
        )

    # ------------------------------------------------------------------ cancel
    async def cancel(self, job_id: str) -> bool:
        """Cancel one submission at the current virtual time.

        Queued jobs leave the backpressure queue with a full refund (no
        hold was taken).  Engine jobs settle their quota hold against
        actual consumption (``busy + lost`` GPU-seconds — zero for a job
        cancelled while pending that never ran, matching the offline
        ``lost_gpu_seconds`` semantics).  Returns ``False`` when the job
        already left the system.
        """
        handle = self._jobs[job_id]
        if handle._finished:
            return False
        self._journal_op(
            {"op": "cancel", "clock": self._engine.clock, "job": job_id}
        )
        ok = self._cancel_sync(job_id)
        self._maybe_snapshot()
        return ok

    def _cancel_sync(self, job_id: str) -> bool:
        handle = self._jobs[job_id]
        account = self._accounts[handle.tenant]
        now = self._engine.clock
        if handle._service_status == _ST_QUEUED:
            self._backpressure[handle.tenant].remove(handle)
            account.queued -= 1
            handle._service_status = _ST_CANCELLED
            account.cancelled_c.add(1)
            handle._resolve()
            self._emitter.emit(
                now, EV_CANCEL, job=job_id, detail=f"queued:{handle.tenant}"
            )
            return True
        if handle._service_status == _ST_REJECTED:
            return False
        state = self._engine.states[job_id]
        if not self._engine.cancel(job_id, now):
            return False
        account.settle(
            handle.estimate_gpu_seconds,
            state.busy_gpu_seconds + state.lost_gpu_seconds,
        )
        account.cancelled_c.add(1)
        handle._resolve()
        self._pump(now)
        return True

    # ------------------------------------------------------------------ quotas
    async def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Replace one tenant's quota at the current virtual time.

        The change is journaled like any other intent, pushed into the
        admission policy (when it supports per-tenant quotas, e.g.
        :meth:`~repro.serve.admission.QuotaAdmission.set_quota`) and onto
        the tenant's live account, then the backpressure queues are pumped
        — a raised quota can admit parked submissions immediately.
        """
        self._journal_op(
            {
                "op": "set_quota",
                "clock": self._engine.clock,
                "tenant": tenant,
                "gpu_seconds": _enc_float(quota.gpu_seconds),
                "max_pending": quota.max_pending,
            }
        )
        self._set_quota_sync(tenant, quota)
        self._maybe_snapshot()

    def _set_quota_sync(self, tenant: str, quota: TenantQuota) -> None:
        self._quota_overrides[tenant] = quota
        setter = getattr(self.admission, "set_quota", None)
        if setter is not None:
            setter(tenant, quota)
        account = self._accounts.get(tenant)
        if account is not None:
            account.quota = quota
        self._pump(self._engine.clock)

    # -------------------------------------------------------------- durability
    @property
    def journal(self) -> Optional[IntentJournal]:
        """The attached write-ahead journal (``None`` when not durable)."""
        return self._journal

    def _attach_journal(
        self,
        journal: IntentJournal,
        snapshot_every: Optional[int],
        snapshot_keep: int,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if snapshot_keep < 1:
            raise ValueError("snapshot_keep must be >= 1")
        self._journal = journal
        self._snapshot_every = snapshot_every
        self._snapshot_keep = snapshot_keep
        self._applied_seq = journal.last_seq

    def _journal_op(self, intent: Dict[str, Any]) -> None:
        """Write-ahead: persist the intent before the caller applies it."""
        if self._journal is None or self._replaying:
            return
        self._applied_seq = self._journal.append(intent)

    def _maybe_snapshot(self) -> None:
        if (
            self._journal is None
            or self._replaying
            or not self._snapshot_every
            or self._applied_seq == 0
            or self._applied_seq % self._snapshot_every != 0
        ):
            return
        from .recovery import write_snapshot

        write_snapshot(self)

    def apply_intent(self, record: JournalRecord) -> None:
        """Re-apply one journaled intent during recovery.

        The engine is first advanced to the virtual clock the intent was
        originally applied at — every event before it replays through the
        same emission and accounting seams it used live — then the intent
        itself runs with journaling suppressed (its record already exists).
        """
        intent = record.intent
        self._replaying = True
        try:
            self._advance_sync(intent["clock"])
            op = intent["op"]
            if op == "submit":
                self._submit(
                    _load_trace_job(intent["job"]),
                    intent["tenant"],
                    intent["arrival"],
                )
            elif op == "cancel":
                handle = self._jobs.get(intent["job"])
                if handle is not None and not handle._finished:
                    self._cancel_sync(intent["job"])
            elif op == "set_quota":
                self._set_quota_sync(
                    intent["tenant"],
                    TenantQuota(
                        gpu_seconds=_dec_float(intent["gpu_seconds"]),
                        max_pending=intent["max_pending"],
                    ),
                )
            else:
                raise ValueError(f"unknown journal op {op!r}")
        finally:
            self._replaying = False
        self._applied_seq = record.seq

    def durable_state(self) -> Dict[str, Any]:
        """Everything recovery needs, as one canonical-JSON-able payload.

        Captures the engine (via
        :class:`~repro.sched.snapshot.EngineSnapshot`), every tenant
        ledger, every job handle, the backpressure queues and the quota
        overrides, anchored to the journal sequence it reflects
        (``journal_seq``) so recovery knows exactly which suffix to replay.
        """
        jobs = [
            {
                "job": _dump_trace_job(handle.job),
                "tenant": handle.tenant,
                "estimate": handle.estimate_gpu_seconds,
                "service_status": handle._service_status,
                "finished": handle._finished,
            }
            for handle in self._jobs.values()
        ]
        tenants = []
        for name in sorted(self._accounts):
            account = self._accounts[name]
            tenants.append(
                {
                    "name": name,
                    "quota": {
                        "gpu_seconds": _enc_float(account.quota.gpu_seconds),
                        "max_pending": account.quota.max_pending,
                    },
                    "committed": account.committed,
                    "used": account.used,
                    "engine_pending": account.engine_pending,
                    "queued": account.queued,
                    "counters": {
                        "submitted": account.submitted_c.value,
                        "admitted": account.admitted_c.value,
                        "queued": account.queued_c.value,
                        "rejected": account.rejected_c.value,
                        "completed": account.completed_c.value,
                        "cancelled": account.cancelled_c.value,
                    },
                }
            )
        return {
            "journal_seq": self._applied_seq,
            "clock": self._engine.clock,
            "engine": EngineSnapshot.capture(self._engine).payload,
            "tenants": tenants,
            "jobs": jobs,
            "backpressure": {
                tenant: [handle.name for handle in queue]
                for tenant, queue in sorted(self._backpressure.items())
                if queue
            },
            "quota_overrides": {
                tenant: {
                    "gpu_seconds": _enc_float(quota.gpu_seconds),
                    "max_pending": quota.max_pending,
                }
                for tenant, quota in sorted(self._quota_overrides.items())
            },
        }

    def restore_durable_state(self, payload: Dict[str, Any]) -> None:
        """Load a :meth:`durable_state` payload into this fresh service."""
        if self._jobs or self._engine.states or self._engine.queue.popped:
            raise ValueError(
                "durable state must be restored into a fresh service"
            )
        self._engine.restore(EngineSnapshot(payload["engine"]))
        for tenant, row in payload["quota_overrides"].items():
            quota = TenantQuota(
                gpu_seconds=_dec_float(row["gpu_seconds"]),
                max_pending=row["max_pending"],
            )
            self._quota_overrides[tenant] = quota
            setter = getattr(self.admission, "set_quota", None)
            if setter is not None:
                setter(tenant, quota)
        for row in payload["tenants"]:
            quota = TenantQuota(
                gpu_seconds=_dec_float(row["quota"]["gpu_seconds"]),
                max_pending=row["quota"]["max_pending"],
            )
            account = TenantAccount(row["name"], quota)
            account.restore_ledger(
                committed=row["committed"],
                used=row["used"],
                engine_pending=row["engine_pending"],
                queued=row["queued"],
                counters=row["counters"],
            )
            self._accounts[row["name"]] = account
        for row in payload["jobs"]:
            job = _load_trace_job(row["job"])
            handle = JobHandle(self, job, row["tenant"], row["estimate"])
            handle._service_status = row["service_status"]
            handle._finished = row["finished"]
            self._jobs[job.name] = handle
        for tenant, names in payload["backpressure"].items():
            self._backpressure[tenant] = deque(
                self._jobs[name] for name in names
            )
        self._applied_seq = payload["journal_seq"]

    # ----------------------------------------------------------------- queries
    def query(self, job_id: str) -> JobInfo:
        """Snapshot of one submission (raises ``KeyError`` for unknown ids)."""
        return self._jobs[job_id].info()

    def cluster_state(self) -> Dict[str, object]:
        """Cluster gauges plus per-tenant ledgers at the current clock."""
        engine = self._engine
        gauges = self.scheduler._make_gauges(engine.pending, engine.free)()
        gauges["queued_jobs"] = sum(
            len(dq) for dq in self._backpressure.values()
        )
        return {
            "time": engine.clock,
            "gauges": gauges,
            "tenants": {
                name: self._accounts[name].snapshot()
                for name in sorted(self._accounts)
            },
        }

    def result(self, require_complete: bool = True) -> ScheduleResult:
        """The run folded to a :class:`ScheduleResult` (as offline ``run``)."""
        return self._engine.result(require_complete=require_complete)

    # ------------------------------------------------------------------- watch
    def watch(
        self, kinds: Optional[Iterable[str]] = None
    ) -> AsyncIterator[ObsEvent]:
        """Async iterator over the service's event stream.

        Yields every :class:`~repro.obs.trace.ObsEvent` the engine and the
        service emit from subscription on (optionally filtered to ``kinds``)
        until :meth:`close`.  Events are delivered in emission order; the
        stream is fed synchronously at emission time, so a consumer task
        interleaved with ``advance_to`` sees a consistent prefix.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        queue: asyncio.Queue = asyncio.Queue()
        entry = (queue, frozenset(kinds) if kinds is not None else None)
        self._watchers.append(entry)

        async def _stream() -> AsyncIterator[ObsEvent]:
            try:
                while True:
                    event = await queue.get()
                    if event is _WATCH_CLOSED:
                        break
                    yield event
            finally:
                try:
                    self._watchers.remove(entry)
                except ValueError:
                    pass

        return _stream()

    def _on_event(self, event: ObsEvent) -> None:
        """Single sink for every emission: accounting + watch broadcast."""
        kind = event.kind
        if event.job:
            handle = self._jobs.get(event.job)
            if handle is not None:
                account = self._accounts[handle.tenant]
                if kind in (EV_PLACEMENT, EV_COLLOCATE):
                    account.engine_pending -= 1
                elif kind in (EV_PREEMPTION, EV_DETACH, EV_KILL):
                    account.engine_pending += 1
                elif kind == EV_CANCEL and event.detail == "pending":
                    account.engine_pending -= 1
                elif kind == EV_COMPLETION:
                    self._on_completion(handle, account, event)
        for queue, kinds in self._watchers:
            if kinds is None or kind in kinds:
                queue.put_nowait(event)
                _WATCH_EVENTS.add(1)

    def _on_completion(
        self, handle: JobHandle, account: TenantAccount, event: ObsEvent
    ) -> None:
        state = self._engine.states[handle.name]
        account.settle(
            handle.estimate_gpu_seconds,
            state.busy_gpu_seconds + state.lost_gpu_seconds,
        )
        account.completed_c.add(1)
        handle._resolve()
        # Freed quota may unblock backpressured submissions; re-admission
        # happens at the completion's simulated time, deterministically.
        self._pump(event.time)

    # ------------------------------------------------------------ backpressure
    def _pump(self, now: float) -> None:
        """Admit queued submissions that now fit, FIFO per tenant.

        Tenants are visited in sorted-name order and each tenant's queue is
        strictly head-blocking (a blocked head shields later jobs — that is
        the backpressure ordering guarantee), so re-admission order is a
        pure function of the event history.
        """
        for tenant in sorted(self._backpressure):
            queue = self._backpressure[tenant]
            account = self._accounts[tenant]
            while queue:
                handle = queue[0]
                decision = self.admission.decide(
                    account, handle.job, handle.estimate_gpu_seconds
                )
                if decision is AdmissionDecision.ACCEPT:
                    queue.popleft()
                    account.queued -= 1
                    self._admit(handle, max(handle.job.arrival_time, now))
                elif decision is AdmissionDecision.REJECT:
                    queue.popleft()
                    account.queued -= 1
                    handle._service_status = _ST_REJECTED
                    account.rejected_c.add(1)
                    handle._resolve()
                    self._emitter.emit(
                        now, EV_SUBMIT, job=handle.name,
                        detail=f"reject:{tenant}",
                    )
                else:
                    break

    # -------------------------------------------------------------------- time
    def _advance_sync(self, time: float) -> int:
        """Synchronous ``advance_to`` (recovery replay runs outside asyncio)."""
        engine = self._engine
        steps = 0
        while True:
            peek = engine.queue.peek_time()
            if peek is None or peek >= time:
                break
            engine.step()
            steps += 1
        engine.clock = max(engine.clock, time)
        return steps

    async def advance_to(self, time: float, yield_every: int = 256) -> int:
        """Process every event strictly before ``time``; returns the count.

        Yields to the event loop every ``yield_every`` engine steps so
        ``watch()`` consumers and ``wait()``-ers interleave with a long
        advance.
        """
        engine = self._engine
        steps = 0
        while True:
            peek = engine.queue.peek_time()
            if peek is None or peek >= time:
                break
            engine.step()
            steps += 1
            if yield_every and steps % yield_every == 0:
                await asyncio.sleep(0)
        engine.clock = max(engine.clock, time)
        if steps:
            await asyncio.sleep(0)
        return steps

    async def drain(self, yield_every: int = 256) -> int:
        """Run the engine to quiescence; returns the number of steps.

        Backpressured submissions that still cannot be admitted when the
        cluster has gone idle (their tenant's quota is permanently
        exhausted) are resolved as rejected — a drained service leaves no
        submission unresolved.
        """
        engine = self._engine
        steps = 0
        while True:
            while engine.queue:
                engine.step()
                steps += 1
                if yield_every and steps % yield_every == 0:
                    await asyncio.sleep(0)
            # Completions pump the queues as they happen; one more pump at
            # quiescence catches holds released by trailing cancellations.
            self._pump(engine.clock)
            if not engine.queue:
                break
        self._starve_queued(engine.clock)
        await asyncio.sleep(0)
        return steps

    def _starve_queued(self, now: float) -> None:
        for tenant in sorted(self._backpressure):
            queue = self._backpressure[tenant]
            account = self._accounts[tenant]
            while queue:
                handle = queue.popleft()
                account.queued -= 1
                handle._service_status = _ST_REJECTED
                account.rejected_c.add(1)
                handle._resolve()
                self._emitter.emit(
                    now, EV_SUBMIT, job=handle.name,
                    detail=f"starved:{tenant}",
                )

    async def close(self) -> None:
        """Close every ``watch()`` stream and refuse further submissions."""
        self._closed = True
        if self._journal is not None:
            self._journal.close()
        for queue, _ in self._watchers:
            queue.put_nowait(_WATCH_CLOSED)
        await asyncio.sleep(0)
