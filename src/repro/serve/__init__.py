"""``repro.serve`` — the online scheduler service.

The live counterpart of offline trace replay: a single-process asyncio
service wrapping :class:`~repro.sched.scheduler.ClusterScheduler` behind a
virtual-clock event loop, with multi-tenant admission control and a
replay-to-live bridge that is held to bit-identical metrics against the
offline path.

Public API:

* :class:`~repro.serve.service.SchedulerService` — ``submit`` / ``cancel``
  / ``query`` / ``cluster_state`` / async-iterator ``watch()``, driven by
  ``advance_to`` / ``drain`` over simulated time.
* :class:`~repro.serve.admission.AdmissionPolicy` /
  :class:`~repro.serve.admission.QuotaAdmission` /
  :class:`~repro.serve.admission.AcceptAll` with
  :class:`~repro.serve.admission.TenantQuota` /
  :class:`~repro.serve.admission.TenantAccount` — per-tenant GPU-second
  quotas, max-pending caps, accept / reject / queue-with-backpressure.
* :func:`~repro.serve.replay.replay_trace` /
  :class:`~repro.serve.replay.ReplayReport` /
  :func:`~repro.serve.replay.result_fingerprint` — the bridge and its
  parity proof.

``python -m repro.serve smoke`` bridges a trace and asserts offline/service
fingerprint equality byte for byte (the CI smoke job).
"""

from .admission import (
    AcceptAll,
    AdmissionDecision,
    AdmissionPolicy,
    QuotaAdmission,
    TenantAccount,
    TenantQuota,
)
from .replay import (
    ReplayReport,
    replay_trace,
    replay_trace_sync,
    result_fingerprint,
)
from .service import JobHandle, JobInfo, SchedulerService, default_tenant

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AcceptAll",
    "QuotaAdmission",
    "TenantQuota",
    "TenantAccount",
    "SchedulerService",
    "JobHandle",
    "JobInfo",
    "default_tenant",
    "ReplayReport",
    "replay_trace",
    "replay_trace_sync",
    "result_fingerprint",
]
