"""``repro.serve`` — the online scheduler service.

The live counterpart of offline trace replay: a single-process asyncio
service wrapping :class:`~repro.sched.scheduler.ClusterScheduler` behind a
virtual-clock event loop, with multi-tenant admission control and a
replay-to-live bridge that is held to bit-identical metrics against the
offline path.

Public API:

* :class:`~repro.serve.service.SchedulerService` — ``submit`` / ``cancel``
  / ``query`` / ``cluster_state`` / async-iterator ``watch()``, driven by
  ``advance_to`` / ``drain`` over simulated time.
* :class:`~repro.serve.admission.AdmissionPolicy` /
  :class:`~repro.serve.admission.QuotaAdmission` /
  :class:`~repro.serve.admission.AcceptAll` with
  :class:`~repro.serve.admission.TenantQuota` /
  :class:`~repro.serve.admission.TenantAccount` — per-tenant GPU-second
  quotas, max-pending caps, accept / reject / queue-with-backpressure.
* :func:`~repro.serve.replay.replay_trace` /
  :class:`~repro.serve.replay.ReplayReport` /
  :func:`~repro.serve.replay.result_fingerprint` — the bridge and its
  parity proof.
* :class:`~repro.serve.journal.IntentJournal` /
  :func:`~repro.serve.recovery.recover_service` /
  :func:`~repro.serve.recovery.write_snapshot` — crash safety: a
  write-ahead journal of service intents, snapshot-anchored recovery with
  graceful degradation, and a :class:`~repro.serve.recovery.RecoveryReport`
  quantifying any loss.
* :class:`~repro.serve.chaos.CrashPlan` /
  :func:`~repro.serve.chaos.run_crash_plan` — the seeded crash-fault
  harness that SIGKILLs a live service and asserts recovered-vs-
  uninterrupted fingerprint parity.

``python -m repro.serve smoke`` bridges a trace and asserts offline/service
fingerprint equality byte for byte (the CI smoke job); ``--crash N`` runs
the same workload through N seeded kill/recover cycles first.
"""

from .admission import (
    AcceptAll,
    AdmissionDecision,
    AdmissionPolicy,
    QuotaAdmission,
    TenantAccount,
    TenantQuota,
)
from .chaos import ChaosReport, CrashPlan, CrashPoint, run_crash_plan
from .journal import IntentJournal, JournalRecord, JournalScan, scan_journal
from .recovery import (
    RecoveryReport,
    list_snapshots,
    load_snapshot,
    recover_service,
    write_snapshot,
)
from .replay import (
    ReplayReport,
    replay_trace,
    replay_trace_sync,
    result_fingerprint,
)
from .service import JobHandle, JobInfo, SchedulerService, default_tenant

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AcceptAll",
    "QuotaAdmission",
    "TenantQuota",
    "TenantAccount",
    "SchedulerService",
    "JobHandle",
    "JobInfo",
    "default_tenant",
    "ReplayReport",
    "replay_trace",
    "replay_trace_sync",
    "result_fingerprint",
    "IntentJournal",
    "JournalRecord",
    "JournalScan",
    "scan_journal",
    "RecoveryReport",
    "recover_service",
    "write_snapshot",
    "load_snapshot",
    "list_snapshots",
    "ChaosReport",
    "CrashPlan",
    "CrashPoint",
    "run_crash_plan",
]
