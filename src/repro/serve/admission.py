"""Multi-tenant admission control for the online scheduler service.

Every submission is priced *before* it reaches the engine: the service
estimates the job's single-GPU compute (``iterations × iso_iter_time`` on
the fleet's reference pool — exactly the ``remaining_gpu_seconds`` figure
scheduling policies sort by) and asks the :class:`AdmissionPolicy` to
accept, queue, or reject it against the tenant's :class:`TenantAccount`.

Accounting follows a commit/settle discipline:

* **admit** — the estimate is *committed* against the tenant's GPU-second
  quota (held, not yet spent);
* **settle** — at completion or cancellation the hold is released and the
  job's *actual* consumption is charged: ``busy_gpu_seconds +
  lost_gpu_seconds``, the same accounting the offline scheduler reports in
  its :class:`~repro.sched.metrics.JobRecord`.  A job cancelled while still
  pending consumed nothing, so settling it refunds the full hold.

Actual consumption can exceed the estimate (collocation slowdowns and
failure rollbacks are not foreseen at admit time); quotas bound *intent* at
admission and charge *truth* at settlement.  Every settle pairs exactly one
admit, so committed holds can never go negative — a property the test suite
checks under arbitrary submit/cancel interleavings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Optional

from ..obs.metrics import global_registry
from ..sched.traces import TraceJob

__all__ = [
    "AdmissionDecision",
    "TenantQuota",
    "TenantAccount",
    "AdmissionPolicy",
    "AcceptAll",
    "QuotaAdmission",
]


class AdmissionDecision(str, Enum):
    """What the service does with one submission."""

    ACCEPT = "accept"
    QUEUE = "queue"
    REJECT = "reject"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds.

    Attributes
    ----------
    gpu_seconds:
        Total GPU-second budget (committed holds + settled charges may
        never exceed it).  Defaults to unlimited.
    max_pending:
        Cap on the tenant's not-yet-running submissions (engine-pending
        plus service-queued).  ``None`` means uncapped.
    """

    gpu_seconds: float = math.inf
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gpu_seconds <= 0:
            raise ValueError("gpu_seconds quota must be positive")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")


class TenantAccount:
    """Live accounting for one tenant (created lazily at first submission).

    ``committed``/``used`` are the GPU-second ledger described in the module
    docstring; the job counters double as :mod:`repro.obs` registry counters
    (``serve.tenant.<name>.*``) so service runs show up in the same metrics
    snapshots as everything else.
    """

    def __init__(self, name: str, quota: TenantQuota) -> None:
        self.name = name
        self.quota = quota
        #: GPU-second holds for admitted-but-unsettled jobs.
        self.committed = 0.0
        #: GPU-seconds actually consumed by settled jobs.
        self.used = 0.0
        #: Jobs admitted to the engine but not yet placed.
        self.engine_pending = 0
        #: Jobs held in the service's backpressure queue.
        self.queued = 0
        registry = global_registry()
        prefix = f"serve.tenant.{name}"
        # Scoped (per-account) counters rolling up into the registered
        # ``serve.tenant.<name>.*`` aggregates: a recovered service restores
        # its own ledger exactly without re-counting another instance's
        # traffic, while process-wide totals still accumulate.
        self.submitted_c = registry.scoped_counter(f"{prefix}.submitted")
        self.admitted_c = registry.scoped_counter(f"{prefix}.admitted")
        self.queued_c = registry.scoped_counter(f"{prefix}.queued")
        self.rejected_c = registry.scoped_counter(f"{prefix}.rejected")
        self.completed_c = registry.scoped_counter(f"{prefix}.completed")
        self.cancelled_c = registry.scoped_counter(f"{prefix}.cancelled")

    @property
    def available(self) -> float:
        """GPU-seconds the tenant can still commit."""
        return self.quota.gpu_seconds - self.used - self.committed

    @property
    def pending_total(self) -> int:
        """Submissions not yet running (engine-pending + service-queued)."""
        return self.engine_pending + self.queued

    def admit(self, estimate: float) -> None:
        """Hold ``estimate`` GPU-seconds against the quota."""
        self.committed += estimate

    def settle(self, estimate: float, charge: float) -> None:
        """Release one admit's hold and charge actual consumption.

        The hold is subtracted exactly as it was added; a sub-epsilon
        float residue from summation order is clamped so ``committed``
        is zero whenever no holds are outstanding.
        """
        self.committed -= estimate
        if self.committed < 0.0:
            self.committed = 0.0
        self.used += charge

    def snapshot(self) -> Dict[str, float]:
        """One tenant's ledger as a plain dict (for ``cluster_state()``)."""
        return {
            "quota_gpu_seconds": self.quota.gpu_seconds,
            "committed_gpu_seconds": self.committed,
            "used_gpu_seconds": self.used,
            "available_gpu_seconds": self.available,
            "engine_pending": self.engine_pending,
            "queued": self.queued,
            "submitted": self.submitted_c.value,
            "admitted": self.admitted_c.value,
            "rejected": self.rejected_c.value,
            "completed": self.completed_c.value,
            "cancelled": self.cancelled_c.value,
        }

    def restore_ledger(
        self,
        committed: float,
        used: float,
        engine_pending: int,
        queued: int,
        counters: Mapping[str, int],
    ) -> None:
        """Set the ledger to a snapshotted state (crash recovery only).

        Counters are scoped to this account, so setting them exactly cannot
        perturb another service instance; the parent aggregates absorb the
        restored totals as ordinary increments.
        """
        self.committed = committed
        self.used = used
        self.engine_pending = engine_pending
        self.queued = queued
        for key, counter in (
            ("submitted", self.submitted_c),
            ("admitted", self.admitted_c),
            ("queued", self.queued_c),
            ("rejected", self.rejected_c),
            ("completed", self.completed_c),
            ("cancelled", self.cancelled_c),
        ):
            counter.add(counters[key] - counter.value)


class AdmissionPolicy:
    """Decides what happens to one submission (accept / queue / reject)."""

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota a new account for ``tenant`` starts with."""
        return TenantQuota()

    def decide(
        self, account: TenantAccount, job: TraceJob, estimate: float
    ) -> AdmissionDecision:
        raise NotImplementedError


class AcceptAll(AdmissionPolicy):
    """No admission control — every submission is admitted immediately.

    This is the replay-parity configuration: a bridged trace must reach the
    engine unfiltered to reproduce the offline run.
    """

    def decide(
        self, account: TenantAccount, job: TraceJob, estimate: float
    ) -> AdmissionDecision:
        return AdmissionDecision.ACCEPT


class QuotaAdmission(AdmissionPolicy):
    """Quota-bounded admission with queue-with-backpressure or hard reject.

    A submission whose estimate exceeds the tenant's *total* quota can never
    be admitted and is rejected outright.  One that merely does not fit
    *right now* (quota headroom exhausted by holds, or ``max_pending``
    saturated) gets the ``on_saturated`` decision — ``QUEUE`` (default)
    parks it in the service's per-tenant FIFO until settlements free
    headroom; ``REJECT`` sheds it immediately.
    """

    def __init__(
        self,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default: Optional[TenantQuota] = None,
        on_saturated: AdmissionDecision = AdmissionDecision.QUEUE,
    ) -> None:
        if on_saturated not in (AdmissionDecision.QUEUE, AdmissionDecision.REJECT):
            raise ValueError("on_saturated must be QUEUE or REJECT")
        self.quotas = dict(quotas) if quotas else {}
        self.default = default if default is not None else TenantQuota()
        self.on_saturated = on_saturated

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Replace one tenant's quota (new accounts pick it up immediately).

        Live accounts are re-pointed by
        :meth:`~repro.serve.service.SchedulerService.set_quota`, which
        journals the change so recovery reconstructs the same bounds.
        """
        self.quotas[tenant] = quota

    def decide(
        self, account: TenantAccount, job: TraceJob, estimate: float
    ) -> AdmissionDecision:
        quota = account.quota
        if estimate > quota.gpu_seconds:
            return AdmissionDecision.REJECT  # can never fit, even alone
        if (
            quota.max_pending is not None
            and account.pending_total >= quota.max_pending
        ):
            return self.on_saturated
        if estimate > account.available:
            return self.on_saturated
        return AdmissionDecision.ACCEPT
