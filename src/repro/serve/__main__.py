"""Command-line entry point: ``python -m repro.serve``.

``smoke`` runs the replay-to-live parity check CI gates on: the same trace
is simulated twice — offline through ``ClusterScheduler.run`` and live
through a bridged :class:`~repro.serve.service.SchedulerService` — and the
two :func:`~repro.serve.replay.result_fingerprint` digests must match byte
for byte.  The service side records its full obs event stream (engine
events *and* service submit markers) and writes it as a Chrome trace next
to a JSON summary, which CI uploads as a workflow artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..obs.trace import TraceRecorder
from ..sched import ClusterScheduler, alibaba_trace, mixed_trace, synthetic_trace
from .replay import replay_trace_sync, result_fingerprint
from .service import SchedulerService

_GENERATORS = {
    "synthetic": synthetic_trace,
    "alibaba": alibaba_trace,
    "mixed": mixed_trace,
}


def _cmd_smoke(args: argparse.Namespace) -> int:
    trace = _GENERATORS[args.trace](args.num_jobs, seed=args.seed)
    print(
        f"smoke: trace={args.trace} jobs={len(trace)} gpus={args.num_gpus} "
        f"policy={args.policy} seed={args.seed}"
    )

    offline = ClusterScheduler(args.num_gpus, fabric=args.fabric).run(
        trace, args.policy
    )
    offline_fp = result_fingerprint(offline)
    print(f"offline : events={offline.events_processed} fp={offline_fp}")

    recorder = TraceRecorder()
    service = SchedulerService(
        ClusterScheduler(args.num_gpus, fabric=args.fabric),
        policy=args.policy,
        recorder=recorder,
    )
    report = replay_trace_sync(service, trace)
    service_fp = report.fingerprint()
    print(
        f"service : events={report.result.events_processed} fp={service_fp} "
        f"(submit path: {report.jobs} jobs in {report.submit_seconds:.4f}s, "
        f"{report.submissions_per_sec:,.0f}/s)"
    )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = recorder.write_chrome_trace(out / "serve_trace.json")
    summary = {
        "trace": args.trace,
        "num_jobs": args.num_jobs,
        "num_gpus": args.num_gpus,
        "policy": args.policy,
        "seed": args.seed,
        "offline_fingerprint": offline_fp,
        "service_fingerprint": service_fp,
        "match": offline_fp == service_fp,
        "completed": report.completed,
        "submissions_per_sec": report.submissions_per_sec,
        "recorded_events": len(recorder),
    }
    summary_path = out / "serve_summary.json"
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"artifacts: {trace_path}, {summary_path}")

    if offline_fp != service_fp:
        print("FAIL: bridged replay diverged from the offline run")
        return 1
    print("OK: bridged replay matches the offline run byte for byte")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Online scheduler service utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser(
        "smoke",
        help="bridge a trace through the service and assert offline parity",
    )
    smoke.add_argument(
        "--trace", choices=sorted(_GENERATORS), default="synthetic"
    )
    smoke.add_argument("--num-jobs", type=int, default=500)
    smoke.add_argument("--num-gpus", type=int, default=256)
    smoke.add_argument("--seed", type=int, default=11)
    smoke.add_argument("--policy", default="collocation")
    smoke.add_argument("--fabric", default="nvswitch")
    smoke.add_argument(
        "--out", default="serve-artifacts", help="artifact output directory"
    )
    smoke.set_defaults(fn=_cmd_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
