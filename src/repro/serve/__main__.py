"""Command-line entry point: ``python -m repro.serve``.

``smoke`` runs the replay-to-live parity check CI gates on: the same trace
is simulated twice — offline through ``ClusterScheduler.run`` and live
through a bridged :class:`~repro.serve.service.SchedulerService` — and the
two :func:`~repro.serve.replay.result_fingerprint` digests must match byte
for byte.  The service side records its full obs event stream (engine
events *and* service submit markers) and writes it as a Chrome trace next
to a JSON summary, which CI uploads as a workflow artifact.

``smoke --crash N`` additionally runs the crash-fault harness
(:mod:`repro.serve.chaos`) first: the same workload parameters drive a
durable service through N seeded SIGKILL/recover cycles in subprocesses,
and the recovered end state must match the uninterrupted one byte for
byte.  ``chaos-worker`` is the internal subcommand those subprocesses run.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from ..obs.trace import TraceRecorder
from ..sched import ClusterScheduler, alibaba_trace, mixed_trace, synthetic_trace
from .chaos import CrashPlan, CrashPoint, default_spec, run_chaos_worker, run_crash_plan
from .replay import replay_trace_sync, result_fingerprint
from .service import SchedulerService

_GENERATORS = {
    "synthetic": synthetic_trace,
    "alibaba": alibaba_trace,
    "mixed": mixed_trace,
}


def _cmd_smoke(args: argparse.Namespace) -> int:
    trace = _GENERATORS[args.trace](args.num_jobs, seed=args.seed)
    print(
        f"smoke: trace={args.trace} jobs={len(trace)} gpus={args.num_gpus} "
        f"policy={args.policy} seed={args.seed}"
    )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.crash:
        code = _run_crash_smoke(args, out)
        if code != 0:
            return code

    offline = ClusterScheduler(args.num_gpus, fabric=args.fabric).run(
        trace, args.policy
    )
    offline_fp = result_fingerprint(offline)
    print(f"offline : events={offline.events_processed} fp={offline_fp}")

    recorder = TraceRecorder()
    service = SchedulerService(
        ClusterScheduler(args.num_gpus, fabric=args.fabric),
        policy=args.policy,
        recorder=recorder,
    )
    report = replay_trace_sync(service, trace)
    service_fp = report.fingerprint()
    print(
        f"service : events={report.result.events_processed} fp={service_fp} "
        f"(submit path: {report.jobs} jobs in {report.submit_seconds:.4f}s, "
        f"{report.submissions_per_sec:,.0f}/s)"
    )

    trace_path = recorder.write_chrome_trace(out / "serve_trace.json")
    summary = {
        "trace": args.trace,
        "num_jobs": args.num_jobs,
        "num_gpus": args.num_gpus,
        "policy": args.policy,
        "seed": args.seed,
        "offline_fingerprint": offline_fp,
        "service_fingerprint": service_fp,
        "match": offline_fp == service_fp,
        "completed": report.completed,
        "submissions_per_sec": report.submissions_per_sec,
        "recorded_events": len(recorder),
    }
    summary_path = out / "serve_summary.json"
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"artifacts: {trace_path}, {summary_path}")

    if offline_fp != service_fp:
        print("FAIL: bridged replay diverged from the offline run")
        return 1
    print("OK: bridged replay matches the offline run byte for byte")
    return 0


def _run_crash_smoke(args: argparse.Namespace, out: Path) -> int:
    """Kill-loop smoke: N seeded crash/recover cycles must end byte-identical."""
    spec = default_spec(
        num_jobs=min(args.num_jobs, 150),
        num_gpus=args.num_gpus,
        seed=args.seed,
        policy=args.policy,
        generator=args.trace,
        fabric=args.fabric,
    )
    plan = CrashPlan.seeded(args.crash_seed, args.crash)
    print(
        f"chaos   : {len(plan.points)} seeded crash points "
        f"(seed={args.crash_seed}): "
        + ", ".join(
            f"{p.kind}@{p.at}" + (f"+{p.torn_bytes}b" if p.kind == "append" else "")
            for p in plan.points
        )
    )
    with tempfile.TemporaryDirectory(prefix="serve-chaos-") as workdir:
        report = run_crash_plan(
            plan, spec, workdir, trace_out=out / "chaos_recovery_trace.json"
        )
    summary = {
        "crash_points": [
            {"kind": p.kind, "at": p.at, "torn_bytes": p.torn_bytes}
            for p in plan.points
        ],
        "crashes": report.crashes,
        "unreached": report.unreached,
        "baseline_fingerprint": report.baseline_fingerprint,
        "final_fingerprint": report.final_fingerprint,
        "tenants_match": report.tenants_match,
        "recoveries": report.recoveries,
        "ok": report.ok,
    }
    (out / "chaos_summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"chaos   : crashes={report.crashes} unreached={report.unreached} "
        f"baseline={report.baseline_fingerprint} final={report.final_fingerprint} "
        f"tenants_match={report.tenants_match}"
    )
    if not report.ok:
        print("FAIL: recovered run diverged from the uninterrupted run")
        return 1
    print("OK: every crash/recover cycle converged to the uninterrupted state")
    return 0


def _cmd_chaos_worker(args: argparse.Namespace) -> int:
    """Internal: one crash-harness worker run (may SIGKILL itself)."""
    spec = json.loads(args.spec)
    crash = None
    if args.crash_kind:
        crash = CrashPoint(args.crash_kind, args.crash_at, args.torn_bytes)
    state = run_chaos_worker(
        spec,
        args.dir if args.dir != "-" else None,
        crash=crash,
        trace_out=args.trace_out,
    )
    print(json.dumps(state, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Online scheduler service utilities.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    smoke = sub.add_parser(
        "smoke",
        help="bridge a trace through the service and assert offline parity",
    )
    smoke.add_argument(
        "--trace", choices=sorted(_GENERATORS), default="synthetic"
    )
    smoke.add_argument("--num-jobs", type=int, default=500)
    smoke.add_argument("--num-gpus", type=int, default=256)
    smoke.add_argument("--seed", type=int, default=11)
    smoke.add_argument("--policy", default="collocation")
    smoke.add_argument("--fabric", default="nvswitch")
    smoke.add_argument(
        "--out", default="serve-artifacts", help="artifact output directory"
    )
    smoke.add_argument(
        "--crash",
        type=int,
        default=0,
        metavar="N",
        help="run the crash-fault harness first: N seeded SIGKILL/recover "
        "cycles that must end byte-identical to the uninterrupted run",
    )
    smoke.add_argument("--crash-seed", type=int, default=1337)
    smoke.set_defaults(fn=_cmd_smoke)

    worker = sub.add_parser(
        "chaos-worker",
        help="internal: one crash-harness worker run (may SIGKILL itself)",
    )
    worker.add_argument(
        "--dir",
        required=True,
        help="durable state directory ('-' = baseline, no journal)",
    )
    worker.add_argument("--spec", required=True, help="workload spec as JSON")
    worker.add_argument("--crash-kind", choices=["step", "append"], default="")
    worker.add_argument("--crash-at", type=int, default=0)
    worker.add_argument("--torn-bytes", type=int, default=0)
    worker.add_argument("--trace-out", default=None)
    worker.set_defaults(fn=_cmd_chaos_worker)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
