"""Per-operator slowdown feedback loop.

DeepPool's execution engine "monitors the runtimes of each operation, and
pauses collocation when a foreground job runs an operator that has been
observed to suffer large slowdowns" (paper Section 5).  The monitor compares
observed per-operator durations under collocation against the durations
measured in isolation and flags operators whose slowdown exceeds a threshold;
the executor then excludes background work around those operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ...gpu.device import TaskStats

__all__ = ["OperatorSlowdown", "SlowdownMonitor"]


@dataclass(frozen=True)
class OperatorSlowdown:
    """Observed slowdown of one operator under collocation."""

    name: str
    isolated_time: float
    collocated_time: float

    @property
    def slowdown(self) -> float:
        if self.isolated_time <= 0:
            return 1.0
        return self.collocated_time / self.isolated_time


@dataclass
class SlowdownMonitor:
    """Flags operators whose collocated runtime exceeds a slowdown threshold."""

    threshold: float = 1.5
    observations: Dict[str, OperatorSlowdown] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.threshold < 1.0:
            raise ValueError("threshold must be at least 1.0")

    # ------------------------------------------------------------------ feed
    def observe(self, isolated: TaskStats, collocated: TaskStats) -> None:
        """Record per-operator durations from two simulation runs."""
        for name, iso_total in isolated.kernel_time_by_name.items():
            iso_count = isolated.kernel_count_by_name.get(name, 0)
            col_count = collocated.kernel_count_by_name.get(name, 0)
            if iso_count == 0 or col_count == 0:
                continue
            iso_mean = iso_total / iso_count
            col_mean = collocated.kernel_time_by_name[name] / col_count
            self.observations[name] = OperatorSlowdown(
                name=name, isolated_time=iso_mean, collocated_time=col_mean
            )

    def observe_durations(
        self, isolated: Mapping[str, float], collocated: Mapping[str, float]
    ) -> None:
        """Record per-operator mean durations directly (for unit tests)."""
        for name, iso in isolated.items():
            if name not in collocated:
                continue
            self.observations[name] = OperatorSlowdown(
                name=name, isolated_time=iso, collocated_time=collocated[name]
            )

    # ----------------------------------------------------------------- query
    def sensitive_operators(self) -> List[str]:
        """Operators whose slowdown exceeds the threshold (collocation banned)."""
        return sorted(
            name
            for name, obs in self.observations.items()
            if obs.slowdown > self.threshold
        )

    def slowdown_of(self, name: str) -> float:
        if name not in self.observations:
            return 1.0
        return self.observations[name].slowdown

    def worst(self) -> OperatorSlowdown | None:
        """The operator suffering the largest slowdown, if any was observed."""
        if not self.observations:
            return None
        return max(self.observations.values(), key=lambda o: o.slowdown)
