"""GPU multiplexing (the paper's Section 5).

Public API:

* :class:`~repro.core.multiplexing.config.MultiplexConfig` and
  :func:`~repro.core.multiplexing.config.figure11_stages` — mechanism
  configuration and the Figure 11 ablation stages.
* :class:`~repro.core.multiplexing.collocation.GPUCollocationRunner` —
  foreground/background collocation scenarios on the simulated GPU.
* :func:`~repro.core.multiplexing.collocation.pairwise_collocation_matrix` —
  the Figure 12 synthetic-kernel matrix.
* :class:`~repro.core.multiplexing.slowdown.SlowdownMonitor` — the
  per-operator slowdown feedback loop.
"""

from .config import MultiplexConfig, figure11_stages
from .collocation import (
    CollocationResult,
    GPUCollocationRunner,
    PairwiseCollocationCell,
    pairwise_collocation_matrix,
)
from .slowdown import OperatorSlowdown, SlowdownMonitor

__all__ = [
    "MultiplexConfig",
    "figure11_stages",
    "GPUCollocationRunner",
    "CollocationResult",
    "PairwiseCollocationCell",
    "pairwise_collocation_matrix",
    "SlowdownMonitor",
    "OperatorSlowdown",
]
