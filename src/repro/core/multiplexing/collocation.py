"""Collocation experiments: foreground QoS vs background throughput.

Drives the GPU device simulator to answer the paper's multiplexing questions:

* how much background throughput can be packed onto a GPU next to a
  strong-scaled foreground job, and at what cost to the foreground
  (Figures 9 and 11);
* which mechanisms are responsible for preserving foreground QoS
  (Figure 11's cumulative ablation);
* which kernel shapes collocate well under a non-preemptive scheduler
  (Figure 12's pairwise synthetic-kernel matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...gpu.device import DeviceConfig, GPUSimulator, SimulationResult
from ...gpu.kernel import TaskWorkload
from ...gpu.workload import TrainingTaskBuilder, synthetic_workload
from ...models.graph import ModelGraph
from ...network.fabric import NetworkFabric
from ...profiler.layer_profiler import LayerProfiler
from .config import MultiplexConfig, figure11_stages
from .slowdown import SlowdownMonitor

__all__ = [
    "CollocationResult",
    "GPUCollocationRunner",
    "PairwiseCollocationCell",
    "pairwise_collocation_matrix",
]

#: Stream priorities used for the two jobs.
FG_PRIORITY = 1
BG_PRIORITY = 0


@dataclass(frozen=True)
class CollocationResult:
    """Outcome of one collocation scenario on a single GPU."""

    label: str
    fg_throughput: float
    bg_throughput: float
    fg_isolated_throughput: float
    device_utilization: float

    @property
    def fg_slowdown(self) -> float:
        """Foreground slowdown factor relative to running alone (>= ~1)."""
        if self.fg_throughput <= 0:
            return float("inf")
        return self.fg_isolated_throughput / self.fg_throughput

    @property
    def fg_qos(self) -> float:
        """Fraction of isolated foreground throughput retained (0..1]."""
        if self.fg_isolated_throughput <= 0:
            return 1.0
        return min(1.0, self.fg_throughput / self.fg_isolated_throughput)

    @property
    def total_throughput(self) -> float:
        return self.fg_throughput + self.bg_throughput


class GPUCollocationRunner:
    """Runs foreground/background collocation scenarios on the simulated GPU."""

    def __init__(
        self,
        profiler: Optional[LayerProfiler] = None,
        fabric: Optional[NetworkFabric] = None,
        sim_time: float = 0.25,
    ) -> None:
        if sim_time <= 0:
            raise ValueError("sim_time must be positive")
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.fabric = fabric
        self.builder = TrainingTaskBuilder(self.profiler, fabric)
        self.sim_time = sim_time

    # ----------------------------------------------------------------- tasks
    def _fg_task(
        self,
        graph: ModelGraph,
        per_gpu_batch: int,
        config: MultiplexConfig,
        sync_gpus: int,
    ) -> TaskWorkload:
        return self.builder.build_task(
            graph,
            per_gpu_batch,
            task_id="fg",
            priority=FG_PRIORITY if config.use_stream_priorities else BG_PRIORITY,
            use_cuda_graphs=config.use_cuda_graphs,
            graph_split_size=config.graph_split_size,
            max_outstanding_ops=config.fg_outstanding_ops,
            sync_gpus=sync_gpus,
        )

    def _bg_task(
        self, graph: ModelGraph, config: MultiplexConfig
    ) -> TaskWorkload:
        return self.builder.build_task(
            graph,
            config.bg_batch_size,
            task_id="bg",
            priority=BG_PRIORITY,
            use_cuda_graphs=config.use_cuda_graphs,
            graph_split_size=config.graph_split_size,
            max_outstanding_ops=config.bg_outstanding_ops,
            sync_gpus=1,  # background jobs are single-GPU (paper Section 1)
        )

    def _device_config(self, config: MultiplexConfig) -> DeviceConfig:
        return DeviceConfig(
            use_stream_priorities=config.use_stream_priorities,
            exclusive_sensitive_ops=config.slowdown_feedback,
        )

    # ------------------------------------------------------------------ runs
    def run_isolated(
        self,
        graph: ModelGraph,
        per_gpu_batch: int,
        config: MultiplexConfig,
        sync_gpus: int = 1,
    ) -> SimulationResult:
        """Run the foreground job alone on the GPU."""
        fg = self._fg_task(graph, per_gpu_batch, config, sync_gpus)
        sim = GPUSimulator([fg], self._device_config(config))
        return sim.run(self.sim_time)

    def run_scenario(
        self,
        fg_graph: ModelGraph,
        fg_per_gpu_batch: int,
        bg_graph: Optional[ModelGraph],
        config: MultiplexConfig,
        sync_gpus: int = 1,
        label: str = "",
    ) -> CollocationResult:
        """Run one scenario and report foreground/background throughput."""
        isolated = self.run_isolated(fg_graph, fg_per_gpu_batch, config, sync_gpus)
        fg_isolated = isolated.throughput("fg")

        if not config.collocate_background or bg_graph is None:
            return CollocationResult(
                label=label or "isolated",
                fg_throughput=fg_isolated,
                bg_throughput=0.0,
                fg_isolated_throughput=fg_isolated,
                device_utilization=isolated.device_utilization,
            )

        fg = self._fg_task(fg_graph, fg_per_gpu_batch, config, sync_gpus)
        bg = self._bg_task(bg_graph, config)
        sim = GPUSimulator([fg, bg], self._device_config(config))
        result = sim.run(self.sim_time)
        return CollocationResult(
            label=label or "collocated",
            fg_throughput=result.throughput("fg"),
            bg_throughput=result.throughput("bg"),
            fg_isolated_throughput=fg_isolated,
            device_utilization=result.device_utilization,
        )

    def background_only_throughput(
        self, bg_graph: ModelGraph, config: MultiplexConfig
    ) -> float:
        """Throughput of the background job running alone on the GPU."""
        bg = self._bg_task(bg_graph, config)
        sim = GPUSimulator([bg], self._device_config(config))
        return sim.run(self.sim_time).throughput("bg")

    # ------------------------------------------------------------- ablations
    def mechanism_ablation(
        self,
        fg_graph: ModelGraph,
        fg_per_gpu_batch: int,
        bg_graph: ModelGraph,
        sync_gpus: int = 8,
        naive_bg_batch: int = 16,
        reduced_bg_batch: int = 4,
    ) -> List[CollocationResult]:
        """The Figure 11 cumulative-mechanism ablation on one GPU."""
        results = []
        for label, config in figure11_stages(naive_bg_batch, reduced_bg_batch):
            results.append(
                self.run_scenario(
                    fg_graph,
                    fg_per_gpu_batch,
                    bg_graph,
                    config,
                    sync_gpus=sync_gpus,
                    label=label,
                )
            )
        return results

    def measure_slowdowns(
        self,
        fg_graph: ModelGraph,
        fg_per_gpu_batch: int,
        bg_graph: ModelGraph,
        config: MultiplexConfig,
        sync_gpus: int = 8,
    ) -> SlowdownMonitor:
        """Run the slowdown feedback loop's measurement step.

        Compares per-operator foreground durations with and without the
        background job and returns the monitor with its observations, whose
        :meth:`~repro.core.multiplexing.slowdown.SlowdownMonitor.sensitive_operators`
        are the operators DeepPool would exclude from collocation.
        """
        isolated = self.run_isolated(fg_graph, fg_per_gpu_batch, config, sync_gpus)
        fg = self._fg_task(fg_graph, fg_per_gpu_batch, config, sync_gpus)
        bg = self._bg_task(bg_graph, config)
        collocated = GPUSimulator(
            [fg, bg],
            self._device_config(config.with_overrides(slowdown_feedback=False)),
        ).run(self.sim_time)
        monitor = SlowdownMonitor(threshold=config.slowdown_threshold)
        monitor.observe(isolated.task("fg"), collocated.task("fg"))
        return monitor


# ---------------------------------------------------------------------------
# Figure 12: pairwise collocation of synthetic kernels.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PairwiseCollocationCell:
    """One cell of the Figure 12 matrix."""

    high_priority_label: str
    low_priority_label: str
    relative_throughput: float


def pairwise_collocation_matrix(
    kernel_specs: Sequence[Tuple[str, float, float]],
    sim_time: float = 0.2,
    device_config: Optional[DeviceConfig] = None,
) -> List[PairwiseCollocationCell]:
    """Collocate every pair of synthetic kernel types (Figure 12).

    ``kernel_specs`` is a list of ``(label, duration_seconds, occupancy)``
    tuples.  For each (high-priority, low-priority) pair, the high-priority
    kernel stream's achieved throughput is reported as a fraction of its
    throughput when running alone.
    """
    config = device_config if device_config is not None else DeviceConfig(
        use_stream_priorities=True
    )
    cells: List[PairwiseCollocationCell] = []
    isolated_cache: Dict[str, float] = {}

    def isolated_throughput(label: str, duration: float, occupancy: float) -> float:
        if label not in isolated_cache:
            hp = synthetic_workload("hp", duration, occupancy, priority=FG_PRIORITY)
            result = GPUSimulator([hp], config).run(sim_time)
            isolated_cache[label] = result.throughput("hp")
        return isolated_cache[label]

    for hp_label, hp_dur, hp_occ in kernel_specs:
        base = isolated_throughput(hp_label, hp_dur, hp_occ)
        for lp_label, lp_dur, lp_occ in kernel_specs:
            hp = synthetic_workload("hp", hp_dur, hp_occ, priority=FG_PRIORITY)
            lp = synthetic_workload(
                "lp", lp_dur, lp_occ, priority=BG_PRIORITY, max_outstanding_ops=2
            )
            result = GPUSimulator([hp, lp], config).run(sim_time)
            achieved = result.throughput("hp")
            relative = 1.0 if base <= 0 else min(1.0, achieved / base)
            cells.append(
                PairwiseCollocationCell(
                    high_priority_label=hp_label,
                    low_priority_label=lp_label,
                    relative_throughput=relative,
                )
            )
    return cells
