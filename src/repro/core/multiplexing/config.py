"""Multiplexing configuration: the mechanism toggles of the Figure 11 ablation.

DeepPool's execution engine combines several mechanisms to let a low-priority
background job reclaim idle GPU cycles without hurting the foreground job:
CUDA graphs, CUDA stream priorities, launch pacing, a per-operator slowdown
feedback loop, and background batch-size reduction.  :class:`MultiplexConfig`
bundles the switches, and :func:`figure11_stages` enumerates the cumulative
configurations the paper uses to attribute the benefit of each mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

__all__ = ["MultiplexConfig", "figure11_stages"]


@dataclass(frozen=True)
class MultiplexConfig:
    """Configuration of the per-GPU execution engine.

    Attributes
    ----------
    use_cuda_graphs:
        Capture each job's iteration into CUDA graphs (amortizing kernel
        launch overheads).
    collocate_background:
        Whether a background job is run on the GPU at all.
    use_stream_priorities:
        Give the foreground job a higher-priority CUDA stream.
    fg_outstanding_ops / bg_outstanding_ops:
        Launch pacing: maximum launches in flight per job (``None`` =
        unbounded, the naive behaviour).
    slowdown_feedback:
        Pause background launches around foreground operators observed to
        suffer large slowdowns (NCCL all-reduce).
    bg_batch_size:
        Per-GPU batch size of the background job; DeepPool reduces it to keep
        background kernels short on a non-preemptive device.
    graph_split_size:
        Maximum kernels per CUDA-graph launch segment (large graphs are split
        to bound head-of-line blocking).
    slowdown_threshold:
        Observed-vs-isolated duration ratio above which an operator is
        declared collocation-sensitive by the feedback loop.
    """

    use_cuda_graphs: bool = True
    collocate_background: bool = True
    use_stream_priorities: bool = True
    fg_outstanding_ops: Optional[int] = 4
    bg_outstanding_ops: Optional[int] = 2
    slowdown_feedback: bool = True
    bg_batch_size: int = 4
    graph_split_size: Optional[int] = 24
    slowdown_threshold: float = 1.5

    def __post_init__(self) -> None:
        if self.bg_batch_size < 1:
            raise ValueError("bg_batch_size must be at least 1")
        if self.slowdown_threshold < 1.0:
            raise ValueError("slowdown_threshold must be at least 1.0")

    def with_overrides(self, **changes) -> "MultiplexConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)


def figure11_stages(
    naive_bg_batch: int = 16, reduced_bg_batch: int = 4
) -> List[Tuple[str, MultiplexConfig]]:
    """The cumulative mechanism stages of Figure 11, bottom row upward.

    Each stage adds one mechanism on top of the previous stage:

    1. ``VGG BP`` — foreground job only, no CUDA graphs.
    2. ``+ Graph`` — enable CUDA graphs for the foreground job.
    3. ``+ Naive Collocation`` — add the background job with no protection.
    4. ``+ Stream Priorities`` — prioritize the foreground stream.
    5. ``+ Launch Pacing`` — bound outstanding launches per job.
    6. ``+ Slowdown Feedback Loop`` — pause collocation around sensitive ops.
    7. ``+ Reducing BE Batch Size`` — shrink the background batch size.
    """
    stages: List[Tuple[str, MultiplexConfig]] = []
    base = MultiplexConfig(
        use_cuda_graphs=False,
        collocate_background=False,
        use_stream_priorities=False,
        fg_outstanding_ops=4,
        bg_outstanding_ops=None,
        slowdown_feedback=False,
        bg_batch_size=naive_bg_batch,
    )
    stages.append(("VGG BP", base))
    with_graph = base.with_overrides(use_cuda_graphs=True)
    stages.append(("+ Graph", with_graph))
    naive = with_graph.with_overrides(collocate_background=True)
    stages.append(("+ Naive Collocation", naive))
    prio = naive.with_overrides(use_stream_priorities=True)
    stages.append(("+ Stream Priorities", prio))
    paced = prio.with_overrides(bg_outstanding_ops=2)
    stages.append(("+ Launch Pacing", paced))
    feedback = paced.with_overrides(slowdown_feedback=True)
    stages.append(("+ Slowdown Feedback Loop", feedback))
    small_bg = feedback.with_overrides(bg_batch_size=reduced_bg_batch)
    stages.append(("+ Reducing BE Batch Size", small_bg))
    return stages
