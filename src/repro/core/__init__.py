"""DeepPool's core contribution: burst-parallel planning and GPU multiplexing."""

from .planner import (
    BurstParallelPlanner,
    LayerAssignment,
    PlannerConfig,
    TrainingPlan,
)

__all__ = [
    "BurstParallelPlanner",
    "PlannerConfig",
    "TrainingPlan",
    "LayerAssignment",
]
