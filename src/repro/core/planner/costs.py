"""Cost inputs for the burst-parallel planner.

The planner (paper Section 4.1) consumes three cost functions:

* ``comp(i, g)`` — forward+backward compute time of layer ``i`` when its
  share of the global batch is split over ``g`` GPUs;
* ``sync(i, g)`` — gradient all-reduce time for layer ``i`` over ``g`` GPUs;
* ``comm(i, g) -> (j, h)`` — activation/gradient redistribution time between
  consecutive layers that run on different numbers of GPUs.

:class:`PlannerCostModel` provides all three on top of the profiler and
network substrates, with memoization (the planner evaluates each layer at
every candidate GPU count many times during the dynamic program).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...cache import fabric_fingerprint, fingerprint, graph_fingerprint
from ...models.graph import ModelGraph
from ...network.collectives import CollectiveCostModel
from ...network.fabric import NetworkFabric
from ...network.transfer import RedistributionCostModel
from ...profiler.layer_profiler import AMP_DTYPE_BYTES, LayerProfiler, per_gpu_batch

__all__ = ["PlannerCostModel", "candidate_gpu_counts"]


def candidate_gpu_counts(
    total_gpus: int, global_batch: int, powers_of_two_only: bool = True
) -> List[int]:
    """GPU counts the planner may assign to a layer.

    The paper limits the search to powers of two to keep the search space
    small (Section 7.4); the all-integers grid is kept for the ablation
    study.  A layer can never use more GPUs than it has samples to split.
    """
    if total_gpus < 1:
        raise ValueError("total_gpus must be at least 1")
    if global_batch < 1:
        raise ValueError("global_batch must be at least 1")
    limit = min(total_gpus, global_batch)
    if powers_of_two_only:
        counts = []
        g = 1
        while g <= limit:
            counts.append(g)
            g *= 2
        return counts
    return list(range(1, limit + 1))


@dataclass
class PlannerCostModel:
    """Memoized ``comp`` / ``sync`` / ``comm`` / ``Amp`` for one planning run.

    Parameters
    ----------
    graph:
        The model being planned.
    global_batch:
        Global batch size of the foreground job.
    fabric:
        Network fabric connecting the GPUs.
    profiler:
        Layer cost model (defaults to an A100 with CUDA graphs enabled).
    dtype_bytes:
        Bytes per activation / gradient scalar (2 under AMP).
    """

    graph: ModelGraph
    global_batch: int
    fabric: NetworkFabric
    profiler: LayerProfiler = field(default_factory=LayerProfiler)
    dtype_bytes: int = AMP_DTYPE_BYTES

    def __post_init__(self) -> None:
        if self.global_batch < 1:
            raise ValueError("global_batch must be at least 1")
        self.collectives = CollectiveCostModel(self.fabric)
        self.redistribution = RedistributionCostModel(self.fabric)
        self._comp_cache: Dict[Tuple[int, int], float] = {}
        self._sync_cache: Dict[Tuple[int, int], float] = {}
        self._comm_cache: Dict[Tuple[int, int, int], float] = {}
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Content fingerprint of every input this cost model derives from.

        Two cost models with the same fingerprint return identical
        ``comp``/``sync``/``comm`` values for every query, so the digest
        identifies cached planner artifacts (and keeps schedulers with
        different profiler/planner configurations from aliasing plans).
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint(
                "cost-model",
                graph_fingerprint(self.graph),
                self.global_batch,
                fabric_fingerprint(self.fabric),
                self.profiler.fingerprint(),
                self.dtype_bytes,
            )
        return self._fingerprint

    # --------------------------------------------------------------- comp/sync
    def comp(self, layer_id: int, num_gpus: int) -> float:
        """``comp(i, g)``: fwd+bwd compute time of the layer on ``g`` GPUs."""
        key = (layer_id, num_gpus)
        if key not in self._comp_cache:
            spec = self.graph.spec(layer_id)
            batch = per_gpu_batch(self.global_batch, num_gpus)
            self._comp_cache[key] = self.profiler.layer_timing(spec, batch).total_time
        return self._comp_cache[key]

    def sync(self, layer_id: int, num_gpus: int) -> float:
        """``sync(i, g)``: gradient all-reduce time for the layer's parameters."""
        key = (layer_id, num_gpus)
        if key not in self._sync_cache:
            spec = self.graph.spec(layer_id)
            self._sync_cache[key] = self.collectives.gradient_sync_time(
                spec.params, num_gpus, self.dtype_bytes
            )
        return self._sync_cache[key]

    def node_cost(self, layer_id: int, num_gpus: int) -> float:
        """Compute plus gradient-sync time of a layer at a GPU count."""
        return self.comp(layer_id, num_gpus) + self.sync(layer_id, num_gpus)

    # -------------------------------------------------------------------- comm
    def activation_bytes(self, layer_id: int) -> float:
        """Total bytes of the layer's output activations for the global batch."""
        spec = self.graph.spec(layer_id)
        return float(spec.output_elems_per_sample) * self.global_batch * self.dtype_bytes

    def comm(self, src_layer: int, src_gpus: int, dst_layer: int, dst_gpus: int) -> float:
        """``comm(i, g) -> (j, h)``: redistribution cost between two layers."""
        del dst_layer  # cost depends only on the producer's activation volume
        key = (src_layer, src_gpus, dst_gpus)
        cached = self._comm_cache.get(key)
        if cached is None:
            cached = self.redistribution.transition_time(
                self.activation_bytes(src_layer), src_gpus, dst_gpus
            )
            self._comm_cache[key] = cached
        return cached

    # ------------------------------------------------------------------- amp
    def single_gpu_time(self, layer_id: int) -> float:
        """``comp(i, 1)``: the amplification denominator."""
        return self.comp(layer_id, 1)

    def amplification(self, layer_id: int, num_gpus: int, stage_time: float) -> float:
        """GPU-sec amplification of a layer given its realized stage time.

        ``Amp(i, g) = T[i][g] * g / comp(i, 1)`` (paper Section 4.2), where
        ``T`` includes the layer's communication overheads.  Layers with no
        single-GPU compute time (e.g. reshape-only layers) never constrain
        the plan.
        """
        base = self.single_gpu_time(layer_id)
        if base <= 0.0:
            return 0.0
        return stage_time * num_gpus / base
