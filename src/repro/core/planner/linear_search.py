"""Algorithm 1: dynamic-programming search over a chain of stages.

The planner's core is a shortest-path-style dynamic program over a chain of
layers (paper Section 4.2).  For each layer ``i`` and candidate GPU count
``g`` it computes

* ``S[i][g]`` — the shortest time to complete layers ``1..i`` with layer
  ``i`` scaled to ``g`` GPUs, and
* ``T[i][g]`` — the time spent on layer ``i`` along that shortest path
  (including the communication needed to transition into it),

while restricting each layer's *GPU-sec amplification*
``Amp(i, g) = T[i][g] * g / comp(i, 1)`` to the user-given limit.  The
amplification filter follows the paper's Algorithm 1 exactly: a predecessor
whose amplification exceeds the limit is only usable if no predecessor with
lower amplification has been seen yet, which keeps the recurrence total (a
plan always exists) while steering the search toward efficient predecessors.

The solver works over abstract :class:`ChainNode` elements rather than raw
layers so that the multi-chain graph reduction (Figure 7) can feed it
branch/join *blocks* whose transition cost already encodes the branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

from ...obs.metrics import global_registry
from .plan import LayerAssignment

__all__ = ["ChainNode", "ChainSolution", "NodeDecision", "solve_chain"]

# Process-wide total of (node, g, h) relaxations across every solve_chain
# call — added once per solve (not per relaxation) to keep the DP inner loop
# untouched.
_RELAXATIONS = global_registry().counter("planner.relaxations")


class ChainNode(Protocol):
    """One element of the reduced chain: a single layer or a branch/join block."""

    #: Layer id whose activations feed the next chain element.
    exit_layer_id: int

    def candidate_gpus(self) -> Sequence[int]:
        """GPU counts this node may be scaled to."""

    def node_cost(self, num_gpus: int) -> float:
        """Compute + gradient-sync time of the node at a GPU count."""

    def single_gpu_cost(self) -> float:
        """``comp(i, 1)``: amplification denominator for this node."""

    def transition_cost(self, prev_exit_layer: Optional[int], prev_gpus: int,
                        num_gpus: int) -> float:
        """Cost of transitioning from the previous element into this node."""

    def assignments(self, prev_gpus: int, num_gpus: int, stage_time: float,
                    transition_time: float) -> List[LayerAssignment]:
        """Layer assignments realized when this node runs at ``num_gpus``."""


@dataclass(frozen=True)
class NodeDecision:
    """Backtraced decision for one chain element."""

    node_index: int
    num_gpus: int
    stage_time: float
    transition_time: float
    amplification: float


@dataclass
class ChainSolution:
    """Result of the chain dynamic program."""

    decisions: List[NodeDecision]
    total_time: float
    #: Full S table (node index -> {gpus: shortest completion time}).
    s_table: List[Dict[int, float]] = field(default_factory=list)
    #: Full T table (node index -> {gpus: stage time on the shortest path}).
    t_table: List[Dict[int, float]] = field(default_factory=list)
    #: Number of (node, g, h) relaxations evaluated — a deterministic measure
    #: of search work, independent of wall-clock speed.
    relaxations: int = 0

    def gpus_per_node(self) -> List[int]:
        return [d.num_gpus for d in self.decisions]

    def max_amplification(self) -> float:
        return max((d.amplification for d in self.decisions), default=0.0)


def _amplification(node: ChainNode, num_gpus: int, stage_time: float) -> float:
    base = node.single_gpu_cost()
    if base <= 0.0:
        return 0.0
    return stage_time * num_gpus / base


def solve_chain(
    nodes: Sequence[ChainNode],
    amp_limit: float,
    entry_gpus: Sequence[int] = (1,),
    entry_exit_layer: Optional[int] = None,
    entry_base_s: Optional[Dict[int, float]] = None,
) -> ChainSolution:
    """Run Algorithm 1 over a chain of nodes.

    Parameters
    ----------
    nodes:
        The chain elements, in execution order.
    amp_limit:
        User-given GPU-sec amplification limit (``AmpLimit``).
    entry_gpus:
        GPU counts the virtual predecessor of the first node may have.  For a
        whole-model search this is ``(1,)`` with zero cost (the data loader);
        for a branch search inside the graph reduction it is the branching
        layer's fixed GPU count.
    entry_exit_layer:
        Layer id of the virtual predecessor (the branching layer) whose
        activations the first node consumes, or ``None`` for the model input.
    entry_base_s:
        Optional completion time already accumulated at the virtual
        predecessor for each entry GPU count (defaults to zero).
    """
    if not nodes:
        raise ValueError("cannot solve an empty chain")
    if amp_limit < 1.0:
        raise ValueError("amplification limit must be at least 1.0")

    entry_gpus = list(entry_gpus)
    base_s = dict(entry_base_s) if entry_base_s else {g: 0.0 for g in entry_gpus}
    for g in entry_gpus:
        base_s.setdefault(g, 0.0)

    num_nodes = len(nodes)
    s_table: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
    t_table: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
    amp_table: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
    parent: List[Dict[int, int]] = [dict() for _ in range(num_nodes)]
    trans_table: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]

    # Candidate lists are invariant across the DP, so materialize each node's
    # list exactly once instead of re-allocating it in the inner loop.
    all_candidates: List[List[int]] = []
    for i, node in enumerate(nodes):
        candidates = list(node.candidate_gpus())
        if not candidates:
            raise ValueError(f"chain node {i} has no candidate GPU counts")
        all_candidates.append(candidates)

    relaxations = 0
    inf = float("inf")
    for i, node in enumerate(nodes):
        if i == 0:
            prev_candidates = entry_gpus
            prev_exit = entry_exit_layer
            prev_amp_row = None
            prev_s_row = base_s
        else:
            prev_candidates = all_candidates[i - 1]
            prev_exit = nodes[i - 1].exit_layer_id
            prev_amp_row = amp_table[i - 1]
            prev_s_row = s_table[i - 1]
        s_row, t_row = s_table[i], t_table[i]
        trans_row, parent_row, amp_row = trans_table[i], parent[i], amp_table[i]
        transition_cost = node.transition_cost

        for g in all_candidates[i]:
            best_amp = inf
            best_s = inf
            best_t = inf
            best_parent = prev_candidates[0]
            for h in prev_candidates:
                prev_amp = prev_amp_row[h] if prev_amp_row is not None else 0.0
                prev_s = prev_s_row[h]
                trans = transition_cost(prev_exit, h, g)
                relaxations += 1
                # Paper's filter: accept a predecessor if its amplification is
                # within the limit (or no better-amplified predecessor has
                # been found yet) and it improves the completion time.
                if prev_amp <= max(best_amp, amp_limit) and prev_s + trans <= best_s:
                    best_s = prev_s + trans
                    best_t = trans
                    best_amp = min(best_amp, prev_amp)
                    best_parent = h
            stage = node.node_cost(g)
            s_row[g] = best_s + stage
            t_row[g] = best_t + stage
            trans_row[g] = best_t
            parent_row[g] = best_parent
            amp_row[g] = _amplification(node, g, t_row[g])

    # Final selection: the cheapest terminal configuration whose own
    # amplification respects the limit, falling back to the overall cheapest
    # if the limit is infeasible for every width.
    last = num_nodes - 1
    feasible = [g for g in s_table[last] if amp_table[last][g] <= amp_limit]
    pool = feasible if feasible else list(s_table[last].keys())
    final_g = min(pool, key=lambda g: s_table[last][g])

    # Backtrace.
    decisions_rev: List[NodeDecision] = []
    g = final_g
    for i in range(num_nodes - 1, -1, -1):
        decisions_rev.append(
            NodeDecision(
                node_index=i,
                num_gpus=g,
                stage_time=t_table[i][g],
                transition_time=trans_table[i][g],
                amplification=amp_table[i][g],
            )
        )
        g = parent[i][g]
    decisions = list(reversed(decisions_rev))

    _RELAXATIONS.add(relaxations)
    return ChainSolution(
        decisions=decisions,
        total_time=s_table[last][final_g],
        s_table=s_table,
        t_table=t_table,
        relaxations=relaxations,
    )
