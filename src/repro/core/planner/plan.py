"""Training-plan data structures.

The planner's output is a :class:`TrainingPlan`: one :class:`LayerAssignment`
per layer recording how many GPUs the layer bursts to and the time it
contributes to the iteration.  DeepPool submits this plan as JSON to the
cluster coordinator (paper Figure 6); we keep the same JSON round-trip so the
cluster simulator consumes exactly what the planner emits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping

__all__ = ["LayerAssignment", "TrainingPlan"]


@dataclass(frozen=True)
class LayerAssignment:
    """Planned execution of one layer within an iteration.

    Attributes
    ----------
    layer_id:
        Layer id in the model graph.
    layer_name / op:
        Copied from the model graph for readability of serialized plans.
    num_gpus:
        Number of GPUs the layer is scaled to ("burst" width).
    compute_time:
        Forward+backward compute time at that width, seconds.
    sync_time:
        Gradient all-reduce time at that width, seconds.
    comm_time:
        Activation/gradient redistribution paid when transitioning *into*
        this layer from the previous one, seconds.
    parallel_branch:
        True when the layer belongs to a non-critical branch that the planner
        scheduled concurrently with the critical branch of its block; its
        time then does not add to the iteration's critical path.
    """

    layer_id: int
    layer_name: str
    op: str
    num_gpus: int
    compute_time: float
    sync_time: float = 0.0
    comm_time: float = 0.0
    parallel_branch: bool = False

    @property
    def stage_time(self) -> float:
        """Time this layer occupies on its assigned GPUs."""
        return self.compute_time + self.sync_time + self.comm_time

    @property
    def gpu_seconds(self) -> float:
        """Aggregate GPU time consumed by the layer (GPU-sec)."""
        return self.stage_time * self.num_gpus


@dataclass
class TrainingPlan:
    """A complete burst-parallel execution plan for one training iteration."""

    model_name: str
    global_batch: int
    total_gpus: int
    amplification_limit: float
    assignments: List[LayerAssignment] = field(default_factory=list)
    iteration_time: float = 0.0
    search_time: float = 0.0

    # ------------------------------------------------------------- aggregates
    def assignment_for(self, layer_id: int) -> LayerAssignment:
        for a in self.assignments:
            if a.layer_id == layer_id:
                return a
        raise KeyError(f"no assignment for layer {layer_id}")

    def gpu_assignment_map(self) -> Dict[int, int]:
        """Mapping of layer id to assigned GPU count."""
        return {a.layer_id: a.num_gpus for a in self.assignments}

    def max_gpus_used(self) -> int:
        """Widest burst in the plan."""
        return max((a.num_gpus for a in self.assignments), default=0)

    def total_gpu_seconds(self) -> float:
        """GPU-seconds consumed by one iteration of the plan."""
        return sum(a.gpu_seconds for a in self.assignments)

    def critical_path_time(self) -> float:
        """Sum of stage times on the critical path (excludes parallel branches)."""
        return sum(a.stage_time for a in self.assignments if not a.parallel_branch)

    def amplification(self, single_gpu_iteration_time: float) -> float:
        """Plan-level GPU-sec amplification relative to single-GPU execution."""
        if single_gpu_iteration_time <= 0:
            raise ValueError("single_gpu_iteration_time must be positive")
        return self.total_gpu_seconds() / single_gpu_iteration_time

    def average_gpus_busy(self) -> float:
        """Average number of GPUs busy over the iteration.

        The difference between this value and ``total_gpus`` is the capacity
        burst parallelism frees up for background jobs.
        """
        if self.iteration_time <= 0:
            return 0.0
        return self.total_gpu_seconds() / self.iteration_time

    def idle_gpu_fraction(self) -> float:
        """Fraction of the cluster's GPU-time left idle by the foreground job."""
        if self.total_gpus <= 0 or self.iteration_time <= 0:
            return 0.0
        busy = self.total_gpu_seconds() / (self.total_gpus * self.iteration_time)
        return max(0.0, 1.0 - busy)

    def is_pure_data_parallel(self) -> bool:
        """True when every layer uses the same GPU count (no bursting)."""
        widths = {a.num_gpus for a in self.assignments}
        return len(widths) == 1

    # ---------------------------------------------------------------- serdes
    def to_dict(self) -> Dict:
        return {
            "model_name": self.model_name,
            "global_batch": self.global_batch,
            "total_gpus": self.total_gpus,
            "amplification_limit": self.amplification_limit,
            "iteration_time": self.iteration_time,
            "search_time": self.search_time,
            "assignments": [asdict(a) for a in self.assignments],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the plan the way DeepPool submits it to the coordinator."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrainingPlan":
        assignments = [LayerAssignment(**a) for a in data["assignments"]]
        return cls(
            model_name=data["model_name"],
            global_batch=int(data["global_batch"]),
            total_gpus=int(data["total_gpus"]),
            amplification_limit=float(data["amplification_limit"]),
            assignments=assignments,
            iteration_time=float(data["iteration_time"]),
            search_time=float(data.get("search_time", 0.0)),
        )

    @classmethod
    def from_json(cls, payload: str) -> "TrainingPlan":
        return cls.from_dict(json.loads(payload))

    # --------------------------------------------------------------- reporting
    def summary(self) -> str:
        """Human-readable plan summary (one line per distinct burst width run)."""
        lines = [
            f"TrainingPlan for {self.model_name}: global_batch={self.global_batch}, "
            f"gpus={self.total_gpus}, amp_limit={self.amplification_limit:g}",
            f"  iteration_time={self.iteration_time * 1e3:.3f} ms, "
            f"gpu_seconds={self.total_gpu_seconds() * 1e3:.3f} ms, "
            f"avg_busy_gpus={self.average_gpus_busy():.2f}",
        ]
        # Collapse consecutive layers with the same width into runs.
        run_start = 0
        assignments = self.assignments
        for i in range(1, len(assignments) + 1):
            end_of_run = (
                i == len(assignments)
                or assignments[i].num_gpus != assignments[run_start].num_gpus
            )
            if end_of_run:
                first, last = assignments[run_start], assignments[i - 1]
                span = (
                    first.layer_name
                    if first is last
                    else f"{first.layer_name} .. {last.layer_name}"
                )
                total = sum(a.stage_time for a in assignments[run_start:i])
                lines.append(
                    f"  [{first.num_gpus:>3d} GPU] {span}  ({total * 1e3:.3f} ms)"
                )
                run_start = i
        return "\n".join(lines)
