"""Burst-parallel training planner (the paper's Section 4).

Public API:

* :class:`~repro.core.planner.planner.BurstParallelPlanner` — produce burst
  parallel, data-parallel, and single-GPU training plans.
* :class:`~repro.core.planner.plan.TrainingPlan` /
  :class:`~repro.core.planner.plan.LayerAssignment` — the plan artifact
  (JSON-serializable, consumed by the cluster simulator).
* :class:`~repro.core.planner.costs.PlannerCostModel` — the
  ``comp``/``sync``/``comm`` cost inputs.
* :func:`~repro.core.planner.linear_search.solve_chain` — Algorithm 1.
* :func:`~repro.core.planner.graph_reduction.build_chain_nodes` — the
  multi-chain graph reduction (Figure 7).
* :class:`~repro.core.planner.pool.PlannerPool` /
  :class:`~repro.core.planner.pool.PlanRequest` — multiprocess batch
  planning over a shared persistent cache.
"""

from .costs import PlannerCostModel, candidate_gpu_counts
from .graph_reduction import BlockNode, LayerNode, build_chain_nodes
from .linear_search import ChainSolution, NodeDecision, solve_chain
from .plan import LayerAssignment, TrainingPlan
from .planner import BurstParallelPlanner, PlannerConfig
from .pool import PlannerPool, PlanRequest

__all__ = [
    "BurstParallelPlanner",
    "PlannerConfig",
    "PlannerPool",
    "PlanRequest",
    "TrainingPlan",
    "LayerAssignment",
    "PlannerCostModel",
    "candidate_gpu_counts",
    "solve_chain",
    "ChainSolution",
    "NodeDecision",
    "build_chain_nodes",
    "BlockNode",
    "LayerNode",
]
