"""Graph reduction: turning a branching DNN graph into a chain of blocks.

Models such as Inception-V3 are not simple chains: a layer may fan out into
several parallel branches that later join (concatenation), and branches may
nest.  The paper (Section 4.2, Figure 7) reduces such graphs to a chain by
identifying, for every branching layer, the matching joining layer and
treating everything in between as a single chain element whose transition
cost is obtained from per-branch linear searches.

Implementation outline
----------------------
* The *trunk* of the graph — the layers every input-to-output path passes
  through — is the chain of dominators of the sink node.  Trunk layers become
  ordinary :class:`LayerNode` elements.
* When two consecutive trunk layers have other layers between them, those
  layers (grouped into weakly connected components) are the block's branches;
  a direct edge between the trunk layers adds an empty "identity" branch
  (e.g. a residual shortcut).  The pair becomes a :class:`BlockNode`.
* A :class:`BlockNode`'s transition cost ``tr((A1, g) -> (A2, h))`` runs the
  linear search on every branch with the branching layer fixed at ``g`` and
  the joining layer fixed at ``h``, then lets the joining layer pick the
  critical branch and schedule each non-critical branch either concurrently
  (on spare GPUs, if it fits within the critical branch's time) or serially —
  exactly the procedure of Figure 7, step 2.
* Branches are built recursively, so nested branch/join structures (such as
  the split 1x3 / 3x1 tails inside InceptionE) reduce naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ...models.graph import GraphValidationError, ModelGraph
from .costs import PlannerCostModel
from .linear_search import solve_chain
from .plan import LayerAssignment

__all__ = ["LayerNode", "BlockNode", "build_chain_nodes"]


@dataclass
class LayerNode:
    """A single trunk layer in the reduced chain."""

    costs: PlannerCostModel
    layer_id: int
    candidates: Sequence[int]

    def __post_init__(self) -> None:
        spec = self.costs.graph.spec(self.layer_id)
        self.exit_layer_id = self.layer_id
        self._name = spec.name
        self._op = spec.op

    def candidate_gpus(self) -> Sequence[int]:
        return self.candidates

    def node_cost(self, num_gpus: int) -> float:
        return self.costs.node_cost(self.layer_id, num_gpus)

    def single_gpu_cost(self) -> float:
        return self.costs.comp(self.layer_id, 1)

    def transition_cost(
        self, prev_exit_layer: Optional[int], prev_gpus: int, num_gpus: int
    ) -> float:
        if prev_exit_layer is None:
            return 0.0
        return self.costs.comm(prev_exit_layer, prev_gpus, self.layer_id, num_gpus)

    def assignments(
        self, prev_gpus: int, num_gpus: int, stage_time: float, transition_time: float
    ) -> List[LayerAssignment]:
        del prev_gpus, stage_time
        return [
            LayerAssignment(
                layer_id=self.layer_id,
                layer_name=self._name,
                op=self._op,
                num_gpus=num_gpus,
                compute_time=self.costs.comp(self.layer_id, num_gpus),
                sync_time=self.costs.sync(self.layer_id, num_gpus),
                comm_time=transition_time,
            )
        ]


@dataclass
class _BranchOutcome:
    """Result of solving one branch for a fixed (branch-layer, join-layer) pair."""

    time: float
    max_gpus: int
    assignments: List[LayerAssignment]
    is_empty: bool


@dataclass
class BlockNode:
    """A branch/join block reduced to a single chain element.

    The element's "own" layer is the joining layer; the branches contribute
    through the transition cost from the branching layer's width to the
    joining layer's width.
    """

    costs: PlannerCostModel
    branch_layer_id: int
    join_layer_id: int
    branches: List[List[object]]  # lists of ChainNode-compatible elements
    has_identity_branch: bool
    candidates: Sequence[int]
    total_gpus: int
    amp_limit: float

    def __post_init__(self) -> None:
        spec = self.costs.graph.spec(self.join_layer_id)
        self.exit_layer_id = self.join_layer_id
        self._name = spec.name
        self._op = spec.op
        self._cache: Dict[Tuple[int, int], Tuple[float, List[LayerAssignment]]] = {}

    # --------------------------------------------------------------- protocol
    def candidate_gpus(self) -> Sequence[int]:
        return self.candidates

    def node_cost(self, num_gpus: int) -> float:
        return self.costs.node_cost(self.join_layer_id, num_gpus)

    def single_gpu_cost(self) -> float:
        return self.costs.comp(self.join_layer_id, 1)

    def transition_cost(
        self, prev_exit_layer: Optional[int], prev_gpus: int, num_gpus: int
    ) -> float:
        del prev_exit_layer  # always the branching layer
        time, _ = self._solve_block(prev_gpus, num_gpus)
        return time

    def assignments(
        self, prev_gpus: int, num_gpus: int, stage_time: float, transition_time: float
    ) -> List[LayerAssignment]:
        del stage_time, transition_time
        _, branch_assignments = self._solve_block(prev_gpus, num_gpus)
        join_assignment = LayerAssignment(
            layer_id=self.join_layer_id,
            layer_name=self._name,
            op=self._op,
            num_gpus=num_gpus,
            compute_time=self.costs.comp(self.join_layer_id, num_gpus),
            sync_time=self.costs.sync(self.join_layer_id, num_gpus),
            comm_time=0.0,
        )
        return list(branch_assignments) + [join_assignment]

    # ------------------------------------------------------------------ block
    def _solve_branch(
        self, branch_nodes: List[object], branch_gpus: int, join_gpus: int
    ) -> _BranchOutcome:
        """Best time through one branch given fixed endpoint widths."""
        if not branch_nodes:
            # Identity branch (e.g. a residual shortcut): only the producer's
            # activations must reach the join layer's GPUs.
            time = self.costs.comm(
                self.branch_layer_id, branch_gpus, self.join_layer_id, join_gpus
            )
            return _BranchOutcome(time=time, max_gpus=0, assignments=[], is_empty=True)

        sink = _JoinSinkNode(self.costs, self.join_layer_id, join_gpus)
        solution = solve_chain(
            list(branch_nodes) + [sink],
            amp_limit=self.amp_limit,
            entry_gpus=[branch_gpus],
            entry_exit_layer=self.branch_layer_id,
        )
        assignments: List[LayerAssignment] = []
        prev = branch_gpus
        for decision, node in zip(solution.decisions[:-1], branch_nodes):
            assignments.extend(
                node.assignments(
                    prev, decision.num_gpus, decision.stage_time, decision.transition_time
                )
            )
            prev = decision.num_gpus
        max_gpus = max((d.num_gpus for d in solution.decisions[:-1]), default=0)
        return _BranchOutcome(
            time=solution.total_time,
            max_gpus=max_gpus,
            assignments=assignments,
            is_empty=False,
        )

    def _solve_block(
        self, branch_gpus: int, join_gpus: int
    ) -> Tuple[float, List[LayerAssignment]]:
        """Transition cost and branch assignments for one (g, h) pair."""
        key = (branch_gpus, join_gpus)
        if key in self._cache:
            return self._cache[key]

        outcomes = [
            self._solve_branch(branch, branch_gpus, join_gpus)
            for branch in self.branches
        ]
        if self.has_identity_branch:
            outcomes.append(self._solve_branch([], branch_gpus, join_gpus))

        # The joining layer waits for the critical (slowest) branch; other
        # branches may run concurrently on spare GPUs if they fit within the
        # critical branch's time, otherwise they serialize (Figure 7, step 2).
        outcomes.sort(key=lambda o: o.time, reverse=True)
        critical = outcomes[0]
        block_time = critical.time
        gpu_budget = self.total_gpus - max(critical.max_gpus, 1)
        assignments: List[LayerAssignment] = list(critical.assignments)
        for other in outcomes[1:]:
            runs_parallel = (
                not other.is_empty
                and other.max_gpus <= gpu_budget
                and other.time <= critical.time
            ) or (other.is_empty and other.time <= critical.time)
            if runs_parallel:
                gpu_budget -= other.max_gpus
                assignments.extend(
                    LayerAssignment(
                        layer_id=a.layer_id,
                        layer_name=a.layer_name,
                        op=a.op,
                        num_gpus=a.num_gpus,
                        compute_time=a.compute_time,
                        sync_time=a.sync_time,
                        comm_time=a.comm_time,
                        parallel_branch=True,
                    )
                    for a in other.assignments
                )
            else:
                block_time += other.time
                assignments.extend(other.assignments)

        self._cache[key] = (block_time, assignments)
        return self._cache[key]


@dataclass
class _JoinSinkNode:
    """Virtual terminal node used to price a branch's hand-off to the join layer."""

    costs: PlannerCostModel
    join_layer_id: int
    join_gpus: int

    def __post_init__(self) -> None:
        self.exit_layer_id = self.join_layer_id

    def candidate_gpus(self) -> Sequence[int]:
        return [self.join_gpus]

    def node_cost(self, num_gpus: int) -> float:
        del num_gpus
        return 0.0

    def single_gpu_cost(self) -> float:
        return 0.0

    def transition_cost(
        self, prev_exit_layer: Optional[int], prev_gpus: int, num_gpus: int
    ) -> float:
        if prev_exit_layer is None:
            return 0.0
        return self.costs.comm(prev_exit_layer, prev_gpus, self.join_layer_id, num_gpus)

    def assignments(
        self, prev_gpus: int, num_gpus: int, stage_time: float, transition_time: float
    ) -> List[LayerAssignment]:
        return []


# --------------------------------------------------------------------------
# Decomposition of a ModelGraph into chain nodes.
# --------------------------------------------------------------------------

class _SubgraphView:
    """Read-only view of a subset of a ModelGraph with its own source/sink."""

    def __init__(self, graph: ModelGraph, nodes: set, source: int, sink: int) -> None:
        self._graph = graph
        self._nodes = nodes
        self._source = source
        self._sink = sink
        self.name = f"{graph.name}[{source}..{sink}]"

    def layer_ids(self) -> List[int]:
        return [n for n in self._graph.topological_order() if n in self._nodes]

    def topological_order(self) -> List[int]:
        return self.layer_ids()

    def spec(self, layer_id: int):
        return self._graph.spec(layer_id)

    def edges(self) -> List[Tuple[int, int]]:
        return [
            (a, b)
            for a, b in self._graph.edges()
            if a in self._nodes and b in self._nodes
        ]

    def predecessors(self, layer_id: int) -> List[int]:
        return [p for p in self._graph.predecessors(layer_id) if p in self._nodes]

    def successors(self, layer_id: int) -> List[int]:
        return [s for s in self._graph.successors(layer_id) if s in self._nodes]

    def source(self) -> int:
        return self._source

    def sink(self) -> int:
        return self._sink

    def subgraph_between(self, start: int, end: int) -> List[int]:
        return [
            n
            for n in self._graph.subgraph_between(start, end)
            if n in self._nodes
        ]

    def __len__(self) -> int:
        return len(self._nodes)


def _build_nodes_for_view(
    view,
    costs: PlannerCostModel,
    candidates: Sequence[int],
    total_gpus: int,
    amp_limit: float,
) -> List[object]:
    """Decompose a graph (or subgraph view) into a chain of planner nodes."""
    # Trunk of the view: dominator chain of its sink.
    g = nx.DiGraph(view.edges())
    g.add_nodes_from(view.layer_ids())
    source, sink = view.source(), view.sink()
    if len(view) == 1:
        return [LayerNode(costs, source, candidates)]
    idom = nx.immediate_dominators(g, source)
    trunk = [sink]
    node = sink
    while node != source:
        node = idom[node]
        trunk.append(node)
    trunk = list(reversed(trunk))

    nodes: List[object] = [LayerNode(costs, trunk[0], candidates)]
    for upper, lower in zip(trunk, trunk[1:]):
        components = _branch_components_view(view, upper, lower)
        direct_edge = lower in view.successors(upper)
        if not components:
            nodes.append(LayerNode(costs, lower, candidates))
            continue
        branch_nodes = [
            _component_chain_nodes_view(view, comp, costs, candidates, total_gpus, amp_limit)
            for comp in components
        ]
        nodes.append(
            BlockNode(
                costs=costs,
                branch_layer_id=upper,
                join_layer_id=lower,
                branches=branch_nodes,
                has_identity_branch=direct_edge,
                candidates=candidates,
                total_gpus=total_gpus,
                amp_limit=amp_limit,
            )
        )
    return nodes


def _branch_components_view(view, upper: int, lower: int) -> List[List[int]]:
    between = [n for n in view.subgraph_between(upper, lower) if n not in (upper, lower)]
    if not between:
        return []
    g = nx.DiGraph()
    g.add_nodes_from(between)
    between_set = set(between)
    for a, b in view.edges():
        if a in between_set and b in between_set:
            g.add_edge(a, b)
    components = []
    for comp in nx.weakly_connected_components(g):
        ordered = [n for n in view.topological_order() if n in comp]
        components.append(ordered)
    components.sort(key=lambda c: c[0])
    return components


def _component_chain_nodes_view(
    view,
    component: List[int],
    costs: PlannerCostModel,
    candidates: Sequence[int],
    total_gpus: int,
    amp_limit: float,
) -> List[object]:
    comp_set = set(component)
    sources = [n for n in component if not any(p in comp_set for p in view.predecessors(n))]
    sinks = [n for n in component if not any(s in comp_set for s in view.successors(n))]
    if len(sources) != 1 or len(sinks) != 1:
        raise GraphValidationError(
            f"branch component {sorted(component)} has {len(sources)} sources and "
            f"{len(sinks)} sinks; the graph reduction requires single-entry "
            "single-exit branches"
        )
    if isinstance(view, _SubgraphView):
        base_graph = view._graph
    else:
        base_graph = view
    sub = _SubgraphView(base_graph, comp_set, sources[0], sinks[0])
    return _build_nodes_for_view(sub, costs, candidates, total_gpus, amp_limit)


def build_chain_nodes(
    graph: ModelGraph,
    costs: PlannerCostModel,
    candidates: Sequence[int],
    total_gpus: int,
    amp_limit: float,
) -> List[object]:
    """Reduce a model graph to the chain of planner nodes (Figure 7).

    For chain models (VGG) this is simply one :class:`LayerNode` per layer;
    for branching models each branch/join region becomes a
    :class:`BlockNode`.
    """
    graph.validate()
    return _build_nodes_for_view(graph, costs, candidates, total_gpus, amp_limit)
