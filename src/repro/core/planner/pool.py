"""Multiprocess planning pool: batch-plan many jobs across CPU cores.

The paper's Table 3 argues burst-parallel planning is cheap enough to run
per job, online; at cluster scale a manager faces *many* jobs at once (a
trace replay's cold start, a policy comparison, a planner grid).  The
:class:`PlannerPool` turns that batch into data parallelism over worker
processes: each :class:`PlanRequest` names a registry model, a global batch,
a GPU budget and an amplification limit, and ``plan_batch`` returns one
:class:`~repro.core.planner.plan.TrainingPlan` per request, in request order.

Results are independent of the worker count: every request is planned from
the same deterministic inputs, plans travel between processes as their JSON
dict form (which round-trips floats exactly), and ``processes <= 1`` runs
inline in the calling process with no pool at all.  Give every worker the
same ``cache_dir`` and they share one persistent
:class:`~repro.cache.ArtifactCache` — a request planned by any worker (or
any past run) is a disk hit for all of them.

Workers are module-level functions on plain tuples, so the pool works under
both fork and spawn start methods (same discipline as ``repro.bench.sweep``).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...cache import ArtifactCache
from ...network.fabric import NetworkFabric, get_fabric
from ...profiler.gpu_spec import A100_40GB, GPUSpec
from ...profiler.layer_profiler import LayerProfiler
from .plan import TrainingPlan
from .planner import BurstParallelPlanner, PlannerConfig

__all__ = ["PlanRequest", "PlannerPool"]


@dataclass(frozen=True)
class PlanRequest:
    """One planning job: a registry model at a batch/budget/tolerance."""

    model: str
    global_batch: int
    total_gpus: int
    amplification_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.global_batch < 1:
            raise ValueError("global_batch must be at least 1")
        if self.total_gpus < 1:
            raise ValueError("total_gpus must be at least 1")


#: Worker payload: (model, batch, gpus, amp, fabric, gpu spec, config,
#: use_cuda_graphs, cache_dir).  Dataclasses are picklable, so the fabric,
#: GPU spec and planner config travel by value.
_Payload = Tuple[
    List[Tuple[str, int, int, Optional[float]]],
    NetworkFabric,
    GPUSpec,
    PlannerConfig,
    bool,
    Optional[str],
]


def _build_planner(
    fabric: NetworkFabric,
    gpu: GPUSpec,
    config: PlannerConfig,
    use_cuda_graphs: bool,
    cache_dir: Optional[str],
) -> BurstParallelPlanner:
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    profiler = LayerProfiler(
        gpu=gpu, use_cuda_graphs=use_cuda_graphs, persistent_cache=cache
    )
    return BurstParallelPlanner(fabric, profiler, config, cache=cache)


def _plan_chunk(payload: _Payload) -> List[Dict]:
    """Pool worker: plan one chunk of requests and return plan dicts."""
    from ...models.registry import build_model  # deferred: keeps spawn light

    requests, fabric, gpu, config, use_cuda_graphs, cache_dir = payload
    planner = _build_planner(fabric, gpu, config, use_cuda_graphs, cache_dir)
    graphs: Dict[str, object] = {}
    out: List[Dict] = []
    for model, batch, gpus, amp in requests:
        graph = graphs.get(model)
        if graph is None:
            graph = graphs[model] = build_model(model)
        plan = planner.plan(graph, batch, gpus, amplification_limit=amp)
        out.append(plan.to_dict())
    return out


class PlannerPool:
    """Plans batches of requests, optionally across worker processes.

    Parameters
    ----------
    fabric:
        Network fabric (preset name or instance) every plan assumes.
    gpu / use_cuda_graphs:
        Profiler identity the workers plan against.
    config:
        Planner configuration shared by all workers.
    processes:
        Worker processes; ``<= 1`` plans inline in the calling process.
    cache_dir:
        Optional persistent-cache root shared by all workers (and with any
        other process pointed at the same directory).
    """

    def __init__(
        self,
        fabric: Union[NetworkFabric, str] = "nvswitch",
        gpu: GPUSpec = A100_40GB,
        use_cuda_graphs: bool = True,
        config: Optional[PlannerConfig] = None,
        processes: int = 1,
        cache_dir: Optional[str] = None,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be at least 1")
        self.fabric = get_fabric(fabric) if isinstance(fabric, str) else fabric
        self.gpu = gpu
        self.use_cuda_graphs = use_cuda_graphs
        self.config = config if config is not None else PlannerConfig()
        self.processes = processes
        self.cache_dir = str(cache_dir) if cache_dir is not None else None

    def planner(self) -> BurstParallelPlanner:
        """A planner configured exactly like this pool's workers."""
        return _build_planner(
            self.fabric, self.gpu, self.config, self.use_cuda_graphs,
            self.cache_dir,
        )

    def plan_batch(self, requests: Sequence[PlanRequest]) -> List[TrainingPlan]:
        """Plan every request, returning plans in request order.

        Duplicate requests are planned once and fanned back out, so callers
        can pass raw (job, width) grids without pre-deduplicating.
        """
        unique: List[PlanRequest] = []
        index: Dict[PlanRequest, int] = {}
        for request in requests:
            if request not in index:
                index[request] = len(unique)
                unique.append(request)
        if not unique:
            return []

        tuples = [
            (r.model, r.global_batch, r.total_gpus, r.amplification_limit)
            for r in unique
        ]
        workers = min(self.processes, len(unique))
        if workers <= 1:
            dicts = _plan_chunk(
                (tuples, self.fabric, self.gpu, self.config,
                 self.use_cuda_graphs, self.cache_dir)
            )
        else:
            # Round-robin chunks balance models across workers (requests for
            # one model tend to arrive adjacent; striping keeps each worker's
            # graph/profile reuse while avoiding one worker owning the one
            # expensive model).
            # workers <= len(unique), so every stripe is non-empty and the
            # stripe index below maps results back to request positions.
            chunks = [tuples[i::workers] for i in range(workers)]
            payloads = [
                (chunk, self.fabric, self.gpu, self.config,
                 self.use_cuda_graphs, self.cache_dir)
                for chunk in chunks
            ]
            with multiprocessing.Pool(processes=len(payloads)) as pool:
                results = pool.map(_plan_chunk, payloads)
            dicts = [None] * len(unique)  # type: ignore[list-item]
            for stripe, chunk_dicts in enumerate(results):
                for j, plan_dict in enumerate(chunk_dicts):
                    dicts[stripe + j * workers] = plan_dict
        plans = [TrainingPlan.from_dict(d) for d in dicts]
        return [plans[index[request]] for request in requests]
