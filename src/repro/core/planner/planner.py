"""The burst-parallel training planner: DeepPool's public planning API.

A user submits a model, a global batch size, the number of available GPUs,
and an inefficiency tolerance (the GPU-sec amplification limit).  The planner
profiles every layer at every candidate scale, runs the chain dynamic program
(Algorithm 1) — after reducing branch/join graphs to a chain (Figure 7) —
and emits a :class:`~repro.core.planner.plan.TrainingPlan` assigning a GPU
count to every layer.

Two reference plans are also provided:

* :meth:`BurstParallelPlanner.data_parallel_plan` — the "DP" baseline of the
  evaluation (every layer on all GPUs);
* :meth:`BurstParallelPlanner.single_gpu_plan` — the whole model on one GPU,
  used as the speedup denominator in Figure 10.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...cache import (
    ArtifactCache,
    fabric_fingerprint,
    fingerprint,
    planner_config_fingerprint,
)
from ...models.graph import ModelGraph
from ...network.fabric import NetworkFabric
from ...obs.metrics import global_registry
from ...profiler.layer_profiler import LayerProfiler
from .costs import PlannerCostModel, candidate_gpu_counts
from .graph_reduction import build_chain_nodes
from .linear_search import solve_chain
from .plan import LayerAssignment, TrainingPlan

__all__ = ["PlannerConfig", "BurstParallelPlanner"]

# Process-wide planner accounting (repro.obs.metrics): how many plans were
# requested, how many came from the persistent cache, how many ran the chain
# DP, and how long the searches took (wall clock — diagnostics only, never a
# gated fingerprint).
_PLAN_REQUESTS = global_registry().counter("planner.plan_requests")
_PLAN_CACHE_HITS = global_registry().counter("planner.plan_cache_hits")
_SOLVE_CALLS = global_registry().counter("planner.solve_calls")
_SEARCH_TIMER = global_registry().timer("planner.search")


@dataclass(frozen=True)
class PlannerConfig:
    """Planner options.

    Attributes
    ----------
    amplification_limit:
        Default GPU-sec amplification allowed per layer (the user's
        "inefficiency tolerance").  1.0 forbids any inefficiency; the paper's
        experiments sweep this knob to trade foreground speed for reclaimable
        GPU time (Figure 10).
    powers_of_two_only:
        Restrict layer widths to powers of two (the paper's search-space
        optimization, Section 7.4).  Disable for the ablation study.
    """

    amplification_limit: float = 2.0
    powers_of_two_only: bool = True

    def __post_init__(self) -> None:
        if self.amplification_limit < 1.0:
            raise ValueError("amplification_limit must be at least 1.0")


class BurstParallelPlanner:
    """Finds the per-layer GPU scaling that minimizes iteration time."""

    def __init__(
        self,
        fabric: NetworkFabric,
        profiler: Optional[LayerProfiler] = None,
        config: Optional[PlannerConfig] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.fabric = fabric
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.config = config if config is not None else PlannerConfig()
        #: Optional persistent plan store.  When set, ``plan()`` is looked up
        #: by the content fingerprint of its full derivation (cost-model
        #: identity + GPU budget + amplification limit + search-space config)
        #: before any search runs, and computed plans are written back — so a
        #: warm cache skips the chain DP *and* every profile query under it.
        self.cache = cache
        # Cost models are pure functions of (graph, global batch) for a fixed
        # fabric/profiler, so one planner reuses them across plan() calls:
        # planning the same model at several GPU budgets (the grid benchmark,
        # the scheduler's re-planning) hits warm comp/sync/comm caches instead
        # of re-deriving every layer cost from scratch.  Keying by object id
        # is safe while an entry lives, because the cost model keeps its graph
        # alive; LRU eviction bounds the cache for planners fed an unbounded
        # stream of distinct graphs.
        self._cost_models: "OrderedDict[Tuple[int, int], PlannerCostModel]" = (
            OrderedDict()
        )

    #: Distinct (graph, global batch) cost models kept warm per planner.
    _COST_MODEL_CACHE_SIZE = 32

    def _cost_model(self, graph: ModelGraph, global_batch: int) -> PlannerCostModel:
        key = (id(graph), global_batch)
        costs = self._cost_models.get(key)
        if costs is None or costs.graph is not graph:
            costs = PlannerCostModel(
                graph=graph,
                global_batch=global_batch,
                fabric=self.fabric,
                profiler=self.profiler,
            )
            self._cost_models[key] = costs
            if len(self._cost_models) > self._COST_MODEL_CACHE_SIZE:
                self._cost_models.popitem(last=False)
        self._cost_models.move_to_end(key)
        return costs

    def clear_caches(self) -> None:
        """Drop memoized cost models (and the profiler's timing memo).

        The persistent cache (when configured) is left untouched: its entries
        are content-addressed and never stale.
        """
        self._cost_models.clear()
        self.profiler.clear_cache()

    def fingerprint(self) -> str:
        """Content fingerprint of this planner's configuration.

        Covers the fabric, the profiler identity and the planner config —
        everything besides the per-call (graph, batch, budget) inputs that
        determines a plan.  Schedulers include it in their plan-cache keys so
        two schedulers sharing one cache (or a scheduler whose planner was
        swapped) can never alias plans across planner configurations.
        """
        return fingerprint(
            "planner",
            fabric_fingerprint(self.fabric),
            self.profiler.fingerprint(),
            planner_config_fingerprint(self.config),
        )

    def _plan_key(
        self, costs: PlannerCostModel, total_gpus: int, amp_limit: float
    ) -> str:
        # float("inf") has no canonical JSON form; name it explicitly.
        amp = "inf" if math.isinf(amp_limit) else amp_limit
        return fingerprint(
            "plan",
            costs.fingerprint(),
            total_gpus,
            amp,
            self.config.powers_of_two_only,
        )

    # ------------------------------------------------------------------ plans
    def plan(
        self,
        graph: ModelGraph,
        global_batch: int,
        total_gpus: int,
        amplification_limit: Optional[float] = None,
    ) -> TrainingPlan:
        """Produce a burst-parallel plan for one foreground training job."""
        amp_limit = (
            amplification_limit
            if amplification_limit is not None
            else self.config.amplification_limit
        )
        if amp_limit < 1.0:
            raise ValueError("amplification_limit must be at least 1.0")
        _PLAN_REQUESTS.add(1)
        start = time.perf_counter()
        costs = self._cost_model(graph, global_batch)
        if self.cache is not None:
            key = self._plan_key(costs, total_gpus, amp_limit)
            payload = self.cache.get("plan", key)
            if payload is not None:
                try:
                    plan = TrainingPlan.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    pass  # foreign payload shape: fall through and recompute
                else:
                    _PLAN_CACHE_HITS.add(1)
                    return plan
        candidates = candidate_gpu_counts(
            total_gpus, global_batch, self.config.powers_of_two_only
        )
        _SOLVE_CALLS.add(1)
        with _SEARCH_TIMER.time():
            nodes = build_chain_nodes(graph, costs, candidates, total_gpus, amp_limit)
            solution = solve_chain(nodes, amp_limit)

        assignments: List[LayerAssignment] = []
        prev_gpus = 1
        for decision, node in zip(solution.decisions, nodes):
            assignments.extend(
                node.assignments(
                    prev_gpus,
                    decision.num_gpus,
                    decision.stage_time,
                    decision.transition_time,
                )
            )
            prev_gpus = decision.num_gpus
        search_time = time.perf_counter() - start

        plan = TrainingPlan(
            model_name=graph.name,
            global_batch=global_batch,
            total_gpus=total_gpus,
            amplification_limit=amp_limit,
            assignments=assignments,
            iteration_time=solution.total_time,
            search_time=search_time,
        )
        if self.cache is not None:
            # JSON round-trips floats exactly, so every process sharing the
            # cache reconstructs a byte-identical plan (search_time included:
            # cached plans report the wall time of the original search).
            self.cache.put("plan", key, plan.to_dict())
        return plan

    def data_parallel_plan(
        self, graph: ModelGraph, global_batch: int, total_gpus: int
    ) -> TrainingPlan:
        """The conventional data-parallel baseline: every layer on all GPUs."""
        start = time.perf_counter()
        costs = self._cost_model(graph, global_batch)
        width = min(total_gpus, global_batch)
        assignments = []
        for lid in graph.layer_ids():
            spec = graph.spec(lid)
            assignments.append(
                LayerAssignment(
                    layer_id=lid,
                    layer_name=spec.name,
                    op=spec.op,
                    num_gpus=width,
                    compute_time=costs.comp(lid, width),
                    sync_time=costs.sync(lid, width),
                    comm_time=0.0,
                )
            )
        iteration_time = sum(a.stage_time for a in assignments)
        return TrainingPlan(
            model_name=graph.name,
            global_batch=global_batch,
            total_gpus=total_gpus,
            amplification_limit=float("inf"),
            assignments=assignments,
            iteration_time=iteration_time,
            search_time=time.perf_counter() - start,
        )

    def single_gpu_plan(self, graph: ModelGraph, global_batch: int) -> TrainingPlan:
        """The whole model on a single GPU (speedup reference of Figure 10)."""
        return self.data_parallel_plan(graph, global_batch, total_gpus=1)
