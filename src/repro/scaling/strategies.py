"""Scaling strategies: weak, strong, and batch-optimal scaling.

Section 2 of the paper compares three ways of using a growing GPU cluster:

* **Weak scaling** keeps the per-GPU batch size constant, so the global batch
  grows with the cluster; throughput scales but sample efficiency eventually
  collapses.
* **Strong scaling** keeps the global batch fixed and splits it into
  ever-smaller per-GPU batches; sample efficiency is preserved but
  communication and GPU under-utilization limit the speedup.
* **Batch-optimal scaling** picks, at every cluster size, the global batch
  size minimizing the estimated time to accuracy (the "sweet spot").  The
  paper also calls the curve "hybrid scaling" in Figure 1.

Each strategy exposes the same interface: given a GPU count, return the
global batch size to use; the shared evaluator then computes speedups and the
per-GPU batch sizes of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..models.graph import ModelGraph
from ..network.fabric import NetworkFabric
from ..profiler.layer_profiler import LayerProfiler, per_gpu_batch
from .sample_efficiency import SampleEfficiencyModel
from .time_to_accuracy import TimeToAccuracyModel

__all__ = [
    "ScalingStrategy",
    "WeakScaling",
    "StrongScaling",
    "BatchOptimalScaling",
    "StrategyPoint",
    "ScalingAnalysis",
    "default_batch_candidates",
]


def default_batch_candidates(
    base_batch: int, max_gpus: int, per_gpu_cap: int = 512
) -> List[int]:
    """Power-of-two global batch sizes from ``base_batch`` up to the weak-scaling limit."""
    candidates = []
    b = base_batch
    limit = base_batch * max_gpus * 2
    while b <= min(limit, per_gpu_cap * max_gpus):
        candidates.append(b)
        b *= 2
    return candidates


@dataclass(frozen=True)
class StrategyPoint:
    """One (GPU count, batch) operating point of a scaling strategy."""

    num_gpus: int
    global_batch: int
    per_gpu_batch: int
    iteration_time: float
    steps_to_accuracy: float
    time_to_accuracy: float
    speedup: float


class ScalingStrategy:
    """Base class: maps a GPU count to the global batch size to train with."""

    name: str = "abstract"

    def global_batch(self, num_gpus: int, evaluator: "ScalingAnalysis") -> int:
        raise NotImplementedError


@dataclass
class WeakScaling(ScalingStrategy):
    """Constant per-GPU batch size (the conventional approach)."""

    per_gpu_batch_size: int = 256
    name: str = "weak"

    def global_batch(self, num_gpus: int, evaluator: "ScalingAnalysis") -> int:
        return self.per_gpu_batch_size * num_gpus


@dataclass
class StrongScaling(ScalingStrategy):
    """Constant global batch size, split across all GPUs."""

    global_batch_size: int = 256
    name: str = "strong"

    def global_batch(self, num_gpus: int, evaluator: "ScalingAnalysis") -> int:
        return self.global_batch_size


@dataclass
class BatchOptimalScaling(ScalingStrategy):
    """Chooses the global batch size minimizing time-to-accuracy at each scale."""

    candidates: Sequence[int] = field(default_factory=list)
    name: str = "batch-optimal"

    def global_batch(self, num_gpus: int, evaluator: "ScalingAnalysis") -> int:
        candidates = self.candidates or default_batch_candidates(
            evaluator.reference_batch, max(evaluator.gpu_counts)
        )
        best_batch = None
        best_tta = float("inf")
        for batch in candidates:
            if batch < num_gpus:
                # Cannot split fewer samples than GPUs along the sample dim.
                continue
            tta = evaluator.tta_model.time_to_accuracy(batch, num_gpus)
            if tta < best_tta:
                best_tta = tta
                best_batch = batch
        if best_batch is None:
            raise ValueError(
                f"no feasible batch candidate for {num_gpus} GPUs among {list(candidates)}"
            )
        return best_batch


class ScalingAnalysis:
    """Evaluates scaling strategies across cluster sizes (Figures 1-3)."""

    def __init__(
        self,
        graph: ModelGraph,
        fabric: NetworkFabric,
        efficiency: SampleEfficiencyModel,
        gpu_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
        reference_batch: int = 256,
        profiler: Optional[LayerProfiler] = None,
    ) -> None:
        self.graph = graph
        self.fabric = fabric
        self.efficiency = efficiency
        self.gpu_counts = list(gpu_counts)
        self.reference_batch = reference_batch
        self.tta_model = TimeToAccuracyModel(graph, fabric, efficiency, profiler)

    def evaluate_point(self, num_gpus: int, global_batch: int) -> StrategyPoint:
        """Evaluate one (GPU count, global batch) configuration."""
        effective_gpus = min(num_gpus, global_batch)
        iteration = self.tta_model.iteration_model.iteration(global_batch, effective_gpus)
        steps = self.efficiency.steps_to_accuracy(global_batch)
        tta = steps * iteration.total_time
        baseline = self.tta_model.time_to_accuracy(self.reference_batch, 1)
        return StrategyPoint(
            num_gpus=num_gpus,
            global_batch=global_batch,
            per_gpu_batch=per_gpu_batch(global_batch, effective_gpus),
            iteration_time=iteration.total_time,
            steps_to_accuracy=steps,
            time_to_accuracy=tta,
            speedup=baseline / tta,
        )

    def evaluate(self, strategy: ScalingStrategy) -> List[StrategyPoint]:
        """Evaluate a strategy at every cluster size."""
        points = []
        for g in self.gpu_counts:
            batch = strategy.global_batch(g, self)
            points.append(self.evaluate_point(g, batch))
        return points

    def speedup_curves(
        self, strategies: Iterable[ScalingStrategy]
    ) -> Dict[str, List[StrategyPoint]]:
        """Speedup-vs-GPU-count curves for several strategies (Figure 1)."""
        return {s.name: self.evaluate(s) for s in strategies}

    def batch_optimal_per_gpu_batches(
        self, candidates: Optional[Sequence[int]] = None
    ) -> Dict[int, int]:
        """Per-GPU batch size chosen by batch-optimal scaling (Figure 2)."""
        strategy = BatchOptimalScaling(candidates or [])
        return {p.num_gpus: p.per_gpu_batch for p in self.evaluate(strategy)}
