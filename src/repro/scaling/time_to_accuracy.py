"""Data-parallel iteration-time and time-to-accuracy estimation.

Combines the three substrates — layer cost model, network model, and
sample-efficiency model — into the quantity the Section 2 analysis plots:
estimated time to reach the target accuracy for a given global batch size and
GPU count, and the speedup relative to a single GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..models.graph import ModelGraph
from ..network.collectives import CollectiveCostModel
from ..network.fabric import NetworkFabric
from ..profiler.layer_profiler import LayerProfiler, per_gpu_batch
from .sample_efficiency import SampleEfficiencyModel

__all__ = ["IterationTimeModel", "TimeToAccuracyModel", "IterationBreakdown"]

#: Gradients are synchronized in half precision (AMP), 2 bytes per parameter.
GRADIENT_DTYPE_BYTES = 2


@dataclass(frozen=True)
class IterationBreakdown:
    """Components of one data-parallel training iteration."""

    compute_time: float
    sync_time: float
    num_gpus: int
    global_batch: int
    per_gpu_batch: int

    @property
    def total_time(self) -> float:
        """Iteration time assuming gradient sync does not overlap compute."""
        return self.compute_time + self.sync_time


class IterationTimeModel:
    """Estimates data-parallel iteration time for a model on a cluster."""

    def __init__(
        self,
        graph: ModelGraph,
        fabric: NetworkFabric,
        profiler: Optional[LayerProfiler] = None,
    ) -> None:
        self.graph = graph
        self.fabric = fabric
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.collectives = CollectiveCostModel(fabric)
        self._total_params = graph.total_params()
        self._compute_cache: dict[int, float] = {}

    def compute_time(self, batch_per_gpu: int) -> float:
        """Per-GPU forward+backward compute time at a per-GPU batch size."""
        if batch_per_gpu not in self._compute_cache:
            self._compute_cache[batch_per_gpu] = self.profiler.iteration_compute_time(
                self.graph, batch_per_gpu
            )
        return self._compute_cache[batch_per_gpu]

    def sync_time(self, num_gpus: int) -> float:
        """Gradient all-reduce time across the data-parallel group."""
        return self.collectives.all_reduce_time(
            self._total_params * GRADIENT_DTYPE_BYTES, num_gpus
        )

    def iteration(self, global_batch: int, num_gpus: int) -> IterationBreakdown:
        """Iteration breakdown when ``global_batch`` is split over ``num_gpus``."""
        if num_gpus > global_batch:
            # GPUs beyond one-per-sample can contribute nothing in pure
            # sample-dimension data parallelism.
            num_gpus = global_batch
        b = per_gpu_batch(global_batch, num_gpus)
        return IterationBreakdown(
            compute_time=self.compute_time(b),
            sync_time=self.sync_time(num_gpus),
            num_gpus=num_gpus,
            global_batch=global_batch,
            per_gpu_batch=b,
        )

    def iteration_time(self, global_batch: int, num_gpus: int) -> float:
        return self.iteration(global_batch, num_gpus).total_time


class TimeToAccuracyModel:
    """Time-to-accuracy estimation for the Section 2 scaling analysis."""

    def __init__(
        self,
        graph: ModelGraph,
        fabric: NetworkFabric,
        efficiency: SampleEfficiencyModel,
        profiler: Optional[LayerProfiler] = None,
    ) -> None:
        self.iteration_model = IterationTimeModel(graph, fabric, profiler)
        self.efficiency = efficiency

    def time_to_accuracy(self, global_batch: int, num_gpus: int) -> float:
        """Wall-clock seconds to reach the target accuracy."""
        steps = self.efficiency.steps_to_accuracy(global_batch)
        return steps * self.iteration_model.iteration_time(global_batch, num_gpus)

    def speedup(
        self,
        global_batch: int,
        num_gpus: int,
        reference_batch: int,
        reference_gpus: int = 1,
    ) -> float:
        """Speedup of (batch, GPUs) over a reference configuration.

        Figures 1 and 3 use a single GPU with the base batch size as the
        reference.
        """
        baseline = self.time_to_accuracy(reference_batch, reference_gpus)
        return baseline / self.time_to_accuracy(global_batch, num_gpus)

    def training_throughput(self, global_batch: int, num_gpus: int) -> float:
        """Samples per second of the data-parallel configuration."""
        return global_batch / self.iteration_model.iteration_time(global_batch, num_gpus)
