"""Sample-efficiency (statistical-efficiency) model.

Weak scaling grows the global batch size with the cluster, but beyond a
critical batch size the optimizer needs almost as many *steps* to reach the
target accuracy as it did with a smaller batch, so the extra samples per step
are wasted (Shallue et al., 2018; paper Section 2).  The paper reads the
steps-to-accuracy numbers for VGG-11 at error 0.35 from that study; we model
the same relationship with the standard two-parameter hyperbola

    steps(B) = steps_min * (1 + B_crit / B)

which has exactly the properties the figures rely on:

* for ``B << B_crit``: ``steps ~ steps_min * B_crit / B`` — perfect scaling,
  doubling the batch halves the number of steps;
* for ``B >> B_crit``: ``steps -> steps_min`` — diminishing returns, extra
  batch size no longer reduces the number of steps;
* total samples processed, ``B * steps(B)``, grows linearly in ``B`` once
  ``B`` exceeds ``B_crit`` — the sample-efficiency loss.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SampleEfficiencyModel", "VGG11_ERROR_035", "RESNET50_IMAGENET"]


@dataclass(frozen=True)
class SampleEfficiencyModel:
    """Steps-to-accuracy as a function of global batch size.

    Attributes
    ----------
    steps_min:
        Asymptotic number of optimization steps needed with an arbitrarily
        large batch (the "maximum useful parallelism" limit).
    critical_batch:
        Batch size at which diminishing returns begin; at ``B = B_crit`` the
        model needs twice ``steps_min`` steps.
    name:
        Label for reports (model + target accuracy).
    """

    steps_min: float
    critical_batch: float
    name: str = "generic"

    def __post_init__(self) -> None:
        if self.steps_min <= 0:
            raise ValueError("steps_min must be positive")
        if self.critical_batch <= 0:
            raise ValueError("critical_batch must be positive")

    def steps_to_accuracy(self, global_batch: float) -> float:
        """Number of optimization steps needed at a given global batch size."""
        if global_batch <= 0:
            raise ValueError("global_batch must be positive")
        return self.steps_min * (1.0 + self.critical_batch / global_batch)

    def samples_to_accuracy(self, global_batch: float) -> float:
        """Total samples processed before reaching the target accuracy."""
        return global_batch * self.steps_to_accuracy(global_batch)

    def relative_sample_efficiency(self, global_batch: float, reference_batch: float) -> float:
        """Samples needed at ``reference_batch`` divided by samples at ``global_batch``.

        Values below 1.0 mean the larger batch wastes samples.
        """
        return self.samples_to_accuracy(reference_batch) / self.samples_to_accuracy(
            global_batch
        )

    def useful_speedup_limit(self, reference_batch: float) -> float:
        """Upper bound on step-count reduction relative to ``reference_batch``.

        Even with infinite batch size, the number of steps cannot drop below
        ``steps_min``; this ratio bounds the benefit weak scaling can ever
        deliver from a given starting batch size.
        """
        return self.steps_to_accuracy(reference_batch) / self.steps_min


#: VGG-11 trained to validation error 0.35 — the workload of Figures 1-3.
#: The critical batch size of a few thousand samples follows the
#: Shallue et al. measurements for mid-sized CNNs on ImageNet-scale data.
VGG11_ERROR_035 = SampleEfficiencyModel(
    steps_min=12_000.0,
    critical_batch=2_048.0,
    name="vgg11@err0.35",
)

#: ResNet-50 on ImageNet (provided for ablations; critical batch size is
#: known to be larger for ResNet-50 than for VGG-style networks).
RESNET50_IMAGENET = SampleEfficiencyModel(
    steps_min=14_000.0,
    critical_batch=8_192.0,
    name="resnet50@imagenet",
)
