"""Scaling-strategy analysis (paper Section 2, Figures 1-4).

Public API:

* :class:`~repro.scaling.sample_efficiency.SampleEfficiencyModel` and the
  ``VGG11_ERROR_035`` preset — steps-to-accuracy vs global batch size.
* :class:`~repro.scaling.time_to_accuracy.TimeToAccuracyModel` /
  :class:`~repro.scaling.time_to_accuracy.IterationTimeModel` — data-parallel
  iteration time and time-to-accuracy.
* :class:`~repro.scaling.strategies.ScalingAnalysis` with
  ``WeakScaling`` / ``StrongScaling`` / ``BatchOptimalScaling`` — the
  strategy comparison of Figures 1-3.
"""

from .sample_efficiency import RESNET50_IMAGENET, SampleEfficiencyModel, VGG11_ERROR_035
from .strategies import (
    BatchOptimalScaling,
    ScalingAnalysis,
    ScalingStrategy,
    StrategyPoint,
    StrongScaling,
    WeakScaling,
    default_batch_candidates,
)
from .time_to_accuracy import IterationBreakdown, IterationTimeModel, TimeToAccuracyModel

__all__ = [
    "SampleEfficiencyModel",
    "VGG11_ERROR_035",
    "RESNET50_IMAGENET",
    "ScalingAnalysis",
    "ScalingStrategy",
    "StrategyPoint",
    "WeakScaling",
    "StrongScaling",
    "BatchOptimalScaling",
    "default_batch_candidates",
    "IterationTimeModel",
    "IterationBreakdown",
    "TimeToAccuracyModel",
]
