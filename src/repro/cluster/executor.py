"""Cluster executor: estimating cluster-wide throughput of a scenario.

Combines a foreground training plan (from the burst-parallel planner), the
cluster coordinator's placement, and a per-GPU collocation profile into the
scenario throughputs of Figures 9 and 10:

* ``DP`` — a single data-parallel foreground job;
* ``BP`` — the burst-parallel foreground plan alone;
* ``BP + Col`` — the burst-parallel plan with a background job collocated on
  every GPU;
* ``BG Only`` — every GPU just runs the background job (the throughput
  ceiling for reclaimed capacity).

The collocation profile captures what the detailed single-GPU simulator
(:mod:`repro.core.multiplexing`) says about sharing a GPU: how much the
foreground slows down and what fraction of the background's stand-alone
throughput survives while the foreground is busy versus idle.  It can be set
analytically or calibrated by actually running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.multiplexing.collocation import GPUCollocationRunner
from ..core.multiplexing.config import MultiplexConfig
from ..core.planner.plan import TrainingPlan
from ..core.planner.planner import BurstParallelPlanner
from ..models.graph import ModelGraph
from ..network.fabric import NetworkFabric
from ..profiler.layer_profiler import LayerProfiler
from .coordinator import ClusterCoordinator
from .job import TrainingJob
from .throughput import ScenarioThroughput

__all__ = ["CollocationProfile", "ClusterExecutor"]


@dataclass(frozen=True)
class CollocationProfile:
    """Per-GPU interference summary used by the cluster-level model.

    Attributes
    ----------
    fg_slowdown:
        Multiplier on the foreground stage time on GPUs that also host a
        background job (>= 1.0).
    bg_busy_efficiency:
        Fraction of the background job's stand-alone throughput it achieves
        while the GPU is busy with foreground work (spatial sharing of
        leftover SMs).
    bg_idle_efficiency:
        Fraction achieved while the GPU has no foreground stage to run
        (temporal gaps opened up by burst parallelism).
    """

    fg_slowdown: float = 1.12
    bg_busy_efficiency: float = 0.35
    bg_idle_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.fg_slowdown < 1.0:
            raise ValueError("fg_slowdown must be >= 1.0")
        for name in ("bg_busy_efficiency", "bg_idle_efficiency"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")

    @classmethod
    def calibrate(
        cls,
        runner: GPUCollocationRunner,
        fg_graph: ModelGraph,
        fg_per_gpu_batch: int,
        bg_graph: ModelGraph,
        config: Optional[MultiplexConfig] = None,
        sync_gpus: int = 8,
        bg_idle_efficiency: float = 0.95,
    ) -> "CollocationProfile":
        """Derive the profile from the detailed single-GPU simulator.

        The foreground job is run at its per-GPU batch size with and without
        the background job; the resulting slowdown and background throughput
        (relative to the background running alone) become the profile.
        ``bg_idle_efficiency`` — the background's throughput fraction on a
        foreground-idle GPU — is not measurable from the busy-GPU scenario,
        so it is taken as a parameter.
        """
        cfg = config if config is not None else MultiplexConfig()
        result = runner.run_scenario(
            fg_graph, fg_per_gpu_batch, bg_graph, cfg, sync_gpus=sync_gpus,
            label="calibration",
        )
        bg_alone = runner.background_only_throughput(bg_graph, cfg)
        busy_eff = 0.0 if bg_alone <= 0 else min(1.0, result.bg_throughput / bg_alone)
        return cls(
            fg_slowdown=max(1.0, result.fg_slowdown),
            bg_busy_efficiency=busy_eff,
            bg_idle_efficiency=bg_idle_efficiency,
        )


class ClusterExecutor:
    """Estimates cluster-wide scenario throughput from plans and profiles."""

    def __init__(
        self,
        fabric: NetworkFabric,
        profiler: Optional[LayerProfiler] = None,
        planner: Optional[BurstParallelPlanner] = None,
    ) -> None:
        self.fabric = fabric
        self.profiler = profiler if profiler is not None else LayerProfiler()
        self.planner = (
            planner
            if planner is not None
            else BurstParallelPlanner(fabric, self.profiler)
        )

    # ------------------------------------------------------------ primitives
    def background_isolated_throughput(self, job: TrainingJob) -> float:
        """Samples/s of a background job running alone on one GPU."""
        iter_time = self.profiler.iteration_compute_time(job.graph, job.global_batch)
        if iter_time <= 0:
            return 0.0
        return job.global_batch / iter_time

    def execute_plan(
        self,
        plan: TrainingPlan,
        background: Optional[TrainingJob] = None,
        collocation: Optional[CollocationProfile] = None,
        label: str = "",
    ) -> ScenarioThroughput:
        """Cluster throughput of running a foreground plan (plus optional BG).

        The coordinator places the plan's stages on GPUs; background
        throughput is accumulated per GPU from its idle and busy fractions
        using the collocation profile.
        """
        coordinator = ClusterCoordinator(num_gpus=plan.total_gpus)
        coordinator.place_plan(plan)

        profile = collocation if collocation is not None else CollocationProfile()
        collocating = background is not None
        fg_iteration = plan.iteration_time * (profile.fg_slowdown if collocating else 1.0)
        fg_throughput = plan.global_batch / fg_iteration if fg_iteration > 0 else 0.0

        bg_throughput = 0.0
        if collocating:
            assert background is not None
            bg_isolated = self.background_isolated_throughput(background)
            for runtime in coordinator.runtimes:
                busy = runtime.busy_fraction(fg_iteration)
                idle = 1.0 - busy
                bg_throughput += bg_isolated * (
                    idle * profile.bg_idle_efficiency
                    + busy * profile.bg_busy_efficiency
                )

        return ScenarioThroughput(
            label=label or ("BP + Col" if collocating else "BP"),
            fg_throughput=fg_throughput,
            bg_throughput=bg_throughput,
            fg_iteration_time=fg_iteration,
            num_gpus=plan.total_gpus,
        )

    def background_only(
        self, background: TrainingJob, num_gpus: int, label: str = "BG Only"
    ) -> ScenarioThroughput:
        """Every GPU runs only the background job (Figure 9's ceiling bar)."""
        bg_isolated = self.background_isolated_throughput(background)
        return ScenarioThroughput(
            label=label,
            fg_throughput=0.0,
            bg_throughput=bg_isolated * num_gpus,
            fg_iteration_time=0.0,
            num_gpus=num_gpus,
        )

    # -------------------------------------------------------------- scenarios
    def figure9_scenarios(
        self,
        foreground: TrainingJob,
        num_gpus: int,
        amplification_limit: float = 2.0,
        bg_batch: int = 4,
        collocation: Optional[CollocationProfile] = None,
    ) -> List[ScenarioThroughput]:
        """The four bars of Figure 9 for one workload.

        The background job trains the same model as the foreground job (as in
        the paper, "for ease of understanding GPU throughput") at a small
        per-GPU batch size.
        """
        background = foreground.background(batch=bg_batch)
        dp_plan = self.planner.data_parallel_plan(
            foreground.graph, foreground.global_batch, num_gpus
        )
        bp_plan = self.planner.plan(
            foreground.graph,
            foreground.global_batch,
            num_gpus,
            amplification_limit=foreground.amplification_limit or amplification_limit,
        )
        scenarios = [
            self.execute_plan(dp_plan, label="DP"),
            self.execute_plan(bp_plan, label="BP"),
            self.execute_plan(
                bp_plan, background=background, collocation=collocation, label="BP + Col"
            ),
            self.background_only(background, num_gpus),
        ]
        return scenarios
