"""Cluster-level throughput accounting and reporting (Figures 9 and 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["ScenarioThroughput", "TradeoffPoint", "pareto_frontier"]


@dataclass(frozen=True)
class ScenarioThroughput:
    """Cluster-wide training throughput of one scenario (one bar of Figure 9).

    Attributes
    ----------
    label:
        Scenario name ("DP", "BP", "BP + Col", "BG Only", "Partition k+m"...).
    fg_throughput:
        Foreground samples per second across the whole cluster.
    bg_throughput:
        Background samples per second across the whole cluster.
    fg_iteration_time:
        Foreground iteration time (seconds), if a foreground job ran.
    num_gpus:
        Cluster size used by the scenario.
    """

    label: str
    fg_throughput: float
    bg_throughput: float
    fg_iteration_time: float = 0.0
    num_gpus: int = 0

    @property
    def total_throughput(self) -> float:
        """Combined foreground + background samples per second."""
        return self.fg_throughput + self.bg_throughput


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point of the Figure 10 trade-off study."""

    label: str
    fg_speedup: float
    cluster_throughput: float
    amplification_limit: float = float("inf")
    bg_batch_size: int = 0

    def dominates(self, other: "TradeoffPoint") -> bool:
        """True when this point is at least as good on both axes and better on one."""
        at_least = (
            self.fg_speedup >= other.fg_speedup
            and self.cluster_throughput >= other.cluster_throughput
        )
        strictly = (
            self.fg_speedup > other.fg_speedup
            or self.cluster_throughput > other.cluster_throughput
        )
        return at_least and strictly


def pareto_frontier(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """Non-dominated subset of trade-off points, sorted by foreground speedup."""
    frontier = [
        p
        for p in points
        if not any(other.dominates(p) for other in points if other is not p)
    ]
    return sorted(frontier, key=lambda p: p.fg_speedup)
