"""Per-GPU runtime and task manager.

Each GPU in a DeepPool cluster runs a host-side runtime whose task manager
schedules one distributed foreground job and one local low-priority
background job (paper Figure 6).  In the reproduction, the runtime tracks
which foreground stages its GPU participates in (and for how long per
iteration), plus the background job attached to the GPU; the cluster
executor uses this per-GPU occupancy to work out how much background
throughput each GPU can contribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.planner.plan import LayerAssignment
from .job import TrainingJob

__all__ = ["GPURuntime"]


@dataclass
class GPURuntime:
    """State of one GPU's DeepPool runtime within an iteration.

    Attributes
    ----------
    gpu_id:
        Index of the GPU in the cluster.
    foreground_busy_time:
        Time per iteration this GPU spends executing foreground stages.
    foreground_assignments:
        The foreground layer assignments placed on this GPU.
    background_job:
        The local background job collocated on this GPU, if any.
    """

    gpu_id: int
    foreground_busy_time: float = 0.0
    foreground_assignments: List[LayerAssignment] = field(default_factory=list)
    background_job: Optional[TrainingJob] = None

    def assign_stage(self, assignment: LayerAssignment) -> None:
        """Record that this GPU participates in a foreground stage."""
        self.foreground_assignments.append(assignment)
        self.foreground_busy_time += assignment.stage_time

    def attach_background(self, job: TrainingJob) -> None:
        """Attach a local background job to this GPU's task manager."""
        if not job.is_background:
            raise ValueError(f"job {job.name!r} is not a background job")
        self.background_job = job

    def busy_fraction(self, iteration_time: float) -> float:
        """Fraction of the iteration this GPU is busy with foreground work."""
        if iteration_time <= 0:
            return 0.0
        return min(1.0, self.foreground_busy_time / iteration_time)

    def idle_fraction(self, iteration_time: float) -> float:
        """Fraction of the iteration this GPU has no foreground work."""
        return 1.0 - self.busy_fraction(iteration_time)
