"""Job descriptions submitted to the cluster.

Mirrors what a user hands to DeepPool (paper Figure 6): a model description,
a dataset/batch configuration, and — for foreground jobs — an inefficiency
tolerance (GPU-sec amplification limit).  Background jobs are small,
single-GPU, low-priority training jobs used to reclaim spare capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..models.graph import ModelGraph

__all__ = ["JobKind", "TrainingJob"]


class JobKind(str, Enum):
    """Whether a job is a time-critical foreground job or best-effort background."""

    FOREGROUND = "foreground"
    BACKGROUND = "background"


@dataclass(frozen=True)
class TrainingJob:
    """One training job submitted to the cluster.

    Attributes
    ----------
    name:
        Unique job name.
    graph:
        Static model graph to train.
    global_batch:
        Global batch size per iteration.  For background jobs this is the
        single-GPU batch size (background jobs are limited to one GPU,
        paper Section 1).
    kind:
        Foreground (high priority, distributed) or background (low priority,
        local).
    amplification_limit:
        Inefficiency tolerance used by the burst-parallel planner; only
        meaningful for foreground jobs.
    """

    name: str
    graph: ModelGraph
    global_batch: int
    kind: JobKind = JobKind.FOREGROUND
    amplification_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.global_batch < 1:
            raise ValueError(f"job {self.name!r}: global_batch must be positive")
        if self.amplification_limit is not None and self.amplification_limit < 1.0:
            raise ValueError(
                f"job {self.name!r}: amplification_limit must be at least 1.0"
            )

    @property
    def is_foreground(self) -> bool:
        return self.kind is JobKind.FOREGROUND

    @property
    def is_background(self) -> bool:
        return self.kind is JobKind.BACKGROUND

    def foreground(self) -> "TrainingJob":
        """Copy of this job marked as foreground."""
        return TrainingJob(
            self.name, self.graph, self.global_batch, JobKind.FOREGROUND,
            self.amplification_limit,
        )

    def background(self, batch: Optional[int] = None) -> "TrainingJob":
        """Copy of this job marked as a (single-GPU) background job."""
        return TrainingJob(
            f"{self.name}-bg",
            self.graph,
            batch if batch is not None else self.global_batch,
            JobKind.BACKGROUND,
            None,
        )
