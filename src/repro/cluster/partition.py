"""Static cluster-partition baseline (Figure 10's comparison).

Instead of burst parallelism plus collocation, an operator can statically
split the cluster: ``k`` GPUs run the foreground job with conventional data
parallelism and the remaining GPUs each run an independent background job.
The paper compares DeepPool's operating points against the four partitions
1/2/4/8 foreground GPUs on an 8-GPU cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.planner.planner import BurstParallelPlanner
from ..network.fabric import NetworkFabric
from ..profiler.layer_profiler import LayerProfiler
from .job import TrainingJob
from .throughput import ScenarioThroughput, TradeoffPoint

__all__ = ["ClusterPartitionBaseline"]


@dataclass
class ClusterPartitionBaseline:
    """Evaluates static foreground/background cluster partitions."""

    fabric: NetworkFabric
    profiler: Optional[LayerProfiler] = None
    planner: Optional[BurstParallelPlanner] = None

    def __post_init__(self) -> None:
        if self.profiler is None:
            self.profiler = LayerProfiler()
        if self.planner is None:
            self.planner = BurstParallelPlanner(self.fabric, self.profiler)

    def evaluate(
        self,
        foreground: TrainingJob,
        background: TrainingJob,
        total_gpus: int,
        foreground_gpus: int,
    ) -> ScenarioThroughput:
        """Throughput of one static partition configuration."""
        if not (1 <= foreground_gpus <= total_gpus):
            raise ValueError(
                f"foreground_gpus must be in [1, {total_gpus}], got {foreground_gpus}"
            )
        assert self.planner is not None and self.profiler is not None
        plan = self.planner.data_parallel_plan(
            foreground.graph, foreground.global_batch, foreground_gpus
        )
        fg_throughput = foreground.global_batch / plan.iteration_time

        bg_gpus = total_gpus - foreground_gpus
        bg_iter = self.profiler.iteration_compute_time(
            background.graph, background.global_batch
        )
        bg_each = background.global_batch / bg_iter if bg_iter > 0 else 0.0
        return ScenarioThroughput(
            label=f"Partition {foreground_gpus}+{bg_gpus}",
            fg_throughput=fg_throughput,
            bg_throughput=bg_each * bg_gpus,
            fg_iteration_time=plan.iteration_time,
            num_gpus=total_gpus,
        )

    def sweep(
        self,
        foreground: TrainingJob,
        background: TrainingJob,
        total_gpus: int,
        foreground_gpu_options: Sequence[int] = (1, 2, 4, 8),
    ) -> List[ScenarioThroughput]:
        """All partition configurations of Figure 10's baseline."""
        return [
            self.evaluate(foreground, background, total_gpus, k)
            for k in foreground_gpu_options
            if k <= total_gpus
        ]

    def tradeoff_points(
        self,
        foreground: TrainingJob,
        background: TrainingJob,
        total_gpus: int,
        foreground_gpu_options: Sequence[int] = (1, 2, 4, 8),
    ) -> List[TradeoffPoint]:
        """Partition configurations as (speedup, cluster throughput) points."""
        assert self.planner is not None
        single = self.planner.single_gpu_plan(foreground.graph, foreground.global_batch)
        points = []
        for scenario in self.sweep(
            foreground, background, total_gpus, foreground_gpu_options
        ):
            speedup = single.iteration_time / scenario.fg_iteration_time
            points.append(
                TradeoffPoint(
                    label=scenario.label,
                    fg_speedup=speedup,
                    cluster_throughput=scenario.total_throughput,
                )
            )
        return points
