"""Cluster simulator: coordinator, runtimes, executor, and baselines.

Public API:

* :class:`~repro.cluster.job.TrainingJob` / :class:`~repro.cluster.job.JobKind`
  — job descriptions.
* :class:`~repro.cluster.coordinator.ClusterCoordinator` and
  :class:`~repro.cluster.runtime.GPURuntime` — plan placement onto GPUs.
* :class:`~repro.cluster.executor.ClusterExecutor` /
  :class:`~repro.cluster.executor.CollocationProfile` — scenario throughput
  (Figure 9).
* :class:`~repro.cluster.partition.ClusterPartitionBaseline` — the static
  partitioning baseline (Figure 10).
* :class:`~repro.cluster.throughput.ScenarioThroughput` /
  :class:`~repro.cluster.throughput.TradeoffPoint` — reporting types.
"""

from .coordinator import ClusterCoordinator
from .executor import ClusterExecutor, CollocationProfile
from .job import JobKind, TrainingJob
from .partition import ClusterPartitionBaseline
from .runtime import GPURuntime
from .throughput import ScenarioThroughput, TradeoffPoint, pareto_frontier

__all__ = [
    "TrainingJob",
    "JobKind",
    "ClusterCoordinator",
    "GPURuntime",
    "ClusterExecutor",
    "CollocationProfile",
    "ClusterPartitionBaseline",
    "ScenarioThroughput",
    "TradeoffPoint",
    "pareto_frontier",
]
