"""Cluster coordinator: placing a training plan onto GPU runtimes.

The coordinator receives the planner's JSON training plan and places each
stage on a subset of GPUs (paper Figure 6).  The placement policy mirrors the
prototype's simple strategy: a stage scaled to ``w`` GPUs runs on GPUs
``0 .. w-1`` ("bursting" always grows from the same base set), while
non-critical branches that the planner scheduled concurrently are pushed onto
the highest-numbered GPUs so they do not contend with the critical path.
Complex alignments (interleaving the gaps of two burst-parallel jobs) are not
supported, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..core.planner.plan import TrainingPlan
from .job import TrainingJob
from .runtime import GPURuntime

__all__ = ["ClusterCoordinator"]


@dataclass
class ClusterCoordinator:
    """Manages the cluster's GPU runtimes and job placement."""

    num_gpus: int
    runtimes: List[GPURuntime] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be at least 1")
        if not self.runtimes:
            self.runtimes = [GPURuntime(gpu_id=i) for i in range(self.num_gpus)]
        if len(self.runtimes) != self.num_gpus:
            raise ValueError("runtimes list does not match num_gpus")

    # -------------------------------------------------------------- placement
    def place_plan(self, plan: Union[TrainingPlan, str]) -> List[GPURuntime]:
        """Place a foreground training plan (object or JSON) onto the GPUs.

        Returns the runtimes with their per-iteration foreground busy time
        populated.  Raises if the plan needs more GPUs than the cluster has.
        """
        if isinstance(plan, str):
            plan = TrainingPlan.from_json(plan)
        if plan.max_gpus_used() > self.num_gpus:
            raise ValueError(
                f"plan requires {plan.max_gpus_used()} GPUs but the cluster has "
                f"{self.num_gpus}"
            )
        for runtime in self.runtimes:
            runtime.foreground_busy_time = 0.0
            runtime.foreground_assignments = []
        for assignment in plan.assignments:
            width = assignment.num_gpus
            if assignment.parallel_branch:
                # Concurrent non-critical branches use the top of the GPU
                # range.  The branch runs at the same time as its block's
                # critical branch (which grows from GPU 0), so a branch as
                # wide as the cluster necessarily overlaps it and the same
                # GPU would be assigned twice for the same time slot.
                # Narrower overlaps cannot be detected here: the serialized
                # plan does not record which non-branch stages belong to the
                # same block, and stages of *other* blocks legitimately
                # share GPUs with this branch (they run at different times).
                # The planner itself guarantees per-block disjointness.
                if width >= self.num_gpus:
                    raise ValueError(
                        f"parallel branch layer {assignment.layer_name!r} uses "
                        f"{width} GPUs, which would overlap the critical-path "
                        f"GPU range on a {self.num_gpus}-GPU cluster; "
                        "concurrent branches must leave room for the critical "
                        "branch"
                    )
                gpu_ids = range(self.num_gpus - width, self.num_gpus)
            else:
                gpu_ids = range(0, width)
            for gpu_id in gpu_ids:
                self.runtimes[gpu_id].assign_stage(assignment)
        return self.runtimes

    def place_background(self, job: TrainingJob, gpu_ids: Optional[List[int]] = None) -> None:
        """Attach a background job to every GPU (or to an explicit subset)."""
        targets = gpu_ids if gpu_ids is not None else list(range(self.num_gpus))
        for gpu_id in targets:
            self.runtimes[gpu_id].attach_background(job)

    # ---------------------------------------------------------------- queries
    def busy_fractions(self, iteration_time: float) -> List[float]:
        """Per-GPU foreground busy fraction for one iteration."""
        return [rt.busy_fraction(iteration_time) for rt in self.runtimes]

    def average_busy_fraction(self, iteration_time: float) -> float:
        fractions = self.busy_fractions(iteration_time)
        return sum(fractions) / len(fractions) if fractions else 0.0

    def idle_gpu_seconds(self, iteration_time: float) -> float:
        """Total idle GPU-seconds per iteration across the cluster."""
        return sum(
            rt.idle_fraction(iteration_time) * iteration_time for rt in self.runtimes
        )
