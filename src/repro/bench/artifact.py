"""Benchmark artifacts: the ``BENCH_<name>.json`` files the harness emits.

An artifact records one scenario run with a stable, versioned schema:

* ``name`` / ``params`` — the scenario and the exact parameters it ran with;
* ``ops`` — a *deterministic* count of the work performed (profiler queries,
  simulation events, simulator runs...).  Identical params must yield
  identical ops on every machine; the regression gate compares them exactly.
* ``wall_time_s`` — best-of-``repeats`` wall-clock time, plus every repeat's
  time.  Wall time is inherently machine-dependent; cross-machine comparisons
  should pass ``--ignore-time`` and rely on the op counts.
* ``metrics`` — scenario-specific deterministic outputs (rounded to 9
  significant digits), acting as a result fingerprint;
* ``info`` — *non-deterministic* diagnostics (persistent-cache hit/miss
  counts, prewarmed-plan counts...).  Informational only: the regression
  gate and the determinism checks ignore it;
* ``git_sha`` — the commit the artifact was produced from.

Artifacts are written with sorted keys and a fixed indent so re-running a
scenario at the same commit produces a minimal diff (only the timing fields
change).
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "BenchArtifact",
    "artifact_filename",
    "current_git_sha",
    "load_artifacts",
    "round_metric",
]

#: Bump when the artifact layout changes incompatibly; ``compare`` refuses to
#: diff artifacts with mismatched schema versions.
#: v2: added the non-gated ``info`` diagnostics block and environment
#: parameters (``cache_dir``, ``planner_processes``) that ``compare``
#: excludes from param matching.
SCHEMA_VERSION = 2

_ARTIFACT_PREFIX = "BENCH_"


def round_metric(value: float) -> float:
    """Round a metric to 9 significant digits for a stable fingerprint."""
    return float(f"{float(value):.9g}")


def artifact_filename(name: str) -> str:
    """``BENCH_<name>.json`` with the scenario name sanitized for filesystems."""
    safe = "".join(c if (c.isalnum() or c in "._-") else "-" for c in name)
    return f"{_ARTIFACT_PREFIX}{safe}.json"


def current_git_sha() -> str:
    """HEAD of the checkout containing this package, or ``"unknown"``.

    Resolved relative to the package source rather than the caller's working
    directory, so artifacts record the right provenance no matter where the
    CLI is invoked from.
    """
    cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        sha = out.stdout.strip()
        if out.returncode != 0 or not sha:
            return "unknown"
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        # A '-dirty' suffix keeps artifacts honest about uncommitted changes.
        if dirty.returncode == 0 and dirty.stdout.strip():
            sha += "-dirty"
        return sha
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@dataclass(frozen=True)
class BenchArtifact:
    """One scenario run, as serialized to ``BENCH_<name>.json``."""

    name: str
    params: Dict[str, Any]
    ops: int
    wall_time_s: float
    wall_times_s: Tuple[float, ...]
    metrics: Dict[str, float] = field(default_factory=dict)
    info: Dict[str, Any] = field(default_factory=dict)
    git_sha: str = "unknown"
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ValueError("ops must be non-negative")
        if self.wall_time_s < 0:
            raise ValueError("wall_time_s must be non-negative")

    @property
    def ops_per_second(self) -> float:
        """Throughput under the best repeat (0 when timing is degenerate)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.ops / self.wall_time_s

    # ------------------------------------------------------------------- io
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["wall_times_s"] = list(self.wall_times_s)
        data["ops_per_second"] = round_metric(self.ops_per_second)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchArtifact":
        known = {
            "name",
            "params",
            "ops",
            "wall_time_s",
            "wall_times_s",
            "metrics",
            "info",
            "git_sha",
            "schema_version",
        }
        fields = {k: v for k, v in data.items() if k in known}
        fields["wall_times_s"] = tuple(fields.get("wall_times_s", ()))
        return cls(**fields)

    def write(self, out_dir: Union[str, Path]) -> Path:
        """Write ``BENCH_<name>.json`` into ``out_dir`` and return its path."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / artifact_filename(self.name)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "BenchArtifact":
        return cls.from_dict(json.loads(Path(path).read_text()))


def load_artifacts(path: Union[str, Path]) -> Dict[str, BenchArtifact]:
    """Load artifacts from one JSON file or every ``BENCH_*.json`` in a dir."""
    p = Path(path)
    if p.is_dir():
        files: List[Path] = sorted(p.glob(f"{_ARTIFACT_PREFIX}*.json"))
        if not files:
            raise FileNotFoundError(f"no {_ARTIFACT_PREFIX}*.json artifacts in {p}")
    elif p.is_file():
        files = [p]
    else:
        raise FileNotFoundError(f"no benchmark artifact at {p}")
    artifacts: Dict[str, BenchArtifact] = {}
    for f in files:
        artifact = BenchArtifact.read(f)
        if artifact.name in artifacts:
            raise ValueError(f"duplicate artifact name {artifact.name!r} in {path}")
        artifacts[artifact.name] = artifact
    return artifacts
