"""Multiprocess sweep driver: fan benchmark runs out across CPU cores.

Two entry points:

* :func:`grid_jobs` expands a parameter grid (e.g. ``gpu_counts`` x
  ``fabric``) into one :class:`SweepJob` per combination, each with a unique
  artifact name derived from its overrides;
* :func:`run_jobs` executes a list of jobs — serially, or on a
  ``multiprocessing`` pool when ``processes > 1``.  Each job runs a whole
  scenario, so parallelism never perturbs a scenario's own timing: a worker
  process times exactly one scenario at a time.

Workers are module-level functions operating on plain tuples, so the driver
works under both fork and spawn start methods.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .artifact import BenchArtifact

__all__ = ["SweepJob", "grid_jobs", "run_jobs"]


@dataclass(frozen=True)
class SweepJob:
    """One scenario execution of a sweep (scenario + overrides + repeats)."""

    scenario: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    repeats: int = 1
    #: Artifact name; defaults to the scenario name (callers must make names
    #: unique when sweeping one scenario over several parameter values).
    artifact_name: Optional[str] = None


def _format_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "x".join(_format_value(v) for v in value)
    return str(value)


def grid_jobs(
    scenario: str,
    param_grid: Dict[str, Sequence[Any]],
    repeats: int = 1,
    fixed: Optional[Dict[str, Any]] = None,
) -> List[SweepJob]:
    """One job per combination of the grid's parameter values.

    ``{"num_gpus": [64, 256], "policy": ["fifo", "collocation"]}`` yields four
    jobs named ``<scenario>--num_gpus-64--policy-fifo`` etc., so their
    artifacts never collide on disk.  ``fixed`` overrides apply to every job
    without entering the artifact name (environment knobs like ``cache_dir``);
    a key cannot be both swept and fixed — the fixed value would silently
    clobber the grid's while the names still claimed distinct values.
    """
    fixed = dict(fixed or {})
    clash = sorted(set(fixed) & set(param_grid))
    if clash:
        raise ValueError(
            f"parameter(s) both swept and fixed: {', '.join(clash)}"
        )
    if not param_grid:
        return [SweepJob(scenario=scenario, overrides=fixed, repeats=repeats)]
    keys = sorted(param_grid)
    jobs: List[SweepJob] = []
    for combo in itertools.product(*(param_grid[k] for k in keys)):
        overrides = dict(zip(keys, combo))
        suffix = "--".join(f"{k}-{_format_value(v)}" for k, v in overrides.items())
        overrides.update(fixed)
        jobs.append(
            SweepJob(
                scenario=scenario,
                overrides=overrides,
                repeats=repeats,
                artifact_name=f"{scenario}--{suffix}",
            )
        )
    return jobs


def _run_job(payload: Tuple[str, Dict[str, Any], int, Optional[str]]) -> Dict[str, Any]:
    """Pool worker: run one scenario and return the artifact as a dict."""
    from .harness import run_scenario  # local import keeps spawn workers light

    scenario, overrides, repeats, artifact_name = payload
    artifact = run_scenario(
        scenario, overrides=overrides, repeats=repeats, artifact_name=artifact_name
    )
    return artifact.to_dict()


def run_jobs(
    jobs: Sequence[SweepJob],
    processes: Optional[int] = None,
    on_result: Optional[Callable[[BenchArtifact], None]] = None,
) -> List[BenchArtifact]:
    """Execute sweep jobs, fanning out across ``processes`` workers.

    ``processes`` of ``None`` or 1 runs serially (exact timings, no pool
    overhead); higher values trade timing isolation for wall-clock speed —
    appropriate for op-count-oriented sweeps and CI baselines.

    ``on_result`` is invoked with each artifact as it completes, in job
    order (the CLI's ``--verbose`` progress lines); the pool path streams
    results via ``imap`` so the callback fires as workers finish rather
    than after the whole sweep.
    """
    payloads = [
        (job.scenario, dict(job.overrides), job.repeats, job.artifact_name)
        for job in jobs
    ]
    artifacts: List[BenchArtifact] = []
    if processes is None or processes <= 1 or len(payloads) <= 1:
        for payload in payloads:
            artifact = BenchArtifact.from_dict(_run_job(payload))
            if on_result is not None:
                on_result(artifact)
            artifacts.append(artifact)
        return artifacts
    workers = min(processes, len(payloads))
    with multiprocessing.Pool(processes=workers) as pool:
        for result in pool.imap(_run_job, payloads):
            artifact = BenchArtifact.from_dict(result)
            if on_result is not None:
                on_result(artifact)
            artifacts.append(artifact)
    return artifacts
