"""Command-line entry point: ``python -m repro.bench``.

Subcommands
-----------
``list``
    Show registered scenarios, their descriptions and default parameters.
``run``
    Run scenarios (``--all`` or by name) and write ``BENCH_<name>.json``
    artifacts.  ``--param k=v`` overrides scenario parameters; ``--filter``
    narrows the selection by glob; ``--cache-dir`` points cache-aware
    scenarios at a persistent artifact cache; ``--processes`` fans
    independent scenarios out across cores.
``sweep``
    Run one scenario over a parameter grid (``--grid k=v1,v2 ...``), one
    artifact per combination, optionally multiprocessed (``--cache-dir``
    lets all workers share one persistent cache instead of re-deriving
    per process).
``compare``
    Diff a current artifact set against a baseline (files or directories) and
    exit nonzero on regression — the CI gate.  ``--write-baselines`` copies
    the current artifacts over the baseline in the same step (after an
    intentional performance change).
"""

from __future__ import annotations

import argparse
import fnmatch
import sys
from typing import Any, Dict, List, Optional, Sequence

from .artifact import load_artifacts
from .compare import DEFAULT_MAX_TIME_REGRESS_PCT, compare_artifacts, format_report
from .harness import available_scenarios, get_scenario
from .sweep import SweepJob, grid_jobs, run_jobs


def _parse_scalar(text: str) -> Any:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_value(text: str) -> Any:
    if "," in text:
        return [_parse_scalar(part) for part in text.split(",") if part != ""]
    return _parse_scalar(text)


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects k=v, got {pair!r}")
        key, _, value = pair.partition("=")
        overrides[key] = _parse_value(value)
    return overrides


def _cmd_list(_: argparse.Namespace) -> int:
    for name in available_scenarios():
        spec = get_scenario(name)
        defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(spec.default_params.items()))
        print(f"{name}\n    {spec.description}\n    defaults: {defaults}")
    return 0


def _progress_line(artifact) -> str:
    """Per-scenario ``--verbose`` progress line (name, wall time, op count).

    The trailing counters come from the artifact's ``info["counters"]``
    registry delta — the three largest movers, a quick read on where the
    scenario spent its work.
    """
    line = (
        f"[done] {artifact.name}: wall={artifact.wall_time_s:.3f}s "
        f"ops={artifact.ops}"
    )
    counters = artifact.info.get("counters") or {}
    movers = sorted(
        (
            (key, value)
            for key, value in counters.items()
            if isinstance(value, int)
        ),
        key=lambda item: (-item[1], item[0]),
    )[:3]
    if movers:
        line += " | " + " ".join(f"{k}={v}" for k, v in movers)
    return line


def _write_and_report(artifacts, out_dir) -> None:
    for artifact in artifacts:
        path = artifact.write(out_dir)
        line = (
            f"{artifact.name}: ops={artifact.ops} "
            f"wall={artifact.wall_time_s:.3f}s"
        )
        if artifact.info.get("persistent_cache"):
            line += (
                f" cache[{artifact.info.get('cache_hits', 0)} hit"
                f"/{artifact.info.get('cache_misses', 0)} miss"
                f"/{artifact.info.get('cache_writes', 0)} write]"
            )
        print(f"{line} -> {path}")


def _apply_filter(names: List[str], pattern: Optional[str]) -> List[str]:
    if pattern is None:
        return names
    selected = [name for name in names if fnmatch.fnmatch(name, pattern)]
    if not selected:
        raise SystemExit(
            f"--filter {pattern!r} matches none of: {', '.join(names)}"
        )
    return selected


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        names = available_scenarios()
    elif args.scenarios:
        names = list(args.scenarios)
    else:
        raise SystemExit("run: give scenario names or --all")
    names = _apply_filter(names, args.filter)
    overrides = _parse_overrides(args.param)
    if args.cache_dir is not None:
        if "cache_dir" in overrides:
            raise SystemExit(
                "give either --cache-dir or --param cache_dir=..., not both"
            )
        overrides["cache_dir"] = args.cache_dir
    # Each override applies to the scenarios that have that parameter, so
    # `run --all --param seed=7` works even though not every scenario takes a
    # seed.  A key no scenario accepts is still an error (likely a typo).
    used_keys = set()
    jobs = []
    for name in names:
        defaults = get_scenario(name).default_params
        applicable = {k: v for k, v in overrides.items() if k in defaults}
        used_keys.update(applicable)
        jobs.append(
            SweepJob(scenario=name, overrides=applicable, repeats=args.repeats)
        )
    unknown = sorted(set(overrides) - used_keys)
    if unknown:
        raise SystemExit(
            f"no selected scenario has parameter(s): {', '.join(unknown)}"
        )
    on_result = None
    if args.verbose:
        def on_result(artifact) -> None:
            print(_progress_line(artifact), flush=True)
    _write_and_report(
        run_jobs(jobs, processes=args.processes, on_result=on_result), args.out
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid = {k: v if isinstance(v, list) else [v]
            for k, v in _parse_overrides(args.grid).items()}
    defaults = get_scenario(args.scenario).default_params
    fixed = {}
    if args.cache_dir is not None:
        if "cache_dir" not in defaults:
            raise SystemExit(
                f"scenario {args.scenario!r} does not take a cache_dir"
            )
        fixed["cache_dir"] = args.cache_dir
    unknown = sorted(set(grid) - set(defaults))
    if unknown:
        raise SystemExit(
            f"scenario {args.scenario!r} has no parameter(s): "
            f"{', '.join(unknown)}; available: {', '.join(sorted(defaults))}"
        )
    jobs = grid_jobs(args.scenario, grid, repeats=args.repeats, fixed=fixed)
    _write_and_report(run_jobs(jobs, processes=args.processes), args.out)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_artifacts(args.baseline)
    current = load_artifacts(args.current)
    comparison = compare_artifacts(
        baseline,
        current,
        max_time_regress_pct=args.max_time_regress,
        ops_tolerance_pct=args.ops_tolerance,
        ignore_time=args.ignore_time,
        require_counters=args.require_counters,
    )
    print(format_report(comparison))
    if args.write_baselines is not None:
        # Declaring a new baseline (after an intentional performance change):
        # copy every current artifact over the baseline set in one step.
        for artifact in current.values():
            path = artifact.write(args.write_baselines)
            print(f"baseline <- {artifact.name} ({path})")
        stale = sorted(set(baseline) - set(current))
        if stale:
            print(
                "note: baseline scenarios not refreshed (absent from current "
                f"run): {', '.join(stale)}"
            )
        return 0
    return 0 if comparison.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Performance harness: run benchmark scenarios and gate regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios").set_defaults(
        fn=_cmd_list
    )

    run_p = sub.add_parser("run", help="run scenarios and write artifacts")
    run_p.add_argument("scenarios", nargs="*", help="scenario names")
    run_p.add_argument("--all", action="store_true", help="run every scenario")
    run_p.add_argument("--out", default=".", help="artifact output directory")
    run_p.add_argument("--repeats", type=int, default=1, help="timing repeats")
    run_p.add_argument(
        "--processes", type=int, default=1,
        help="worker processes for independent scenarios",
    )
    run_p.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="override a scenario parameter (repeatable)",
    )
    run_p.add_argument(
        "--filter", default=None, metavar="GLOB",
        help="only run scenarios whose name matches this glob",
    )
    run_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent artifact cache for cache-aware scenarios",
    )
    run_p.add_argument(
        "--verbose", action="store_true",
        help="print a progress line (wall time, ops, top counters) as each "
        "scenario finishes",
    )
    run_p.set_defaults(fn=_cmd_run)

    sweep_p = sub.add_parser("sweep", help="run one scenario over a parameter grid")
    sweep_p.add_argument("scenario", help="scenario name")
    sweep_p.add_argument(
        "--grid", action="append", default=[], metavar="K=V1,V2",
        help="parameter values to sweep (repeatable)",
    )
    sweep_p.add_argument("--out", default=".", help="artifact output directory")
    sweep_p.add_argument("--repeats", type=int, default=1, help="timing repeats")
    sweep_p.add_argument(
        "--processes", type=int, default=1, help="worker processes"
    )
    sweep_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent artifact cache shared by all sweep workers",
    )
    sweep_p.set_defaults(fn=_cmd_sweep)

    cmp_p = sub.add_parser(
        "compare", help="diff artifacts against a baseline; nonzero exit on regression"
    )
    cmp_p.add_argument("baseline", help="baseline artifact file or directory")
    cmp_p.add_argument("current", help="current artifact file or directory")
    cmp_p.add_argument(
        "--max-time-regress", type=float, default=DEFAULT_MAX_TIME_REGRESS_PCT,
        metavar="PCT", help="allowed wall-time regression percent (default 10)",
    )
    cmp_p.add_argument(
        "--ops-tolerance", type=float, default=0.0, metavar="PCT",
        help="allowed op-count drift percent (default 0: exact)",
    )
    cmp_p.add_argument(
        "--ignore-time", action="store_true",
        help="skip wall-time checks (cross-machine comparisons)",
    )
    cmp_p.add_argument(
        "--require-counters", action="store_true",
        help="fail current artifacts whose info block has no counters "
        "(observability registry wiring check)",
    )
    cmp_p.add_argument(
        "--write-baselines", nargs="?", const="benchmarks/baselines",
        default=None, metavar="DIR",
        help="copy the current artifacts into the baseline directory "
        "(default benchmarks/baselines) and exit 0 — declares a new baseline",
    )
    cmp_p.set_defaults(fn=_cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
