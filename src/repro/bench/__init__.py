"""``repro.bench`` — the repo's performance harness.

A benchmark runner that times named scenarios over the system's hot paths
(planner search grids, cluster-scheduler simulations, collocation sweeps),
emits deterministic ``BENCH_<name>.json`` artifacts, and diffs artifact sets
to gate performance regressions in CI.

Public API:

* :func:`~repro.bench.harness.run_scenario` / :func:`available_scenarios` /
  the :func:`~repro.bench.harness.scenario` registration decorator;
* :class:`~repro.bench.artifact.BenchArtifact` and
  :func:`~repro.bench.artifact.load_artifacts`;
* :func:`~repro.bench.compare.compare_artifacts` /
  :func:`~repro.bench.compare.format_report` — the regression gate;
* :func:`~repro.bench.sweep.run_jobs` / :func:`~repro.bench.sweep.grid_jobs`
  — the multiprocess sweep driver.

Command line: ``python -m repro.bench run --all``, ``... compare A B``;
``run``/``sweep`` take ``--cache-dir`` (persistent artifact cache) and
``run`` takes ``--filter`` (glob scenario subset); ``compare`` takes
``--write-baselines`` to refresh the committed baseline in one step.
"""

from .artifact import (
    SCHEMA_VERSION,
    BenchArtifact,
    artifact_filename,
    current_git_sha,
    load_artifacts,
)
from .compare import Comparison, ComparisonRow, compare_artifacts, format_report
from .harness import (
    Scenario,
    ScenarioResult,
    available_scenarios,
    get_scenario,
    run_scenario,
    scenario,
)
from .sweep import SweepJob, grid_jobs, run_jobs

__all__ = [
    "SCHEMA_VERSION",
    "BenchArtifact",
    "artifact_filename",
    "current_git_sha",
    "load_artifacts",
    "Comparison",
    "ComparisonRow",
    "compare_artifacts",
    "format_report",
    "Scenario",
    "ScenarioResult",
    "available_scenarios",
    "get_scenario",
    "run_scenario",
    "scenario",
    "SweepJob",
    "grid_jobs",
    "run_jobs",
]
