"""The benchmark runner: named scenarios, timed and checked for determinism.

A *scenario* is a callable taking keyword parameters and returning a
:class:`ScenarioResult` — a deterministic op count plus optional metric
fingerprints.  Scenarios register themselves with the :func:`scenario`
decorator; :func:`run_scenario` times one over ``repeats`` runs (keeping the
best wall time, the standard practice for noisy machines), verifies that the
op count and metrics are identical across repeats, and packages everything
into a :class:`~repro.bench.artifact.BenchArtifact`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..obs.metrics import global_registry
from .artifact import BenchArtifact, current_git_sha, round_metric

__all__ = [
    "ScenarioResult",
    "Scenario",
    "scenario",
    "get_scenario",
    "available_scenarios",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioResult:
    """What one scenario execution produced (everything but the timing).

    ``ops`` counts the work performed in scenario-specific units; it must be
    a pure function of the scenario parameters — independent, in particular,
    of persistent-cache state, so cold and warm runs fingerprint alike.
    ``metrics`` are additional deterministic outputs; they are rounded to 9
    significant digits and the regression gate treats them as a result
    fingerprint.  ``info`` carries non-deterministic diagnostics (cache
    hit/miss counts, worker counts...): it is recorded in the artifact but
    excluded from the determinism check and the regression gate.
    """

    ops: int
    metrics: Dict[str, float] = field(default_factory=dict)
    info: Dict[str, Any] = field(default_factory=dict)

    def rounded_metrics(self) -> Dict[str, float]:
        return {k: round_metric(v) for k, v in sorted(self.metrics.items())}


@dataclass(frozen=True)
class Scenario:
    """A registered benchmark scenario."""

    name: str
    fn: Callable[..., ScenarioResult]
    default_params: Dict[str, Any]
    description: str

    def resolve_params(self, overrides: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        params = dict(self.default_params)
        for key, value in (overrides or {}).items():
            if key not in params:
                raise KeyError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"available: {', '.join(sorted(params))}"
                )
            # Sequence-valued parameters accept a bare scalar (e.g. the CLI's
            # ``--param models=vgg11``): wrap it so a lone string is one item,
            # not a sequence of characters.
            if isinstance(params[key], (list, tuple)) and not isinstance(
                value, (list, tuple)
            ):
                value = [value]
            params[key] = value
        return params


_REGISTRY: Dict[str, Scenario] = {}


def scenario(
    name: str, description: str, **default_params: Any
) -> Callable[[Callable[..., ScenarioResult]], Callable[..., ScenarioResult]]:
    """Register a benchmark scenario under ``name`` with its default params."""

    def decorate(fn: Callable[..., ScenarioResult]) -> Callable[..., ScenarioResult]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = Scenario(
            name=name, fn=fn, default_params=dict(default_params),
            description=description,
        )
        return fn

    return decorate


def get_scenario(name: str) -> Scenario:
    _ensure_scenarios_loaded()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        )
    return _REGISTRY[name]


def available_scenarios() -> List[str]:
    _ensure_scenarios_loaded()
    return sorted(_REGISTRY)


def _ensure_scenarios_loaded() -> None:
    # Import for the registration side effect; deferred to avoid a cycle
    # (scenarios import the harness for the decorator).
    from . import scenarios  # noqa: F401


def run_scenario(
    name: str,
    overrides: Optional[Dict[str, Any]] = None,
    repeats: int = 1,
    artifact_name: Optional[str] = None,
) -> BenchArtifact:
    """Run one scenario ``repeats`` times and return its artifact.

    The best (minimum) wall time is reported as ``wall_time_s``.  Op counts
    and metrics must agree across repeats; a mismatch means the scenario is
    nondeterministic and is reported as an error rather than silently
    averaged away.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    spec = get_scenario(name)
    params = spec.resolve_params(overrides)

    wall_times: List[float] = []
    reference: Optional[ScenarioResult] = None
    # Counter traffic is attributed to the first (cold) repeat by
    # snapshot/delta around it — consistent with the info block below.
    counters_before = global_registry().snapshot()
    counters: Dict[str, Any] = {}
    for _ in range(repeats):
        start = time.perf_counter()
        result = spec.fn(**params)
        wall_times.append(time.perf_counter() - start)
        if reference is None:
            reference = result
            counters = global_registry().delta_since(counters_before)
        elif (
            result.ops != reference.ops
            or result.rounded_metrics() != reference.rounded_metrics()
        ):
            raise RuntimeError(
                f"scenario {name!r} is nondeterministic: repeat produced "
                f"ops={result.ops} metrics={result.rounded_metrics()}, "
                f"expected ops={reference.ops} "
                f"metrics={reference.rounded_metrics()}"
            )
    assert reference is not None
    return BenchArtifact(
        name=artifact_name if artifact_name is not None else name,
        params={k: _json_safe(v) for k, v in sorted(params.items())},
        ops=reference.ops,
        wall_time_s=min(wall_times),
        wall_times_s=tuple(wall_times),
        metrics=reference.rounded_metrics(),
        # Diagnostics from the first repeat (the cold one, when a persistent
        # cache is in play — the interesting hit/miss picture).  The
        # ``counters`` entry is that repeat's process-wide registry delta
        # (repro.obs.metrics) — non-gated like the rest of the info block.
        info={
            **{k: _json_safe(v) for k, v in sorted(reference.info.items())},
            "counters": counters,
        },
        git_sha=current_git_sha(),
    )


def _json_safe(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_json_safe(v) for v in value]
    if isinstance(value, (list, dict, str, int, float, bool)) or value is None:
        return value
    return str(value)
