"""The built-in benchmark scenarios covering the repo's hot paths.

Four scenarios ship by default, one per subsystem the ROADMAP cares about:

* ``planner_grid`` — burst-parallel plan search across every registry model
  at a grid of GPU budgets (the paper's Table 3 headline, scaled up).  Ops
  are planned layer assignments; ``cached=False`` re-plans with cold
  in-memory caches, and ``cache_dir`` points the search at a persistent
  :class:`~repro.cache.ArtifactCache` (a warm cache skips every search).
* ``sched_sim`` — the trace-driven multi-tenant cluster scheduler at
  production scale (256 GPUs, 500 jobs).  Ops are simulation events
  processed.
* ``sched_sim_xl`` — the cluster-scale fast path: ≥2048 GPUs serving a
  ≥10k-job mixed trace (steady synthetic tenant + heavy-tailed diurnal
  tenant), with the plan cache pre-warmed through a
  :class:`~repro.core.planner.pool.PlannerPool`.
* ``sched_sim_hetero`` — a heterogeneous A100+V100 fleet serving the mixed
  trace under an injected host-failure storm: per-pool planning,
  fastest-pool-first foreground placement, checkpoint/restart rollback and
  lost-GPU-seconds accounting.  Ops are simulation events processed
  (failures and recoveries included).
* ``sched_sim_xxl`` — the datacenter-scale sharded replay: a 16384-GPU
  A100+V100 fleet serving a 100k-job mixed trace through a failure storm,
  replayed epoch-parallel via :func:`~repro.sched.shard.replay_sharded`
  (bit-identical to the single-process run at any epoch/worker count).
* ``collocation_matrix`` — the Figure 12 pairwise GPU-collocation sweep over
  the synthetic kernel grid.  Ops are GPU-simulator runs.

Every scenario returns deterministic ops and metric fingerprints: running
twice with the same parameters must produce byte-identical values — with a
cache cold or warm, planned inline or by a worker pool — which is what lets
CI gate regressions against a committed baseline.  Cache traffic and other
run-dependent diagnostics go into the artifact's non-gated ``info`` block.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..analysis.experiments import figure12_collocation_matrix
from ..cache import ArtifactCache, fleet_fingerprint
from ..core.planner.planner import BurstParallelPlanner, PlannerConfig
from ..core.planner.pool import PlannerPool
from ..models.registry import available_models, build_model, model_entry
from ..network.fabric import get_fabric
from ..obs.trace import TraceRecorder
from ..profiler.gpu_spec import get_gpu_spec
from ..profiler.layer_profiler import LayerProfiler
from ..sched import (
    CheckpointModel,
    ClusterFleet,
    ClusterScheduler,
    GpuPoolSpec,
    alibaba_trace,
    inject_failures,
    mixed_trace,
    replay_sharded,
    synthetic_trace,
)
from ..serve import QuotaAdmission, SchedulerService, TenantQuota, replay_trace_sync
from .harness import ScenarioResult, scenario

__all__ = [
    "planner_grid",
    "sched_sim",
    "sched_sim_xl",
    "sched_sim_hetero",
    "sched_sim_xxl",
    "sched_service",
    "collocation_matrix",
]


def _cache_info(cache: Optional[ArtifactCache]) -> dict:
    if cache is None:
        return {"persistent_cache": False}
    return {
        "persistent_cache": True,
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
        "cache_writes": cache.stats.writes,
        "cache_errors": cache.stats.errors,
    }


@scenario(
    "planner_grid",
    "Burst-parallel plan search: all registry models x a grid of GPU budgets",
    models=(),
    gpu_counts=(1, 2, 4, 8, 16, 32),
    fabric="nvswitch",
    amplification_limit=2.0,
    powers_of_two_only=True,
    cached=True,
    cache_dir=None,
)
def planner_grid(
    models: Sequence[str],
    gpu_counts: Sequence[int],
    fabric: str,
    amplification_limit: float,
    powers_of_two_only: bool,
    cached: bool,
    cache_dir: Optional[str],
) -> ScenarioResult:
    """Plan every model at every GPU budget; ops = planned layer assignments.

    ``cached=False`` disables the profiler memo, drops the planner's cost
    models before every search, and bypasses the persistent cache entirely
    (it measures the pre-optimization code path, which a warm ``cache_dir``
    would otherwise silently short-circuit).  ``cache_dir`` enables the
    persistent plan/profile cache: a cold run populates it, a warm run
    answers every search from disk.  Ops and metric fingerprints are
    identical in all modes — only the wall time (and the ``info`` cache
    counters) move.
    """
    model_names = list(models) if models else available_models()
    cache = ArtifactCache(cache_dir) if (cache_dir and cached) else None
    profiler = LayerProfiler(enable_cache=cached, persistent_cache=cache)
    planner = BurstParallelPlanner(
        get_fabric(fabric),
        profiler,
        PlannerConfig(amplification_limit, powers_of_two_only),
        cache=cache,
    )
    plans = 0
    planned_layers = 0
    total_iteration_time = 0.0
    total_search_relaxed_gpus = 0
    for name in model_names:
        graph = build_model(name)
        for gpus in gpu_counts:
            if not cached:
                planner.clear_caches()
            global_batch = max(model_entry(name).default_global_batch, gpus)
            plan = planner.plan(graph, global_batch, gpus)
            plans += 1
            planned_layers += len(plan.assignments)
            total_iteration_time += plan.iteration_time
            total_search_relaxed_gpus += sum(a.num_gpus for a in plan.assignments)
    info = _cache_info(cache)
    info.update(
        profile_queries=profiler.cache_stats.queries,
        profile_computations=profiler.cache_stats.misses,
    )
    return ScenarioResult(
        ops=planned_layers,
        metrics={
            "plans": float(plans),
            "total_iteration_time_s": total_iteration_time,
            "total_assigned_gpus": float(total_search_relaxed_gpus),
        },
        info=info,
    )


def _fleet_from_pools(pools: Sequence[str], gpus_per_host: int) -> ClusterFleet:
    """Build a fleet from ``"<gpu spec>:<num gpus>"`` pool entries."""
    pool_specs = []
    for entry in pools:
        spec_name, _, count = str(entry).partition(":")
        if not count:
            raise ValueError(
                f"pool entry {entry!r} must look like '<gpu spec>:<num gpus>'"
            )
        pool_specs.append(
            GpuPoolSpec(spec_name, get_gpu_spec(spec_name), int(count), gpus_per_host)
        )
    return ClusterFleet(tuple(pool_specs))


def _make_trace(trace: str, num_jobs: int, seed: int):
    if trace == "synthetic":
        return synthetic_trace(num_jobs, seed=seed)
    if trace == "alibaba":
        return alibaba_trace(num_jobs, seed=seed)
    if trace == "mixed":
        return mixed_trace(num_jobs, seed=seed)
    raise ValueError(
        f"unknown trace {trace!r}; expected synthetic|alibaba|mixed"
    )


@scenario(
    "sched_sim",
    "Multi-tenant cluster scheduler: 500-job trace on a 256-GPU fleet",
    num_gpus=256,
    num_jobs=500,
    seed=11,
    policy="collocation",
    trace="synthetic",
    fabric="nvswitch",
)
def sched_sim(
    num_gpus: int,
    num_jobs: int,
    seed: int,
    policy: str,
    trace: str,
    fabric: str,
) -> ScenarioResult:
    """Simulate a whole trace under one policy; ops = events processed."""
    jobs = _make_trace(trace, num_jobs, seed)
    sched = ClusterScheduler(num_gpus, fabric=fabric)
    result = sched.run(jobs, policy)
    m = result.metrics
    return ScenarioResult(
        ops=result.events_processed,
        metrics={
            "jobs": float(m.num_jobs),
            "makespan_s": m.makespan,
            "mean_jct_s": m.mean_jct,
            "utilization": m.utilization,
            "preemptions": float(m.preemptions),
            "replans": float(m.replans),
        },
    )


@scenario(
    "sched_sim_xl",
    "Cluster-scale scheduler fast path: 10k-job mixed trace on 2048 GPUs",
    num_gpus=2048,
    num_jobs=10000,
    seed=17,
    policy="collocation",
    trace="mixed",
    fabric="nvswitch",
    prewarm=True,
    planner_processes=1,
    cache_dir=None,
)
def sched_sim_xl(
    num_gpus: int,
    num_jobs: int,
    seed: int,
    policy: str,
    trace: str,
    fabric: str,
    prewarm: bool,
    planner_processes: int,
    cache_dir: Optional[str],
) -> ScenarioResult:
    """The ROADMAP's production-scale target: ops = events processed.

    The plan cache is pre-warmed before replay (``prewarm=True``) through a
    :class:`~repro.core.planner.pool.PlannerPool` of ``planner_processes``
    workers, optionally backed by the persistent cache at ``cache_dir``.
    Metric fingerprints are identical with prewarming on or off, with the
    cache cold or warm, and at any worker count — the determinism regression
    tests pin exactly that — so none of these knobs can hide a result drift.
    """
    jobs = _make_trace(trace, num_jobs, seed)
    cache = ArtifactCache(cache_dir) if cache_dir else None
    profiler = LayerProfiler(persistent_cache=cache)
    planner = BurstParallelPlanner(get_fabric(fabric), profiler, cache=cache)
    sched = ClusterScheduler(
        num_gpus, fabric=fabric, profiler=profiler, planner=planner
    )
    prewarmed = 0
    if prewarm:
        pool = PlannerPool(
            fabric=fabric, processes=planner_processes, cache_dir=cache_dir
        )
        prewarmed = sched.prewarm_plans(jobs, pool=pool)
    result = sched.run(jobs, policy)
    m = result.metrics
    info = _cache_info(cache)
    info.update(prewarmed_plans=prewarmed, planner_processes=planner_processes)
    return ScenarioResult(
        ops=result.events_processed,
        metrics={
            "jobs": float(m.num_jobs),
            "makespan_s": m.makespan,
            "mean_jct_s": m.mean_jct,
            "p95_jct_s": m.p95_jct,
            "mean_queue_delay_s": m.mean_queue_delay,
            "utilization": m.utilization,
            "fg_goodput": m.fg_goodput,
            "bg_goodput": m.bg_goodput,
            "preemptions": float(m.preemptions),
            "replans": float(m.replans),
        },
        info=info,
    )


@scenario(
    "sched_sim_hetero",
    "Heterogeneous A100+V100 fleet under an injected host-failure storm",
    pools=("a100:128", "v100:128"),
    gpus_per_host=8,
    num_jobs=1200,
    seed=23,
    policy="collocation",
    trace="mixed",
    fabric="nvswitch",
    failures=6,
    failure_seed=7,
    failure_window=(60.0, 480.0),
    mean_downtime=45.0,
    checkpoint_interval_s=90.0,
    restart_overhead_s=15.0,
    cache_dir=None,
    trace_out=None,
)
def sched_sim_hetero(
    pools: Sequence[str],
    gpus_per_host: int,
    num_jobs: int,
    seed: int,
    policy: str,
    trace: str,
    fabric: str,
    failures: int,
    failure_seed: int,
    failure_window: Sequence[float],
    mean_downtime: float,
    checkpoint_interval_s: float,
    restart_overhead_s: float,
    cache_dir: Optional[str],
    trace_out: Optional[str],
) -> ScenarioResult:
    """Mixed-generation fleet + failure injection; ops = events processed.

    ``pools`` entries are ``"<gpu spec>:<num gpus>"`` (specs resolved via
    :func:`~repro.profiler.gpu_spec.get_gpu_spec`); each pool plans with its
    own profiler/planner identity, so plans never alias across GPU types and
    a persistent ``cache_dir`` serves both pools without cross-talk.  The
    failure schedule is generated deterministically from ``failure_seed``,
    and the checkpoint/restart cost model prices each failure in rolled-back
    GPU-seconds plus a restart overhead.  Metric fingerprints are identical
    across repeats and with the cache cold or warm.

    ``trace_out`` attaches a :class:`~repro.obs.trace.TraceRecorder` and
    writes the run's Chrome ``trace_event`` JSON there (the CI-uploaded
    artifact).  The recorder is read-only, so fingerprints are identical
    with it on or off — which is why ``trace_out`` sits in
    :data:`~repro.bench.compare.ENVIRONMENT_PARAMS`.
    """
    if len(failure_window) != 2:
        raise ValueError(
            "failure_window needs exactly (start, end) seconds, got "
            f"{list(failure_window)}"
        )
    fleet = _fleet_from_pools(pools, gpus_per_host)
    jobs = _make_trace(trace, num_jobs, seed)
    schedule = inject_failures(
        fleet,
        failures,
        seed=failure_seed,
        window=(failure_window[0], failure_window[1]),
        mean_downtime=mean_downtime,
    )
    cache = ArtifactCache(cache_dir) if cache_dir else None
    profiler = LayerProfiler(persistent_cache=cache)
    planner = BurstParallelPlanner(get_fabric(fabric), profiler, cache=cache)
    sched = ClusterScheduler(
        fleet,
        fabric=fabric,
        profiler=profiler,
        planner=planner,
        checkpoint=CheckpointModel(checkpoint_interval_s, restart_overhead_s),
    )
    recorder = None
    if trace_out:
        recorder = TraceRecorder()
        sched.attach_recorder(recorder)
    result = sched.run(jobs, policy, failures=schedule)
    m = result.metrics
    info = _cache_info(cache)
    info.update(
        num_gpus=fleet.num_gpus,
        num_hosts=fleet.num_hosts,
        speed_order=",".join(fleet.speed_order),
        # Content identity of the fleet (declaration-order independent), so
        # two artifacts are comparable at a glance even across param shapes.
        fleet_fingerprint=fleet_fingerprint(fleet),
    )
    if recorder is not None:
        path = recorder.write_chrome_trace(trace_out)
        info.update(trace_out=str(path), trace_events=len(recorder))
    return ScenarioResult(
        ops=result.events_processed,
        metrics={
            "jobs": float(m.num_jobs),
            "failures": float(result.failures_injected),
            "makespan_s": m.makespan,
            "mean_jct_s": m.mean_jct,
            "p95_jct_s": m.p95_jct,
            "mean_queue_delay_s": m.mean_queue_delay,
            "utilization": m.utilization,
            "fg_goodput": m.fg_goodput,
            "bg_goodput": m.bg_goodput,
            "preemptions": float(m.preemptions),
            "replans": float(m.replans),
            "restarts": float(m.restarts),
            "lost_gpu_seconds": m.lost_gpu_seconds,
        },
        info=info,
    )


@scenario(
    "sched_sim_xxl",
    "Datacenter-scale sharded replay: 100k-job mixed trace on a 16384-GPU "
    "heterogeneous fleet",
    pools=("a100:8192", "v100:8192"),
    gpus_per_host=8,
    num_jobs=100000,
    seed=31,
    policy="collocation",
    trace="mixed",
    fabric="nvswitch",
    failures=12,
    failure_seed=9,
    failure_window=(300.0, 43200.0),
    mean_downtime=120.0,
    checkpoint_interval_s=120.0,
    restart_overhead_s=15.0,
    shard_epochs=8,
    shard_workers=2,
    cache_dir=None,
)
def sched_sim_xxl(
    pools: Sequence[str],
    gpus_per_host: int,
    num_jobs: int,
    seed: int,
    policy: str,
    trace: str,
    fabric: str,
    failures: int,
    failure_seed: int,
    failure_window: Sequence[float],
    mean_downtime: float,
    checkpoint_interval_s: float,
    restart_overhead_s: float,
    shard_epochs: int,
    shard_workers: int,
    cache_dir: Optional[str],
) -> ScenarioResult:
    """The sharded-simulation headline; ops = events processed.

    A 16k-GPU A100+V100 fleet serves a 100k-job mixed trace through an
    injected failure storm, replayed epoch-parallel by
    :func:`~repro.sched.shard.replay_sharded`.  The stitched result is
    bit-identical to a single-process ``ClusterScheduler.run`` of the same
    workload — the shard parity tests and the CI ``shard`` job pin that —
    so the gated metrics cannot depend on how the replay was partitioned
    or parallelized.  ``shard_epochs`` and ``shard_workers`` accordingly
    sit in :data:`~repro.bench.compare.ENVIRONMENT_PARAMS`: they move wall
    time and the ``info`` diagnostics (anchor traffic, worker
    utilization), never the fingerprint.

    A persistent ``cache_dir`` makes the serial anchor pass a one-time
    cost per workload: warm runs go straight to the parallel phase, which
    is where the wall-time win lives (see the README's sharded-simulation
    section for measured numbers).
    """
    if len(failure_window) != 2:
        raise ValueError(
            "failure_window needs exactly (start, end) seconds, got "
            f"{list(failure_window)}"
        )
    fleet = _fleet_from_pools(pools, gpus_per_host)
    jobs = _make_trace(trace, num_jobs, seed)
    schedule = inject_failures(
        fleet,
        failures,
        seed=failure_seed,
        window=(failure_window[0], failure_window[1]),
        mean_downtime=mean_downtime,
    )
    cache = ArtifactCache(cache_dir) if cache_dir else None
    profiler = LayerProfiler(persistent_cache=cache)
    planner = BurstParallelPlanner(get_fabric(fabric), profiler, cache=cache)
    sched = ClusterScheduler(
        fleet,
        fabric=fabric,
        profiler=profiler,
        planner=planner,
        checkpoint=CheckpointModel(checkpoint_interval_s, restart_overhead_s),
    )
    report = replay_sharded(
        sched,
        jobs,
        policy,
        failures=schedule,
        epochs=shard_epochs,
        workers=shard_workers,
        anchor_cache=cache,
    )
    result = report.result
    m = result.metrics
    info = _cache_info(cache)
    info.update(
        num_gpus=fleet.num_gpus,
        num_hosts=fleet.num_hosts,
        speed_order=",".join(fleet.speed_order),
        fleet_fingerprint=fleet_fingerprint(fleet),
        result_fingerprint=report.result_fingerprint(),
        shard_epochs=len(report.epochs),
        shard_workers=report.workers,
        anchor_hits=report.anchor_hits,
        anchor_misses=report.anchor_misses,
        anchor_writes=report.anchor_writes,
        anchor_pass_s=report.anchor_pass_s,
        replay_s=report.replay_s,
        worker_utilization=report.worker_utilization,
    )
    return ScenarioResult(
        ops=result.events_processed,
        metrics={
            "jobs": float(m.num_jobs),
            "failures": float(result.failures_injected),
            "makespan_s": m.makespan,
            "mean_jct_s": m.mean_jct,
            "p95_jct_s": m.p95_jct,
            "mean_queue_delay_s": m.mean_queue_delay,
            "utilization": m.utilization,
            "fg_goodput": m.fg_goodput,
            "bg_goodput": m.bg_goodput,
            "preemptions": float(m.preemptions),
            "replans": float(m.replans),
            "restarts": float(m.restarts),
            "lost_gpu_seconds": m.lost_gpu_seconds,
        },
        info=info,
    )


@scenario(
    "sched_service",
    "Online scheduler service: bridged mixed trace with tenant quotas",
    num_gpus=256,
    num_jobs=600,
    seed=29,
    policy="collocation",
    trace="mixed",
    fabric="nvswitch",
    quota_gpu_seconds=16000.0,
    max_pending=8,
    journal_dir=None,
    snapshot_every=None,
)
def sched_service(
    num_gpus: int,
    num_jobs: int,
    seed: int,
    policy: str,
    trace: str,
    fabric: str,
    quota_gpu_seconds: float,
    max_pending: int,
    journal_dir: Optional[str],
    snapshot_every: Optional[int],
) -> ScenarioResult:
    """Replay-to-live bridge under admission control; ops = events processed.

    The trace is driven through :meth:`SchedulerService.submit` against
    per-tenant GPU-second quotas sized to bite (the mixed trace's tenants
    each demand well beyond ``quota_gpu_seconds``), so the run exercises
    every admission outcome: immediate accepts, queue-with-backpressure
    during bursts, quota-driven re-admission on completions, and starved
    rejections at drain.  All of it is deterministic under the fixed
    arrival log — the admission counts are gated metrics.

    The submit-path throughput (``submissions_per_sec``) goes to the
    non-gated ``info`` block; ``compare`` treats it like wall time (>10%
    regression fails) without folding it into the fingerprint.

    ``journal_dir``/``snapshot_every`` switch on the write-ahead intent
    journal and durable snapshots (:mod:`repro.serve.journal` /
    :mod:`repro.serve.recovery`).  Durability is write-path only — it
    never alters the simulation — so fingerprints are identical with it on
    or off, which is why both sit in
    :data:`~repro.bench.compare.ENVIRONMENT_PARAMS` and committed
    baselines stay byte-identical either way.
    """
    jobs = _make_trace(trace, num_jobs, seed)
    admission = QuotaAdmission(
        default=TenantQuota(gpu_seconds=quota_gpu_seconds, max_pending=max_pending)
    )
    service = SchedulerService(
        ClusterScheduler(num_gpus, fabric=fabric),
        policy=policy,
        admission=admission,
        journal_dir=journal_dir,
        snapshot_every=snapshot_every,
    )
    report = replay_trace_sync(service, jobs)
    m = report.result.metrics
    return ScenarioResult(
        ops=report.result.events_processed,
        metrics={
            "jobs_submitted": float(report.jobs),
            "jobs_completed": float(report.completed),
            "jobs_rejected": float(report.rejected),
            "queued_at_submit": float(report.queued_at_submit),
            "makespan_s": m.makespan,
            "mean_jct_s": m.mean_jct,
            "utilization": m.utilization,
            "preemptions": float(m.preemptions),
            "replans": float(m.replans),
        },
        info={
            "submissions_per_sec": report.submissions_per_sec,
            "submit_seconds": report.submit_seconds,
        },
    )


@scenario(
    "collocation_matrix",
    "Pairwise GPU-collocation sweep over the synthetic kernel grid (Fig. 12)",
    sim_time=0.1,
)
def collocation_matrix(sim_time: float) -> ScenarioResult:
    """Collocate every kernel-type pair; ops = GPU-simulator runs."""
    cells = figure12_collocation_matrix(sim_time=sim_time)
    labels = {hp for hp, _ in cells}
    throughputs: Tuple[float, ...] = tuple(cells.values())
    return ScenarioResult(
        # One simulator run per pair plus one isolated run per kernel type.
        ops=len(cells) + len(labels),
        metrics={
            "pairs": float(len(cells)),
            "mean_relative_throughput": sum(throughputs) / len(throughputs),
            "min_relative_throughput": min(throughputs),
        },
    )
