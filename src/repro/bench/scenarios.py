"""The built-in benchmark scenarios covering the repo's hot paths.

Three scenarios ship by default, one per subsystem the ROADMAP cares about:

* ``planner_grid`` — burst-parallel plan search across every registry model
  at a grid of GPU budgets (the paper's Table 3 headline, scaled up).  Ops
  are layer-profile queries; ``cached=False`` re-plans with cold caches to
  measure the pre-memoization code path.
* ``sched_sim`` — the trace-driven multi-tenant cluster scheduler at
  production scale (256 GPUs, 500 jobs).  Ops are simulation events
  processed.
* ``collocation_matrix`` — the Figure 12 pairwise GPU-collocation sweep over
  the synthetic kernel grid.  Ops are GPU-simulator runs.

Every scenario returns deterministic ops and metric fingerprints: running
twice with the same parameters must produce byte-identical values, which is
what lets CI gate regressions against a committed baseline.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..analysis.experiments import figure12_collocation_matrix
from ..core.planner.planner import BurstParallelPlanner, PlannerConfig
from ..models.registry import available_models, build_model, model_entry
from ..network.fabric import get_fabric
from ..profiler.layer_profiler import LayerProfiler
from ..sched import ClusterScheduler, alibaba_trace, synthetic_trace
from .harness import ScenarioResult, scenario

__all__ = ["planner_grid", "sched_sim", "collocation_matrix"]


@scenario(
    "planner_grid",
    "Burst-parallel plan search: all registry models x a grid of GPU budgets",
    models=(),
    gpu_counts=(1, 2, 4, 8, 16, 32),
    fabric="nvswitch",
    amplification_limit=2.0,
    powers_of_two_only=True,
    cached=True,
)
def planner_grid(
    models: Sequence[str],
    gpu_counts: Sequence[int],
    fabric: str,
    amplification_limit: float,
    powers_of_two_only: bool,
    cached: bool,
) -> ScenarioResult:
    """Plan every model at every GPU budget; ops = layer-profile queries.

    ``cached=False`` disables the profiler memo and drops the planner's cost
    models before every search, reproducing the pre-optimization code path —
    the benchmark pair the cached-profile speedup is proven against.
    """
    model_names = list(models) if models else available_models()
    profiler = LayerProfiler(enable_cache=cached)
    planner = BurstParallelPlanner(
        get_fabric(fabric),
        profiler,
        PlannerConfig(amplification_limit, powers_of_two_only),
    )
    plans = 0
    total_iteration_time = 0.0
    total_search_relaxed_gpus = 0
    for name in model_names:
        graph = build_model(name)
        for gpus in gpu_counts:
            if not cached:
                planner.clear_caches()
            global_batch = max(model_entry(name).default_global_batch, gpus)
            plan = planner.plan(graph, global_batch, gpus)
            plans += 1
            total_iteration_time += plan.iteration_time
            total_search_relaxed_gpus += sum(a.num_gpus for a in plan.assignments)
    return ScenarioResult(
        ops=profiler.cache_stats.queries,
        metrics={
            "plans": float(plans),
            "profile_computations": float(profiler.cache_stats.misses),
            "total_iteration_time_s": total_iteration_time,
            "total_assigned_gpus": float(total_search_relaxed_gpus),
        },
    )


@scenario(
    "sched_sim",
    "Multi-tenant cluster scheduler: 500-job trace on a 256-GPU fleet",
    num_gpus=256,
    num_jobs=500,
    seed=11,
    policy="collocation",
    trace="synthetic",
    fabric="nvswitch",
)
def sched_sim(
    num_gpus: int,
    num_jobs: int,
    seed: int,
    policy: str,
    trace: str,
    fabric: str,
) -> ScenarioResult:
    """Simulate a whole trace under one policy; ops = events processed."""
    if trace == "synthetic":
        jobs = synthetic_trace(num_jobs, seed=seed)
    elif trace == "alibaba":
        jobs = alibaba_trace(num_jobs, seed=seed)
    else:
        raise ValueError(f"unknown trace {trace!r}; expected synthetic|alibaba")
    sched = ClusterScheduler(num_gpus, fabric=fabric)
    result = sched.run(jobs, policy)
    m = result.metrics
    return ScenarioResult(
        ops=result.events_processed,
        metrics={
            "jobs": float(m.num_jobs),
            "makespan_s": m.makespan,
            "mean_jct_s": m.mean_jct,
            "utilization": m.utilization,
            "preemptions": float(m.preemptions),
            "replans": float(m.replans),
        },
    )


@scenario(
    "collocation_matrix",
    "Pairwise GPU-collocation sweep over the synthetic kernel grid (Fig. 12)",
    sim_time=0.1,
)
def collocation_matrix(sim_time: float) -> ScenarioResult:
    """Collocate every kernel-type pair; ops = GPU-simulator runs."""
    cells = figure12_collocation_matrix(sim_time=sim_time)
    labels = {hp for hp, _ in cells}
    throughputs: Tuple[float, ...] = tuple(cells.values())
    return ScenarioResult(
        # One simulator run per pair plus one isolated run per kernel type.
        ops=len(cells) + len(labels),
        metrics={
            "pairs": float(len(cells)),
            "mean_relative_throughput": sum(throughputs) / len(throughputs),
            "min_relative_throughput": min(throughputs),
        },
    )
