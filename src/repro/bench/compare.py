"""The regression gate: diff two sets of benchmark artifacts.

``compare_artifacts`` matches a *current* artifact set against a *baseline*
(typically the committed ``benchmarks/baselines/`` directory) and flags:

* **determinism breaches** — op counts or metric fingerprints that differ
  from the baseline beyond ``ops_tolerance_pct`` (default 0: exact match);
* **wall-time regressions** — best-repeat wall time more than
  ``max_time_regress_pct`` slower than the baseline (default 10%).  Wall
  times are only comparable on the same machine; cross-machine gates (CI
  against a committed baseline) should pass ``ignore_time=True`` and rely on
  the deterministic op counts;
* **throughput regressions** — higher-is-better rates in ``info`` (see
  ``THROUGHPUT_INFO_KEYS``, e.g. the service bench's
  ``submissions_per_sec``) that dropped more than ``max_time_regress_pct``.
  Like wall time they are machine-dependent, so ``ignore_time=True`` skips
  them and they never join the metric fingerprint;
* **missing scenarios** — anything in the baseline absent from the current
  run fails; scenarios new in the current run are reported but pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .artifact import BenchArtifact

__all__ = [
    "ComparisonRow",
    "Comparison",
    "compare_artifacts",
    "format_report",
    "THROUGHPUT_INFO_KEYS",
]

#: Default allowed wall-time regression, in percent.
DEFAULT_MAX_TIME_REGRESS_PCT = 10.0

#: ``info`` entries that measure throughput (higher is better).  They stay
#: out of the metric fingerprint — wall-clock rates are machine-dependent —
#: but the gate treats them like wall time: a drop beyond
#: ``max_time_regress_pct`` fails, and ``ignore_time`` skips the check.
THROUGHPUT_INFO_KEYS = ("submissions_per_sec",)

#: Scenario parameters that describe the *execution environment* rather than
#: the workload: where the persistent cache lives, how many planner workers
#: warmed it, where an observability trace is written, whether the service
#: journals intents / writes durable snapshots.  Results are proven
#: independent of them (the determinism regression tests), so a CI run
#: pointing at its own cache directory still gates cleanly against a
#: baseline recorded with none.
ENVIRONMENT_PARAMS = frozenset(
    {
        "cache_dir",
        "planner_processes",
        "trace_out",
        "journal_dir",
        "snapshot_every",
        "shard_workers",
        "shard_epochs",
    }
)


def _workload_params(params: Dict[str, object]) -> Dict[str, object]:
    return {k: v for k, v in params.items() if k not in ENVIRONMENT_PARAMS}


@dataclass(frozen=True)
class ComparisonRow:
    """Verdict for one scenario name."""

    name: str
    ok: bool
    reason: str
    ops_delta_pct: float = 0.0
    time_delta_pct: float = 0.0


@dataclass(frozen=True)
class Comparison:
    """Outcome of one baseline/current diff."""

    rows: Tuple[ComparisonRow, ...]

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def failures(self) -> List[ComparisonRow]:
        return [row for row in self.rows if not row.ok]


def _pct_delta(baseline: float, current: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - baseline) / baseline * 100.0


def _changed_metrics(
    base: Dict[str, float], cur: Dict[str, float], tolerance_pct: float
) -> List[str]:
    """Metric keys missing from either side or drifting beyond the tolerance."""
    changed = []
    for key in set(base) | set(cur):
        if key not in base or key not in cur:
            changed.append(key)
        elif abs(_pct_delta(base[key], cur[key])) > tolerance_pct:
            changed.append(key)
    return sorted(changed)


def _throughput_regression(
    base: BenchArtifact, cur: BenchArtifact, max_regress_pct: float
) -> "str | None":
    """Failure message if a throughput ``info`` entry dropped too far.

    Checked only when both artifacts report the key (it lives in ``info``,
    so baselines recorded before a scenario grew the measurement are
    exempt), and only for numeric, positive baselines — a rate is
    higher-is-better, so the sign test is the mirror of wall time's.
    """
    for key in THROUGHPUT_INFO_KEYS:
        base_rate = base.info.get(key)
        cur_rate = cur.info.get(key)
        if not isinstance(base_rate, (int, float)) or not isinstance(
            cur_rate, (int, float)
        ):
            continue
        if base_rate <= 0:
            continue
        delta = _pct_delta(float(base_rate), float(cur_rate))
        if delta < -max_regress_pct:
            return (
                f"{key} regressed {delta:+.1f}% "
                f"({base_rate:,.0f}/s -> {cur_rate:,.0f}/s, "
                f"limit -{max_regress_pct:.1f}%)"
            )
    return None


def compare_artifacts(
    baseline: Dict[str, BenchArtifact],
    current: Dict[str, BenchArtifact],
    max_time_regress_pct: float = DEFAULT_MAX_TIME_REGRESS_PCT,
    ops_tolerance_pct: float = 0.0,
    ignore_time: bool = False,
    require_counters: bool = False,
) -> Comparison:
    """Diff ``current`` against ``baseline`` and return per-scenario verdicts.

    ``require_counters`` additionally fails any *current* artifact whose
    ``info`` block lacks a non-empty ``counters`` entry — CI's check that
    the observability registry stays wired through the harness.  Baselines
    are exempt (they may predate the registry).
    """
    if max_time_regress_pct < 0:
        raise ValueError("max_time_regress_pct must be non-negative")
    if ops_tolerance_pct < 0:
        raise ValueError("ops_tolerance_pct must be non-negative")

    rows: List[ComparisonRow] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            assert cur is not None
            rows.append(ComparisonRow(name, True, "new scenario (no baseline)"))
            continue
        if cur is None:
            rows.append(ComparisonRow(name, False, "missing from current run"))
            continue
        if base.schema_version != cur.schema_version:
            rows.append(
                ComparisonRow(
                    name, False,
                    f"schema version mismatch ({base.schema_version} vs "
                    f"{cur.schema_version})",
                )
            )
            continue
        if _workload_params(base.params) != _workload_params(cur.params):
            rows.append(
                ComparisonRow(name, False, "scenario params differ; not comparable")
            )
            continue
        if require_counters and not cur.info.get("counters"):
            rows.append(
                ComparisonRow(
                    name, False,
                    "info block has no counters (observability registry "
                    "not threaded through this scenario)",
                )
            )
            continue

        ops_delta = _pct_delta(base.ops, cur.ops)
        time_delta = _pct_delta(base.wall_time_s, cur.wall_time_s)

        if abs(ops_delta) > ops_tolerance_pct:
            rows.append(
                ComparisonRow(
                    name, False,
                    f"op count changed: {base.ops} -> {cur.ops} "
                    f"({ops_delta:+.2f}%)",
                    ops_delta_pct=ops_delta,
                    time_delta_pct=time_delta,
                )
            )
            continue
        changed = _changed_metrics(base.metrics, cur.metrics, ops_tolerance_pct)
        if changed:
            rows.append(
                ComparisonRow(
                    name, False,
                    f"metric fingerprint changed: {', '.join(changed)}",
                    ops_delta_pct=ops_delta,
                    time_delta_pct=time_delta,
                )
            )
            continue
        if not ignore_time and time_delta > max_time_regress_pct:
            rows.append(
                ComparisonRow(
                    name, False,
                    f"wall time regressed {time_delta:+.1f}% "
                    f"({base.wall_time_s:.3f}s -> {cur.wall_time_s:.3f}s, "
                    f"limit +{max_time_regress_pct:.1f}%)",
                    ops_delta_pct=ops_delta,
                    time_delta_pct=time_delta,
                )
            )
            continue
        throughput_fail = _throughput_regression(
            base, cur, max_time_regress_pct
        ) if not ignore_time else None
        if throughput_fail is not None:
            rows.append(
                ComparisonRow(
                    name, False, throughput_fail,
                    ops_delta_pct=ops_delta,
                    time_delta_pct=time_delta,
                )
            )
            continue
        rows.append(
            ComparisonRow(
                name, True,
                "ok" if ignore_time else f"ok ({time_delta:+.1f}% wall time)",
                ops_delta_pct=ops_delta,
                time_delta_pct=time_delta,
            )
        )
    return Comparison(rows=tuple(rows))


def format_report(comparison: Comparison) -> str:
    """Human-readable verdict table for the CLI and CI logs."""
    lines = [f"{'scenario':<28} {'status':<6} detail"]
    lines.append("-" * 72)
    for row in comparison.rows:
        status = "PASS" if row.ok else "FAIL"
        lines.append(f"{row.name:<28} {status:<6} {row.reason}")
    verdict = "PASS" if comparison.ok else "FAIL"
    lines.append("-" * 72)
    lines.append(
        f"overall: {verdict} "
        f"({len(comparison.rows) - len(comparison.failures)}/{len(comparison.rows)} "
        "scenarios ok)"
    )
    return "\n".join(lines)
