"""CLI for the observability subsystem: ``python -m repro.obs``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect traces exported by repro.obs.TraceRecorder.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser(
        "report", help="print a timeline digest of a Chrome trace JSON file"
    )
    rep.add_argument("trace", help="path to a trace_event JSON file")
    rep.add_argument(
        "--top-spans",
        type=int,
        default=10,
        help="number of longest spans to list (default: 10)",
    )

    args = parser.parse_args(argv)
    if args.command == "report":
        return report(args.trace, sys.stdout, top_spans=args.top_spans)
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    raise SystemExit(main())
