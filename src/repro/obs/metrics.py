"""The process-wide counter/timer registry (``repro.obs.metrics``).

Before this module, every subsystem grew its own ad-hoc stat attributes —
``CacheStats`` on the artifact cache, ``ProfilerCacheStats`` on the layer
profiler, bare ``pushed``/``popped`` ints on the event queue — with no way to
see, for one whole run, how much work the process performed across all of
them.  This module centralizes that accounting:

* :class:`Counter` — a monotonically increasing integer.  A counter may have
  a *parent*: incrementing the child also increments the parent, which is how
  per-object stats (one cache instance's hits) roll up into the process-wide
  aggregate (`artifact_cache.hits` across every instance).
* :class:`Timer` — accumulated wall-clock seconds plus an invocation count,
  usable as a context manager (``with timer.time(): ...``).
* :class:`MetricsRegistry` — a namespace of counters and timers keyed by
  dotted name.  :func:`global_registry` returns the process-wide instance;
  subsystems register their aggregates there at import time.

Determinism contract: counter *values* in the global registry are pure
functions of the work the process performed, so two identical runs in fresh
processes produce identical counter deltas.  Timer totals are wall-clock and
therefore machine-dependent; the benchmark harness records both in the
non-gated ``info`` block, never in gated metrics.

Everything here is allocation-free on the hot path (``Counter.add`` is two
integer additions), so always-on counters cost nanoseconds per increment —
the ``sched_sim_xl`` wall-time gate is the regression proof.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Mapping, Optional, Union

__all__ = [
    "Counter",
    "Timer",
    "MetricsRegistry",
    "global_registry",
]


class Counter:
    """A monotonic integer counter, optionally rolling up into a parent."""

    __slots__ = ("name", "_value", "_parent")

    def __init__(self, name: str, parent: Optional["Counter"] = None) -> None:
        self.name = name
        self._value = 0
        self._parent = parent

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (and the parent, when one is attached)."""
        self._value += amount
        if self._parent is not None:
            self._parent._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """Zero this counter (the parent keeps its accumulated total)."""
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class _TimerContext:
    """One timed section; records into its timer on exit."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.record(time.perf_counter() - self._start)


class Timer:
    """Accumulated seconds + invocation count for one named operation."""

    __slots__ = ("name", "_count", "_total_s", "_parent")

    def __init__(self, name: str, parent: Optional["Timer"] = None) -> None:
        self.name = name
        self._count = 0
        self._total_s = 0.0
        self._parent = parent

    def time(self) -> _TimerContext:
        """Context manager timing one section: ``with timer.time(): ...``."""
        return _TimerContext(self)

    def record(self, seconds: float) -> None:
        self._count += 1
        self._total_s += seconds
        if self._parent is not None:
            self._parent._count += 1
            self._parent._total_s += seconds

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_s(self) -> float:
        return self._total_s

    def reset(self) -> None:
        self._count = 0
        self._total_s = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name!r}, count={self._count}, total_s={self._total_s:.6f})"


class MetricsRegistry:
    """A namespace of counters and timers keyed by dotted name.

    ``counter(name)`` / ``timer(name)`` memoize, so every caller naming the
    same metric shares one object — the registered object IS the aggregate.
    ``scoped_counter(name)`` returns a *fresh, unregistered* counter parented
    to the registered one: per-object stats (one cache instance) stay
    per-object while still feeding the process-wide total.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------- accessors
    def counter(self, name: str) -> Counter:
        """The registered counter for ``name``, created on first use."""
        found = self._counters.get(name)
        if found is None:
            found = Counter(name)
            self._counters[name] = found
        return found

    def timer(self, name: str) -> Timer:
        """The registered timer for ``name``, created on first use."""
        found = self._timers.get(name)
        if found is None:
            found = Timer(name)
            self._timers[name] = found
        return found

    def scoped_counter(self, name: str) -> Counter:
        """A private counter whose increments also feed ``counter(name)``."""
        return Counter(name, parent=self.counter(name))

    def scoped_timer(self, name: str) -> Timer:
        """A private timer whose recordings also feed ``timer(name)``."""
        return Timer(name, parent=self.timer(name))

    def __iter__(self) -> Iterator[str]:
        yield from sorted(self._counters)
        yield from sorted(self._timers)

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, Union[int, float]]:
        """Current values, flattened to a plain dict.

        Counters appear under their name; timers contribute two keys,
        ``<name>.count`` and ``<name>.total_s``.
        """
        out: Dict[str, Union[int, float]] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._timers):
            timer = self._timers[name]
            out[f"{name}.count"] = timer.count
            out[f"{name}.total_s"] = timer.total_s
        return out

    def delta_since(
        self, before: Dict[str, Union[int, float]]
    ) -> Dict[str, Union[int, float]]:
        """Changes relative to an earlier :meth:`snapshot` (non-zero only).

        This is how the benchmark harness attributes process-wide counter
        traffic to one scenario run: snapshot, run, delta.
        """
        now = self.snapshot()
        out: Dict[str, Union[int, float]] = {}
        for key, value in now.items():
            moved = value - before.get(key, 0)
            if moved:
                out[key] = moved
        return out

    def counter_values(self) -> Dict[str, int]:
        """Current values of the registered counters only (no timer keys).

        This is the cross-process accounting surface: counter values are
        deterministic and additive across processes, so a worker can report
        the difference of two ``counter_values`` calls and the parent can
        :meth:`merge_counters` it.  Timers are wall-clock and stay local.
        """
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def merge_counters(self, deltas: Mapping[str, int]) -> None:
        """Fold counter deltas from another process's registry into this one.

        Worker processes (a planner pool, a shard-replay pool) accumulate
        into their own process-wide registry; the driver folds their deltas
        back so one run's registry delta reflects the work wherever it
        executed.  Unknown names register on the fly; zero deltas are no-ops.
        """
        for name in sorted(deltas):
            amount = deltas[name]
            if amount:
                self.counter(name).add(amount)

    def reset(self) -> None:
        """Zero every registered counter and timer in place.

        Objects survive (module-level handles stay valid); only values reset.
        """
        for counter in self._counters.values():
            counter.reset()
        for timer in self._timers.values():
            timer.reset()


#: The process-wide registry every subsystem's aggregates live in.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _GLOBAL
