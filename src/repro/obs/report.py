"""Timeline digest of a Chrome ``trace_event`` JSON file.

``python -m repro.obs report <trace.json>`` loads a trace exported by
:class:`repro.obs.trace.TraceRecorder` (or any Chrome-format trace) and
prints a human-readable digest: the simulated time span, event counts by
phase, per-pool span totals, the longest job spans, instant markers, and
final counter values.  CI uses it as a smoke check that the exported trace
is well-formed (exit status 0).
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = ["load_trace", "digest", "render_digest", "report"]


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a Chrome trace JSON file and validate its basic shape."""
    with open(path, "r") as fh:
        data = json.load(fh)
    if isinstance(data, list):  # bare event-array form is also legal
        data = {"traceEvents": data}
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace (missing traceEvents list)")
    return data


def digest(trace: Dict[str, Any], top_spans: int = 10) -> Dict[str, Any]:
    """Reduce a loaded trace to the summary :func:`render_digest` prints."""
    events: List[Dict[str, Any]] = trace["traceEvents"]

    process_names: Dict[int, str] = {}
    by_phase: Dict[str, int] = defaultdict(int)
    spans_by_pid: Dict[int, List[Dict[str, Any]]] = defaultdict(list)
    instants_by_name: Dict[str, int] = defaultdict(int)
    counters_last: Dict[str, float] = {}
    min_ts = None
    max_ts = None

    for event in events:
        phase = event.get("ph", "?")
        by_phase[phase] += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            end = ts + event.get("dur", 0)
            min_ts = ts if min_ts is None else min(min_ts, ts)
            max_ts = end if max_ts is None else max(max_ts, end)
        if phase == "M":
            if event.get("name") == "process_name":
                process_names[event.get("pid", 0)] = event["args"].get("name", "")
        elif phase == "X":
            spans_by_pid[event.get("pid", 0)].append(event)
        elif phase == "i":
            instants_by_name[event.get("name", "?")] += 1
        elif phase == "C":
            for key, value in (event.get("args") or {}).items():
                counters_last[f"{event.get('name', '?')}.{key}"] = value

    pools = []
    for pid in sorted(spans_by_pid):
        spans = spans_by_pid[pid]
        pools.append(
            {
                "pid": pid,
                "name": process_names.get(pid, f"pid {pid}"),
                "num_spans": len(spans),
                "total_dur_s": sum(s.get("dur", 0) for s in spans) / 1e6,
            }
        )

    all_spans = [s for spans in spans_by_pid.values() for s in spans]
    all_spans.sort(key=lambda s: (-s.get("dur", 0), s.get("ts", 0), s.get("name", "")))
    longest = [
        {
            "name": s.get("name", "?"),
            "pool": process_names.get(s.get("pid", 0), f"pid {s.get('pid', 0)}"),
            "start_s": s.get("ts", 0) / 1e6,
            "dur_s": s.get("dur", 0) / 1e6,
        }
        for s in all_spans[:top_spans]
    ]

    return {
        "num_events": len(events),
        "by_phase": dict(sorted(by_phase.items())),
        "span_s": (
            (max_ts - min_ts) / 1e6 if min_ts is not None and max_ts is not None else 0.0
        ),
        "other_data": trace.get("otherData", {}),
        "pools": pools,
        "longest_spans": longest,
        "instants": dict(sorted(instants_by_name.items())),
        "counters_last": dict(sorted(counters_last.items())),
    }


def render_digest(info: Dict[str, Any], out: TextIO) -> None:
    """Pretty-print a :func:`digest` result."""
    other = info["other_data"]
    out.write("trace digest\n")
    out.write("============\n")
    if other:
        extras = ", ".join(f"{k}={other[k]}" for k in sorted(other))
        out.write(f"run: {extras}\n")
    out.write(f"events: {info['num_events']}")
    phases = ", ".join(f"{k}:{v}" for k, v in info["by_phase"].items())
    out.write(f" ({phases})\n")
    out.write(f"simulated span: {info['span_s']:.1f}s\n")

    if info["pools"]:
        out.write("\nper-track spans\n")
        for pool in info["pools"]:
            out.write(
                f"  {pool['name']:<24} {pool['num_spans']:>6} spans"
                f"  {pool['total_dur_s']:>12.1f} gpu-track-s\n"
            )

    if info["longest_spans"]:
        out.write("\nlongest spans\n")
        for span in info["longest_spans"]:
            out.write(
                f"  {span['name']:<24} {span['dur_s']:>10.1f}s"
                f"  @{span['start_s']:>10.1f}s  [{span['pool']}]\n"
            )

    if info["instants"]:
        out.write("\ninstant markers\n")
        for name, count in info["instants"].items():
            out.write(f"  {name:<32} x{count}\n")

    if info["counters_last"]:
        out.write("\nfinal counter values\n")
        for name, value in info["counters_last"].items():
            out.write(f"  {name:<32} {value}\n")


def report(
    path: Union[str, Path], out: Optional[TextIO] = None, top_spans: int = 10
) -> int:
    """Digest ``path`` to ``out`` (default stdout); returns an exit status."""
    out = out if out is not None else sys.stdout
    try:
        trace = load_trace(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        out.write(f"error: {exc}\n")
        return 1
    render_digest(digest(trace, top_spans=top_spans), out)
    return 0
