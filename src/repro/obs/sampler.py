"""Time-series sampling of cluster gauges at fixed sim-time intervals.

The trace recorder (:mod:`repro.obs.trace`) captures *events*; this module
captures *levels*: how deep was the pending queue, how many GPUs were free
per pool, how utilized was the fleet — sampled on a fixed simulated-time
grid so two runs of the same trace produce the same rows regardless of how
many events fell between samples.

The scheduler drives the sampler from its event loop: before processing an
event at sim time ``t`` it calls :meth:`TimeSeriesSampler.advance_to` with a
gauge callback.  The sampler decides whether any grid boundaries were
crossed since the last call; only then does it invoke the callback (once)
and replicate the reading onto every crossed boundary.  Between boundaries
the cluster state is piecewise-constant — nothing changes except at events
— so carrying the last reading forward is exact, not an approximation.

Storage is columnar (one list per gauge) to stay compact over multi-day
simulations, and :meth:`TimeSeriesSampler.summary` reduces each column to
min/mean/max/last for quick digests and bench ``info`` blocks.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Sequence, Union

__all__ = ["TimeSeriesSampler"]

Number = Union[int, float]


class TimeSeriesSampler:
    """Records cluster gauges on a fixed simulated-time grid.

    Parameters
    ----------
    interval_s:
        Grid spacing in simulated seconds (must be positive).
    start_time:
        Simulated time of the first sample boundary.
    """

    def __init__(self, interval_s: float = 10.0, start_time: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.start_time = float(start_time)
        self._times: List[float] = []
        self._columns: Dict[str, List[Number]] = {}
        self._next_boundary = self.start_time

    # --------------------------------------------------------------- sampling
    def begin_run(self) -> None:
        """Clear all rows for a new run (grid parameters are kept)."""
        self._times = []
        self._columns = {}
        self._next_boundary = self.start_time

    def advance_to(
        self, now: float, gauges: Callable[[], Mapping[str, Number]]
    ) -> int:
        """Record every grid boundary at or before sim time ``now``.

        ``gauges`` is only called when at least one boundary was crossed, and
        at most once per call — its reading is replicated across all crossed
        boundaries, which is exact because the simulated cluster state only
        changes at events.  Returns the number of rows appended.
        """
        if now < self._next_boundary:
            return 0
        reading = dict(gauges())
        appended = 0
        boundary = self._next_boundary
        while boundary <= now:
            self._append_row(boundary, reading)
            appended += 1
            boundary = self.start_time + (len(self._times)) * self.interval_s
            # Guard against float stagnation on huge times: force progress.
            if boundary <= self._times[-1]:
                boundary = math.nextafter(self._times[-1], math.inf)
        self._next_boundary = boundary
        return appended

    def _append_row(self, time_s: float, reading: Mapping[str, Number]) -> None:
        n = len(self._times)
        self._times.append(time_s)
        for key, value in reading.items():
            col = self._columns.get(key)
            if col is None:
                # A gauge appearing mid-run backfills zeros for earlier rows.
                col = [0] * n
                self._columns[key] = col
            col.append(value)
        for key, col in self._columns.items():
            if len(col) <= n:  # gauge missing from this reading
                col.append(col[-1] if col else 0)

    # ---------------------------------------------------------------- reading
    @property
    def num_samples(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def gauge_names(self) -> List[str]:
        return sorted(self._columns)

    def column(self, name: str) -> Sequence[Number]:
        """All samples of one gauge, aligned with :attr:`times`."""
        return tuple(self._columns[name])

    def rows(self) -> List[Dict[str, Number]]:
        """The samples as a list of dicts (``time`` plus every gauge)."""
        names = self.gauge_names
        return [
            {"time": t, **{name: self._columns[name][i] for name in names}}
            for i, t in enumerate(self._times)
        ]

    def to_dict(self) -> Dict[str, Sequence[Number]]:
        """Columnar view: ``{"time": [...], gauge: [...], ...}``."""
        out: Dict[str, Sequence[Number]] = {"time": tuple(self._times)}
        for name in self.gauge_names:
            out[name] = tuple(self._columns[name])
        return out

    def summary(self) -> Dict[str, Union[int, float, Dict[str, float]]]:
        """Reduce each gauge column to min / mean / max / last.

        Returns ``{"num_samples": ..., "interval_s": ..., <gauge>: {...}}``;
        gauge entries are absent when no samples were recorded.
        """
        out: Dict[str, Union[int, float, Dict[str, float]]] = {
            "num_samples": len(self._times),
            "interval_s": self.interval_s,
        }
        if not self._times:
            return out
        for name in self.gauge_names:
            col = self._columns[name]
            out[name] = {
                "min": float(min(col)),
                "mean": float(sum(col)) / len(col),
                "max": float(max(col)),
                "last": float(col[-1]),
            }
        return out
