"""Observability for the reproduction: tracing, telemetry, and metrics.

Three cooperating pieces, all deterministic and zero-overhead when unused:

* :mod:`repro.obs.metrics` — process-wide counter/timer registry with
  per-object scoped counters that roll up into global aggregates.
* :mod:`repro.obs.trace` — a :class:`TraceRecorder` that attaches to
  :class:`~repro.sched.scheduler.ClusterScheduler` and exports the run as
  Chrome ``trace_event`` JSON viewable in Perfetto.
* :mod:`repro.obs.sampler` — a :class:`TimeSeriesSampler` recording cluster
  gauges on a fixed sim-time grid, with a ``summary()`` reducer.

``python -m repro.obs report <trace.json>`` prints a timeline digest.
"""

from .metrics import Counter, MetricsRegistry, Timer, global_registry
from .sampler import TimeSeriesSampler
from .trace import (
    EV_ARRIVAL,
    EV_COLLOCATE,
    EV_COMPLETION,
    EV_DETACH,
    EV_CANCEL,
    EV_GPU_FREE,
    EV_GPU_GRANT,
    EV_KILL,
    EV_MIGRATION,
    EV_NODE_FAILURE,
    EV_NODE_RECOVERY,
    EV_PLACEMENT,
    EV_PREEMPTION,
    EV_RECOVERY,
    EV_REPLAN,
    EV_RESTART,
    EV_SNAPSHOT,
    EV_SUBMIT,
    ObsEvent,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "Timer",
    "MetricsRegistry",
    "global_registry",
    "TimeSeriesSampler",
    "ObsEvent",
    "TraceRecorder",
    "EV_ARRIVAL",
    "EV_PLACEMENT",
    "EV_COLLOCATE",
    "EV_DETACH",
    "EV_PREEMPTION",
    "EV_REPLAN",
    "EV_MIGRATION",
    "EV_RESTART",
    "EV_COMPLETION",
    "EV_KILL",
    "EV_NODE_FAILURE",
    "EV_NODE_RECOVERY",
    "EV_GPU_GRANT",
    "EV_GPU_FREE",
    "EV_SUBMIT",
    "EV_CANCEL",
    "EV_SNAPSHOT",
    "EV_RECOVERY",
]
