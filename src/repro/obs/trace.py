"""Deterministic structured tracing for the cluster scheduler.

A :class:`TraceRecorder` attaches to a
:class:`~repro.sched.scheduler.ClusterScheduler`
(``scheduler.attach_recorder(recorder)``) and receives one sim-time-stamped
:class:`ObsEvent` for every state change the event loop performs: job
arrivals, placements, collocations, preemptions, re-plans, migrations, node
failures/recoveries, restarts, completions, and per-pool GPU grants/frees.
The recorder only *reads* scheduler state — it never perturbs placement,
timing, or ordering — so a run's metric fingerprints are bit-identical with
the recorder attached or absent, and two seeded runs record byte-identical
event streams.

The event log exports as Chrome ``trace_event`` JSON
(:meth:`TraceRecorder.to_chrome_trace` /
:meth:`TraceRecorder.write_chrome_trace`), loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* one *process* track per GPU pool (plus a ``cluster`` track for arrivals),
* one *thread* track per host, carrying the jobs running on that host as
  complete (``"X"``) spans — a job's span closes and reopens at every
  re-plan/migration, so width changes are visible on the timeline,
* a ``free_gpus`` counter (``"C"``) track per pool,
* instant (``"i"``) markers for arrivals, restarts, failures and recoveries.

Timestamps are simulated microseconds (sim seconds × 1e6); nothing
wall-clock enters the export, which is what makes it byte-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from .metrics import global_registry

__all__ = [
    "ObsEvent",
    "TraceRecorder",
    "EV_ARRIVAL",
    "EV_PLACEMENT",
    "EV_COLLOCATE",
    "EV_DETACH",
    "EV_PREEMPTION",
    "EV_REPLAN",
    "EV_MIGRATION",
    "EV_RESTART",
    "EV_COMPLETION",
    "EV_KILL",
    "EV_NODE_FAILURE",
    "EV_NODE_RECOVERY",
    "EV_GPU_GRANT",
    "EV_GPU_FREE",
    "EV_SUBMIT",
    "EV_CANCEL",
    "EV_SNAPSHOT",
    "EV_RECOVERY",
]

# Event kinds the scheduler emits.  Spans open at placement/collocate and
# close at completion/preemption/kill/detach (re-plans and migrations close
# and reopen); the rest are instants or counter samples.
EV_ARRIVAL = "arrival"
EV_PLACEMENT = "placement"
EV_COLLOCATE = "collocate"
EV_DETACH = "detach"
EV_PREEMPTION = "preemption"
EV_REPLAN = "replan"
EV_MIGRATION = "migration"
EV_RESTART = "restart"
EV_COMPLETION = "completion"
EV_KILL = "kill"
EV_NODE_FAILURE = "node-failure"
EV_NODE_RECOVERY = "node-recovery"
EV_GPU_GRANT = "gpu-grant"
EV_GPU_FREE = "gpu-free"
# Service-layer kinds (repro.serve): admission decisions and cancellations.
# The offline scheduler never emits them, so offline traces are unchanged.
EV_SUBMIT = "submit"
EV_CANCEL = "cancel"
# Durability kinds (repro.serve crash safety): a state snapshot was
# persisted / a crashed service recovered.  Emission is read-only, so
# metric fingerprints are identical with snapshotting on or off.
EV_SNAPSHOT = "snapshot"
EV_RECOVERY = "recovery"

_SPAN_OPENERS = frozenset({EV_PLACEMENT, EV_COLLOCATE})
_SPAN_CLOSERS = frozenset({EV_COMPLETION, EV_PREEMPTION, EV_KILL, EV_DETACH, EV_CANCEL})
_SPAN_REOPENERS = frozenset({EV_REPLAN, EV_MIGRATION})

_RECORDED = global_registry().counter("obs.trace.events")


@dataclass(frozen=True)
class ObsEvent:
    """One recorded scheduler state change.

    Attributes
    ----------
    time:
        Simulated seconds at which the change happened.
    kind:
        One of the ``EV_*`` constants.
    job:
        Job name the event refers to (empty for node events).
    pool:
        Fleet pool the event touches (empty when not pool-specific).
    host:
        Global host id for node failure/recovery events (``-1`` otherwise).
    gpus:
        Global GPU ids involved (granted, freed, or occupied).
    width:
        GPU width of the placement/re-plan the event describes (0 otherwise).
    free_gpus:
        Free GPUs remaining in ``pool`` *after* the change (``-1`` when the
        event does not change pool occupancy) — the source of the per-pool
        ``free_gpus`` counter track.
    detail:
        Free-form deterministic annotation (placement class, restart
        overhead...).
    """

    time: float
    kind: str
    job: str = ""
    pool: str = ""
    host: int = -1
    gpus: Tuple[int, ...] = ()
    width: int = 0
    free_gpus: int = -1
    detail: str = ""


class TraceRecorder:
    """Collects :class:`ObsEvent` rows for one scheduler run.

    The scheduler calls :meth:`begin_run` at the top of every
    :meth:`~repro.sched.scheduler.ClusterScheduler.run`, which clears the
    log and binds the fleet (needed to map GPUs onto pool/host tracks at
    export time) — so one recorder can stay attached across many runs and
    always holds the latest run's events.
    """

    def __init__(self) -> None:
        self._events: List[ObsEvent] = []
        self._fleet = None  # duck-typed ClusterFleet, bound by begin_run
        self.policy = ""

    # --------------------------------------------------------------- recording
    def begin_run(self, fleet, policy: str) -> None:
        """Reset the log for a new run and bind its fleet/policy identity."""
        self._events = []
        self._fleet = fleet
        self.policy = policy

    def emit(
        self,
        time: float,
        kind: str,
        job: str = "",
        pool: str = "",
        host: int = -1,
        gpus: Tuple[int, ...] = (),
        width: int = 0,
        free_gpus: int = -1,
        detail: str = "",
    ) -> None:
        """Append one event (called by the scheduler's emission seams)."""
        self._events.append(
            ObsEvent(
                time=time,
                kind=kind,
                job=job,
                pool=pool,
                host=host,
                gpus=tuple(gpus),
                width=width,
                free_gpus=free_gpus,
                detail=detail,
            )
        )
        _RECORDED.add(1)

    @property
    def events(self) -> Tuple[ObsEvent, ...]:
        return tuple(self._events)

    def events_of(self, kind: str) -> List[ObsEvent]:
        """Every recorded event of one kind, in emission order."""
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------ track layout
    def _require_fleet(self):
        if self._fleet is None:
            raise RuntimeError(
                "recorder is not bound to a run; attach it to a scheduler "
                "and call run() (or call begin_run yourself) before exporting"
            )
        return self._fleet

    def _pool_pids(self) -> Dict[str, int]:
        # pid 0 is the cluster-wide track; pools follow in declaration order.
        fleet = self._require_fleet()
        return {name: i + 1 for i, name in enumerate(fleet.pool_names)}

    # ---------------------------------------------------------------- exports
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The run as a Chrome ``trace_event`` JSON object (Perfetto-ready)."""
        fleet = self._require_fleet()
        pool_pids = self._pool_pids()
        rows: List[Dict[str, Any]] = []

        # Track metadata: name the cluster process, one process per pool and
        # one thread per host, with stable sort order.
        rows.append(_meta(0, 0, "process_name", name="cluster"))
        rows.append(_meta(0, 0, "process_sort_index", sort_index=0))
        for name, pid in pool_pids.items():
            rows.append(_meta(pid, 0, "process_name", name=f"pool {name}"))
            rows.append(_meta(pid, 0, "process_sort_index", sort_index=pid))
        for host in range(fleet.num_hosts):
            pool = fleet.pool_of_host(host)
            rows.append(
                _meta(pool_pids[pool], host, "thread_name", name=f"host {host}")
            )
            rows.append(
                _meta(pool_pids[pool], host, "thread_sort_index", sort_index=host)
            )

        # Job spans: open at placement/collocate, close at completion/
        # preemption/kill/detach, close+reopen at replan/migration.
        open_spans: Dict[str, Dict[str, Any]] = {}
        last_ts = 0.0

        def close_span(job: str, end_s: float) -> None:
            span = open_spans.pop(job, None)
            if span is None:
                return
            rows.append(
                {
                    "ph": "X",
                    "pid": span["pid"],
                    "tid": span["tid"],
                    "name": job,
                    "cat": span["cat"],
                    "ts": span["start"] * 1e6,
                    "dur": max(end_s - span["start"], 0.0) * 1e6,
                    "args": span["args"],
                }
            )

        def open_span(event: ObsEvent) -> None:
            pid = pool_pids.get(event.pool, 0)
            tid = fleet.host_of_gpu(event.gpus[0]) if event.gpus else 0
            open_spans[event.job] = {
                "start": event.time,
                "pid": pid,
                "tid": tid,
                "cat": event.detail or "job",
                "args": {
                    "pool": event.pool,
                    "width": event.width,
                    "gpus": list(event.gpus),
                },
            }

        for event in self._events:
            last_ts = event.time
            if event.kind in _SPAN_OPENERS:
                close_span(event.job, event.time)  # defensive: never nest
                open_span(event)
            elif event.kind in _SPAN_REOPENERS:
                close_span(event.job, event.time)
                open_span(event)
            elif event.kind in _SPAN_CLOSERS:
                close_span(event.job, event.time)

            if event.kind == EV_ARRIVAL:
                rows.append(_instant(0, 0, f"arrival {event.job}", event.time, "p"))
            elif event.kind == EV_RESTART:
                pid = pool_pids.get(event.pool, 0)
                tid = fleet.host_of_gpu(event.gpus[0]) if event.gpus else 0
                rows.append(
                    _instant(pid, tid, f"restart {event.job}", event.time, "t")
                )
            elif event.kind in (EV_NODE_FAILURE, EV_NODE_RECOVERY):
                pid = pool_pids.get(event.pool, 0)
                rows.append(
                    _instant(pid, max(event.host, 0), event.kind, event.time, "p")
                )
            elif event.kind in (EV_SUBMIT, EV_CANCEL):
                # Service-layer markers (admission decisions, cancellations)
                # land on the cluster-wide track like arrivals.
                rows.append(
                    _instant(0, 0, f"{event.kind} {event.job}", event.time, "p")
                )
            elif event.kind in (EV_SNAPSHOT, EV_RECOVERY):
                # Durability markers: snapshot cadence and crash recoveries
                # on the cluster-wide track, detail carried verbatim.
                label = f"{event.kind} {event.detail}".rstrip()
                rows.append(_instant(0, 0, label, event.time, "p"))

            if event.free_gpus >= 0 and event.pool:
                rows.append(
                    {
                        "ph": "C",
                        "pid": pool_pids[event.pool],
                        "tid": 0,
                        "name": "free_gpus",
                        "ts": event.time * 1e6,
                        "args": {"free_gpus": event.free_gpus},
                    }
                )

        # A completed run closes every span; tolerate partial logs anyway.
        for job in sorted(open_spans):
            close_span(job, last_ts)

        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "policy": self.policy,
                "num_gpus": fleet.num_gpus,
                "num_hosts": fleet.num_hosts,
                "pools": list(fleet.pool_names),
                "recorded_events": len(self._events),
            },
            "traceEvents": rows,
        }

    def chrome_trace_json(self) -> str:
        """Canonical JSON text of the Chrome trace (byte-reproducible).

        Sorted keys and fixed separators: two runs recording identical event
        streams serialize to identical bytes, which the determinism tests
        compare directly.
        """
        return (
            json.dumps(
                self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        )

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace JSON to ``path`` and return it."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.chrome_trace_json())
        return out


def _meta(pid: int, tid: int, meta_name: str, **args: Any) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": meta_name, "args": args}


def _instant(
    pid: int, tid: int, name: str, time_s: float, scope: str
) -> Dict[str, Any]:
    return {
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "name": name,
        "ts": time_s * 1e6,
        "s": scope,
    }
