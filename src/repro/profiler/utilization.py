"""Device-utilization analysis (paper Figure 4).

Figure 4 plots the CDF of GPU utilization observed while training ResNet-50
at minibatch sizes from 1 to 256: with small batches most of the time is
spent at low utilization.  We reproduce the distribution analytically: each
layer contributes its achieved utilization (fraction of roofline throughput
delivered, see :class:`~repro.profiler.kernel_model.KernelCostModel`)
weighted by the time it occupies the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..models.graph import ModelGraph
from .gpu_spec import GPUSpec, A100_40GB
from .layer_profiler import LayerProfiler

__all__ = ["UtilizationCDF", "utilization_cdf", "mean_utilization"]


@dataclass(frozen=True)
class UtilizationCDF:
    """Time-weighted CDF of device utilization for one minibatch size.

    ``utilization[i]`` is a utilization level in [0, 1]; ``cumulative[i]`` is
    the fraction of device-busy time spent at or below that level.
    """

    batch: int
    utilization: np.ndarray
    cumulative: np.ndarray

    def fraction_below(self, threshold: float) -> float:
        """Fraction of device time spent below a utilization threshold."""
        if threshold <= 0:
            return 0.0
        idx = np.searchsorted(self.utilization, threshold, side="left")
        if idx == 0:
            return 0.0
        return float(self.cumulative[idx - 1])

    def mean(self) -> float:
        """Time-weighted mean utilization."""
        weights = np.diff(np.concatenate([[0.0], self.cumulative]))
        return float(np.sum(self.utilization * weights))


def utilization_cdf(
    graph: ModelGraph,
    batch: int,
    gpu: GPUSpec = A100_40GB,
    profiler: LayerProfiler | None = None,
) -> UtilizationCDF:
    """Compute the time-weighted utilization CDF at one minibatch size."""
    prof = profiler if profiler is not None else LayerProfiler(gpu)
    profile = prof.profile_model(graph, [batch])
    samples = profile.utilization_samples(batch)
    if not samples:
        raise ValueError(f"model {graph.name!r} produced no kernel timings")
    times = np.array([t for t, _ in samples], dtype=float)
    utils = np.array([u for _, u in samples], dtype=float)
    order = np.argsort(utils)
    utils = utils[order]
    weights = times[order] / times.sum()
    cumulative = np.cumsum(weights)
    return UtilizationCDF(batch=batch, utilization=utils, cumulative=cumulative)


def mean_utilization(
    graph: ModelGraph,
    batches: Sequence[int],
    gpu: GPUSpec = A100_40GB,
) -> Dict[int, float]:
    """Time-weighted mean utilization for each minibatch size."""
    prof = LayerProfiler(gpu)
    return {
        int(b): utilization_cdf(graph, int(b), gpu, prof).mean() for b in batches
    }
