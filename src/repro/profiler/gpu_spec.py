"""GPU hardware specifications used by the analytical cost model.

The paper profiles layers on NVIDIA A100-SXM4-40GB GPUs (Table 2) with
Automatic Mixed Precision enabled.  We replace measured profiles with an
analytical roofline-style model parameterized by the specifications below.
The exact values matter less than their ratios: compute-to-bandwidth ratio
determines which layers are math- vs memory-bound, SM count and wave size
determine how quickly small per-GPU batches run out of parallelism, and
launch overheads determine when kernels become host-bound (the effect CUDA
graphs mitigate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "GPUSpec",
    "A100_40GB",
    "A100_80GB",
    "V100_32GB",
    "H100_80GB",
    "get_gpu_spec",
]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"A100-SXM4-40GB"``.
    peak_flops:
        Sustained dense math throughput in FLOP/s for the training dtype
        (with AMP on an A100 this sits between the TF32 and FP16 tensor-core
        peaks; we use a conservative sustained value rather than the
        datasheet peak).
    memory_bandwidth:
        HBM bandwidth in bytes/s.
    num_sms:
        Number of streaming multiprocessors.
    blocks_per_sm:
        Thread blocks resident per SM in one scheduling wave (occupancy
        assumption for typical cuDNN/cuBLAS kernels).
    kernel_launch_overhead:
        Host-side cost of one ``cudaLaunchKernel`` call, in seconds.
    graph_launch_overhead:
        Amortized per-kernel host cost when kernels are replayed from a CUDA
        graph, in seconds.
    kernel_fixed_overhead:
        Device-side fixed cost per kernel (scheduling, tail effects), in
        seconds; acts as a floor on kernel duration.
    memory_capacity:
        Device memory in bytes (used for collocation feasibility checks).
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    num_sms: int
    blocks_per_sm: int
    kernel_launch_overhead: float
    graph_launch_overhead: float
    kernel_fixed_overhead: float
    memory_capacity: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bandwidth <= 0:
            raise ValueError("peak_flops and memory_bandwidth must be positive")
        if self.num_sms <= 0 or self.blocks_per_sm <= 0:
            raise ValueError("num_sms and blocks_per_sm must be positive")
        if min(self.kernel_launch_overhead, self.graph_launch_overhead,
               self.kernel_fixed_overhead) < 0:
            raise ValueError("overheads must be non-negative")

    @property
    def wave_size(self) -> int:
        """Thread blocks the device can execute concurrently in one wave."""
        return self.num_sms * self.blocks_per_sm

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (FLOP/byte) at the roofline ridge point."""
        return self.peak_flops / self.memory_bandwidth

    def scaled(self, **overrides: float) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **overrides)


#: Default evaluation device (paper Table 2), with AMP-era sustained FLOPs.
A100_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    peak_flops=120e12,
    memory_bandwidth=1.555e12,
    num_sms=108,
    blocks_per_sm=4,
    kernel_launch_overhead=4.0e-6,
    graph_launch_overhead=0.4e-6,
    kernel_fixed_overhead=2.5e-6,
    memory_capacity=40e9,
)

A100_80GB = GPUSpec(
    name="A100-SXM4-80GB",
    peak_flops=120e12,
    memory_bandwidth=2.0e12,
    num_sms=108,
    blocks_per_sm=4,
    kernel_launch_overhead=4.0e-6,
    graph_launch_overhead=0.4e-6,
    kernel_fixed_overhead=2.5e-6,
    memory_capacity=80e9,
)

V100_32GB = GPUSpec(
    name="V100-SXM2-32GB",
    peak_flops=60e12,
    memory_bandwidth=0.9e12,
    num_sms=80,
    blocks_per_sm=4,
    kernel_launch_overhead=5.0e-6,
    graph_launch_overhead=0.5e-6,
    kernel_fixed_overhead=3.0e-6,
    memory_capacity=32e9,
)

#: Hopper-generation spec for heterogeneous-fleet studies: roughly 2.5x the
#: A100's sustained math throughput and ~2.2x its bandwidth, with slightly
#: lower launch overheads (faster host interface).
H100_80GB = GPUSpec(
    name="H100-SXM5-80GB",
    peak_flops=300e12,
    memory_bandwidth=3.35e12,
    num_sms=132,
    blocks_per_sm=4,
    kernel_launch_overhead=3.5e-6,
    graph_launch_overhead=0.35e-6,
    kernel_fixed_overhead=2.0e-6,
    memory_capacity=80e9,
)

_SPECS = {
    "a100": A100_40GB,
    "a100-40gb": A100_40GB,
    "a100-80gb": A100_80GB,
    "v100": V100_32GB,
    "h100": H100_80GB,
    "h100-80gb": H100_80GB,
}


def get_gpu_spec(name: str) -> GPUSpec:
    """Look up a GPU spec by (case-insensitive) short name."""
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown GPU {name!r}; available: {sorted(_SPECS)}")
    return _SPECS[key]
