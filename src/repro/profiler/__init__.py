"""GPU cost-model substrate.

Replaces DeepPool's on-device layer profiling with an analytical
roofline-plus-occupancy model of an A100-class GPU.

Public API:

* :class:`~repro.profiler.gpu_spec.GPUSpec` and the ``A100_40GB`` /
  ``A100_80GB`` / ``V100_32GB`` presets.
* :class:`~repro.profiler.kernel_model.KernelCostModel` — per-kernel time.
* :class:`~repro.profiler.layer_profiler.LayerProfiler` — per-layer
  forward+backward timing, ``comp(i, g)``, model profiles, memory footprint.
* :func:`~repro.profiler.utilization.utilization_cdf` — Figure 4 analysis.
"""

from .gpu_spec import A100_40GB, A100_80GB, V100_32GB, GPUSpec, get_gpu_spec
from .kernel_model import KernelCostModel, KernelWorkload
from .layer_profiler import (
    AMP_DTYPE_BYTES,
    LayerProfiler,
    LayerTiming,
    ModelProfile,
    per_gpu_batch,
)
from .utilization import UtilizationCDF, mean_utilization, utilization_cdf

__all__ = [
    "GPUSpec",
    "A100_40GB",
    "A100_80GB",
    "V100_32GB",
    "get_gpu_spec",
    "KernelCostModel",
    "KernelWorkload",
    "LayerProfiler",
    "LayerTiming",
    "ModelProfile",
    "per_gpu_batch",
    "AMP_DTYPE_BYTES",
    "UtilizationCDF",
    "utilization_cdf",
    "mean_utilization",
]
